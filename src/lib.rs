//! # hive — a Rust reproduction of *Major Technical Advancements in
//! # Apache Hive* (SIGMOD 2014)
//!
//! This facade crate re-exports the whole stack. The three advancements the
//! paper contributes, and where they live here:
//!
//! 1. **ORC File** (paper §4) — [`formats::orc`]: type-aware columnar
//!    writer with stripes, complex-type decomposition, three-level
//!    statistics, position pointers, predicate pushdown, two-level
//!    compression, block-alignment padding and a writer memory manager.
//! 2. **Query-planning advancements** (paper §5) — [`planner`]: Map Join
//!    conversion, elimination of unnecessary Map phases by merging Map-only
//!    jobs, and the YSmart-based Correlation Optimizer with its Demux/Mux
//!    Reduce-side coordination (in [`exec`]).
//! 3. **Vectorized query execution** (paper §6) — [`vector`]: 1024-row
//!    batches, typed column vectors with `selected[]` / `noNulls` /
//!    `isRepeating`, macro-generated per-type expressions, and the
//!    rule-based vectorization pass in the planner.
//!
//! Everything underneath — the DFS simulator, the MapReduce engine with its
//! calibrated cluster cost model, the HiveQL parser, the row-mode engine,
//! the compression codecs and the workload generators — is built in this
//! workspace from scratch; see DESIGN.md for the substitution table.
//!
//! ## Quickstart
//!
//! ```
//! use hive::HiveSession;
//! use hive::common::{Row, Value};
//!
//! let mut hive = HiveSession::in_memory();
//! hive.execute("CREATE TABLE logs (level STRING, ms BIGINT) STORED AS orc").unwrap();
//! hive.load_rows("logs", (0..1000).map(|i| Row::new(vec![
//!     Value::String(if i % 10 == 0 { "ERROR" } else { "INFO" }.to_string()),
//!     Value::Int(i % 97),
//! ]))).unwrap();
//! let r = hive.execute(
//!     "SELECT level, COUNT(*) AS n, AVG(ms) AS avg_ms \
//!      FROM logs GROUP BY level ORDER BY level").unwrap();
//! assert_eq!(r.rows.len(), 2);
//! assert_eq!(r.rows[0][1], Value::Int(100)); // ERROR count
//! ```

pub use hive_common as common;
pub use hive_core::{
    HiveServer, HiveSession, Metastore, QueryMetrics, QueryResult, SessionBuilder, TableInfo,
};
pub use hive_datagen as datagen;
pub use hive_dfs as dfs;
pub use hive_exec as exec;
pub use hive_formats as formats;
pub use hive_mapreduce as mapreduce;
pub use hive_obs as obs;
pub use hive_planner as planner;
pub use hive_ql as ql;
pub use hive_vector as vector;

pub use hive_codec as codec;
