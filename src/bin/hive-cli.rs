//! An interactive HiveQL shell over a simulated cluster — the analogue of
//! the paper's CLI entry point (Figure 1).
//!
//! ```sh
//! cargo run --release --bin hive-cli              # empty warehouse
//! cargo run --release --bin hive-cli -- --demo    # preloaded demo tables
//! cargo run --release --bin hive-cli -- --demo --metrics-json out.json
//! ```
//!
//! Commands besides SQL: `SET key=value;`, `SHOW TABLES;`, `!report`
//! (last query's execution report), `!metrics` (session metrics so far),
//! `!quit`. With `--metrics-json <path>` the final registry snapshot is
//! written to `path` on exit as stable-schema JSON.

use hive::common::{Row, Value};
use hive::HiveSession;
use std::io::{BufRead, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut demo = false;
    let mut metrics_json: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--demo" => demo = true,
            "--metrics-json" => {
                i += 1;
                match args.get(i) {
                    Some(path) => metrics_json = Some(path.clone()),
                    None => {
                        eprintln!("--metrics-json requires a path");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown flag `{other}` (known: --demo, --metrics-json <path>)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let mut hive = HiveSession::in_memory();
    if demo {
        load_demo(&mut hive);
        println!("demo tables loaded: trips (50,000 rows), cities (6 rows)");
    }
    println!("hive-repro CLI — end statements with `;`, `!quit` to exit");

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    let mut last_report: Option<hive::mapreduce::DagReport> = None;
    loop {
        if buffer.is_empty() {
            print!("hive> ");
        } else {
            print!("    > ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        match trimmed {
            "!quit" | "!q" | "exit" | "quit" => break,
            "!report" => {
                match &last_report {
                    Some(r) => {
                        println!(
                            "total: {:.2}s simulated, {:.3}s CPU, {} job(s)",
                            r.sim_total_s,
                            r.cpu_seconds,
                            r.jobs.len()
                        );
                        for j in &r.jobs {
                            println!(
                                "  {}: {} map / {} reduce tasks, {:.2}s, read {} B, shuffled {} B",
                                j.name,
                                j.map_tasks,
                                j.reduce_tasks,
                                j.sim_total_s,
                                j.bytes_read,
                                j.bytes_shuffled
                            );
                        }
                        if r.task_retries > 0
                            || r.speculative_tasks > 0
                            || r.rows_skipped > 0
                            || !r.blacklisted_nodes.is_empty()
                        {
                            println!(
                                "  fault tolerance: {} attempt(s), {} retried, \
                                 {} speculative, {} row(s) skipped, blacklisted nodes {:?}",
                                r.task_attempts,
                                r.task_retries,
                                r.speculative_tasks,
                                r.rows_skipped,
                                r.blacklisted_nodes
                            );
                        }
                    }
                    None => println!("no query has run yet"),
                }
                continue;
            }
            "!metrics" => {
                print!("{}", hive.metrics_snapshot().render_text());
                continue;
            }
            _ => {}
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let stmt = buffer.trim().trim_end_matches(';').trim().to_string();
        buffer.clear();
        if stmt.is_empty() {
            continue;
        }

        // Shell-level commands.
        let lower = stmt.to_ascii_lowercase();
        if lower == "show tables" {
            for t in hive.metastore().list_tables() {
                println!(
                    "{t}\t{} bytes\t{} file(s)",
                    hive.metastore().table_size(&t),
                    hive.metastore().table_files(&t).len()
                );
            }
            continue;
        }
        if let Some(rest) = lower.strip_prefix("set ") {
            if let Some((k, v)) = rest.split_once('=') {
                // Validated: unknown knobs fail here with suggestions
                // instead of blowing up inside the next query.
                match hive.try_set(k.trim(), v.trim().to_string()) {
                    Ok(_) => println!("set {} = {}", k.trim(), v.trim()),
                    Err(e) => eprintln!("{e}"),
                }
            } else {
                eprintln!("usage: SET key=value;");
            }
            continue;
        }

        match hive.execute(&stmt) {
            Ok(result) => {
                if let Some(plan) = &result.explain {
                    println!("{plan}");
                } else if result.columns.is_empty() {
                    println!("OK");
                } else {
                    print!("{}", result.render());
                    println!(
                        "({} row(s), {:.2}s simulated, {} job(s))",
                        result.rows.len(),
                        result.report.sim_total_s,
                        result.report.jobs.len()
                    );
                }
                last_report = Some(result.report);
            }
            Err(e) => eprintln!("{e}"),
        }
    }

    if let Some(path) = metrics_json {
        let json = hive.metrics_snapshot().to_json().render_pretty();
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("metrics snapshot written to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn load_demo(hive: &mut HiveSession) {
    hive.execute("CREATE TABLE trips (city_id BIGINT, minutes BIGINT, fare DOUBLE) STORED AS orc")
        .expect("create trips");
    hive.load_rows(
        "trips",
        (0..50_000).map(|i| {
            Row::new(vec![
                Value::Int(i % 6),
                Value::Int(i % 95 + 3),
                Value::Double((i % 400) as f64 / 10.0 + 2.5),
            ])
        }),
    )
    .expect("load trips");
    hive.execute("CREATE TABLE cities (city_id BIGINT, name STRING) STORED AS orc")
        .expect("create cities");
    let names = ["berlin", "columbus", "seoul", "snowbird", "lima", "accra"];
    hive.load_rows(
        "cities",
        names
            .iter()
            .enumerate()
            .map(|(i, n)| Row::new(vec![Value::Int(i as i64), Value::String(n.to_string())])),
    )
    .expect("load cities");
}
