//! Whole-stack integration tests on the paper's actual workloads at tiny
//! scale: the benchmark queries must return exactly what an independent
//! in-memory computation over the generated rows returns, under both
//! engines and every storage format.

use hive::common::config::keys;
use hive::common::{Row, Value};
use hive::HiveSession;
use std::collections::BTreeMap;

fn tpch_session(fmt: &str) -> (HiveSession, Vec<Row>) {
    let mut s = HiveSession::with_dfs_config(hive::dfs::DfsConfig {
        block_size: 1 << 20,
        replication: 2,
        nodes: 4,
    });
    let format = hive::formats::FormatKind::parse(fmt).unwrap();
    s.create_table("lineitem", hive::datagen::tpch::lineitem_schema(), format)
        .unwrap();
    let rows: Vec<Row> = hive::datagen::tpch::lineitem_rows(0.002, 7).collect();
    s.load_rows("lineitem", rows.clone()).unwrap();
    (s, rows)
}

/// TPC-H q6 computed independently over the raw rows.
fn q6_expected(rows: &[Row]) -> f64 {
    rows.iter()
        .filter(|r| {
            let shipdate = r[10].as_str().unwrap();
            let discount = r[6].as_double().unwrap();
            let quantity = r[4].as_double().unwrap();
            ("1994-01-01".."1995-01-01").contains(&shipdate)
                && (0.05..=0.07).contains(&discount)
                && quantity < 24.0
        })
        .map(|r| r[5].as_double().unwrap() * r[6].as_double().unwrap())
        .sum()
}

const Q6: &str = "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem \
                  WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01' \
                  AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24";

#[test]
fn tpch_q6_exact_across_formats_and_engines() {
    for fmt in ["textfile", "sequencefile", "rcfile", "orc"] {
        for vectorized in ["true", "false"] {
            let (mut s, rows) = tpch_session(fmt);
            s.set(keys::VECTORIZED_ENABLED, vectorized);
            let r = s.execute(Q6).unwrap();
            let got = r.rows[0][0].as_double().unwrap();
            let expect = q6_expected(&rows);
            assert!(
                (got - expect).abs() < 1e-6,
                "fmt={fmt} vec={vectorized}: {got} vs {expect}"
            );
        }
    }
}

#[test]
fn tpch_q1_exact() {
    let (mut s, rows) = tpch_session("orc");
    let r = s
        .execute(
            "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS q, COUNT(*) AS n, \
                    AVG(l_discount) AS d \
             FROM lineitem WHERE l_shipdate <= '1998-09-02' \
             GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus",
        )
        .unwrap();

    // Independent computation.
    let mut groups: BTreeMap<(String, String), (f64, i64, f64)> = BTreeMap::new();
    for row in &rows {
        if row[10].as_str().unwrap() > "1998-09-02" {
            continue;
        }
        let key = (
            row[8].as_str().unwrap().to_string(),
            row[9].as_str().unwrap().to_string(),
        );
        let e = groups.entry(key).or_insert((0.0, 0, 0.0));
        e.0 += row[4].as_double().unwrap();
        e.1 += 1;
        e.2 += row[6].as_double().unwrap();
    }
    assert_eq!(r.rows.len(), groups.len());
    for (got, (key, (q, n, dsum))) in r.rows.iter().zip(groups.iter()) {
        assert_eq!(got[0].as_str().unwrap(), key.0);
        assert_eq!(got[1].as_str().unwrap(), key.1);
        assert!((got[2].as_double().unwrap() - q).abs() < 1e-6);
        assert_eq!(got[3], Value::Int(*n));
        assert!((got[4].as_double().unwrap() - dsum / *n as f64).abs() < 1e-9);
    }
}

#[test]
fn ssdb_query1_counts_match_geometry() {
    let mut s = HiveSession::in_memory();
    hive::datagen::ssdb::load(&mut s, 2, 500, 3).unwrap();
    // step 500 → 30 points per axis per image.
    for (name, var, per_axis_sel) in [
        ("easy", 3750, 8i64),
        ("medium", 7500, 16),
        ("hard", 15_000, 30),
    ] {
        let r = s.execute(&hive::datagen::ssdb::query1(var)).unwrap();
        let expect = 2 * per_axis_sel * per_axis_sel;
        assert_eq!(r.rows[0][1], Value::Int(expect), "{name}");
    }
}

#[test]
fn tpcds_q27_and_q95_consistent_across_all_knobs() {
    let sqls = [
        (
            "q27",
            "SELECT i_item_id, s_state, AVG(ss_quantity) AS a1 \
             FROM store_sales \
             JOIN customer_demographics ON (ss_cdemo_sk = cd_demo_sk) \
             JOIN date_dim ON (ss_sold_date_sk = d_date_sk) \
             JOIN store ON (ss_store_sk = s_store_sk) \
             JOIN item ON (ss_item_sk = i_item_sk) \
             WHERE cd_gender = 'M' AND cd_marital_status = 'S' \
               AND cd_education_status = 'College' AND d_year = 1995 \
               AND s_state IN ('TN', 'SD') \
             GROUP BY i_item_id, s_state ORDER BY i_item_id, s_state LIMIT 50",
        ),
        (
            "q95",
            "SELECT ws1.ws_order_number, COUNT(*) AS n \
             FROM web_sales ws1 \
             JOIN date_dim ON (ws1.ws_ship_date_sk = d_date_sk) \
             JOIN web_sales ws2 ON (ws1.ws_order_number = ws2.ws_order_number) \
             JOIN web_returns ON (ws1.ws_order_number = wr_order_number) \
             WHERE d_date BETWEEN '1995-01-01' AND '1995-12-31' \
               AND ws1.ws_warehouse_sk <> ws2.ws_warehouse_sk \
             GROUP BY ws1.ws_order_number ORDER BY ws1.ws_order_number LIMIT 50",
        ),
    ];
    for (name, sql) in sqls {
        let mut reference: Option<Vec<Row>> = None;
        for (mapjoin, corr, merge) in [
            ("true", "true", "true"),
            ("true", "false", "false"),
            ("false", "true", "true"),
            ("false", "false", "false"),
        ] {
            let mut s = HiveSession::with_dfs_config(hive::dfs::DfsConfig {
                block_size: 1 << 20,
                replication: 2,
                nodes: 4,
            });
            hive::datagen::tpcds::load(&mut s, 0.003, 11).unwrap();
            s.set(keys::AUTO_CONVERT_JOIN, mapjoin)
                .set(keys::OPT_CORRELATION, corr)
                .set(keys::MERGE_MAPONLY_JOBS, merge)
                .set(keys::MAPJOIN_SMALLTABLE_SIZE, "60000");
            let r = s.execute(sql).unwrap_or_else(|e| {
                panic!("{name} mapjoin={mapjoin} corr={corr} merge={merge}: {e}")
            });
            match &reference {
                None => {
                    assert!(!r.rows.is_empty(), "{name} must return rows");
                    reference = Some(r.rows);
                }
                Some(exp) => assert_eq!(
                    &r.rows, exp,
                    "{name} diverged under mapjoin={mapjoin} corr={corr} merge={merge}"
                ),
            }
        }
    }
}

#[test]
fn table2_shape_holds_at_tiny_scale() {
    // The headline Table 2 relationships, checked programmatically.
    let sizes = |fmt: &str, comp: &str, tpch: bool| -> u64 {
        let mut s = HiveSession::in_memory();
        s.set(keys::ORC_COMPRESS, comp);
        let format = hive::formats::FormatKind::parse(fmt).unwrap();
        if tpch {
            s.create_table("lineitem", hive::datagen::tpch::lineitem_schema(), format)
                .unwrap();
            s.load_rows("lineitem", hive::datagen::tpch::lineitem_rows(0.002, 7))
                .unwrap();
            s.metastore().table_size("lineitem")
        } else {
            s.create_table("cycle", hive::datagen::ssdb::cycle_schema(), format)
                .unwrap();
            s.load_rows("cycle", hive::datagen::ssdb::cycle_rows(2, 300, 7))
                .unwrap();
            s.metastore().table_size("cycle")
        }
    };
    for tpch in [false, true] {
        let text = sizes("textfile", "none", tpch);
        let rc = sizes("rcfile", "none", tpch);
        let rc_snappy = sizes("rcfile", "snappy", tpch);
        let orc = sizes("orc", "none", tpch);
        let orc_snappy = sizes("orc", "snappy", tpch);
        assert!(rc < text, "RCFile beats text (tpch={tpch})");
        assert!(orc < rc, "ORC beats RCFile (tpch={tpch})");
        assert!(orc_snappy < orc, "Snappy shrinks ORC (tpch={tpch})");
        assert!(rc_snappy < rc, "Snappy shrinks RCFile (tpch={tpch})");
        if !tpch {
            // The SS-DB headline: type-aware ORC beats even RCFile+Snappy.
            assert!(
                orc < rc_snappy,
                "ORC (uncompressed) beats RCFile+Snappy on SS-DB"
            );
        }
    }
}

#[test]
fn unnecessary_map_phase_elimination_shape() {
    // Fig. 11(a)'s structure at test scale: merged plan = 1 job, unmerged
    // plan = 1 + one map-only job per map join; merged is faster.
    let build = |merge: &str| {
        let mut s = HiveSession::with_dfs_config(hive::dfs::DfsConfig {
            block_size: 1 << 20,
            replication: 2,
            nodes: 4,
        });
        hive::datagen::tpcds::load(&mut s, 0.003, 11).unwrap();
        s.set(keys::MERGE_MAPONLY_JOBS, merge)
            .set(keys::MAPJOIN_SMALLTABLE_SIZE, "60000");
        s
    };
    let sql = "SELECT s_state, COUNT(*) AS n FROM store_sales \
               JOIN store ON (ss_store_sk = s_store_sk) \
               JOIN date_dim ON (ss_sold_date_sk = d_date_sk) \
               WHERE d_year = 1995 GROUP BY s_state ORDER BY s_state";
    let merged = build("true").execute(sql).unwrap();
    let unmerged = build("false").execute(sql).unwrap();
    assert_eq!(merged.report.jobs.len(), 1);
    assert_eq!(unmerged.report.jobs.len(), 3);
    assert_eq!(merged.rows, unmerged.rows);
    assert!(merged.report.sim_total_s < unmerged.report.sim_total_s);
}
