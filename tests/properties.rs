//! Property-based tests (proptest) on the core invariants:
//!
//! * every encoder/codec round-trips arbitrary inputs;
//! * ORC round-trips arbitrary rows of arbitrary (primitive) shape, under
//!   every compression codec;
//! * predicate pushdown is *sound*: whatever the reader skips, no matching
//!   row is ever lost;
//! * the vectorized expressions agree with the interpreted row-mode
//!   expressions on arbitrary data — the equivalence Fig. 12 rests on.

use hive::codec::block::{BlockCodec, Compression, DeflateLikeCodec, NoneCodec, SnappyLikeCodec};
use hive::common::{DataType, Row, Schema, Value};
use hive::dfs::{Dfs, DfsConfig};
use hive::formats::orc::reader::{OrcReadOptions, OrcReader};
use hive::formats::orc::writer::{OrcWriter, OrcWriterOptions};
use hive::formats::{PredicateLeaf, SearchArgument, TableReader, TableWriter};
use proptest::prelude::*;

fn small_dfs() -> Dfs {
    Dfs::new(DfsConfig {
        block_size: 1 << 20,
        replication: 1,
        nodes: 3,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn varint_round_trips(v in any::<i64>()) {
        let mut buf = Vec::new();
        hive::codec::varint::write_signed(&mut buf, v);
        let mut pos = 0;
        prop_assert_eq!(hive::codec::varint::read_signed(&buf, &mut pos).unwrap(), v);
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn int_rle_round_trips(vals in proptest::collection::vec(any::<i64>(), 0..2000)) {
        let enc = hive::codec::int_rle::encode(&vals);
        prop_assert_eq!(hive::codec::int_rle::decode(&enc).unwrap(), vals);
    }

    #[test]
    fn int_rle_round_trips_runs(
        runs in proptest::collection::vec((any::<i32>(), -3i64..=3, 1usize..100), 0..20)
    ) {
        // Run-shaped data (base + small delta) exercises the run encoder.
        let mut vals = Vec::new();
        for (base, delta, len) in runs {
            let mut v = base as i64;
            for _ in 0..len {
                vals.push(v);
                v = v.wrapping_add(delta);
            }
        }
        let enc = hive::codec::int_rle::encode(&vals);
        prop_assert_eq!(hive::codec::int_rle::decode(&enc).unwrap(), vals);
    }

    #[test]
    fn byte_rle_round_trips(data in proptest::collection::vec(any::<u8>(), 0..4000)) {
        let enc = hive::codec::byte_rle::encode(&data);
        prop_assert_eq!(hive::codec::byte_rle::decode(&enc).unwrap(), data);
    }

    #[test]
    fn bitfield_round_trips(bits in proptest::collection::vec(any::<bool>(), 0..4000)) {
        let enc = hive::codec::bitfield::encode(&bits);
        prop_assert_eq!(hive::codec::bitfield::decode(&enc, bits.len()).unwrap(), bits);
    }

    #[test]
    fn block_codecs_round_trip(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
        let codecs: Vec<Box<dyn BlockCodec>> = vec![
            Box::new(NoneCodec),
            Box::new(SnappyLikeCodec),
            Box::new(DeflateLikeCodec),
        ];
        for c in codecs {
            let comp = c.compress(&data);
            prop_assert_eq!(c.decompress(&comp).unwrap(), data.clone(), "codec {}", c.name());
        }
    }

    #[test]
    fn huffman_round_trips(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
        let comp = hive::codec::huffman::compress(&data);
        prop_assert_eq!(hive::codec::huffman::decompress(&comp).unwrap(), data);
    }
}

/// An arbitrary primitive value of a given type (possibly null).
fn value_strategy(dt: &DataType) -> BoxedStrategy<Value> {
    let non_null: BoxedStrategy<Value> = match dt {
        DataType::Int => any::<i64>().prop_map(Value::Int).boxed(),
        DataType::Double => {
            // Finite doubles only (NaN breaks Eq-based comparisons).
            prop_oneof![
                proptest::num::f64::NORMAL.prop_map(Value::Double),
                Just(Value::Double(0.0)),
            ]
            .boxed()
        }
        DataType::Boolean => any::<bool>().prop_map(Value::Boolean).boxed(),
        DataType::String => "[a-z0-9 ]{0,24}".prop_map(Value::String).boxed(),
        DataType::Timestamp => any::<i64>().prop_map(Value::Timestamp).boxed(),
        _ => unreachable!("primitive types only"),
    };
    prop_oneof![9 => non_null, 1 => Just(Value::Null)].boxed()
}

fn rows_strategy() -> impl Strategy<Value = (Vec<DataType>, Vec<Row>)> {
    let dt = prop_oneof![
        Just(DataType::Int),
        Just(DataType::Double),
        Just(DataType::Boolean),
        Just(DataType::String),
        Just(DataType::Timestamp),
    ];
    proptest::collection::vec(dt, 1..5).prop_flat_map(|types| {
        let row = types
            .iter()
            .map(value_strategy)
            .collect::<Vec<_>>()
            .prop_map(Row::new);
        (Just(types), proptest::collection::vec(row, 0..300))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn orc_round_trips_arbitrary_rows(
        (types, rows) in rows_strategy(),
        comp in prop_oneof![
            Just(Compression::None),
            Just(Compression::Snappy),
            Just(Compression::Zlib)
        ],
    ) {
        let dfs = small_dfs();
        let schema = Schema::new(
            types
                .iter()
                .enumerate()
                .map(|(i, t)| hive::common::Field::new(format!("c{i}"), t.clone()))
                .collect(),
        );
        let mut w: Box<dyn TableWriter> = Box::new(OrcWriter::create(
            &dfs,
            "/p/orc",
            &schema,
            OrcWriterOptions {
                stripe_size: 4 << 10, // force several stripes
                row_index_stride: 16,
                compression: comp,
                compress_unit: 2 << 10,
                ..Default::default()
            },
            None,
        ));
        for r in &rows {
            w.write_row(r).unwrap();
        }
        w.close().unwrap();
        let mut r = OrcReader::open(&dfs, "/p/orc", OrcReadOptions::default()).unwrap();
        let mut back = Vec::new();
        while let Some(row) = r.next_row().unwrap() {
            back.push(row);
        }
        prop_assert_eq!(back, rows);
    }

    #[test]
    fn orc_ppd_is_sound(
        vals in proptest::collection::vec(any::<i16>(), 1..500),
        lo in any::<i16>(),
        hi in any::<i16>(),
    ) {
        // Whatever the statistics say, every matching row must come back.
        let (lo, hi) = (lo.min(hi) as i64, lo.max(hi) as i64);
        let dfs = small_dfs();
        let schema = Schema::parse(&[("x", "bigint")]).unwrap();
        let mut w: Box<dyn TableWriter> = Box::new(OrcWriter::create(
            &dfs,
            "/p/ppd",
            &schema,
            OrcWriterOptions {
                stripe_size: 2 << 10,
                row_index_stride: 8,
                ..Default::default()
            },
            None,
        ));
        for &v in &vals {
            w.write_row(&Row::new(vec![Value::Int(v as i64)])).unwrap();
        }
        w.close().unwrap();

        let sarg = SearchArgument::new(vec![PredicateLeaf::between(
            0,
            Value::Int(lo),
            Value::Int(hi),
        )]);
        let mut r = OrcReader::open(
            &dfs,
            "/p/ppd",
            OrcReadOptions { sarg: Some(sarg), use_index: true, ..Default::default() },
        )
        .unwrap();
        let mut got = Vec::new();
        while let Some(row) = r.next_row().unwrap() {
            let v = row[0].as_int().unwrap();
            if (lo..=hi).contains(&v) {
                got.push(v);
            }
        }
        let expected: Vec<i64> = vals
            .iter()
            .map(|&v| v as i64)
            .filter(|v| (lo..=hi).contains(v))
            .collect();
        prop_assert_eq!(got, expected, "PPD must never drop matching rows");
    }

    #[test]
    fn vectorized_filter_matches_row_filter(
        vals in proptest::collection::vec((any::<i16>(), any::<bool>()), 1..500),
        threshold in any::<i16>(),
    ) {
        use hive::exec::expr::{BinaryOp, ExprNode};
        use hive::vector::expressions::{FilterLongColGreaterLongScalar, VectorExpression};
        use hive::vector::{ColumnVector, VectorizedRowBatch};

        let n = vals.len();
        // Row mode.
        let pred = ExprNode::binary(
            BinaryOp::Gt,
            ExprNode::col(0),
            ExprNode::lit(Value::Int(threshold as i64)),
        );
        let row_selected: Vec<usize> = vals
            .iter()
            .enumerate()
            .filter(|(_, (v, null))| {
                let row = Row::new(vec![if *null { Value::Null } else { Value::Int(*v as i64) }]);
                pred.eval_predicate(&row).unwrap()
            })
            .map(|(i, _)| i)
            .collect();

        // Vector mode.
        let mut batch = VectorizedRowBatch::new(&[DataType::Int], n).unwrap();
        if let ColumnVector::Long(c) = &mut batch.columns[0] {
            for (i, (v, null)) in vals.iter().enumerate() {
                c.vector[i] = *v as i64;
                if *null {
                    c.null[i] = true;
                    c.no_nulls = false;
                }
            }
        }
        batch.size = n;
        FilterLongColGreaterLongScalar { column: 0, scalar: threshold as i64 }
            .evaluate(&mut batch)
            .unwrap();
        let vec_selected: Vec<usize> = batch.iter_selected().collect();
        prop_assert_eq!(vec_selected, row_selected);
    }

    #[test]
    fn vectorized_arith_matches_row_arith(
        vals in proptest::collection::vec((-10_000i64..10_000, -10_000i64..10_000), 1..300),
    ) {
        use hive::exec::expr::{BinaryOp, ExprNode};
        use hive::vector::expressions::{LongColMultiplyLongColumn, VectorExpression};
        use hive::vector::{ColumnVector, VectorizedRowBatch};

        let n = vals.len();
        let expr = ExprNode::binary(BinaryOp::Multiply, ExprNode::col(0), ExprNode::col(1));
        let row_out: Vec<i64> = vals
            .iter()
            .map(|(a, b)| {
                expr.eval(&Row::new(vec![Value::Int(*a), Value::Int(*b)]))
                    .unwrap()
                    .as_int()
                    .unwrap()
            })
            .collect();

        let mut batch =
            VectorizedRowBatch::new(&[DataType::Int, DataType::Int, DataType::Int], n).unwrap();
        for (col, pick) in [(0usize, 0usize), (1, 1)] {
            if let ColumnVector::Long(c) = &mut batch.columns[col] {
                for (i, v) in vals.iter().enumerate() {
                    c.vector[i] = if pick == 0 { v.0 } else { v.1 };
                }
            }
        }
        batch.size = n;
        LongColMultiplyLongColumn { left_column: 0, right_column: 1, output_column: 2 }
            .evaluate(&mut batch)
            .unwrap();
        let vec_out: Vec<i64> = (0..n)
            .map(|i| batch.columns[2].as_long().unwrap().vector[i])
            .collect();
        prop_assert_eq!(vec_out, row_out);
    }

    #[test]
    fn shuffle_key_comparison_is_total_order(
        a in proptest::collection::vec(any::<i32>(), 0..4),
        b in proptest::collection::vec(any::<i32>(), 0..4),
        c in proptest::collection::vec(any::<i32>(), 0..4),
    ) {
        use hive::mapreduce::engine::cmp_keys;
        let ka: Vec<Value> = a.into_iter().map(|v| Value::Int(v as i64)).collect();
        let kb: Vec<Value> = b.into_iter().map(|v| Value::Int(v as i64)).collect();
        let kc: Vec<Value> = c.into_iter().map(|v| Value::Int(v as i64)).collect();
        // Antisymmetry and transitivity (spot checks).
        prop_assert_eq!(cmp_keys(&ka, &kb), cmp_keys(&kb, &ka).reverse());
        if cmp_keys(&ka, &kb).is_le() && cmp_keys(&kb, &kc).is_le() {
            prop_assert!(cmp_keys(&ka, &kc).is_le());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn text_serde_round_trips_rows((types, rows) in rows_strategy()) {
        let schema = Schema::new(
            types
                .iter()
                .enumerate()
                .map(|(i, t)| hive::common::Field::new(format!("c{i}"), t.clone()))
                .collect(),
        );
        for row in &rows {
            let mut buf = Vec::new();
            hive::formats::serde::text_serialize(row, &mut buf);
            let back = hive::formats::serde::text_deserialize(&buf, &schema).unwrap();
            prop_assert_eq!(&back, row);
        }
    }

    #[test]
    fn binary_serde_round_trips_rows((_, rows) in rows_strategy()) {
        for row in &rows {
            let mut buf = Vec::new();
            hive::formats::serde::binary_serialize_row(row, &mut buf);
            let mut pos = 0;
            let back = hive::formats::serde::binary_deserialize_row(&buf, &mut pos).unwrap();
            prop_assert_eq!(&back, row);
            prop_assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn vectorized_between_matches_row_between(
        vals in proptest::collection::vec(any::<i16>(), 1..400),
        a in any::<i16>(),
        b in any::<i16>(),
    ) {
        use hive::exec::expr::ExprNode;
        use hive::vector::expressions::{FilterLongColumnBetween, VectorExpression};
        use hive::vector::{ColumnVector, VectorizedRowBatch};

        let (lo, hi) = (a.min(b) as i64, a.max(b) as i64);
        let pred = ExprNode::Between {
            expr: Box::new(ExprNode::col(0)),
            lo: Box::new(ExprNode::lit(Value::Int(lo))),
            hi: Box::new(ExprNode::lit(Value::Int(hi))),
            negated: false,
        };
        let row_sel: Vec<usize> = vals
            .iter()
            .enumerate()
            .filter(|(_, v)| {
                pred.eval_predicate(&Row::new(vec![Value::Int(**v as i64)])).unwrap()
            })
            .map(|(i, _)| i)
            .collect();

        let n = vals.len();
        let mut batch = VectorizedRowBatch::new(&[DataType::Int], n).unwrap();
        if let ColumnVector::Long(c) = &mut batch.columns[0] {
            for (i, v) in vals.iter().enumerate() {
                c.vector[i] = *v as i64;
            }
        }
        batch.size = n;
        FilterLongColumnBetween { column: 0, lo, hi }.evaluate(&mut batch).unwrap();
        prop_assert_eq!(batch.iter_selected().collect::<Vec<_>>(), row_sel);
    }

    #[test]
    fn rcfile_round_trips_arbitrary_primitive_rows((types, rows) in rows_strategy()) {
        use hive::formats::rcfile::{RcFileReader, RcFileWriter};
        let schema = Schema::new(
            types
                .iter()
                .enumerate()
                .map(|(i, t)| hive::common::Field::new(format!("c{i}"), t.clone()))
                .collect(),
        );
        let dfs = small_dfs();
        let mut w: Box<dyn TableWriter> = Box::new(RcFileWriter::create(
            &dfs,
            "/p/rc",
            &schema,
            4 << 10,
            Compression::Snappy,
        ));
        for r in &rows {
            w.write_row(r).unwrap();
        }
        w.close().unwrap();
        let mut r = RcFileReader::open(&dfs, "/p/rc", &schema, None, None).unwrap();
        let mut back = Vec::new();
        while let Some(row) = r.next_row().unwrap() {
            back.push(row);
        }
        prop_assert_eq!(back, rows);
    }
}

// ---------------------------------------------------------------------------
// Differential row-vs-vector map-join harness: arbitrary build/probe tables
// (nulls, duplicate keys, empty sides) must produce byte-identical sorted
// results through the row-mode and vectorized map-join operators, and the
// vectorized run must actually have used the vectorized operator.
// ---------------------------------------------------------------------------

/// Join keys from a narrow per-type pool so duplicates, matches, misses and
/// NULLs all occur; NULL keys never match on either side.
fn join_key_strategy(dt: &DataType) -> BoxedStrategy<Value> {
    let non_null: BoxedStrategy<Value> = match dt {
        DataType::Int => (0i64..6).prop_map(Value::Int).boxed(),
        DataType::Boolean => any::<bool>().prop_map(Value::Boolean).boxed(),
        DataType::String => prop_oneof![
            Just(Value::String("a".into())),
            Just(Value::String("bb".into())),
            Just(Value::String("ccc".into())),
            Just(Value::String(String::new())),
        ]
        .boxed(),
        DataType::Timestamp => (0i64..4).prop_map(Value::Timestamp).boxed(),
        DataType::Double => prop_oneof![
            Just(Value::Double(0.0)),
            Just(Value::Double(1.5)),
            Just(Value::Double(-2.25)),
        ]
        .boxed(),
        _ => unreachable!("join-key types only"),
    };
    prop_oneof![4 => non_null, 1 => Just(Value::Null)].boxed()
}

fn join_tables_strategy() -> impl Strategy<Value = (DataType, Vec<Value>, Vec<Value>)> {
    let dt = prop_oneof![
        Just(DataType::Int),
        Just(DataType::Boolean),
        Just(DataType::String),
        Just(DataType::Timestamp),
        Just(DataType::Double),
    ];
    dt.prop_flat_map(|dt| {
        let build = proptest::collection::vec(join_key_strategy(&dt), 0..16);
        let probe = proptest::collection::vec(join_key_strategy(&dt), 1..120);
        (Just(dt), build, probe)
    })
}

fn join_session(
    build: &[Value],
    probe: &[Value],
    dt: &DataType,
    vectorize: bool,
) -> hive::HiveSession {
    let sql_type = match dt {
        DataType::Int => "BIGINT",
        DataType::Boolean => "BOOLEAN",
        DataType::String => "STRING",
        DataType::Timestamp => "TIMESTAMP",
        DataType::Double => "DOUBLE",
        _ => unreachable!(),
    };
    let mut hive = hive::HiveSession::in_memory();
    hive.set(
        hive::common::config::keys::VECTORIZED_MAPJOIN_ENABLED,
        if vectorize { "true" } else { "false" },
    );
    hive.execute(&format!(
        "CREATE TABLE build_t (k {sql_type}, name STRING) STORED AS orc"
    ))
    .unwrap();
    hive.load_rows(
        "build_t",
        build
            .iter()
            .enumerate()
            .map(|(i, k)| Row::new(vec![k.clone(), Value::String(format!("b{i}"))])),
    )
    .unwrap();
    hive.execute(&format!(
        "CREATE TABLE probe_t (k {sql_type}, id BIGINT) STORED AS orc"
    ))
    .unwrap();
    hive.load_rows(
        "probe_t",
        probe
            .iter()
            .enumerate()
            .map(|(i, k)| Row::new(vec![k.clone(), Value::Int(i as i64)])),
    )
    .unwrap();
    hive
}

fn sorted_rows(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort_by(|a, b| {
        for (x, y) in a.values().iter().zip(b.values()) {
            let c = x.sql_cmp(y);
            if c != std::cmp::Ordering::Equal {
                return c;
            }
        }
        std::cmp::Ordering::Equal
    });
    rows
}

// ---------------------------------------------------------------------------
// Differential cache harness: random tables and query batches must produce
// byte-identical sorted results and identical row counts whether the server
// caches are cold, warm (second run against the same server), disabled
// (`hive.io.cache.bytes=0`), or hammered from 4 client threads at once —
// always compared against a fresh single-use session per query.
// ---------------------------------------------------------------------------

/// A random cache workload: table shape plus a batch of parameterized
/// queries spanning sarg scans, group-bys, map-joins, and the
/// stats-answered path (which reads footers through the metadata cache).
fn cache_workload_strategy() -> impl Strategy<Value = (u32, u32, Vec<(usize, i64)>)> {
    (
        50u32..400,
        2u32..20,
        proptest::collection::vec((0usize..4, 0i64..400), 1..6),
    )
}

fn cache_query(template: usize, threshold: i64) -> String {
    match template {
        0 => format!("SELECT k, v FROM t WHERE v < {threshold}"),
        1 => "SELECT k, COUNT(*) AS n, SUM(v) AS sv FROM t GROUP BY k".to_string(),
        2 => format!("SELECT t.k, d.name FROM t JOIN d ON (t.k = d.key) WHERE t.v < {threshold}"),
        _ => "SELECT COUNT(*), MIN(v), MAX(v) FROM t".to_string(),
    }
}

/// Deterministic-clock builder for the differential harness; `cache_on`
/// false disables both cache tiers via the master knob.
fn cache_builder(cache_on: bool) -> hive::SessionBuilder {
    let b = hive::HiveSession::builder().knob(
        hive::common::config::knobs::EXEC_SIM_DETERMINISTIC_CPU,
        true,
    );
    if cache_on {
        b
    } else {
        b.set(hive::common::config::keys::IO_CACHE_BYTES, "0")
            .unwrap()
    }
}

fn load_cache_tables(hive: &mut hive::HiveSession, rows: u32, modulus: u32) {
    hive.execute("CREATE TABLE t (k BIGINT, v BIGINT, s STRING) STORED AS orc")
        .unwrap();
    hive.execute("CREATE TABLE d (key BIGINT, name STRING) STORED AS orc")
        .unwrap();
    hive.load_rows(
        "t",
        (0..rows as i64).map(|i| {
            Row::new(vec![
                Value::Int(i % modulus as i64),
                Value::Int(i),
                Value::String(format!("s{}", i % 7)),
            ])
        }),
    )
    .unwrap();
    hive.load_rows(
        "d",
        (0..modulus as i64).map(|i| Row::new(vec![Value::Int(i), Value::String(format!("d{i}"))])),
    )
    .unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn cache_cold_warm_and_concurrent_match_single_use_sessions(
        (rows, modulus, batch) in cache_workload_strategy(),
    ) {
        // Reference: a fresh single-use session per query — nothing shared,
        // nothing cached across statements.
        let expected: Vec<Vec<Row>> = batch
            .iter()
            .map(|&(t, th)| {
                let mut fresh = cache_builder(true).build().unwrap();
                load_cache_tables(&mut fresh, rows, modulus);
                sorted_rows(fresh.execute(&cache_query(t, th)).unwrap().rows)
            })
            .collect();

        for cache_on in [true, false] {
            let server = cache_builder(cache_on).build_server().unwrap();
            {
                let mut s = server.new_session();
                load_cache_tables(&mut s, rows, modulus);
                // Cold pass fills the caches; warm pass must serve from them
                // with identical rows.
                for pass in ["cold", "warm"] {
                    for (&(t, th), want) in batch.iter().zip(&expected) {
                        let got = sorted_rows(s.execute(&cache_query(t, th)).unwrap().rows);
                        prop_assert_eq!(
                            &got, want,
                            "{} pass diverged (cache_on={}) on {}",
                            pass, cache_on, cache_query(t, th)
                        );
                    }
                }
            }
            // Concurrent: 4 client threads replay the batch against the same
            // (now warm) server.
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    let srv = server.clone();
                    let batch = &batch;
                    let expected = &expected;
                    scope.spawn(move || {
                        for (&(t, th), want) in batch.iter().zip(expected) {
                            let got = sorted_rows(srv.execute(&cache_query(t, th)).unwrap().rows);
                            assert_eq!(
                                &got, want,
                                "concurrent run diverged (cache_on={cache_on}) on {}",
                                cache_query(t, th)
                            );
                        }
                    });
                }
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Plan-cache differential: the prepared-plan cache must be semantically
// invisible. A random batch of statements interleaved with table reloads
// (which move the DFS data watermark) and DDL (which moves the catalog
// generation) replays against two servers — plan cache on and off — and
// every statement must return identical rows on both. Each statement runs
// twice so repeats exercise the hit path, and hits are asserted to have
// actually happened whenever the batch contains a query.
// ---------------------------------------------------------------------------

/// Ops: 0..4 = the [`cache_query`] templates, 4 = reload table `t`,
/// 5 = unrelated DDL.
fn plan_cache_op_strategy() -> impl Strategy<Value = Vec<(usize, i64, u32)>> {
    proptest::collection::vec((0usize..6, 0i64..400, 20u32..150), 2..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn plan_cache_is_semantically_invisible(ops in plan_cache_op_strategy()) {
        let build = |on: bool| {
            let server = cache_builder(true)
                .set(
                    "hive.query.plan.cache.enabled",
                    if on { "true" } else { "false" },
                )
                .unwrap()
                .build_server()
                .unwrap();
            let mut s = server.new_session();
            load_cache_tables(&mut s, 120, 10);
            server
        };
        let cached = build(true);
        let plain = build(false);
        let mut queries = 0u64;
        for (i, &(op, th, rows)) in ops.iter().enumerate() {
            match op {
                4 => {
                    for srv in [&cached, &plain] {
                        let mut s = srv.new_session();
                        s.load_rows(
                            "t",
                            (0..rows as i64).map(|i| {
                                Row::new(vec![
                                    Value::Int(i % 9),
                                    Value::Int(i * 3),
                                    Value::String(format!("r{}", i % 4)),
                                ])
                            }),
                        )
                        .unwrap();
                    }
                }
                5 => {
                    for srv in [&cached, &plain] {
                        srv.execute(&format!("CREATE TABLE ddl_{i} (x BIGINT) STORED AS orc"))
                            .unwrap();
                    }
                }
                t => {
                    queries += 1;
                    let q = cache_query(t, th);
                    // Twice: the second run on the cached server is a
                    // guaranteed hit (query scratch writes do not move the
                    // data watermark).
                    for _ in 0..2 {
                        let got = sorted_rows(cached.execute(&q).unwrap().rows);
                        let want = sorted_rows(plain.execute(&q).unwrap().rows);
                        prop_assert_eq!(got, want, "cache on/off diverged on {}", q);
                    }
                }
            }
        }
        if queries > 0 {
            prop_assert!(
                cached.plan_cache().hits() >= queries,
                "every repeated statement should have hit ({} hits, {} queries)",
                cached.plan_cache().hits(),
                queries
            );
        }
        prop_assert_eq!(plain.plan_cache().hits() + plain.plan_cache().misses(), 0);
    }
}

// ---------------------------------------------------------------------------
// Differential row-vs-vector FULL-QUERY harness: random filter + expression
// + group-by pipelines over nullable data must produce identical results in
// batch-native and row mode, and the EXPLAIN ANALYZE profiles must agree on
// every comparable row count — scan rows, per-boundary logical rows, the
// whole reduce side, and the result cardinality.
// ---------------------------------------------------------------------------

/// One random full-query shape over `t (k BIGINT, v BIGINT, d DOUBLE,
/// s STRING)`: a WHERE template (0 = none) plus either a grouped aggregate
/// (over an int or string key) or an expression projection.
fn full_query(filter: usize, th: i64, shape: usize) -> String {
    let w = match filter {
        1 => format!(" WHERE v > {th}"),
        2 => format!(" WHERE v + k < {th}"),
        3 => format!(" WHERE v BETWEEN {th} AND {}", th + 250),
        4 => " WHERE d IS NOT NULL".to_string(),
        _ => String::new(),
    };
    match shape {
        0 => format!(
            "SELECT k, COUNT(*) AS n, SUM(v) AS sv, MIN(v) AS mn, MAX(v) AS mx, \
             AVG(d) AS ad FROM t{w} GROUP BY k"
        ),
        1 => format!("SELECT s, COUNT(*) AS n, SUM(v) AS sv FROM t{w} GROUP BY s"),
        _ => format!("SELECT k, v * 2 AS v2, v + k AS vk, d FROM t{w}"),
    }
}

/// Nullable rows for the full-query harness: narrow key domains so groups
/// collide, nulls in every column, doubles exact in binary.
fn full_query_rows_strategy() -> impl Strategy<Value = Vec<Row>> {
    let k = prop_oneof![4 => (0i64..8).prop_map(Value::Int), 1 => Just(Value::Null)];
    let v = prop_oneof![4 => (-500i64..500).prop_map(Value::Int), 1 => Just(Value::Null)];
    let d = prop_oneof![
        4 => (-64i32..64).prop_map(|x| Value::Double(x as f64 / 4.0)),
        1 => Just(Value::Null)
    ];
    let s = prop_oneof![
        4 => (0u8..5).prop_map(|x| Value::String(format!("g{x}"))),
        1 => Just(Value::Null)
    ];
    proptest::collection::vec(
        (k, v, d, s).prop_map(|(k, v, d, s)| Row::new(vec![k, v, d, s])),
        1..220,
    )
}

fn full_query_session(rows: &[Row], vectorize: bool) -> hive::HiveSession {
    let mut hive = hive::HiveSession::builder()
        .knob(
            hive::common::config::knobs::EXEC_SIM_DETERMINISTIC_CPU,
            true,
        )
        .build()
        .unwrap();
    hive.set(
        hive::common::config::keys::VECTORIZED_ENABLED,
        if vectorize { "true" } else { "false" },
    );
    hive.execute("CREATE TABLE t (k BIGINT, v BIGINT, d DOUBLE, s STRING) STORED AS orc")
        .unwrap();
    hive.load_rows("t", rows.iter().cloned()).unwrap();
    hive
}

/// The row counts a profile commits to, independent of operator naming:
/// scan rows, result rows, logical rows entering the first and leaving the
/// last map-side operator, and the entire reduce side (both modes run the
/// identical row-mode reduce graph, so it must match name-for-name).
#[allow(clippy::type_complexity)]
fn profile_row_counts(text: &str) -> (u64, u64, Vec<(u64, u64)>, Vec<(String, u64, u64)>) {
    let grab = |line: &str, key: &str| -> u64 {
        let at = line
            .find(key)
            .unwrap_or_else(|| panic!("no {key} in {line}"));
        line[at + key.len()..]
            .split(|c: char| !c.is_ascii_digit())
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    let mut scan_rows = 0;
    let mut result_rows = 0;
    let mut map_ops = Vec::new();
    let mut reduce_ops = Vec::new();
    let mut section = "";
    for line in text.lines() {
        if line.contains("result_rows=") {
            result_rows = grab(line, "result_rows=");
        } else if line.trim_start().starts_with("scan: rows=") {
            scan_rows += grab(line, "rows=");
        } else if line.contains("map operators:") {
            section = "map";
        } else if line.contains("reduce operators:") {
            section = "reduce";
        } else if line.contains("rows_in=") {
            let rows_in = grab(line, "rows_in=");
            let rows_out = grab(line, "rows_out=");
            match section {
                "map" => map_ops.push((rows_in, rows_out)),
                "reduce" => {
                    let name = line.trim_start().split(" rows_in=").next().unwrap();
                    reduce_ops.push((name.trim_end().to_string(), rows_in, rows_out));
                }
                _ => {}
            }
        }
    }
    (scan_rows, result_rows, map_ops, reduce_ops)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn vectorized_full_queries_match_row_mode(
        rows in full_query_rows_strategy(),
        filter in 0usize..5,
        th in -300i64..300,
        shape in 0usize..3,
    ) {
        let sql = full_query(filter, th, shape);

        let mut vec_s = full_query_session(&rows, true);
        let vec_rows = vec_s.execute(&sql).unwrap().rows;
        let vec_text = vec_s
            .execute(&format!("EXPLAIN ANALYZE {sql}"))
            .unwrap()
            .explain
            .unwrap();
        prop_assert!(
            vec_text.contains("Vector"),
            "query silently fell back to row mode:\n{vec_text}"
        );

        let mut row_s = full_query_session(&rows, false);
        let row_rows = row_s.execute(&sql).unwrap().rows;
        let row_text = row_s
            .execute(&format!("EXPLAIN ANALYZE {sql}"))
            .unwrap()
            .explain
            .unwrap();
        prop_assert!(!row_text.contains("Vector"), "{row_text}");

        prop_assert_eq!(
            sorted_rows(vec_rows),
            sorted_rows(row_rows),
            "results diverged on {}",
            sql
        );

        let (vscan, vres, vmap, vreduce) = profile_row_counts(&vec_text);
        let (rscan, rres, rmap, rreduce) = profile_row_counts(&row_text);
        prop_assert_eq!(vscan, rscan, "scan rows diverged on {}", sql);
        prop_assert_eq!(vres, rres, "result rows diverged on {}", sql);
        // Logical rows entering the map chain and leaving it must agree;
        // the chains differ structurally (fusion, bridge) in between.
        prop_assert_eq!(
            vmap.first().map(|o| o.0),
            rmap.first().map(|o| o.0),
            "map-entry rows diverged on {}\nvec:\n{}\nrow:\n{}",
            sql, vec_text, row_text
        );
        prop_assert_eq!(
            vmap.last().map(|o| o.1),
            rmap.last().map(|o| o.1),
            "map-exit rows diverged on {}\nvec:\n{}\nrow:\n{}",
            sql, vec_text, row_text
        );
        // Both modes run the identical row-mode reduce graph: every reduce
        // operator must report the same logical rows, name for name.
        prop_assert_eq!(
            vreduce, rreduce,
            "reduce-side profiles diverged on {}\nvec:\n{}\nrow:\n{}",
            sql, vec_text, row_text
        );
    }
}

// ---------------------------------------------------------------------------
// Differential row-vs-vector ACID harness: a random INSERT/UPDATE/DELETE
// history against a transactional table, then a random filter / expression /
// group-by / map-join query, run batch-native and in row mode. Both modes
// must return identical sorted rows, identical profile row counts, and
// identical `acid:` merge accounting — before AND after major compaction.
// ---------------------------------------------------------------------------

/// One random DML statement, parameterized so inserts collide with existing
/// keys, updates sometimes match nothing, and deletes span ranges that may
/// cross base and delta files.
fn acid_dml(op: usize, a: i64, b: i64) -> String {
    match op {
        0 => format!(
            "INSERT INTO t VALUES ({}, {}), ({}, {})",
            a % 8,
            b,
            (a + 3) % 8,
            b + 7
        ),
        1 => format!(
            "UPDATE t SET v = v + {} WHERE k = {}",
            (b % 97) + 100,
            a % 8
        ),
        _ => format!("DELETE FROM t WHERE v BETWEEN {} AND {}", b, b + (a % 120)),
    }
}

/// A random query over the ACID table `t (k, v)` joined (shape 2) against
/// the plain dimension `d (key, name)`.
fn acid_query(filter: usize, th: i64, shape: usize) -> String {
    let w = |p: &str| match filter {
        1 => format!(" WHERE {p}v > {th}"),
        2 => format!(" WHERE {p}v + {p}k < {th}"),
        3 => format!(" WHERE {p}v BETWEEN {th} AND {}", th + 250),
        _ => String::new(),
    };
    match shape {
        0 => format!(
            "SELECT k, COUNT(*) AS n, SUM(v) AS sv, MIN(v) AS mn, MAX(v) AS mx \
             FROM t{} GROUP BY k",
            w("")
        ),
        1 => format!("SELECT k, v * 2 AS v2, v + k AS vk FROM t{}", w("")),
        _ => format!(
            "SELECT d.name, COUNT(*) AS n, SUM(t.v) AS sv FROM t \
             JOIN d ON (t.k = d.key){} GROUP BY d.name",
            w("t.")
        ),
    }
}

fn acid_diff_session(rows: &[(i64, i64)], vectorize: bool) -> hive::HiveSession {
    let mut hive = hive::HiveSession::builder()
        .knob(
            hive::common::config::knobs::EXEC_SIM_DETERMINISTIC_CPU,
            true,
        )
        .build()
        .unwrap();
    hive.set(
        hive::common::config::keys::VECTORIZED_ENABLED,
        if vectorize { "true" } else { "false" },
    );
    hive.execute("CREATE TABLE t (k BIGINT, v BIGINT) STORED AS orc")
        .unwrap();
    hive.load_rows(
        "t",
        rows.iter()
            .map(|&(k, v)| Row::new(vec![Value::Int(k), Value::Int(v)])),
    )
    .unwrap();
    hive.execute("CREATE TABLE d (key BIGINT, name STRING) STORED AS orc")
        .unwrap();
    hive.load_rows(
        "d",
        (0..8i64).map(|i| Row::new(vec![Value::Int(i), Value::String(format!("d{i}"))])),
    )
    .unwrap();
    hive
}

/// The `acid:` lines of a profile — merge-on-read accounting (snapshot
/// generation, delta files, delta rows, masked rows) that must be
/// mode-independent.
fn acid_profile_lines(text: &str) -> Vec<String> {
    text.lines()
        .filter(|l| l.trim_start().starts_with("acid:"))
        .map(str::to_string)
        .collect()
}

/// One differential checkpoint: run `sql` in both sessions and compare
/// rows, profile row counts, and acid accounting.
fn acid_diff_check(
    vec_s: &mut hive::HiveSession,
    row_s: &mut hive::HiveSession,
    sql: &str,
    bridges: usize,
    phase: &str,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let vec_rows = vec_s.execute(sql).unwrap().rows;
    let vec_text = vec_s
        .execute(&format!("EXPLAIN ANALYZE {sql}"))
        .unwrap()
        .explain
        .unwrap();
    prop_assert!(
        vec_text.contains("Vector"),
        "{phase}: ACID query fell back to row mode:\n{vec_text}"
    );
    // ACID-ness must not add fallback crossings: aggregation chains end in
    // a vector sink (zero bridges); a map-only projection crosses exactly
    // the one bridge into the row-mode FileSink that plain tables cross.
    prop_assert_eq!(
        vec_text.matches("RowBridge").count(),
        bridges,
        "{}: unexpected bridge count on {}:\n{}",
        phase,
        sql,
        vec_text
    );
    let row_rows = row_s.execute(sql).unwrap().rows;
    let row_text = row_s
        .execute(&format!("EXPLAIN ANALYZE {sql}"))
        .unwrap()
        .explain
        .unwrap();
    prop_assert!(!row_text.contains("Vector"), "{row_text}");

    prop_assert_eq!(
        sorted_rows(vec_rows),
        sorted_rows(row_rows),
        "{}: results diverged on {}",
        phase,
        sql
    );
    let (vscan, vres, vmap, vreduce) = profile_row_counts(&vec_text);
    let (rscan, rres, rmap, rreduce) = profile_row_counts(&row_text);
    prop_assert_eq!(vscan, rscan, "{}: scan rows diverged on {}", phase, sql);
    prop_assert_eq!(vres, rres, "{}: result rows diverged on {}", phase, sql);
    prop_assert_eq!(
        vmap.first().map(|o| o.0),
        rmap.first().map(|o| o.0),
        "{}: map-entry rows diverged on {}\nvec:\n{}\nrow:\n{}",
        phase,
        sql,
        vec_text,
        row_text
    );
    prop_assert_eq!(
        vmap.last().map(|o| o.1),
        rmap.last().map(|o| o.1),
        "{}: map-exit rows diverged on {}\nvec:\n{}\nrow:\n{}",
        phase,
        sql,
        vec_text,
        row_text
    );
    prop_assert_eq!(
        vreduce,
        rreduce,
        "{}: reduce-side profiles diverged on {}\nvec:\n{}\nrow:\n{}",
        phase,
        sql,
        vec_text,
        row_text
    );
    // Batch-wise delta merge and selected[]-level masking must account
    // logical rows exactly like the row-at-a-time path.
    prop_assert_eq!(
        acid_profile_lines(&vec_text),
        acid_profile_lines(&row_text),
        "{}: acid merge accounting diverged on {}\nvec:\n{}\nrow:\n{}",
        phase,
        sql,
        vec_text,
        row_text
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn vectorized_acid_full_queries_match_row_mode(
        base in proptest::collection::vec((0i64..8, -500i64..500), 0..120),
        history in proptest::collection::vec(
            (0usize..3, 0i64..1000, -400i64..400), 1..6),
        filter in 0usize..4,
        th in -300i64..300,
        shape in 0usize..3,
    ) {
        let sql = acid_query(filter, th, shape);
        let mut vec_s = acid_diff_session(&base, true);
        let mut row_s = acid_diff_session(&base, false);

        // Replay the same DML history against both sessions; the affected
        // row counts must already agree statement by statement.
        for &(op, a, b) in &history {
            let dml = acid_dml(op, a, b);
            let vec_n = vec_s.execute(&dml).unwrap().rows;
            let row_n = row_s.execute(&dml).unwrap().rows;
            prop_assert_eq!(vec_n, row_n, "DML disagreed on {}", dml);
        }
        let bridges = if shape == 1 { 1 } else { 0 };
        acid_diff_check(&mut vec_s, &mut row_s, &sql, bridges, "pre-compaction")?;

        for s in [&mut vec_s, &mut row_s] {
            s.execute("ALTER TABLE t COMPACT 'major'").unwrap();
        }
        acid_diff_check(&mut vec_s, &mut row_s, &sql, bridges, "post-compaction")?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn vectorized_mapjoin_matches_row_mapjoin(
        (dt, build, probe) in join_tables_strategy(),
    ) {
        for join in ["JOIN", "LEFT JOIN"] {
            let sql = format!(
                "SELECT probe_t.id, probe_t.k, build_t.name FROM probe_t \
                 {join} build_t ON (probe_t.k = build_t.k)"
            );
            let mut vec_s = join_session(&build, &probe, &dt, true);
            let vec_rows = vec_s.execute(&sql).unwrap().rows;
            let analyze = vec_s
                .execute(&format!("EXPLAIN ANALYZE {sql}"))
                .unwrap()
                .explain
                .expect("EXPLAIN ANALYZE sets explain text");
            prop_assert!(
                analyze.contains("VectorMapJoin"),
                "{join}: plan silently fell back to row mode:\n{analyze}"
            );
            let mut row_s = join_session(&build, &probe, &dt, false);
            let row_rows = row_s.execute(&sql).unwrap().rows;
            prop_assert_eq!(
                sorted_rows(vec_rows),
                sorted_rows(row_rows),
                "{} over {:?} build={} probe={}",
                join, dt, build.len(), probe.len()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Differential skipping matrix: ORC bloom filters and HAIL-style per-replica
// sort orders are *pure skipping* — they may change what gets read, never
// what comes out. Random data and random point/range predicates must return
// identical results under all four knob combos, on clean files, on files
// with a salvaged-corrupt stripe, and through an ACID delete/update overlay
// (delete masks stay ordinal-aligned however many groups bloom prunes).
// ---------------------------------------------------------------------------

/// All four skipping-knob combinations: (bloom filters, replica sort).
const SKIP_COMBOS: [(bool, bool); 4] = [(false, false), (true, false), (false, true), (true, true)];

/// Small DFS block for the skipping matrix: with wide rows and ~6 KB
/// stripes, block padding gives every stripe a block of its own, so the
/// corrupt-stripe matrix can tamper one stripe without collateral damage.
const SKIP_BLOCK: u64 = 8192;

/// Wide payload string keyed by `k` — wide enough that an encoded stripe
/// exceeds half a DFS block, so no two stripes ever share one.
fn skip_str(k: i64) -> String {
    format!("s{k:0>120}")
}

/// One random skipping query over `t (k BIGINT, v BIGINT, s STRING)`:
/// point lookups and IN lists (bloom territory), a range (min/max stats
/// territory), and a grouped aggregate on top of a point predicate.
fn skip_query(shape: usize, a: i64, b: i64) -> String {
    match shape {
        0 => format!("SELECT k, v, s FROM t WHERE k = {}", a % 240),
        1 => format!("SELECT k, v FROM t WHERE s = '{}'", skip_str(a % 240)),
        2 => format!("SELECT k, v FROM t WHERE v BETWEEN {b} AND {}", b + 60),
        3 => format!(
            "SELECT k, COUNT(*) AS n, SUM(v) AS sv FROM t WHERE k = {} GROUP BY k",
            a % 240
        ),
        _ => format!(
            "SELECT k, v FROM t WHERE k IN ({}, {}, {})",
            a % 240,
            (a + 13) % 240,
            (a + 29) % 240
        ),
    }
}

/// Row-mode oracle for `skip_query`, evaluated directly over the base rows
/// (minus any salvage-dropped prefix): what every knob combo must return.
fn skip_oracle(shape: usize, a: i64, b: i64, rows: &[(i64, i64)]) -> Vec<Row> {
    let key = a % 240;
    let kv = |&(k, v): &(i64, i64)| Row::new(vec![Value::Int(k), Value::Int(v)]);
    match shape {
        0 => rows
            .iter()
            .filter(|r| r.0 == key)
            .map(|&(k, v)| {
                Row::new(vec![
                    Value::Int(k),
                    Value::Int(v),
                    Value::String(skip_str(k)),
                ])
            })
            .collect(),
        1 => rows.iter().filter(|r| r.0 == key).map(kv).collect(),
        2 => rows
            .iter()
            .filter(|r| r.1 >= b && r.1 <= b + 60)
            .map(kv)
            .collect(),
        3 => {
            let hits: Vec<i64> = rows.iter().filter(|r| r.0 == key).map(|r| r.1).collect();
            if hits.is_empty() {
                vec![]
            } else {
                vec![Row::new(vec![
                    Value::Int(key),
                    Value::Int(hits.len() as i64),
                    Value::Int(hits.iter().sum()),
                ])]
            }
        }
        _ => {
            let ks = [a % 240, (a + 13) % 240, (a + 29) % 240];
            rows.iter().filter(|r| ks.contains(&r.0)).map(kv).collect()
        }
    }
}

/// Session for one knob combo. The skipping knobs are set *before* the
/// load so the writer sees them; small stripes and groups give even tiny
/// tables several of each.
fn skip_session(rows: &[(i64, i64)], bloom: bool, replica: bool) -> hive::HiveSession {
    use hive::common::config::keys;
    let mut hive = hive::HiveSession::builder()
        .knob(
            hive::common::config::knobs::EXEC_SIM_DETERMINISTIC_CPU,
            true,
        )
        .dfs_config(DfsConfig {
            block_size: SKIP_BLOCK,
            replication: 3,
            nodes: 10,
        })
        .build()
        .unwrap();
    // ~40 wide rows per stripe, encoded well past half a block, so block
    // padding deterministically gives every stripe its own block. Direct
    // string encoding keeps stripe sizes independent of key collisions.
    hive.set(keys::ORC_STRIPE_SIZE, "12000");
    hive.set(keys::ORC_ROW_INDEX_STRIDE, "25");
    hive.set(keys::ORC_DICT_THRESHOLD, "0.0");
    hive.set(
        keys::ORC_BLOOM_FILTER_COLUMNS,
        if bloom { "k,s" } else { "" },
    );
    hive.set(
        keys::ORC_REPLICA_SORT_COLUMNS,
        if replica { "k,v" } else { "" },
    );
    hive.execute("CREATE TABLE t (k BIGINT, v BIGINT, s STRING) STORED AS orc")
        .unwrap();
    hive.load_rows(
        "t",
        rows.iter().map(|&(k, v)| {
            Row::new(vec![
                Value::Int(k),
                Value::Int(v),
                Value::String(skip_str(k)),
            ])
        }),
    )
    .unwrap();
    hive
}

/// Total `salvaged=` rows across a profile's scan lines (0 when absent).
fn salvaged_rows(text: &str) -> u64 {
    text.lines()
        .filter_map(|l| {
            let l = l.trim_start();
            if !l.starts_with("scan:") {
                return None;
            }
            let at = l.find("salvaged=")?;
            l[at + 9..]
                .split(|c: char| !c.is_ascii_digit())
                .next()?
                .parse::<u64>()
                .ok()
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn skipping_knobs_never_change_results(
        rows in proptest::collection::vec((0i64..240, -500i64..500), 120..360),
        shape in 0usize..5,
        a in 0i64..1000,
        b in -400i64..400,
    ) {
        let sql = skip_query(shape, a, b);
        let expect = sorted_rows(skip_oracle(shape, a, b, &rows));
        for (bloom, replica) in SKIP_COMBOS {
            let mut s = skip_session(&rows, bloom, replica);
            let got = sorted_rows(s.execute(&sql).unwrap().rows);
            let text = s
                .execute(&format!("EXPLAIN ANALYZE {sql}"))
                .unwrap()
                .explain
                .unwrap();
            prop_assert_eq!(
                &got, &expect,
                "results diverged (bloom={} replica={}) on {}\n{}",
                bloom, replica, sql, text
            );
            // Sorted variants must be picked whenever the predicate hits a
            // sort column — every shape but the string lookup (s is not a
            // sort column, so the planner has nothing to offer the DFS).
            if replica && shape != 1 {
                prop_assert!(
                    text.contains("replica: "),
                    "no replica choice under {}:\n{}",
                    sql, text
                );
            }
            if !replica {
                prop_assert!(!text.contains("replica: "), "{}", text);
            }
            if !bloom {
                prop_assert!(!text.contains("skip: "), "{}", text);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn skipping_knobs_agree_on_salvaged_corruption(
        rows in proptest::collection::vec((0i64..240, -500i64..500), 160..320),
        shape in 0usize..5,
        a in 0i64..1000,
        b in -400i64..400,
    ) {
        let sql = skip_query(shape, a, b);
        let mut baseline: Option<(Vec<Row>, u64, u64)> = None;
        for (bloom, replica) in SKIP_COMBOS {
            let mut s = skip_session(&rows, bloom, replica);
            // Salvage is physical and per copy: the sorted replicas lay
            // rows out differently, so replica selection is turned off to
            // make every combo read the tampered base copy.
            s.set(hive::common::config::keys::ORC_SKIP_CORRUPT, "true");
            s.set(hive::common::config::keys::ORC_REPLICA_SELECTION, "false");
            let parts: Vec<String> = s
                .dfs()
                .list("/warehouse/t/")
                .into_iter()
                .filter(|p| p.contains("part-"))
                .collect();
            prop_assert_eq!(parts.len(), 1, "expected one part file, got {:?}", parts);
            let (first_byte, s0_nrows) = {
                let r = OrcReader::open(s.dfs(), &parts[0], OrcReadOptions::default()).unwrap();
                let infos = r.stripe_infos();
                prop_assert!(infos.len() >= 2, "need >= 2 stripes, got {}", infos.len());
                // Block padding must have isolated stripe 0 in its own
                // block — the whole corrupt-matrix design rests on it.
                prop_assert_eq!(
                    (infos[0].offset + infos[0].total_len() - 1) / SKIP_BLOCK,
                    infos[0].offset / SKIP_BLOCK,
                    "stripe 0 crosses a block boundary"
                );
                prop_assert!(
                    infos[1].offset / SKIP_BLOCK > infos[0].offset / SKIP_BLOCK,
                    "stripes 0 and 1 share a block"
                );
                (infos[0].offset, infos[0].nrows)
            };
            // One flipped byte fails the whole block's CRC: every read of
            // stripe 0 now errors and salvage drops the entire stripe.
            s.dfs().corrupt_stored(&parts[0], first_byte, 0x5a).unwrap();

            let got = sorted_rows(s.execute(&sql).unwrap().rows);
            let text = s
                .execute(&format!("EXPLAIN ANALYZE {sql}"))
                .unwrap()
                .explain
                .unwrap();
            let salvaged = salvaged_rows(&text);
            // Whether stripe 0 was stats-pruned (salvaged=0, had no
            // matches) or salvaged away, the surviving answer is exactly
            // the oracle over the rows after the dropped prefix.
            let expect = sorted_rows(skip_oracle(shape, a, b, &rows[s0_nrows as usize..]));
            prop_assert_eq!(
                &got, &expect,
                "salvaged results diverged (bloom={} replica={}) on {}\n{}",
                bloom, replica, sql, text
            );
            match &baseline {
                None => baseline = Some((got, salvaged, s0_nrows)),
                Some((rows0, salvaged0, nrows0)) => {
                    prop_assert_eq!(&got, rows0, "combos disagreed on {}", sql);
                    prop_assert_eq!(
                        salvaged, *salvaged0,
                        "salvage accounting diverged (bloom={} replica={}) on {}\n{}",
                        bloom, replica, sql, text
                    );
                    prop_assert_eq!(
                        s0_nrows, *nrows0,
                        "stripe-0 row boundary moved between combos"
                    );
                }
            }
        }
    }
}

/// One random DML statement over `t (k, v, s)`; `s` stays keyed by `k` so
/// the string point-lookup shape remains meaningful after updates.
fn skip_dml(op: usize, a: i64, b: i64) -> String {
    let k1 = a % 240;
    let k2 = (a + 31) % 240;
    match op {
        0 => format!(
            "INSERT INTO t VALUES ({k1}, {b}, '{}'), ({k2}, {}, '{}')",
            skip_str(k1),
            b + 7,
            skip_str(k2)
        ),
        1 => format!("UPDATE t SET v = v + {} WHERE k = {}", (b % 97) + 100, k1),
        _ => format!("DELETE FROM t WHERE v BETWEEN {b} AND {}", b + (a % 120)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn skipping_knobs_never_change_acid_results(
        rows in proptest::collection::vec((0i64..240, -500i64..500), 80..200),
        history in proptest::collection::vec(
            (0usize..3, 0i64..1000, -400i64..400), 1..5),
        shape in 0usize..5,
        a in 0i64..1000,
        b in -400i64..400,
    ) {
        let sql = skip_query(shape, a, b);
        let mut baseline: Option<(Vec<u64>, Vec<Row>, Vec<Row>)> = None;
        for (bloom, replica) in SKIP_COMBOS {
            let mut s = skip_session(&rows, bloom, replica);
            let dml_counts: Vec<u64> = history
                .iter()
                .map(|&(op, da, db)| s.execute(&skip_dml(op, da, db)).unwrap().rows.len() as u64)
                .collect();
            let got = sorted_rows(s.execute(&sql).unwrap().rows);
            let text = s
                .execute(&format!("EXPLAIN ANALYZE {sql}"))
                .unwrap()
                .explain
                .unwrap();
            // Merge-on-read pins every file to the base copy: delete masks
            // are keyed to variant 0's row ordinals, so replica selection
            // must sit out ACID reads entirely.
            prop_assert!(
                !text.contains("replica: "),
                "replica selection leaked into an ACID read:\n{}",
                text
            );
            s.execute("ALTER TABLE t COMPACT 'major'").unwrap();
            let post = sorted_rows(s.execute(&sql).unwrap().rows);
            prop_assert_eq!(
                &post, &got,
                "compaction changed results (bloom={} replica={}) on {}",
                bloom, replica, sql
            );
            match &baseline {
                None => baseline = Some((dml_counts, got, post)),
                Some((counts0, rows0, post0)) => {
                    prop_assert_eq!(
                        &dml_counts, counts0,
                        "DML row counts diverged (bloom={} replica={})",
                        bloom, replica
                    );
                    prop_assert_eq!(
                        &got, rows0,
                        "ACID results diverged (bloom={} replica={}) on {}\n{}",
                        bloom, replica, sql, text
                    );
                    prop_assert_eq!(&post, post0, "post-compaction divergence on {}", sql);
                }
            }
        }
    }
}
