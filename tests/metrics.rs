//! Observability integration suite: metrics determinism across
//! worker-thread counts, `EXPLAIN ANALYZE` golden output, knob-registry
//! error reporting, the `--metrics-json` schema, and the generated README
//! knob table.
//!
//! Regenerate goldens with `UPDATE_GOLDENS=1 cargo test --test metrics`.

use hive::common::config::{knob_table_markdown, knobs};
use hive::common::{HiveError, Row, Value};
use hive::obs::json;
use hive::HiveSession;

/// A session pinned to the deterministic clock and a fixed worker count.
fn session(threads: u64) -> HiveSession {
    HiveSession::builder()
        .knob(knobs::EXEC_SIM_DETERMINISTIC_CPU, true)
        .knob(knobs::EXEC_WORKER_THREADS, threads)
        .build()
        .unwrap()
}

/// TPC-H-style pair: a fact table and a dimension joined on `cust`.
fn load_tpch_style(hive: &mut HiveSession) {
    hive.execute("CREATE TABLE orders (okey BIGINT, cust BIGINT, total DOUBLE) STORED AS orc")
        .unwrap();
    hive.load_rows(
        "orders",
        (0..4000).map(|i| {
            Row::new(vec![
                Value::Int(i),
                Value::Int(i % 100),
                Value::Double((i % 500) as f64 / 4.0),
            ])
        }),
    )
    .unwrap();
    hive.execute("CREATE TABLE customer (cust BIGINT, name STRING) STORED AS orc")
        .unwrap();
    hive.load_rows(
        "customer",
        (0..100).map(|i| Row::new(vec![Value::Int(i), Value::String(format!("cust-{i:03}"))])),
    )
    .unwrap();
}

const JOIN_AGG: &str = "SELECT customer.name, COUNT(*) AS n, SUM(orders.total) AS revenue \
     FROM orders JOIN customer ON (orders.cust = customer.cust) \
     GROUP BY customer.name ORDER BY customer.name";

/// Run a fixed statement sequence and return the final snapshot JSON.
fn snapshot_json(threads: u64) -> String {
    let mut hive = session(threads);
    load_tpch_style(&mut hive);
    let r = hive.execute(JOIN_AGG).unwrap();
    assert_eq!(r.rows.len(), 100);
    hive.execute("SELECT cust, COUNT(*) FROM orders WHERE total > 100.0 GROUP BY cust")
        .unwrap();
    hive.metrics_snapshot().to_json().render_pretty()
}

#[test]
fn metrics_snapshot_is_byte_identical_across_worker_thread_counts() {
    let one = snapshot_json(1);
    let eight = snapshot_json(8);
    assert_eq!(one, eight, "snapshot depends on worker-thread count");
    // And across repeated runs at the same width.
    assert_eq!(one, snapshot_json(1));
}

#[test]
fn metrics_snapshot_has_the_expected_counters() {
    let mut hive = session(2);
    load_tpch_style(&mut hive);
    hive.execute(JOIN_AGG).unwrap();
    let snap = hive.metrics_snapshot();
    assert!(snap.counter("query.count", &[]).unwrap() >= 1);
    assert!(snap.counter("exec.rows_out", &[]).unwrap() > 0);
    assert!(snap.counter("exec.task_attempts", &[]).unwrap() > 0);
    assert!(snap.counter("dfs.bytes_read", &[]).unwrap() > 0);
    assert!(snap.gauge("exec.sim_total_s", &[]).unwrap() > 0.0);
    assert!(snap.histogram("job.sim_total_s", &[]).unwrap().count > 0);
    // Per-operator counters are labeled by job/phase/op.
    assert!(
        snap.counters
            .keys()
            .any(|k| k.name == "operator.rows_in" && k.labels.contains_key("phase")),
        "no labeled operator counters in snapshot"
    );
}

#[test]
fn metrics_json_validates_against_checked_in_schema() {
    let text = snapshot_json(2);
    let value = json::parse(&text).expect("snapshot JSON parses");
    let schema =
        json::parse(include_str!("../results/metrics.schema.json")).expect("schema parses");
    json::validate(&value, &schema).expect("snapshot matches results/metrics.schema.json");
}

fn assert_golden(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {name} ({e}); run UPDATE_GOLDENS=1 cargo test --test metrics")
    });
    assert_eq!(
        actual, expected,
        "golden {name} drifted; run UPDATE_GOLDENS=1 cargo test --test metrics to regenerate"
    );
}

/// `EXPLAIN ANALYZE` output for the query under a fixed worker count; must
/// be byte-identical across widths before it can be a golden.
fn analyze_text(sql: &str, reduce_side_join: bool) -> String {
    analyze_text_conf(sql, move |hive| {
        if reduce_side_join {
            hive.try_set("hive.auto.convert.join", "false").unwrap();
        }
    })
}

/// Like [`analyze_text`] but with an arbitrary knob setup per session.
fn analyze_text_conf(sql: &str, setup: impl Fn(&mut HiveSession)) -> String {
    let mut texts = Vec::new();
    for threads in [1u64, 4] {
        let mut hive = session(threads);
        setup(&mut hive);
        load_tpch_style(&mut hive);
        let r = hive.execute(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
        texts.push(r.explain.expect("EXPLAIN ANALYZE sets explain text"));
    }
    assert_eq!(
        texts[0], texts[1],
        "EXPLAIN ANALYZE differs across worker-thread counts"
    );
    texts.pop().unwrap()
}

#[test]
fn explain_analyze_correlation_optimized_golden() {
    // Join key == group key: the Correlation Optimizer collapses the join
    // and the aggregation into one reduce phase (reduce-side join forced so
    // the correlation applies).
    let text = analyze_text(
        "SELECT orders.cust, COUNT(*) AS n, SUM(orders.total) AS rev \
         FROM orders JOIN customer ON (orders.cust = customer.cust) \
         GROUP BY orders.cust ORDER BY orders.cust",
        true,
    );
    assert!(text.contains("== Runtime Profile =="), "{text}");
    assert!(text.contains("rows_in="), "{text}");
    assert_golden("explain_analyze_correlation.txt", &text);
}

#[test]
fn explain_analyze_vectorized_golden() {
    // Vectorized scan + filter + aggregate over ORC.
    let text = analyze_text(
        "SELECT cust, COUNT(*) AS n, SUM(total) AS rev FROM orders \
         WHERE total > 50.0 GROUP BY cust ORDER BY cust",
        false,
    );
    assert!(text.contains("scan:"), "{text}");
    assert!(text.contains("selected_density="), "{text}");
    assert_golden("explain_analyze_vectorized.txt", &text);
}

#[test]
fn explain_analyze_vectorized_mapjoin_golden() {
    // The map-join converts (small dimension side) and vectorizes: the
    // runtime profile must show the VectorMapJoin operator with its
    // probe-batch counters, byte-identical at both worker widths.
    let text = analyze_text(JOIN_AGG, false);
    assert!(text.contains("VectorMapJoin[Inner]"), "{text}");
    assert!(text.contains("probe_batches="), "{text}");
    assert!(text.contains("build_rows="), "{text}");
    assert_golden("explain_analyze_vector_mapjoin.txt", &text);
}

/// Like [`analyze_text_conf`] but commits ACID DML against `orders` first —
/// a delta (two inserted rows that survive the probe's filter) and a delete
/// mask over the base file — so the profiled scan merges on read.
fn analyze_acid_text(sql: &str, setup: impl Fn(&mut HiveSession)) -> String {
    let mut texts = Vec::new();
    for threads in [1u64, 4] {
        let mut hive = session(threads);
        setup(&mut hive);
        load_tpch_style(&mut hive);
        hive.execute("INSERT INTO orders VALUES (9000, 7, 60.5), (9001, 8, 72.25)")
            .unwrap();
        hive.execute("DELETE FROM orders WHERE okey < 40").unwrap();
        let r = hive.execute(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
        texts.push(r.explain.expect("EXPLAIN ANALYZE sets explain text"));
    }
    assert_eq!(
        texts[0], texts[1],
        "EXPLAIN ANALYZE differs across worker-thread counts"
    );
    texts.pop().unwrap()
}

/// ACID merge-on-read scan goldens, both modes. The `acid:` delta-merge
/// lines count LOGICAL rows (post-mask, post-selection), so batch-wise
/// merging must render them byte-identically to the row-at-a-time path.
#[test]
fn explain_analyze_acid_scan_goldens() {
    const SQL: &str = "SELECT cust, COUNT(*) AS n, SUM(total) AS rev FROM orders \
         WHERE total > 50.0 GROUP BY cust ORDER BY cust";
    let vec_text = analyze_acid_text(SQL, |_| {});
    assert!(
        vec_text.contains("acid: snapshot_gen=2 delta_files=1"),
        "{vec_text}"
    );
    assert!(vec_text.contains("Vector"), "{vec_text}");
    assert!(!vec_text.contains("RowBridge"), "{vec_text}");
    let row_text = analyze_acid_text(SQL, |hive| {
        hive.try_set("hive.vectorized.execution.acid.enabled", "false")
            .unwrap();
    });
    assert!(
        !row_text.contains("Vector") && !row_text.contains("RowBridge"),
        "{row_text}"
    );
    // The merge accounting is mode-independent by construction: identical
    // acid lines, whether deletes were dropped row by row or unselected
    // from batches by file ordinal.
    let acid_lines = |t: &str| {
        t.lines()
            .filter(|l| l.contains("acid"))
            .map(str::to_string)
            .collect::<Vec<_>>()
    };
    assert!(!acid_lines(&vec_text).is_empty(), "{vec_text}");
    assert_eq!(acid_lines(&vec_text), acid_lines(&row_text));
    assert_golden("explain_analyze_acid_vectorized.txt", &vec_text);
    assert_golden("explain_analyze_acid_row_mode.txt", &row_text);
}

/// `EXPLAIN ANALYZE` over a scattered fact table with the skipping knobs
/// set per `on`: every stripe's min/max spans nearly the whole key domain
/// (stats cannot prune a point lookup) but each key lives in only a few
/// index groups (bloom filters and a key-sorted replica can).
fn analyze_skipping_text(sql: &str, on: bool) -> String {
    use hive::common::config::keys;
    let mut texts = Vec::new();
    for threads in [1u64, 4] {
        let mut hive = session(threads);
        if on {
            hive.set(keys::ORC_BLOOM_FILTER_COLUMNS, "vkey");
            hive.set(keys::ORC_REPLICA_SORT_COLUMNS, "okey");
        }
        hive.set(keys::ORC_STRIPE_SIZE, "4000");
        hive.set(keys::ORC_ROW_INDEX_STRIDE, "100");
        hive.execute("CREATE TABLE fact (okey BIGINT, vkey BIGINT, total DOUBLE) STORED AS orc")
            .unwrap();
        hive.load_rows(
            "fact",
            (0..4000i64).map(|i| {
                Row::new(vec![
                    Value::Int(i % 509),
                    Value::Int((i * 7919 + (i / 509) * 101) % 509),
                    Value::Double((i % 400) as f64 / 4.0),
                ])
            }),
        )
        .unwrap();
        let r = hive.execute(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
        texts.push(r.explain.expect("EXPLAIN ANALYZE sets explain text"));
    }
    assert_eq!(
        texts[0], texts[1],
        "EXPLAIN ANALYZE differs across worker-thread counts"
    );
    texts.pop().unwrap()
}

/// Aggressive-skipping goldens. The range on `okey` is served by the
/// okey-sorted replica (min/max pruning over clustered data); the point
/// lookup on the scattered `vkey` is exactly what min/max statistics are
/// helpless against, so the surviving groups fall to the bloom filters.
/// With the knobs on, the profile pins the new `skip:` and `replica:`
/// lines; with the knobs off, the very same query renders the
/// pre-skipping profile with not a byte of difference — no conditional
/// lines leak.
#[test]
fn explain_analyze_skipping_goldens() {
    const SQL: &str =
        "SELECT okey, vkey, total FROM fact WHERE okey BETWEEN 100 AND 300 AND vkey = 7";
    let on = analyze_skipping_text(SQL, true);
    assert!(on.contains("replica: "), "no replica choice in:\n{on}");
    assert!(
        on.contains("skip: ") && on.contains(" bloom_corrupt=0"),
        "no bloom skipping in:\n{on}"
    );
    assert_golden("explain_analyze_skipping.txt", &on);

    let off = analyze_skipping_text(SQL, false);
    assert!(
        !off.contains("skip: ") && !off.contains("replica: "),
        "knob-off profile grew skipping lines:\n{off}"
    );
    assert_golden("explain_analyze_skipping_off.txt", &off);
}

#[test]
fn vectorization_knob_off_matches_pre_vectorization_engine() {
    // `hive.vectorized.execution.enabled=false` must reproduce the row-mode
    // engine byte-for-byte. This golden was captured before the batch-native
    // execution redesign, so matching it proves the knob restores the
    // pre-vectorization profile exactly (no Vector* operators, no bridge).
    let text = analyze_text_conf(
        "SELECT cust, COUNT(*) AS n, SUM(total) AS rev FROM orders \
         WHERE total > 50.0 GROUP BY cust ORDER BY cust",
        |hive| {
            hive.try_set("hive.vectorized.execution.enabled", "false")
                .unwrap();
        },
    );
    assert!(!text.contains("Vector"), "{text}");
    assert!(!text.contains("RowBridge"), "{text}");
    assert_golden("explain_analyze_vectorization_off.txt", &text);
}

#[test]
fn stats_answered_explain_analyze_has_no_vectorized_profile() {
    // A stats-answered query never executes the compiled jobs, so its
    // EXPLAIN ANALYZE must not report the vectorized plan's operator
    // profile — the report would attribute work that did not happen.
    let mut hive = session(2);
    hive.try_set("hive.compute.query.using.stats", "true")
        .unwrap();
    load_tpch_style(&mut hive);
    let r = hive
        .execute("EXPLAIN ANALYZE SELECT COUNT(*) FROM orders")
        .unwrap();
    let text = r.explain.unwrap();
    assert!(text.contains("answered from table statistics"), "{text}");
    assert!(!text.contains("Vector"), "{text}");
    assert!(!text.contains("scan:"), "{text}");
    assert!(!text.contains("map operators"), "{text}");
    // The same statement without the knob runs for real and profiles the
    // vectorized chain.
    let mut hive = session(2);
    load_tpch_style(&mut hive);
    let r = hive
        .execute("EXPLAIN ANALYZE SELECT COUNT(*) FROM orders")
        .unwrap();
    let text = r.explain.unwrap();
    assert!(text.contains("map operators"), "{text}");
}

#[test]
fn fallback_boundaries_cross_exactly_one_row_bridge() {
    // Fully vectorized chains have no batch→row crossing at all.
    let text = analyze_text(JOIN_AGG, false);
    assert_eq!(text.matches("RowBridge").count(), 0, "{text}");
    // A mid-chain gate breaks the chain at that operator: upstream stays
    // vectorized and exactly ONE RowBridge crosses into row mode.
    for knob in [
        "hive.vectorized.execution.mapjoin.enabled",
        "hive.vectorized.execution.groupby.enabled",
        "hive.vectorized.execution.reducesink.enabled",
    ] {
        let text = analyze_text_conf(JOIN_AGG, |hive| {
            hive.try_set(knob, "false").unwrap();
        });
        assert_eq!(text.matches("RowBridge").count(), 1, "{knob} off:\n{text}");
        assert!(text.contains("Vector"), "{knob} off:\n{text}");
    }
    // Gating the FIRST operator of a chain leaves nothing to vectorize:
    // the whole input falls back to row mode — no bridge, no vector ops.
    let text = analyze_text_conf(JOIN_AGG, |hive| {
        hive.try_set("hive.vectorized.execution.select.enabled", "false")
            .unwrap();
    });
    assert_eq!(text.matches("RowBridge").count(), 0, "{text}");
    assert!(!text.contains("Vector"), "{text}");
}

#[test]
fn explain_analyze_mapjoin_knob_off_golden() {
    // Same query with hive.vectorized.execution.mapjoin.enabled=false:
    // the join runs in row mode (no VectorMapJoin operator in the profile)
    // while the scan side stays vectorized.
    let text = analyze_text_conf(JOIN_AGG, |hive| {
        hive.try_set("hive.vectorized.execution.mapjoin.enabled", "false")
            .unwrap();
    });
    assert!(!text.contains("VectorMapJoin"), "{text}");
    assert_golden("explain_analyze_row_mapjoin.txt", &text);
}

/// The sarg-filtered scan used by the cache golden tests. Must stay in
/// sync with `tests/golden/explain_analyze_cache_*.txt`.
const SARG_PROBE: &str =
    "SELECT cust, COUNT(*) AS n FROM orders WHERE total > 100.0 GROUP BY cust ORDER BY cust";

/// Cold-then-warm `EXPLAIN ANALYZE` pair against one session (one server):
/// the first run fills the metadata and block caches, the second must hit
/// them. Byte-identical at worker widths 1 and 4 — single-flight fills keep
/// the hit/miss counters deterministic under concurrency.
fn analyze_cold_warm() -> (String, String) {
    let mut pairs = Vec::new();
    for threads in [1u64, 4] {
        let mut hive = session(threads);
        load_tpch_style(&mut hive);
        let sql = format!("EXPLAIN ANALYZE {SARG_PROBE}");
        let cold = hive.execute(&sql).unwrap().explain.unwrap();
        let warm = hive.execute(&sql).unwrap().explain.unwrap();
        pairs.push((cold, warm));
    }
    let wide = pairs.pop().unwrap();
    let narrow = pairs.pop().unwrap();
    assert_eq!(
        narrow, wide,
        "cache counters differ across worker-thread counts"
    );
    wide
}

#[test]
fn explain_analyze_cache_cold_then_warm_goldens() {
    let (cold, warm) = analyze_cold_warm();
    // Cold: one ORC file footer decoded and filled, nothing served.
    assert!(cold.contains("cache: footer=0/1"), "{cold}");
    assert!(cold.contains("data=0/"), "{cold}");
    // Warm: the same footer (and stripe footer / row index) now hit, and
    // every data read is served from the block cache — no DFS bytes moved.
    assert!(warm.contains("cache: footer=1/0"), "{warm}");
    assert!(warm.contains("index=2/0"), "{warm}");
    assert!(warm.contains("io: read=0B"), "{warm}");
    assert_golden("explain_analyze_cache_cold.txt", &cold);
    assert_golden("explain_analyze_cache_warm.txt", &warm);
}

#[test]
fn cache_knob_off_restores_pre_cache_scan_stats() {
    // `hive.io.cache.bytes=0` is the master switch for both cache tiers;
    // this golden was captured before the caches existed, so matching it
    // byte-for-byte proves knob-off restores the pre-cache read path.
    let text = analyze_text_conf(SARG_PROBE, |hive| {
        hive.try_set("hive.io.cache.bytes", "0").unwrap();
    });
    assert!(!text.contains("cache:"), "{text}");
    assert_golden("explain_analyze_cache_off.txt", &text);
}

#[test]
fn warm_queries_carry_a_cache_trace_span() {
    let mut hive = session(2);
    load_tpch_style(&mut hive);
    hive.execute(SARG_PROBE).unwrap();
    let r = hive.execute(SARG_PROBE).unwrap();
    let span = r
        .metrics
        .trace
        .spans
        .iter()
        .find(|s| s.kind == hive::obs::SpanKind::Cache)
        .unwrap_or_else(|| panic!("no cache span:\n{}", r.metrics.trace.render()));
    assert_eq!(
        span.attr("footer_hits"),
        Some(&hive::obs::AttrValue::U64(1)),
        "{span:?}"
    );
    assert!(
        matches!(span.attr("data_hit_bytes"), Some(&hive::obs::AttrValue::U64(n)) if n > 0),
        "{span:?}"
    );
}

/// 8 client threads × 32 mixed statements (sarg scans, vectorized
/// map-joins, correlated group-bys) against ONE server: no deadlock, the
/// admission high-water mark stays within the knob, every result is
/// correct, and the final metrics snapshot is deterministic across engine
/// worker-thread counts.
fn stress_snapshot(worker_threads: u64) -> hive::obs::MetricsSnapshot {
    stress_snapshot_conf(worker_threads, false)
}

fn stress_snapshot_conf(worker_threads: u64, plan_cache: bool) -> hive::obs::MetricsSnapshot {
    const MIXED: [(&str, usize); 3] = [
        (SARG_PROBE, 99),
        (JOIN_AGG, 100),
        (
            "SELECT orders.cust, COUNT(*) AS n, SUM(orders.total) AS rev \
             FROM orders JOIN customer ON (orders.cust = customer.cust) \
             GROUP BY orders.cust ORDER BY orders.cust",
            100,
        ),
    ];
    let server = HiveSession::builder()
        .knob(knobs::EXEC_SIM_DETERMINISTIC_CPU, true)
        .knob(knobs::EXEC_WORKER_THREADS, worker_threads)
        .set("hive.server.max.concurrent.queries", "4")
        .unwrap()
        .set(
            "hive.query.plan.cache.enabled",
            if plan_cache { "true" } else { "false" },
        )
        .unwrap()
        .build_server()
        .unwrap();
    {
        let mut s = server.new_session();
        load_tpch_style(&mut s);
        // Warm both cache tiers sequentially so the concurrent phase is
        // all hits: miss attribution then cannot depend on which client
        // thread reaches a block first.
        for (sql, rows) in MIXED {
            assert_eq!(s.execute(sql).unwrap().rows.len(), rows);
        }
    }
    let mut handles = Vec::new();
    for tid in 0..8usize {
        let srv = server.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..32usize {
                let (sql, rows) = MIXED[(tid + i) % MIXED.len()];
                let r = srv.execute(sql).unwrap();
                assert_eq!(r.rows.len(), rows, "{sql}");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(
        server.admitted_peak() <= server.max_concurrent(),
        "admission exceeded the knob: {} > {}",
        server.admitted_peak(),
        server.max_concurrent()
    );
    // 2 CREATEs + 3 warm-up queries + 8×32 concurrent queries.
    assert_eq!(server.admitted_total(), 261);
    server.metrics().snapshot()
}

#[test]
fn server_stress_is_deadlock_free_and_deterministic() {
    let narrow = stress_snapshot(1);
    let wide = stress_snapshot(4);
    // Every integer counter — including the cache hit/miss totals, which
    // single-flight fills make exact — must agree across worker widths.
    assert_eq!(
        narrow.counters, wide.counters,
        "counters depend on worker-thread count"
    );
    // Float aggregates are sums of the same deterministic per-statement
    // values, but client threads finish in arbitrary order and float
    // addition is not associative; allow last-bit wobble only.
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
    assert_eq!(narrow.gauges.len(), wide.gauges.len());
    for (k, a) in &narrow.gauges {
        assert!(
            close(*a, wide.gauges[k]),
            "{k:?}: {a} vs {}",
            wide.gauges[k]
        );
    }
    assert_eq!(narrow.histograms.len(), wide.histograms.len());
    for (k, a) in &narrow.histograms {
        let b = &wide.histograms[k];
        assert_eq!((a.count, a.min, a.max), (b.count, b.min, b.max), "{k:?}");
        assert!(close(a.sum, b.sum), "{k:?}: {} vs {}", a.sum, b.sum);
    }
}

/// The plan cache is an observability no-op below its own counters: the
/// same stress stream with caching on must produce byte-identical
/// execution counters (plans are reused, never changed), deterministic
/// hit/miss totals, and snapshot determinism across worker widths.
#[test]
fn plan_cache_keeps_execution_counters_and_determinism() {
    let cached_narrow = stress_snapshot_conf(1, true);
    let cached_wide = stress_snapshot_conf(4, true);
    assert_eq!(
        cached_narrow.counters, cached_wide.counters,
        "plan-cached counters depend on worker-thread count"
    );
    // Warm-up compiles the 3 distinct statements; all 8×32 concurrent
    // replays hit — no mutation moves either generation counter.
    assert_eq!(cached_narrow.counter("plan_cache.miss", &[]), Some(3));
    assert_eq!(cached_narrow.counter("plan_cache.hit", &[]), Some(256));
    let uncached = stress_snapshot(1);
    let execution_only = |s: &hive::obs::MetricsSnapshot| {
        s.counters
            .iter()
            .filter(|(k, _)| !k.name.starts_with("plan_cache."))
            .map(|(k, v)| (k.clone(), *v))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        execution_only(&cached_narrow),
        execution_only(&uncached),
        "a cached plan must execute exactly like a freshly compiled one"
    );
}

#[test]
fn unknown_knob_errors_carry_suggestions() {
    let mut hive = HiveSession::in_memory();
    let err = hive
        .try_set("hive.exec.paralel", "true")
        .map(|_| ())
        .unwrap_err();
    match &err {
        HiveError::UnknownKnob { key, suggestions } => {
            assert_eq!(key, "hive.exec.paralel");
            assert!(
                suggestions.iter().any(|s| s == "hive.exec.parallel"),
                "{suggestions:?}"
            );
        }
        other => panic!("expected UnknownKnob, got {other}"),
    }
    assert!(err.to_string().contains("did you mean"), "{err}");
}

#[test]
fn ill_typed_and_out_of_range_knobs_are_rejected() {
    let mut hive = HiveSession::in_memory();
    assert!(hive.try_set("hive.exec.worker.threads", "lots").is_err());
    assert!(hive.try_set("dfs.fault.read.error.rate", "1.5").is_err());
    assert!(hive
        .try_set("hive.exec.orc.default.compress", "brotli")
        .is_err());
    // The unvalidated legacy shim defers the failure to the next statement.
    hive.set("hive.exec.worker.threads", "lots");
    let err = hive.execute("SHOW TABLES").unwrap_err();
    assert!(
        err.to_string().contains("hive.exec.worker.threads"),
        "{err}"
    );
}

#[test]
fn readme_knob_table_matches_registry() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("README.md");
    let readme = std::fs::read_to_string(&path).expect("README.md readable");
    let begin_marker = "<!-- BEGIN GENERATED KNOB TABLE";
    let end_marker = "<!-- END GENERATED KNOB TABLE -->";
    let begin = readme.find(begin_marker).expect("README has begin marker");
    let begin = begin + readme[begin..].find('\n').unwrap() + 1;
    let end = readme.find(end_marker).expect("README has end marker");
    let expected = knob_table_markdown();
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        let updated = format!(
            "{}{}\n{}",
            &readme[..begin],
            expected.trim_end(),
            &readme[end..]
        );
        std::fs::write(&path, updated).unwrap();
        return;
    }
    let region = readme[begin..end].trim_end();
    assert_eq!(
        region,
        expected.trim_end(),
        "README knob table drifted from the registry; run \
         UPDATE_GOLDENS=1 cargo test --test metrics to regenerate"
    );
}
