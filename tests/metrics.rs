//! Observability integration suite: metrics determinism across
//! worker-thread counts, `EXPLAIN ANALYZE` golden output, knob-registry
//! error reporting, the `--metrics-json` schema, and the generated README
//! knob table.
//!
//! Regenerate goldens with `UPDATE_GOLDENS=1 cargo test --test metrics`.

use hive::common::config::{knob_table_markdown, knobs};
use hive::common::{HiveError, Row, Value};
use hive::obs::json;
use hive::HiveSession;

/// A session pinned to the deterministic clock and a fixed worker count.
fn session(threads: u64) -> HiveSession {
    HiveSession::builder()
        .knob(knobs::EXEC_SIM_DETERMINISTIC_CPU, true)
        .knob(knobs::EXEC_WORKER_THREADS, threads)
        .build()
        .unwrap()
}

/// TPC-H-style pair: a fact table and a dimension joined on `cust`.
fn load_tpch_style(hive: &mut HiveSession) {
    hive.execute("CREATE TABLE orders (okey BIGINT, cust BIGINT, total DOUBLE) STORED AS orc")
        .unwrap();
    hive.load_rows(
        "orders",
        (0..4000).map(|i| {
            Row::new(vec![
                Value::Int(i),
                Value::Int(i % 100),
                Value::Double((i % 500) as f64 / 4.0),
            ])
        }),
    )
    .unwrap();
    hive.execute("CREATE TABLE customer (cust BIGINT, name STRING) STORED AS orc")
        .unwrap();
    hive.load_rows(
        "customer",
        (0..100).map(|i| Row::new(vec![Value::Int(i), Value::String(format!("cust-{i:03}"))])),
    )
    .unwrap();
}

const JOIN_AGG: &str = "SELECT customer.name, COUNT(*) AS n, SUM(orders.total) AS revenue \
     FROM orders JOIN customer ON (orders.cust = customer.cust) \
     GROUP BY customer.name ORDER BY customer.name";

/// Run a fixed statement sequence and return the final snapshot JSON.
fn snapshot_json(threads: u64) -> String {
    let mut hive = session(threads);
    load_tpch_style(&mut hive);
    let r = hive.execute(JOIN_AGG).unwrap();
    assert_eq!(r.rows.len(), 100);
    hive.execute("SELECT cust, COUNT(*) FROM orders WHERE total > 100.0 GROUP BY cust")
        .unwrap();
    hive.metrics_snapshot().to_json().render_pretty()
}

#[test]
fn metrics_snapshot_is_byte_identical_across_worker_thread_counts() {
    let one = snapshot_json(1);
    let eight = snapshot_json(8);
    assert_eq!(one, eight, "snapshot depends on worker-thread count");
    // And across repeated runs at the same width.
    assert_eq!(one, snapshot_json(1));
}

#[test]
fn metrics_snapshot_has_the_expected_counters() {
    let mut hive = session(2);
    load_tpch_style(&mut hive);
    hive.execute(JOIN_AGG).unwrap();
    let snap = hive.metrics_snapshot();
    assert!(snap.counter("query.count", &[]).unwrap() >= 1);
    assert!(snap.counter("exec.rows_out", &[]).unwrap() > 0);
    assert!(snap.counter("exec.task_attempts", &[]).unwrap() > 0);
    assert!(snap.counter("dfs.bytes_read", &[]).unwrap() > 0);
    assert!(snap.gauge("exec.sim_total_s", &[]).unwrap() > 0.0);
    assert!(snap.histogram("job.sim_total_s", &[]).unwrap().count > 0);
    // Per-operator counters are labeled by job/phase/op.
    assert!(
        snap.counters
            .keys()
            .any(|k| k.name == "operator.rows_in" && k.labels.contains_key("phase")),
        "no labeled operator counters in snapshot"
    );
}

#[test]
fn metrics_json_validates_against_checked_in_schema() {
    let text = snapshot_json(2);
    let value = json::parse(&text).expect("snapshot JSON parses");
    let schema =
        json::parse(include_str!("../results/metrics.schema.json")).expect("schema parses");
    json::validate(&value, &schema).expect("snapshot matches results/metrics.schema.json");
}

fn assert_golden(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {name} ({e}); run UPDATE_GOLDENS=1 cargo test --test metrics")
    });
    assert_eq!(
        actual, expected,
        "golden {name} drifted; run UPDATE_GOLDENS=1 cargo test --test metrics to regenerate"
    );
}

/// `EXPLAIN ANALYZE` output for the query under a fixed worker count; must
/// be byte-identical across widths before it can be a golden.
fn analyze_text(sql: &str, reduce_side_join: bool) -> String {
    analyze_text_conf(sql, move |hive| {
        if reduce_side_join {
            hive.try_set("hive.auto.convert.join", "false").unwrap();
        }
    })
}

/// Like [`analyze_text`] but with an arbitrary knob setup per session.
fn analyze_text_conf(sql: &str, setup: impl Fn(&mut HiveSession)) -> String {
    let mut texts = Vec::new();
    for threads in [1u64, 4] {
        let mut hive = session(threads);
        setup(&mut hive);
        load_tpch_style(&mut hive);
        let r = hive.execute(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
        texts.push(r.explain.expect("EXPLAIN ANALYZE sets explain text"));
    }
    assert_eq!(
        texts[0], texts[1],
        "EXPLAIN ANALYZE differs across worker-thread counts"
    );
    texts.pop().unwrap()
}

#[test]
fn explain_analyze_correlation_optimized_golden() {
    // Join key == group key: the Correlation Optimizer collapses the join
    // and the aggregation into one reduce phase (reduce-side join forced so
    // the correlation applies).
    let text = analyze_text(
        "SELECT orders.cust, COUNT(*) AS n, SUM(orders.total) AS rev \
         FROM orders JOIN customer ON (orders.cust = customer.cust) \
         GROUP BY orders.cust ORDER BY orders.cust",
        true,
    );
    assert!(text.contains("== Runtime Profile =="), "{text}");
    assert!(text.contains("rows_in="), "{text}");
    assert_golden("explain_analyze_correlation.txt", &text);
}

#[test]
fn explain_analyze_vectorized_golden() {
    // Vectorized scan + filter + aggregate over ORC.
    let text = analyze_text(
        "SELECT cust, COUNT(*) AS n, SUM(total) AS rev FROM orders \
         WHERE total > 50.0 GROUP BY cust ORDER BY cust",
        false,
    );
    assert!(text.contains("scan:"), "{text}");
    assert!(text.contains("selected_density="), "{text}");
    assert_golden("explain_analyze_vectorized.txt", &text);
}

#[test]
fn explain_analyze_vectorized_mapjoin_golden() {
    // The map-join converts (small dimension side) and vectorizes: the
    // runtime profile must show the VectorMapJoin operator with its
    // probe-batch counters, byte-identical at both worker widths.
    let text = analyze_text(JOIN_AGG, false);
    assert!(text.contains("VectorMapJoin[Inner]"), "{text}");
    assert!(text.contains("probe_batches="), "{text}");
    assert!(text.contains("build_rows="), "{text}");
    assert_golden("explain_analyze_vector_mapjoin.txt", &text);
}

#[test]
fn explain_analyze_mapjoin_knob_off_golden() {
    // Same query with hive.vectorized.execution.mapjoin.enabled=false:
    // the join runs in row mode (no VectorMapJoin operator in the profile)
    // while the scan side stays vectorized.
    let text = analyze_text_conf(JOIN_AGG, |hive| {
        hive.try_set("hive.vectorized.execution.mapjoin.enabled", "false")
            .unwrap();
    });
    assert!(!text.contains("VectorMapJoin"), "{text}");
    assert_golden("explain_analyze_row_mapjoin.txt", &text);
}

#[test]
fn unknown_knob_errors_carry_suggestions() {
    let mut hive = HiveSession::in_memory();
    let err = hive
        .try_set("hive.exec.paralel", "true")
        .map(|_| ())
        .unwrap_err();
    match &err {
        HiveError::UnknownKnob { key, suggestions } => {
            assert_eq!(key, "hive.exec.paralel");
            assert!(
                suggestions.iter().any(|s| s == "hive.exec.parallel"),
                "{suggestions:?}"
            );
        }
        other => panic!("expected UnknownKnob, got {other}"),
    }
    assert!(err.to_string().contains("did you mean"), "{err}");
}

#[test]
fn ill_typed_and_out_of_range_knobs_are_rejected() {
    let mut hive = HiveSession::in_memory();
    assert!(hive.try_set("hive.exec.worker.threads", "lots").is_err());
    assert!(hive.try_set("dfs.fault.read.error.rate", "1.5").is_err());
    assert!(hive
        .try_set("hive.exec.orc.default.compress", "brotli")
        .is_err());
    // The unvalidated legacy shim defers the failure to the next statement.
    hive.set("hive.exec.worker.threads", "lots");
    let err = hive.execute("SHOW TABLES").unwrap_err();
    assert!(
        err.to_string().contains("hive.exec.worker.threads"),
        "{err}"
    );
}

#[test]
fn readme_knob_table_matches_registry() {
    let readme = include_str!("../README.md");
    let begin_marker = "<!-- BEGIN GENERATED KNOB TABLE";
    let end_marker = "<!-- END GENERATED KNOB TABLE -->";
    let begin = readme.find(begin_marker).expect("README has begin marker");
    let begin = begin + readme[begin..].find('\n').unwrap() + 1;
    let end = readme.find(end_marker).expect("README has end marker");
    let region = readme[begin..end].trim_end();
    let expected = knob_table_markdown();
    assert_eq!(
        region,
        expected.trim_end(),
        "README knob table drifted from the registry; paste the output of \
         hive_common::config::knob_table_markdown() between the markers"
    );
}
