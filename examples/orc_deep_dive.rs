//! ORC deep dive: use the file-format layer directly — complex-type
//! decomposition, the three-level statistics, predicate pushdown and the
//! writer memory manager (paper Section 4), without going through SQL.
//!
//! ```sh
//! cargo run --release --example orc_deep_dive
//! ```

use hive::codec::block::Compression;
use hive::common::{Row, Schema, Value};
use hive::dfs::{Dfs, DfsConfig};
use hive::formats::orc::reader::{OrcReadOptions, OrcReader};
use hive::formats::orc::writer::{OrcWriter, OrcWriterOptions};
use hive::formats::orc::MemoryManager;
use hive::formats::{PredicateLeaf, SearchArgument, TableReader, TableWriter};

fn main() {
    let dfs = Dfs::new(DfsConfig {
        block_size: 4 << 20,
        replication: 3,
        nodes: 10,
    });

    // The paper's Figure 3 table: complex types decompose into a column
    // tree; only leaf columns carry data streams.
    let schema = Schema::parse(&[
        ("col1", "int"),
        ("col2", "array<int>"),
        ("col4", "map<string,struct<col7:string,col8:int>>"),
        ("col9", "string"),
    ])
    .expect("schema");
    let tree = schema.column_tree();
    println!("Figure 3 column tree ({} columns):", tree.len());
    for node in tree.nodes() {
        println!(
            "  column id {:>2}  type {:<12} {}",
            node.id,
            node.data_type.to_string(),
            if node.is_leaf() {
                "(leaf: has data streams)"
            } else {
                "(internal: metadata only)"
            }
        );
    }

    // Write a file with a scaled-down stripe and a shared memory manager.
    let memory = MemoryManager::for_task_memory(64 << 20, 0.5);
    let mut writer = OrcWriter::create(
        &dfs,
        "/warehouse/fig3/part-0",
        &schema,
        OrcWriterOptions {
            stripe_size: 1 << 20,
            row_index_stride: 1_000,
            compression: Compression::Snappy,
            ..Default::default()
        },
        Some(&memory),
    );
    for i in 0..50_000i64 {
        TableWriter::write_row(
            &mut writer,
            &Row::new(vec![
                Value::Int(i),
                Value::Array((0..(i % 3)).map(Value::Int).collect()),
                Value::Map(vec![(
                    Value::String(format!("k{}", i % 100)),
                    Value::Struct(vec![
                        Value::String(format!("s{}", i % 7)),
                        Value::Int(i * 2),
                    ]),
                )]),
                Value::String(format!("tag-{}", i % 50)),
            ]),
        )
        .expect("write");
    }
    let padding = writer.padding_bytes;
    let len = Box::new(writer).close().expect("close");
    println!("\nwrote {len} bytes ({padding} bytes of block-alignment padding)");

    // File-level statistics answer simple aggregations without reading rows.
    let reader =
        OrcReader::open(&dfs, "/warehouse/fig3/part-0", OrcReadOptions::default()).expect("open");
    let stats = reader.file_stats(0).expect("stats");
    println!(
        "col1 from file statistics alone: count={} min={:?} max={:?} sum={:?}",
        stats.count(),
        stats.min_value(),
        stats.max_value(),
        stats.sum_value()
    );

    // Predicate pushdown: `col1 BETWEEN 600 AND 700` needs almost nothing.
    dfs.stats().reset();
    let sarg = SearchArgument::new(vec![PredicateLeaf::between(
        0,
        Value::Int(600),
        Value::Int(700),
    )]);
    let mut selective = OrcReader::open(
        &dfs,
        "/warehouse/fig3/part-0",
        OrcReadOptions {
            sarg: Some(sarg),
            use_index: true,
            projection: Some(vec![0, 3]),
            ..Default::default()
        },
    )
    .expect("open selective");
    let mut matched = 0;
    while let Some(row) = selective.next_row().expect("read") {
        if (600..=700).contains(&row[0].as_int().unwrap()) {
            matched += 1;
        }
    }
    println!(
        "\nselective read: {matched} matching rows; groups read {}/{}; stripes {}/{}; {} bytes from DFS",
        selective.counters.groups_read,
        selective.counters.groups_total,
        selective.counters.stripes_read,
        selective.counters.stripes_total,
        dfs.stats().snapshot().bytes_read(),
    );
}
