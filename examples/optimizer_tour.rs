//! Optimizer tour: run the paper's Section 5 running example (Figure 4)
//! under each planner configuration and watch the job DAG shrink —
//! Map Join conversion, Map-phase merging, and the Correlation Optimizer.
//!
//! ```sh
//! cargo run --release --example optimizer_tour
//! ```

use hive::common::config::keys;
use hive::common::{Row, Value};
use hive::HiveSession;

/// Figure 4(a) of the paper, in this dialect.
const FIGURE_4: &str = "\
SELECT big1.key, small1.value1, small2.value1, big2.value1, sq1.total \
FROM big1 \
JOIN small1 ON (big1.skey1 = small1.key) \
JOIN small2 ON (big1.skey2 = small2.key) \
JOIN (SELECT big2.key AS key, avg(big3.value1) AS avg, sum(big3.value2) AS total \
      FROM big2 JOIN big3 ON (big2.key = big3.key) \
      GROUP BY big2.key) sq1 ON (big1.key = sq1.key) \
JOIN big2 ON (sq1.key = big2.key) \
WHERE big2.value1 > sq1.avg";

fn fresh_session() -> HiveSession {
    let mut hive = HiveSession::in_memory();
    hive.execute(
        "CREATE TABLE big1 (key BIGINT, skey1 BIGINT, skey2 BIGINT, value1 DOUBLE) STORED AS orc",
    )
    .unwrap();
    hive.execute("CREATE TABLE big2 (key BIGINT, value1 DOUBLE, value2 DOUBLE) STORED AS orc")
        .unwrap();
    hive.execute("CREATE TABLE big3 (key BIGINT, value1 DOUBLE, value2 DOUBLE) STORED AS orc")
        .unwrap();
    hive.execute("CREATE TABLE small1 (key BIGINT, value1 STRING) STORED AS orc")
        .unwrap();
    hive.execute("CREATE TABLE small2 (key BIGINT, value1 STRING) STORED AS orc")
        .unwrap();

    hive.load_rows(
        "big1",
        (0..20_000).map(|i| {
            Row::new(vec![
                Value::Int(i % 500),
                Value::Int(i % 5),
                Value::Int(i % 7),
                Value::Double(i as f64),
            ])
        }),
    )
    .unwrap();
    for t in ["big2", "big3"] {
        hive.load_rows(
            t,
            (0..20_000).map(|i| {
                Row::new(vec![
                    Value::Int(i % 500),
                    Value::Double((i * 2) as f64),
                    Value::Double((i % 37) as f64),
                ])
            }),
        )
        .unwrap();
    }
    hive.load_rows(
        "small1",
        (0..5).map(|i| Row::new(vec![Value::Int(i), Value::String(format!("s1-{i}"))])),
    )
    .unwrap();
    hive.load_rows(
        "small2",
        (0..7).map(|i| Row::new(vec![Value::Int(i), Value::String(format!("s2-{i}"))])),
    )
    .unwrap();
    // At example scale every table is tiny; set the Map Join threshold so
    // only small1/small2 qualify as hash-table sides.
    let small_max = hive
        .metastore()
        .table_size("small1")
        .max(hive.metastore().table_size("small2"));
    hive.set(keys::MAPJOIN_SMALLTABLE_SIZE, format!("{}", small_max + 1));
    hive
}

fn main() {
    println!("Paper Figure 4 running example\n");
    let configs: &[(&str, &str, &str)] = &[
        (
            "everything off   (mapjoin=off, merge=off, corr=off)",
            "false",
            "false",
        ),
        (
            "correlation on   (mapjoin=off, merge=off, corr=on) ",
            "false",
            "true",
        ),
        (
            "all optimizations (mapjoin=on,  merge=on,  corr=on) ",
            "true",
            "true",
        ),
    ];
    let mut reference: Option<Vec<Row>> = None;
    for (label, mapjoin, corr) in configs {
        let mut hive = fresh_session();
        hive.set(keys::AUTO_CONVERT_JOIN, *mapjoin)
            .set(keys::MERGE_MAPONLY_JOBS, *mapjoin)
            .set(keys::OPT_CORRELATION, *corr);
        let r = hive.execute(FIGURE_4).expect("figure 4 query");
        let map_only = r.report.jobs.iter().filter(|j| j.reduce_tasks == 0).count();
        println!(
            "{label}: {} rows, {} job(s) ({} map-only + {} MR), {:.1}s simulated, {:.3}s CPU",
            r.rows.len(),
            r.report.jobs.len(),
            map_only,
            r.report.jobs.len() - map_only,
            r.report.sim_total_s,
            r.report.cpu_seconds,
        );
        // Results must be identical under every plan.
        let mut rows = r.rows;
        rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        match &reference {
            None => reference = Some(rows),
            Some(exp) => assert_eq!(&rows, exp, "optimizations changed the result!"),
        }
    }

    println!("\nEXPLAIN with all optimizations on:\n");
    let mut hive = fresh_session();
    let plan = hive.execute(&format!("EXPLAIN {FIGURE_4}")).unwrap();
    println!("{}", plan.explain.unwrap());
}
