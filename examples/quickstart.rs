//! Quickstart: create a table, load rows, run HiveQL — the five-minute tour.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hive::common::{Row, Value};
use hive::HiveSession;

fn main() {
    let mut hive = HiveSession::in_memory();

    // 1. DDL, exactly as you'd type it into the Hive CLI.
    hive.execute(
        "CREATE TABLE trips (
            city    STRING,
            minutes BIGINT,
            fare    DOUBLE
         ) STORED AS orc",
    )
    .expect("create table");

    // 2. Load some rows (a real deployment would LOAD DATA; here the API
    //    streams rows through the ORC writer, memory manager and all).
    let cities = ["berlin", "columbus", "seoul", "snowbird"];
    hive.load_rows(
        "trips",
        (0..10_000).map(|i| {
            Row::new(vec![
                Value::String(cities[i % cities.len()].to_string()),
                Value::Int((i % 90 + 5) as i64),
                Value::Double((i % 400) as f64 / 10.0 + 2.5),
            ])
        }),
    )
    .expect("load rows");

    // 3. Query. The planner prunes columns, pushes the predicate into the
    //    ORC reader, vectorizes the scan, and compiles a MapReduce job.
    let result = hive
        .execute(
            "SELECT city,
                    COUNT(*)      AS trips,
                    AVG(minutes)  AS avg_minutes,
                    SUM(fare)     AS total_fare
             FROM trips
             WHERE minutes BETWEEN 10 AND 60
             GROUP BY city
             ORDER BY total_fare DESC",
        )
        .expect("query");

    println!("{}", result.render());

    // 4. The execution report: what the simulated cluster did.
    let report = &result.report;
    println!("jobs: {}", report.jobs.len());
    for j in &report.jobs {
        println!(
            "  {}: {} map task(s), {} reduce task(s), {:.2}s simulated, {} read",
            j.name, j.map_tasks, j.reduce_tasks, j.sim_total_s, j.bytes_read
        );
    }

    // 5. EXPLAIN shows the compiled plan.
    let plan = hive
        .execute("EXPLAIN SELECT city, COUNT(*) FROM trips GROUP BY city")
        .expect("explain");
    println!("\nEXPLAIN:\n{}", plan.explain.unwrap());
}
