//! Telescope scan: the SS-DB workload from the paper's intro — array
//! science data, selective coordinate windows, and how the vectorized
//! engine + ORC indexes change what the cluster does.
//!
//! ```sh
//! cargo run --release --example telescope_scan
//! ```

use hive::common::config::keys;
use hive::HiveSession;

fn main() {
    let mut hive = HiveSession::in_memory();
    // One scaled-down cycle: 6 images, 150×150 pixels each.
    hive.set(keys::ORC_STRIPE_SIZE, format!("{}", 2 << 20));
    hive.set(keys::ORC_ROW_INDEX_STRIDE, "300");
    hive::datagen::ssdb::load(&mut hive, 6, 100, 7).expect("load ssdb cycle");

    println!(
        "loaded cycle: {} rows, {} on disk as ORC\n",
        hive::datagen::ssdb::rows_per_cycle(6, 100),
        hive.metastore().table_size("cycle"),
    );

    // The paper's query-1 ladder: selectivity 1/16, 1/4, all.
    for (name, var) in hive::datagen::ssdb::QUERY1_VARIANTS {
        let sql = hive::datagen::ssdb::query1(*var);
        let before = hive.io_snapshot();
        let r = hive.execute(&sql).expect(name);
        let read = hive.io_snapshot().since(&before).bytes_read();
        println!(
            "query {name:<9} -> SUM(v1)={} COUNT(*)={}  [{:.1}s simulated, {} bytes read]",
            r.rows[0][0], r.rows[0][1], r.report.sim_total_s, read
        );
    }

    // Windowed scans over the observation values, mixing predicates that
    // the index can and cannot help with.
    let r = hive
        .execute(
            "SELECT img, COUNT(*) AS px, AVG(v1) AS brightness, MAX(v2) AS peak \
             FROM cycle \
             WHERE x BETWEEN 3000 AND 6000 AND y BETWEEN 3000 AND 6000 AND v2 > 2048 \
             GROUP BY img ORDER BY img",
        )
        .expect("window scan");
    println!("\nper-image stats over the (3000..6000)² window with v2 > 2048:");
    println!("{}", r.render());

    // Flip the vectorized engine off and compare the measured CPU.
    let sql = hive::datagen::ssdb::query1(15_000);
    let vec_cpu = hive.execute(&sql).unwrap().report.cpu_seconds;
    hive.set(keys::VECTORIZED_ENABLED, "false");
    let row_cpu = hive.execute(&sql).unwrap().report.cpu_seconds;
    println!(
        "full-scan CPU: vectorized {vec_cpu:.3}s vs one-row-at-a-time {row_cpu:.3}s ({:.1}x)",
        row_cpu / vec_cpu.max(1e-9)
    );
}
