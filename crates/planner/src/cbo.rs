//! Cost-based join reordering — the paper's Section 9 mentions it as the
//! then-new direction ("Hive has introduced cost based optimizer.
//! Currently its used to do join ordering"); this is that feature.
//!
//! The rule is the classic greedy heuristic over a left-deep inner-join
//! chain: at each step, among the joins whose ON condition only references
//! bindings already in scope, pick the one with the smallest table. Small
//! tables join early, shrinking intermediate results and (downstream)
//! turning into Map Joins whose hash tables fit in memory.
//!
//! Gated by `hive.cbo.enable` (off by default, like Hive 0.13's).

use crate::catalog::Catalog;
use hive_ql::{Expr, Join, JoinKind, SelectStmt, TableRef};
use std::collections::BTreeSet;

/// Reorder the join chain of `stmt` (and, recursively, of FROM-clause
/// subqueries) by table size. Outer joins freeze the order: a chain with
/// any non-inner join is left untouched.
pub fn reorder_joins(stmt: &mut SelectStmt, catalog: &dyn Catalog) {
    // Recurse into subqueries first.
    visit_subqueries(&mut stmt.from, catalog);
    for j in &mut stmt.joins {
        visit_subqueries(&mut j.table, catalog);
    }

    if stmt.joins.len() < 2 {
        return;
    }
    if stmt.joins.iter().any(|j| j.kind != JoinKind::Inner) {
        return;
    }

    let mut in_scope: BTreeSet<String> = BTreeSet::new();
    in_scope.insert(stmt.from.binding().to_ascii_lowercase());
    let mut remaining: Vec<Join> = std::mem::take(&mut stmt.joins);
    let mut ordered = Vec::with_capacity(remaining.len());

    while !remaining.is_empty() {
        // Joins whose condition is satisfiable with the current scope.
        let mut candidates: Vec<(usize, u64)> = remaining
            .iter()
            .enumerate()
            .filter(|(_, j)| {
                let mut scope = in_scope.clone();
                scope.insert(j.table.binding().to_ascii_lowercase());
                condition_in_scope(&j.on, &scope)
            })
            .map(|(i, j)| (i, size_of(&j.table, catalog)))
            .collect();
        if candidates.is_empty() {
            // Cross-referencing conditions we cannot satisfy greedily:
            // fall back to the written order for the rest.
            ordered.append(&mut remaining);
            break;
        }
        candidates.sort_by_key(|&(i, size)| (size, i));
        let (pick, _) = candidates[0];
        let j = remaining.remove(pick);
        in_scope.insert(j.table.binding().to_ascii_lowercase());
        ordered.push(j);
    }
    stmt.joins = ordered;
}

fn visit_subqueries(tref: &mut TableRef, catalog: &dyn Catalog) {
    if let TableRef::Subquery { query, .. } = tref {
        reorder_joins(query, catalog);
    }
}

fn size_of(tref: &TableRef, catalog: &dyn Catalog) -> u64 {
    match tref {
        TableRef::Table { name, .. } => catalog
            .table(name)
            .map(|t| t.size_bytes)
            .unwrap_or(u64::MAX),
        // Derived tables: unknown, order them last.
        TableRef::Subquery { .. } => u64::MAX,
    }
}

/// Does every qualified column reference of `e` stay inside `scope`?
/// Unqualified references cannot be attributed without full resolution, so
/// they conservatively pin the expression (treated as out of scope).
fn condition_in_scope(e: &Expr, scope: &BTreeSet<String>) -> bool {
    match e {
        Expr::Column { table: Some(t), .. } => scope.contains(&t.to_ascii_lowercase()),
        Expr::Column { table: None, .. } => false,
        Expr::Literal(_) | Expr::Star => true,
        Expr::Binary { left, right, .. } => {
            condition_in_scope(left, scope) && condition_in_scope(right, scope)
        }
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => condition_in_scope(expr, scope),
        Expr::Function { args, .. } => args.iter().all(|a| condition_in_scope(a, scope)),
        Expr::Between { expr, lo, hi, .. } => {
            condition_in_scope(expr, scope)
                && condition_in_scope(lo, scope)
                && condition_in_scope(hi, scope)
        }
        Expr::IsNull { expr, .. } => condition_in_scope(expr, scope),
        Expr::InList { expr, list, .. } => {
            condition_in_scope(expr, scope) && list.iter().all(|l| condition_in_scope(l, scope))
        }
        Expr::Case {
            branches,
            else_value,
        } => {
            branches
                .iter()
                .all(|(c, v)| condition_in_scope(c, scope) && condition_in_scope(v, scope))
                && else_value
                    .as_ref()
                    .is_none_or(|x| condition_in_scope(x, scope))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{StaticCatalog, TableMeta};
    use hive_common::Schema;
    use hive_ql::{parse, Statement};

    fn catalog() -> StaticCatalog {
        let t = |name: &str, size: u64| TableMeta {
            name: name.into(),
            schema: Schema::parse(&[("k", "bigint"), ("v", "bigint")]).unwrap(),
            format: hive_formats::FormatKind::Orc,
            paths: vec![],
            size_bytes: size,
            acid: None,
        };
        StaticCatalog {
            tables: vec![
                t("huge", 1 << 40),
                t("big", 1 << 30),
                t("mid", 1 << 20),
                t("tiny", 1 << 10),
            ],
        }
    }

    fn joins_of(sql: &str) -> Vec<String> {
        let Statement::Select(mut stmt) = parse(sql).unwrap() else {
            panic!()
        };
        reorder_joins(&mut stmt, &catalog());
        stmt.joins
            .iter()
            .map(|j| j.table.binding().to_string())
            .collect()
    }

    #[test]
    fn smallest_table_joins_first() {
        let order = joins_of(
            "SELECT huge.k FROM huge \
             JOIN big ON (huge.k = big.k) \
             JOIN tiny ON (huge.k = tiny.k) \
             JOIN mid ON (huge.k = mid.k)",
        );
        assert_eq!(order, vec!["tiny", "mid", "big"]);
    }

    #[test]
    fn scope_constraints_are_respected() {
        // tiny's condition depends on big, so big must come first even
        // though tiny is smaller.
        let order = joins_of(
            "SELECT huge.k FROM huge \
             JOIN big ON (huge.k = big.k) \
             JOIN tiny ON (big.v = tiny.k)",
        );
        assert_eq!(order, vec!["big", "tiny"]);
    }

    #[test]
    fn outer_joins_freeze_the_order() {
        let order = joins_of(
            "SELECT huge.k FROM huge \
             JOIN big ON (huge.k = big.k) \
             LEFT JOIN tiny ON (huge.k = tiny.k)",
        );
        assert_eq!(order, vec!["big", "tiny"], "written order preserved");
    }

    #[test]
    fn unqualified_conditions_fall_back_to_written_order() {
        let order = joins_of(
            "SELECT huge.k FROM huge \
             JOIN big ON (huge.k = k) \
             JOIN tiny ON (huge.k = tiny.k)",
        );
        // `k` is unattributable → big pins; tiny can still hoist ahead.
        assert_eq!(order, vec!["tiny", "big"]);
    }
}
