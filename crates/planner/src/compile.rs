//! The task compiler: operator DAG → DAG of MapReduce jobs (paper
//! Section 2: "the task compiler ... breaks the operator tree to multiple
//! stages represented by executable tasks").
//!
//! Job boundaries are the ReduceSink→consumer edges plus any
//! IntermediateCut nodes. The compiler:
//!
//! * groups operators into fragments,
//! * emits one shuffle job per reduce fragment (its map side being the
//!   fragments feeding its ReduceSinks) and one map-only job per source
//!   fragment ending in a sink,
//! * decides Map-only-job merging per Section 5.1 (the
//!   `hive.optimize.merge.maponly.jobs` knob and the hash-table size
//!   threshold),
//! * inserts the Demux/Mux coordination operators into Reduce-side
//!   operator graphs (Section 5.2.2, Figure 5),
//! * invokes the vectorization pass on eligible map-side chains
//!   (Section 6.4).

use crate::correlation::fragments;
use crate::plan::{GroupByPhase, PlanGraph, PlanNode, PlanOp};
use crate::semantic::Translation;
use crate::vectorize;
use hive_common::config::keys;
use hive_common::{HiveConf, HiveError, Result, Row, Value};
use hive_exec::agg::AggMode;
use hive_exec::expr::ExprNode;
use hive_exec::graph::OperatorGraph;
use hive_exec::operators as ops;
use hive_mapreduce::job::{
    JobInput, JobOutput, JobSpec, MapPipeline, MapPipelineFactory, ReducePipelineFactory, SideInput,
};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static QUERY_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A fully compiled query. Cloneable (job pipeline factories are shared
/// `Arc`s) so the server's plan cache can reuse one compilation across
/// executions; see [`CompiledQuery::rebase`].
#[derive(Clone)]
pub struct CompiledQuery {
    pub jobs: Vec<JobSpec>,
    /// Driver-side final sort: output column index + ascending.
    pub order_by: Vec<(usize, bool)>,
    pub limit: Option<u64>,
    pub output_names: Vec<String>,
    pub explain: String,
    /// Scratch prefix (`/tmp/query-<N>`) this compilation's intermediate
    /// job outputs live under. Unique per compilation.
    pub tmp_base: String,
}

impl CompiledQuery {
    /// A copy of this plan with every intermediate path moved under a
    /// fresh `/tmp/query-<N>` prefix. A cached plan must be rebased before
    /// each execution: two statements running the same cached plan
    /// concurrently would otherwise collide on intermediate part files.
    pub fn rebase(&self) -> CompiledQuery {
        let fresh = fresh_tmp_base();
        let moved = |p: &str| {
            if let Some(rest) = p.strip_prefix(&self.tmp_base) {
                format!("{fresh}{rest}")
            } else {
                p.to_string()
            }
        };
        let mut out = self.clone();
        for job in &mut out.jobs {
            for input in &mut job.inputs {
                for p in &mut input.paths {
                    *p = moved(p);
                }
            }
            for side in &mut job.side_inputs {
                for p in &mut side.paths {
                    *p = moved(p);
                }
            }
            if let JobOutput::Intermediate { path_prefix } = &mut job.output {
                *path_prefix = moved(path_prefix);
            }
        }
        out.explain = out.explain.replace(&self.tmp_base, &fresh);
        out.tmp_base = fresh;
        out
    }
}

/// A fresh, process-unique scratch prefix for one query's intermediates.
pub fn fresh_tmp_base() -> String {
    let qid = QUERY_COUNTER.fetch_add(1, Ordering::Relaxed);
    format!("/tmp/query-{qid}")
}

/// One map-side input of a job (compile-time form).
#[derive(Clone)]
struct MapInput {
    alias: String,
    /// The node rows enter the exec graph at (scan or cut-child or RS).
    source: usize,
    /// Whether `source` is a plan TableScan (vs an intermediate read).
    scan: Option<usize>,
    /// Intermediate read: (path prefix, schema provider node).
    intermediate: Option<(String, usize)>,
    /// Plan node ids executed in this input's chain.
    nodes: Vec<usize>,
    /// ReduceSink plan id → shuffle tag.
    rs_tags: BTreeMap<usize, usize>,
}

/// Compile an (optimized) translation into jobs.
pub fn compile(t: &Translation, conf: &HiveConf) -> Result<CompiledQuery> {
    let mut g = t.graph.clone();
    insert_cuts(&mut g, conf)?;
    let tmp_base = fresh_tmp_base();

    let frag_of = fragments(&g);
    // Fragment → members.
    let mut members: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (&node, &f) in &frag_of {
        members.entry(f).or_default().push(node);
    }

    // Classify each fragment.
    struct FragInfo {
        nodes: Vec<usize>,
        /// RS nodes in other fragments whose child is here.
        feeding_rs: Vec<usize>,
        /// RS nodes here whose child is elsewhere.
        sink_rs: Vec<usize>,
        sink_cuts: Vec<usize>,
        has_fs: bool,
    }
    let mut infos: BTreeMap<usize, FragInfo> = BTreeMap::new();
    for (&f, nodes) in &members {
        let mut info = FragInfo {
            nodes: nodes.clone(),
            feeding_rs: Vec::new(),
            sink_rs: Vec::new(),
            sink_cuts: Vec::new(),
            has_fs: false,
        };
        for &n in nodes {
            match &g.node(n).op {
                PlanOp::ReduceSink {
                    degenerate: false, ..
                } => info.sink_rs.push(n),
                PlanOp::IntermediateCut => info.sink_cuts.push(n),
                PlanOp::FileSink => info.has_fs = true,
                _ => {}
            }
            for &p in &g.node(n).parents {
                if matches!(
                    g.node(p).op,
                    PlanOp::ReduceSink {
                        degenerate: false,
                        ..
                    }
                ) && frag_of.get(&p) != Some(&f)
                {
                    info.feeding_rs.push(p);
                }
            }
        }
        info.feeding_rs.sort_unstable();
        info.feeding_rs.dedup();
        infos.insert(f, info);
    }

    // Topological order of fragments along boundary edges.
    let frag_order = order_fragments(&g, &frag_of, &infos.keys().copied().collect::<Vec<_>>());

    let mut jobs = Vec::new();
    // Boundary node (RS in reduce fragment, or Cut) → intermediate prefix.
    let mut intermediates: HashMap<usize, String> = HashMap::new();
    let mut explain = String::new();

    for f in frag_order {
        let info = &infos[&f];
        let is_reduce = !info.feeding_rs.is_empty();
        if !is_reduce && !info.has_fs && info.sink_cuts.is_empty() {
            // A pure map fragment: executed as part of a shuffle job.
            continue;
        }

        // ----- Output of this job. -------------------------------------
        let sink_count = info.has_fs as usize
            + usize::from(!info.sink_cuts.is_empty())
            + usize::from(is_reduce && !info.sink_rs.is_empty());
        if sink_count != 1 {
            return Err(HiveError::Plan(format!(
                "fragment has {sink_count} output kinds; exactly one supported"
            )));
        }
        let job_idx = jobs.len();
        let output = if info.has_fs {
            JobOutput::Collect
        } else {
            let prefix = format!("{tmp_base}/job-{job_idx}");
            for &cut in &info.sink_cuts {
                intermediates.insert(cut, prefix.clone());
            }
            if is_reduce {
                for &rs in &info.sink_rs {
                    intermediates.insert(rs, prefix.clone());
                }
            }
            JobOutput::Intermediate {
                path_prefix: format!("{prefix}/"),
            }
        };
        // Trim the trailing slash for writes; reads use list(prefix + '/').
        let output = match output {
            JobOutput::Intermediate { path_prefix } => JobOutput::Intermediate {
                path_prefix: path_prefix.trim_end_matches('/').to_string(),
            },
            o => o,
        };

        // ----- Map side. -------------------------------------------------
        let map_inputs = if is_reduce {
            build_map_inputs(&g, &frag_of, &info.feeding_rs, &intermediates)?
        } else {
            // Map-only job: the fragment itself is the map side.
            build_maponly_input(&g, &info.nodes, &intermediates)?
        };

        // Side inputs (MapJoin hash tables) from all map nodes.
        let mut side_inputs = Vec::new();
        for mi in &map_inputs {
            for &n in &mi.nodes {
                if let PlanOp::MapJoin { sides } = &g.node(n).op {
                    for s in sides {
                        side_inputs.push(SideInput {
                            alias: s.alias.clone(),
                            paths: s.table.paths.clone(),
                            format: s.table.format,
                            schema: s.table.schema.clone(),
                            projection: Some(s.projection.clone()),
                        });
                    }
                }
            }
        }

        // num_reducers: agree across feeding RSs.
        let num_reducers = if is_reduce {
            let mut n = 0usize;
            for &rs in &info.feeding_rs {
                let PlanOp::ReduceSink { num_reducers, .. } = &g.node(rs).op else {
                    unreachable!()
                };
                n = n.max(*num_reducers);
            }
            // A global aggregation (empty keys) forces one reducer.
            for &rs in &info.feeding_rs {
                if let PlanOp::ReduceSink { keys, .. } = &g.node(rs).op {
                    if keys.is_empty() {
                        n = 1;
                    }
                }
            }
            n.max(1)
        } else {
            0
        };

        // ----- JobSpec inputs and factories. ------------------------------
        let vectorize_on = conf.get_bool(keys::VECTORIZED_ENABLED)?;
        let vectorize_mapjoin = conf.get_bool(keys::VECTORIZED_MAPJOIN_ENABLED)?;
        let vectorize_filter = conf.get_bool(keys::VECTORIZED_FILTER_ENABLED)?;
        let vectorize_select = conf.get_bool(keys::VECTORIZED_SELECT_ENABLED)?;
        let vectorize_groupby = conf.get_bool(keys::VECTORIZED_GROUPBY_ENABLED)?;
        let vectorize_reducesink = conf.get_bool(keys::VECTORIZED_REDUCESINK_ENABLED)?;
        let vectorize_acid = conf.get_bool(keys::VECTORIZED_ACID_ENABLED)?;
        let batch_size = conf.get_usize(keys::VECTORIZED_BATCH_SIZE)?;
        let mut job_inputs = Vec::new();
        for mi in &map_inputs {
            match (mi.scan, &mi.intermediate) {
                (Some(scan_id), _) => {
                    let PlanOp::TableScan {
                        table,
                        projection,
                        sarg,
                        ..
                    } = &g.node(scan_id).op
                    else {
                        unreachable!()
                    };
                    // Predicate pushdown stays on for ACID scans: delete
                    // masks address rows by (file, ordinal) and the ORC
                    // reader reports skip-aware ordinals, so index-group
                    // skipping no longer desynchronizes the mask. A SARG is
                    // an overapproximation — rows it prunes could never
                    // reach the output, deleted or not.
                    job_inputs.push(JobInput {
                        alias: mi.alias.clone(),
                        paths: table.paths.clone(),
                        format: table.format,
                        schema: table.schema.clone(),
                        projection: Some(projection.clone()),
                        sarg: sarg.clone(),
                        overlay: table.acid.clone(),
                    });
                }
                (None, Some((prefix, schema_node))) => {
                    let schema_cols = &g.node(*schema_node).schema;
                    let schema = hive_common::Schema::new(
                        schema_cols
                            .iter()
                            .map(|c| hive_common::Field::new(c.name.clone(), c.data_type.clone()))
                            .collect(),
                    );
                    job_inputs.push(JobInput {
                        alias: mi.alias.clone(),
                        paths: vec![format!("{prefix}/")],
                        format: hive_formats::FormatKind::Sequence,
                        schema,
                        projection: None,
                        sarg: None,
                        overlay: None,
                    });
                }
                _ => return Err(HiveError::Plan("map input without a source".into())),
            }
        }

        let map_spec = Arc::new(MapBuildSpec {
            nodes: g.nodes.clone(),
            inputs: map_inputs.clone(),
            num_reducers,
            vectorize: vectorize_on,
            vectorize_mapjoin,
            vectorize_filter,
            vectorize_select,
            vectorize_groupby,
            vectorize_reducesink,
            vectorize_acid,
            batch_size,
        });
        let map_factory: MapPipelineFactory = {
            let spec = map_spec.clone();
            Arc::new(move |side| spec.build(side))
        };

        let reduce_factory: Option<ReducePipelineFactory> = if is_reduce {
            let spec = Arc::new(ReduceBuildSpec {
                nodes: g.nodes.clone(),
                fragment: info.nodes.clone(),
                feeding_rs: info.feeding_rs.clone(),
            });
            Some(Arc::new(move || spec.build()))
        } else {
            None
        };

        let name = format!(
            "job-{job_idx}[{}]",
            if is_reduce { "map+reduce" } else { "map-only" }
        );
        let spec = JobSpec {
            name,
            inputs: job_inputs,
            side_inputs,
            map_factory,
            reduce_factory,
            num_reducers,
            output,
        };
        explain.push_str(&spec.describe());
        explain.push('\n');
        jobs.push(spec);
    }

    explain.push_str("\noperator tree:\n");
    explain.push_str(&g.explain());

    Ok(CompiledQuery {
        jobs,
        order_by: t.order_by.clone(),
        limit: t.limit,
        output_names: t.output_names.clone(),
        explain,
        tmp_base,
    })
}

/// Insert IntermediateCuts: (a) mandatory boundaries before Map-phase-only
/// operators (MapJoin, map-side GroupBy) that ended up downstream of a
/// Reduce phase — Hive materializes a temp file there and continues in the
/// next job's Map phase — and (b) boundaries after MapJoins per the
/// Section 5.1 merging rule.
fn insert_cuts(g: &mut PlanGraph, conf: &HiveConf) -> Result<()> {
    // (a) Mandatory cuts; iterate to a fixpoint since each cut changes the
    //     fragment structure.
    loop {
        let frag_of = fragments(g);
        let mut receives: std::collections::BTreeSet<usize> = Default::default();
        for node in &g.nodes {
            if !node.alive {
                continue;
            }
            for &p in &node.parents {
                if matches!(
                    g.node(p).op,
                    PlanOp::ReduceSink {
                        degenerate: false,
                        ..
                    }
                ) && frag_of.get(&p) != frag_of.get(&node.id)
                {
                    if let Some(&f) = frag_of.get(&node.id) {
                        receives.insert(f);
                    }
                }
            }
        }
        let mut target = None;
        for node in &g.nodes {
            if !node.alive {
                continue;
            }
            let map_phase_only = matches!(
                node.op,
                PlanOp::MapJoin { .. }
                    | PlanOp::GroupBy {
                        phase: GroupByPhase::MapHash,
                        ..
                    }
            );
            if map_phase_only
                && frag_of.get(&node.id).is_some_and(|f| receives.contains(f))
                && !node
                    .parents
                    .iter()
                    .all(|&p| matches!(g.node(p).op, PlanOp::IntermediateCut))
            {
                target = Some(node.id);
                break;
            }
        }
        let Some(n) = target else { break };
        let parent = g.node(n).parents[0];
        let schema = g.node(parent).schema.clone();
        g.node_mut(parent).children.retain(|&c| c != n);
        let cut = g.add(PlanOp::IntermediateCut, schema, vec![parent]);
        g.node_mut(cut).children.push(n);
        for slot in g.node_mut(n).parents.iter_mut() {
            if *slot == parent {
                *slot = cut;
            }
        }
    }

    // (b) The Section 5.1 merging rule.
    let merge = conf.get_bool(keys::MERGE_MAPONLY_JOBS)?;
    let threshold = conf.get_usize(keys::MERGE_MAPONLY_THRESHOLD)? as u64;
    let frag_of = fragments(g);
    // Total hash-table bytes per fragment.
    let mut side_bytes: BTreeMap<usize, u64> = BTreeMap::new();
    for n in g.find(|n| matches!(n.op, PlanOp::MapJoin { .. })) {
        if let PlanOp::MapJoin { sides } = &g.node(n).op {
            let f = frag_of[&n];
            *side_bytes.entry(f).or_default() +=
                sides.iter().map(|s| s.table.size_bytes).sum::<u64>();
        }
    }
    for mj in g.find(|n| matches!(n.op, PlanOp::MapJoin { .. })) {
        let cut_here = !merge || side_bytes[&frag_of[&mj]] > threshold;
        if !cut_here {
            continue;
        }
        let children = g.node(mj).children.clone();
        let schema = g.node(mj).schema.clone();
        for child in children {
            // parent → cut → child.
            g.node_mut(mj).children.retain(|&c| c != child);
            let cut = g.add(PlanOp::IntermediateCut, schema.clone(), vec![mj]);
            g.node_mut(cut).children.push(child);
            for slot in g.node_mut(child).parents.iter_mut() {
                if *slot == mj {
                    *slot = cut;
                }
            }
        }
    }
    Ok(())
}

/// Topologically order fragments along boundary (RS/Cut → child) edges.
fn order_fragments(g: &PlanGraph, frag_of: &BTreeMap<usize, usize>, frags: &[usize]) -> Vec<usize> {
    let mut deps: BTreeMap<usize, Vec<usize>> = BTreeMap::new(); // frag → consumers
    let mut indeg: BTreeMap<usize, usize> = frags.iter().map(|&f| (f, 0)).collect();
    for node in &g.nodes {
        if !node.alive {
            continue;
        }
        if matches!(
            node.op,
            PlanOp::ReduceSink {
                degenerate: false,
                ..
            } | PlanOp::IntermediateCut
        ) {
            let pf = frag_of[&node.id];
            for &c in &node.children {
                let cf = frag_of[&c];
                if cf != pf {
                    deps.entry(pf).or_default().push(cf);
                    *indeg.get_mut(&cf).unwrap() += 1;
                }
            }
        }
    }
    let mut queue: Vec<usize> = indeg
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&f, _)| f)
        .collect();
    let mut out = Vec::new();
    while let Some(f) = queue.pop() {
        out.push(f);
        if let Some(consumers) = deps.get(&f) {
            for &c in consumers.clone().iter() {
                let d = indeg.get_mut(&c).unwrap();
                *d -= 1;
                if *d == 0 {
                    queue.push(c);
                }
            }
        }
        queue.sort_unstable_by(|a, b| b.cmp(a)); // deterministic
    }
    out
}

/// Map inputs of a shuffle job: one per distinct source feeding its RSs.
fn build_map_inputs(
    g: &PlanGraph,
    frag_of: &BTreeMap<usize, usize>,
    feeding_rs: &[usize],
    intermediates: &HashMap<usize, String>,
) -> Result<Vec<MapInput>> {
    // Tag assignment: feeding RS order.
    let mut inputs: Vec<MapInput> = Vec::new();
    for (tag, &rs) in feeding_rs.iter().enumerate() {
        // Where does this RS's data come from?
        let rs_frag = frag_of[&rs];
        let rs_frag_is_reduce = g.nodes.iter().any(|n| {
            n.alive
                && frag_of.get(&n.id) == Some(&rs_frag)
                && n.parents.iter().any(|&p| {
                    matches!(
                        g.node(p).op,
                        PlanOp::ReduceSink {
                            degenerate: false,
                            ..
                        }
                    ) && frag_of.get(&p) != Some(&rs_frag)
                })
        });
        if rs_frag_is_reduce {
            // The RS executes over the previous job's intermediate output.
            let prefix = intermediates.get(&rs).ok_or_else(|| {
                HiveError::Plan("intermediate path missing for reduce-side RS".into())
            })?;
            let parent = g.node(rs).parents[0];
            inputs.push(MapInput {
                alias: format!("intermediate#{rs}"),
                source: rs,
                scan: None,
                intermediate: Some((prefix.clone(), parent)),
                nodes: vec![rs],
                rs_tags: BTreeMap::from([(rs, tag)]),
            });
            continue;
        }
        // Walk up to the chain's source (scan or cut-child).
        let mut cur = rs;
        let source;
        loop {
            let parents = &g.node(cur).parents;
            if parents.is_empty() {
                source = cur;
                break;
            }
            let p = parents[0];
            if matches!(g.node(p).op, PlanOp::IntermediateCut) {
                source = cur; // chain starts below the cut
                break;
            }
            cur = p;
        }
        // Shared source (merged scans): fold into the existing input.
        if let Some(existing) = inputs.iter_mut().find(|i| i.source == source) {
            existing.rs_tags.insert(rs, tag);
            let chain = chain_nodes(g, source, rs);
            for n in chain {
                if !existing.nodes.contains(&n) {
                    existing.nodes.push(n);
                }
            }
            continue;
        }
        let nodes = chain_nodes(g, source, rs);
        let (scan, intermediate, alias) = match &g.node(source).op {
            PlanOp::TableScan { alias, .. } => (Some(source), None, format!("{alias}#{source}")),
            _ => {
                // Source sits below a cut: read that cut's intermediate.
                let cut = g.node(source).parents[0];
                let prefix = intermediates
                    .get(&cut)
                    .ok_or_else(|| HiveError::Plan("intermediate path missing for cut".into()))?;
                (None, Some((prefix.clone(), cut)), format!("cut#{cut}"))
            }
        };
        inputs.push(MapInput {
            alias,
            source,
            scan,
            intermediate,
            nodes,
            rs_tags: BTreeMap::from([(rs, tag)]),
        });
    }
    Ok(inputs)
}

/// The single map input of a map-only job (whole fragment).
fn build_maponly_input(
    g: &PlanGraph,
    nodes: &[usize],
    intermediates: &HashMap<usize, String>,
) -> Result<Vec<MapInput>> {
    // Source: the unique node without in-fragment parents.
    let mut sources = Vec::new();
    for &n in nodes {
        let parents = &g.node(n).parents;
        if parents.is_empty() {
            sources.push(n);
        } else if parents
            .iter()
            .all(|&p| matches!(g.node(p).op, PlanOp::IntermediateCut))
        {
            sources.push(n);
        }
    }
    if sources.len() != 1 {
        return Err(HiveError::Plan(format!(
            "map-only job must have exactly one source, found {}",
            sources.len()
        )));
    }
    let source = sources[0];
    let (scan, intermediate, alias) = match &g.node(source).op {
        PlanOp::TableScan { alias, .. } => (Some(source), None, format!("{alias}#{source}")),
        _ => {
            let cut = g.node(source).parents[0];
            let prefix = intermediates
                .get(&cut)
                .ok_or_else(|| HiveError::Plan("intermediate path missing for cut".into()))?;
            (None, Some((prefix.clone(), cut)), format!("cut#{cut}"))
        }
    };
    Ok(vec![MapInput {
        alias,
        source,
        scan,
        intermediate,
        nodes: nodes.to_vec(),
        rs_tags: BTreeMap::new(),
    }])
}

/// Plan nodes on paths `source → sink` (inclusive).
fn chain_nodes(g: &PlanGraph, source: usize, sink: usize) -> Vec<usize> {
    // Descendants of source.
    let mut desc = vec![false; g.nodes.len()];
    let mut stack = vec![source];
    while let Some(n) = stack.pop() {
        if desc[n] {
            continue;
        }
        desc[n] = true;
        if matches!(
            g.node(n).op,
            PlanOp::ReduceSink {
                degenerate: false,
                ..
            } | PlanOp::IntermediateCut
        ) && n != source
        {
            continue; // do not walk past boundaries
        }
        for &c in &g.node(n).children {
            stack.push(c);
        }
    }
    // Ancestors of sink.
    let mut anc = vec![false; g.nodes.len()];
    let mut stack = vec![sink];
    while let Some(n) = stack.pop() {
        if anc[n] {
            continue;
        }
        anc[n] = true;
        if n != source {
            for &p in &g.node(n).parents {
                if desc[p] {
                    stack.push(p);
                }
            }
        }
    }
    (0..g.nodes.len()).filter(|&n| desc[n] && anc[n]).collect()
}

// ---------------------------------------------------------------------------
// Exec-graph construction
// ---------------------------------------------------------------------------

/// Captured state for building map pipelines per task.
struct MapBuildSpec {
    nodes: Vec<PlanNode>,
    inputs: Vec<MapInput>,
    num_reducers: usize,
    vectorize: bool,
    vectorize_mapjoin: bool,
    vectorize_filter: bool,
    vectorize_select: bool,
    vectorize_groupby: bool,
    vectorize_reducesink: bool,
    vectorize_acid: bool,
    batch_size: usize,
}

impl MapBuildSpec {
    fn build(&self, side: &HashMap<String, Vec<Row>>) -> Result<MapPipeline> {
        let mut graph = OperatorGraph::new();
        let mut roots = HashMap::new();
        let mut vector = HashMap::new();
        for mi in &self.inputs {
            // Vectorization applies to single-sink table-scan chains.
            let mut remaining: Vec<usize> = mi.nodes.clone();
            let mut chain: Option<vectorize::VectorizedChain> = None;
            // ACID scans vectorize like any other (gated by the acid
            // knob): the engine unselects deleted ordinals from each batch
            // before it enters the pipeline, so the mask survives the
            // batch-native path.
            let acid_scan = mi.scan.is_some_and(|s| {
                matches!(&self.nodes[s].op, PlanOp::TableScan { table, .. } if table.acid.is_some())
            });
            if self.vectorize
                && mi.scan.is_some()
                && (!acid_scan || self.vectorize_acid)
                && mi.rs_tags.len() <= 1
            {
                let view = vectorize::MapInputView {
                    scan: mi.scan,
                    nodes: &mi.nodes,
                    rs_tags: &mi.rs_tags,
                };
                let opts = vectorize::VectorizeOpts {
                    batch_size: self.batch_size,
                    num_reducers: self.num_reducers.max(1),
                    mapjoin: self.vectorize_mapjoin,
                    filter: self.vectorize_filter,
                    select: self.vectorize_select,
                    groupby: self.vectorize_groupby,
                    reducesink: self.vectorize_reducesink,
                };
                if let Some(c) = vectorize::try_vectorize(&self.nodes, &view, side, &opts)? {
                    remaining.retain(|n| !c.consumed.contains(n));
                    chain = Some(c);
                }
            }

            // Add the batch-native chain first (display order: batches flow
            // scan → ... → sink/bridge), linearly connected.
            let mut stage: Option<hive_mapreduce::job::VectorStage> = None;
            let mut bridge: Option<(usize, std::collections::HashSet<usize>)> = None;
            if let Some(c) = chain {
                let ids: Vec<usize> = c.operators.into_iter().map(|op| graph.add(op)).collect();
                for w in ids.windows(2) {
                    graph.connect(w[0], w[1], None);
                }
                let (&root, &terminal) = (ids.first().unwrap(), ids.last().unwrap());
                stage = Some(hive_mapreduce::job::VectorStage {
                    batch_types: c.batch_types,
                    batch_size: self.batch_size,
                    root,
                    terminal,
                });
                if c.bridged {
                    bridge = Some((terminal, c.consumed));
                }
            }

            // Build exec ops for remaining nodes.
            let mut exec_of: HashMap<usize, usize> = HashMap::new();
            let order = topo(&self.nodes, &remaining);
            for &n in &order {
                if let Some(op) = self.make_map_op(n, side)? {
                    let id = graph.add(op);
                    exec_of.insert(n, id);
                }
            }
            // Edges.
            for &n in &order {
                let Some(&from) = exec_of.get(&n) else {
                    continue;
                };
                for &c in &self.nodes[n].children {
                    if let Some(&to) = exec_of.get(&c) {
                        graph.connect(from, to, None);
                    }
                }
            }

            if let Some((bridge_id, consumed)) = bridge {
                // The RowBridge's rows enter the row-mode graph at the
                // first non-consumed node downstream of the chain.
                let entry = remaining
                    .iter()
                    .copied()
                    .find(|&n| {
                        self.nodes[n]
                            .parents
                            .iter()
                            .any(|p| consumed.contains(p) || *p == mi.source)
                    })
                    .or_else(|| remaining.first().copied())
                    .ok_or_else(|| HiveError::Plan("bridged chain has no row entry".into()))?;
                let entry = *exec_of
                    .get(&entry)
                    .ok_or_else(|| HiveError::Plan("row entry not materialized".into()))?;
                graph.connect(bridge_id, entry, None);
            }

            if let Some(stage) = stage {
                vector.insert(mi.alias.clone(), stage);
                continue; // batches enter at stage.root; no row root
            }

            // Row-mode alias: scan's first exec child, or (for
            // intermediate inputs) the RS itself.
            let first = match mi.scan {
                Some(scan) => {
                    // First node whose parent is the scan.
                    order
                        .iter()
                        .copied()
                        .find(|&n| self.nodes[n].parents.contains(&scan))
                }
                None => Some(mi.source),
            };
            let first = first.ok_or_else(|| HiveError::Plan("map chain has no entry".into()))?;
            let root = *exec_of
                .get(&first)
                .ok_or_else(|| HiveError::Plan("entry not materialized".into()))?;
            // Shared scans need a fan-out point: if the scan has several
            // exec children, interpose a PassThrough.
            let root = if let Some(scan) = mi.scan {
                let heads: Vec<usize> = order
                    .iter()
                    .copied()
                    .filter(|&n| self.nodes[n].parents.contains(&scan))
                    .filter_map(|n| exec_of.get(&n).copied())
                    .collect();
                if heads.len() > 1 {
                    let tee = graph.add(Box::new(ops::PassThroughOperator));
                    for h in heads {
                        graph.connect(tee, h, None);
                    }
                    tee
                } else {
                    root
                }
            } else {
                root
            };
            roots.insert(mi.alias.clone(), root);
        }
        Ok(MapPipeline {
            graph,
            roots,
            vector,
        })
    }

    /// Translate one map-side plan node into an exec operator.
    fn make_map_op(
        &self,
        n: usize,
        side: &HashMap<String, Vec<Row>>,
    ) -> Result<Option<Box<dyn hive_exec::graph::Operator>>> {
        let node = &self.nodes[n];
        Ok(Some(match &node.op {
            PlanOp::TableScan { .. } => return Ok(None),
            PlanOp::Filter { predicate } => Box::new(ops::FilterOperator {
                predicate: predicate.clone(),
            }),
            PlanOp::Select { exprs } => Box::new(ops::SelectOperator {
                exprs: exprs.clone(),
            }),
            PlanOp::Limit(k) => Box::new(ops::LimitOperator::new(*k)),
            PlanOp::GroupBy {
                phase: GroupByPhase::MapHash,
                keys,
                aggs,
            } => Box::new(ops::GroupByOperator::new(
                keys.clone(),
                aggs.iter()
                    .map(|a| ops::AggSpec {
                        function: a.function,
                        mode: AggMode::Partial,
                        arg: a.arg.clone(),
                    })
                    .collect(),
                ops::GroupByMode::Hash,
            )),
            PlanOp::MapJoin { sides } => {
                let mut tables = Vec::with_capacity(sides.len());
                for s in sides {
                    let rows = side.get(&s.alias).ok_or_else(|| {
                        HiveError::Execution(format!("side input `{}` missing", s.alias))
                    })?;
                    // Apply the build filter and prepend key columns so the
                    // stored row layout is keys ++ columns.
                    let mut built = Vec::with_capacity(rows.len());
                    for r in rows {
                        if let Some(f) = &s.build_filter {
                            if !f.eval_predicate(r)? {
                                continue;
                            }
                        }
                        let mut vals: Vec<Value> = Vec::with_capacity(s.width);
                        for k in &s.build_keys {
                            vals.push(k.eval(r)?);
                        }
                        vals.extend(r.values().iter().cloned());
                        built.push(Row::new(vals));
                    }
                    // Hash on the prepended key columns.
                    let nk = s.build_keys.len();
                    let hash_keys: Vec<ExprNode> = (0..nk).map(ExprNode::col).collect();
                    tables.push(ops::MapJoinTable::build(
                        &built,
                        &hash_keys,
                        s.stream_keys.clone(),
                        s.join_type,
                        s.width,
                    )?);
                }
                Box::new(ops::MapJoinOperator { tables })
            }
            PlanOp::ReduceSink {
                keys,
                values,
                degenerate,
                ..
            } => {
                if *degenerate {
                    let mut exprs = keys.clone();
                    exprs.extend(values.iter().cloned());
                    Box::new(ops::SelectOperator { exprs })
                } else {
                    let tag = self
                        .inputs
                        .iter()
                        .find_map(|mi| mi.rs_tags.get(&n))
                        .copied()
                        .unwrap_or(0);
                    Box::new(ops::ReduceSinkOperator {
                        key_exprs: keys.clone(),
                        value_exprs: values.clone(),
                        tag,
                        num_reducers: self.num_reducers.max(1),
                    })
                }
            }
            PlanOp::FileSink | PlanOp::IntermediateCut => Box::new(ops::FileSinkOperator),
            PlanOp::GroupBy { .. } | PlanOp::Join { .. } => {
                return Err(HiveError::Plan(format!(
                    "{} cannot run in a Map phase",
                    node.op.kind_name()
                )))
            }
        }))
    }
}

/// Captured state for building reduce pipelines per task.
struct ReduceBuildSpec {
    nodes: Vec<PlanNode>,
    fragment: Vec<usize>,
    feeding_rs: Vec<usize>,
}

impl ReduceBuildSpec {
    fn build(&self) -> Result<(OperatorGraph, usize)> {
        let mut graph = OperatorGraph::new();
        let mut exec_of: HashMap<usize, usize> = HashMap::new();
        let order = topo(&self.nodes, &self.fragment);

        // 1. Operators.
        for &n in &order {
            let node = &self.nodes[n];
            let op: Box<dyn hive_exec::graph::Operator> = match &node.op {
                PlanOp::Filter { predicate } => Box::new(ops::FilterOperator {
                    predicate: predicate.clone(),
                }),
                PlanOp::Select { exprs } => Box::new(ops::SelectOperator {
                    exprs: exprs.clone(),
                }),
                PlanOp::Limit(k) => Box::new(ops::LimitOperator::new(*k)),
                PlanOp::GroupBy { phase, keys, aggs } => {
                    let mode = match phase {
                        GroupByPhase::ReduceMerge => AggMode::Final,
                        GroupByPhase::ReduceComplete => AggMode::Complete,
                        GroupByPhase::MapHash => {
                            return Err(HiveError::Plan(
                                "map-side GroupBy in a Reduce phase".into(),
                            ))
                        }
                    };
                    Box::new(ops::GroupByOperator::new(
                        keys.clone(),
                        aggs.iter()
                            .map(|a| ops::AggSpec {
                                function: a.function,
                                mode,
                                arg: a.arg.clone(),
                            })
                            .collect(),
                        ops::GroupByMode::Streaming,
                    ))
                }
                PlanOp::Join { kind, input_widths } => Box::new(ops::CommonJoinOperator::new(
                    input_widths.len(),
                    *kind,
                    input_widths.clone(),
                )),
                // A degenerate RS executes as a projection in place.
                PlanOp::ReduceSink {
                    keys,
                    values,
                    degenerate: true,
                    ..
                } => {
                    let mut exprs = keys.clone();
                    exprs.extend(values.iter().cloned());
                    Box::new(ops::SelectOperator { exprs })
                }
                // Sinks: FileSink collects; a sink RS or Cut writes the
                // job's intermediate output.
                PlanOp::FileSink | PlanOp::ReduceSink { .. } | PlanOp::IntermediateCut => {
                    Box::new(ops::FileSinkOperator)
                }
                PlanOp::TableScan { .. } | PlanOp::MapJoin { .. } => {
                    return Err(HiveError::Plan(format!(
                        "{} cannot run in a Reduce phase",
                        node.op.kind_name()
                    )))
                }
            };
            exec_of.insert(n, graph.add(op));
        }

        // 2. A Mux in front of every major operator (paper Figure 5).
        let mut mux_of: HashMap<usize, usize> = HashMap::new();
        for &n in &order {
            if self.nodes[n].op.is_major() {
                // Parent count = chain parents inside the fragment + feeding
                // RS routes.
                let n_parents = self.nodes[n].parents.len().max(1);
                let mux = graph.add(Box::new(ops::MuxOperator::new(n_parents, None)));
                mux_of.insert(n, mux);
                graph.connect(mux, exec_of[&n], None);
            }
        }

        // 3. Demux entry: compute routes and targets first, then add the
        //    operator and its edges (Figure 5's tag remapping).
        let mut routes = Vec::new();
        let mut targets = Vec::new();
        for &rs in &self.feeding_rs {
            let consumer = *self.nodes[rs]
                .children
                .first()
                .ok_or_else(|| HiveError::Plan("feeding ReduceSink has no consumer".into()))?;
            let old_tag = self.nodes[consumer]
                .parents
                .iter()
                .position(|&p| p == rs)
                .unwrap_or(0);
            let target = mux_of
                .get(&consumer)
                .copied()
                .or_else(|| exec_of.get(&consumer).copied())
                .ok_or_else(|| HiveError::Plan("feeding RS consumer not in fragment".into()))?;
            routes.push((routes.len(), old_tag));
            targets.push(target);
        }
        let demux = graph.add(Box::new(ops::DemuxOperator { routes }));
        for t in targets {
            graph.connect(demux, t, None);
        }

        // 4. Chain edges within the fragment (into Muxes where needed).
        for &n in &order {
            for &c in &self.nodes[n].children {
                if !self.fragment.contains(&c) {
                    continue;
                }
                let from = exec_of[&n];
                match mux_of.get(&c) {
                    Some(&mux) => {
                        let slot = self.nodes[c]
                            .parents
                            .iter()
                            .position(|&p| p == n)
                            .unwrap_or(0);
                        graph.connect(from, mux, Some(slot));
                    }
                    None => {
                        graph.connect(from, exec_of[&c], None);
                    }
                }
            }
        }

        Ok((graph, demux))
    }
}

/// Topological order of `subset` by plan edges.
fn topo(nodes: &[PlanNode], subset: &[usize]) -> Vec<usize> {
    let inset: std::collections::HashSet<usize> = subset.iter().copied().collect();
    let mut indeg: HashMap<usize, usize> = subset.iter().map(|&n| (n, 0)).collect();
    for &n in subset {
        for &c in &nodes[n].children {
            if inset.contains(&c) {
                *indeg.get_mut(&c).unwrap() += 1;
            }
        }
    }
    let mut queue: Vec<usize> = subset.iter().copied().filter(|n| indeg[n] == 0).collect();
    queue.sort_unstable();
    let mut out = Vec::new();
    while let Some(n) = queue.pop() {
        out.push(n);
        for &c in &nodes[n].children {
            if let Some(d) = indeg.get_mut(&c) {
                *d -= 1;
                if *d == 0 {
                    queue.push(c);
                }
            }
        }
        queue.sort_unstable();
    }
    out
}
