//! The operator DAG the planner builds and optimizes — the "operator tree"
//! of paper Section 2, with ReduceSinkOperators marking every Map/Reduce
//! boundary.

use crate::catalog::TableMeta;
use hive_common::{DataType, HiveError, Result};
use hive_exec::agg::AggFunction;
use hive_exec::expr::{BinaryOp, ExprNode};
use hive_exec::operators::JoinType;
use hive_formats::SearchArgument;

/// A named, typed output column of a plan operator.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnInfo {
    pub name: String,
    pub data_type: DataType,
}

impl ColumnInfo {
    pub fn new(name: impl Into<String>, data_type: DataType) -> ColumnInfo {
        ColumnInfo {
            name: name.into(),
            data_type,
        }
    }
}

/// Which phase a GroupBy runs in (Hive's map-side aggregation split).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupByPhase {
    /// Map-side hash aggregation producing partial states.
    MapHash,
    /// Reduce-side streaming merge of partials into final values.
    ReduceMerge,
    /// Reduce-side streaming aggregation of *raw* inputs — produced by the
    /// Correlation Optimizer when it removes the map-side partial GroupBy
    /// together with its ReduceSink.
    ReduceComplete,
}

/// One aggregate call.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    pub function: AggFunction,
    /// Input expression over the operator's input row (None for COUNT(*)).
    pub arg: Option<ExprNode>,
    pub output_name: String,
    /// Final output type.
    pub output_type: DataType,
}

/// A small side of a Map Join (the built hash table).
#[derive(Debug, Clone)]
pub struct MapJoinSide {
    pub alias: String,
    pub table: TableMeta,
    /// Columns of the small table that are loaded.
    pub projection: Vec<usize>,
    /// Filter applied while building the hash table (over projected row).
    pub build_filter: Option<ExprNode>,
    /// Key expressions over the projected small row.
    pub build_keys: Vec<ExprNode>,
    /// Key expressions over the big-side stream row at probe time.
    pub stream_keys: Vec<ExprNode>,
    pub join_type: JoinType,
    /// Projected small-row width (appended to the stream on match).
    pub width: usize,
}

/// A plan operator.
#[derive(Debug, Clone)]
pub enum PlanOp {
    TableScan {
        alias: String,
        table: TableMeta,
        /// Pruned top-level columns, in scan output order.
        projection: Vec<usize>,
        /// Predicates pushed to the storage reader.
        sarg: Option<SearchArgument>,
    },
    Filter {
        predicate: ExprNode,
    },
    Select {
        exprs: Vec<ExprNode>,
    },
    ReduceSink {
        keys: Vec<ExprNode>,
        values: Vec<ExprNode>,
        num_reducers: usize,
        /// Set by the Correlation Optimizer: this sink's repartitioning is
        /// redundant, so it executes as a plain projection (keys ++ values)
        /// and is no longer a job boundary.
        degenerate: bool,
    },
    GroupBy {
        phase: GroupByPhase,
        /// Key expressions over the input row.
        keys: Vec<ExprNode>,
        aggs: Vec<AggCall>,
    },
    /// Reduce-side join; parents are its ReduceSinks in tag order.
    Join {
        kind: JoinType,
        /// Input row widths (key + value), in tag order.
        input_widths: Vec<usize>,
    },
    /// Map-side join; the single parent is the big-table stream.
    MapJoin {
        sides: Vec<MapJoinSide>,
    },
    Limit(u64),
    /// A forced job boundary: the producing job writes an intermediate
    /// file here and the consumer re-reads it. Inserted after MapJoins when
    /// Map-only-job merging (Section 5.1) is disabled.
    IntermediateCut,
    FileSink,
}

impl PlanOp {
    pub fn kind_name(&self) -> &'static str {
        match self {
            PlanOp::TableScan { .. } => "TableScan",
            PlanOp::Filter { .. } => "Filter",
            PlanOp::Select { .. } => "Select",
            PlanOp::ReduceSink { .. } => "ReduceSink",
            PlanOp::GroupBy { .. } => "GroupBy",
            PlanOp::Join { .. } => "Join",
            PlanOp::MapJoin { .. } => "MapJoin",
            PlanOp::Limit(_) => "Limit",
            PlanOp::IntermediateCut => "IntermediateCut",
            PlanOp::FileSink => "FileSink",
        }
    }

    /// Is this a *major* operator — one that requires its input partitioned
    /// a certain way (paper Section 3's terminology)?
    pub fn is_major(&self) -> bool {
        matches!(
            self,
            PlanOp::Join { .. }
                | PlanOp::GroupBy {
                    phase: GroupByPhase::ReduceMerge | GroupByPhase::ReduceComplete,
                    ..
                }
        )
    }
}

/// A node in the plan DAG. Following the paper's orientation, `children`
/// point *downstream* (toward the FileSink) and `parents` upstream.
#[derive(Debug, Clone)]
pub struct PlanNode {
    pub id: usize,
    pub op: PlanOp,
    /// Output schema of this operator.
    pub schema: Vec<ColumnInfo>,
    pub children: Vec<usize>,
    /// Ordered: a Join's parents are its ReduceSinks in tag order.
    pub parents: Vec<usize>,
    pub alive: bool,
}

/// The operator DAG.
#[derive(Debug, Clone, Default)]
pub struct PlanGraph {
    pub nodes: Vec<PlanNode>,
}

impl PlanGraph {
    pub fn add(&mut self, op: PlanOp, schema: Vec<ColumnInfo>, parents: Vec<usize>) -> usize {
        let id = self.nodes.len();
        for &p in &parents {
            self.nodes[p].children.push(id);
        }
        self.nodes.push(PlanNode {
            id,
            op,
            schema,
            children: Vec::new(),
            parents,
            alive: true,
        });
        id
    }

    pub fn node(&self, id: usize) -> &PlanNode {
        &self.nodes[id]
    }

    pub fn node_mut(&mut self, id: usize) -> &mut PlanNode {
        &mut self.nodes[id]
    }

    /// Remove `id`, splicing each parent directly to each child (keeping
    /// the child's parent-slot position, so join tags are preserved).
    pub fn splice_out(&mut self, id: usize) -> Result<()> {
        let parents = self.nodes[id].parents.clone();
        let children = self.nodes[id].children.clone();
        if parents.len() > 1 && children.len() > 1 {
            return Err(HiveError::Plan(
                "cannot splice out a node with multiple parents and children".into(),
            ));
        }
        for &p in &parents {
            self.nodes[p].children.retain(|&c| c != id);
            self.nodes[p].children.extend(children.iter().copied());
        }
        for &c in &children {
            for slot in self.nodes[c].parents.iter_mut() {
                if *slot == id {
                    *slot = parents[0];
                }
            }
        }
        self.nodes[id].alive = false;
        self.nodes[id].parents.clear();
        self.nodes[id].children.clear();
        Ok(())
    }

    /// All live node ids whose op is a FileSink.
    pub fn file_sinks(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .filter(|n| n.alive && matches!(n.op, PlanOp::FileSink))
            .map(|n| n.id)
            .collect()
    }

    /// All live TableScan ids.
    pub fn scans(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .filter(|n| n.alive && matches!(n.op, PlanOp::TableScan { .. }))
            .map(|n| n.id)
            .collect()
    }

    /// Live nodes matching a predicate.
    pub fn find(&self, pred: impl Fn(&PlanNode) -> bool) -> Vec<usize> {
        self.nodes
            .iter()
            .filter(|n| n.alive && pred(n))
            .map(|n| n.id)
            .collect()
    }

    /// Indented EXPLAIN-style rendering, one tree per FileSink.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        for fs in self.file_sinks() {
            self.explain_node(fs, 0, &mut out);
        }
        out
    }

    fn explain_node(&self, id: usize, depth: usize, out: &mut String) {
        let n = &self.nodes[id];
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!("#{} {}", id, n.op.kind_name()));
        match &n.op {
            PlanOp::TableScan {
                alias,
                table,
                projection,
                sarg,
            } => {
                out.push_str(&format!(
                    " {}[{}] cols {:?}{}",
                    alias,
                    table.name,
                    projection,
                    if sarg.is_some() { " +sarg" } else { "" }
                ));
            }
            PlanOp::ReduceSink {
                keys,
                num_reducers,
                degenerate,
                ..
            } => {
                out.push_str(&format!(
                    " {} key(s), {num_reducers} reducer(s){}",
                    keys.len(),
                    if *degenerate { " [degenerate]" } else { "" }
                ));
            }
            PlanOp::GroupBy { phase, keys, aggs } => {
                out.push_str(&format!(
                    " {:?} {} key(s) {} agg(s)",
                    phase,
                    keys.len(),
                    aggs.len()
                ));
            }
            PlanOp::Join { kind, input_widths } => {
                out.push_str(&format!(" {:?} {} inputs", kind, input_widths.len()));
            }
            PlanOp::MapJoin { sides } => {
                let names: Vec<&str> = sides.iter().map(|s| s.alias.as_str()).collect();
                out.push_str(&format!(" small: {names:?}"));
            }
            _ => {}
        }
        out.push('\n');
        for &p in &n.parents {
            self.explain_node(p, depth + 1, out);
        }
    }
}

/// Infer the output type of an expression over an input schema.
pub fn expr_type(e: &ExprNode, input: &[ColumnInfo]) -> Result<DataType> {
    Ok(match e {
        ExprNode::Column(i) => input
            .get(*i)
            .ok_or_else(|| HiveError::Plan(format!("column {i} out of plan schema range")))?
            .data_type
            .clone(),
        ExprNode::Literal(v) => v.data_type().unwrap_or(DataType::String),
        ExprNode::Binary { op, left, right } => {
            use BinaryOp::*;
            match op {
                And | Or | Eq | NotEq | Lt | LtEq | Gt | GtEq => DataType::Boolean,
                Divide => DataType::Double,
                _ => {
                    let lt = expr_type(left, input)?;
                    let rt = expr_type(right, input)?;
                    if lt == DataType::Double || rt == DataType::Double {
                        DataType::Double
                    } else {
                        DataType::Int
                    }
                }
            }
        }
        ExprNode::Unary { op, expr } => match op {
            hive_exec::expr::UnaryOp::Not => DataType::Boolean,
            hive_exec::expr::UnaryOp::Neg => expr_type(expr, input)?,
        },
        ExprNode::Between { .. } | ExprNode::IsNull { .. } | ExprNode::InList { .. } => {
            DataType::Boolean
        }
        ExprNode::Cast { target, .. } => target.clone(),
        ExprNode::Case {
            branches,
            else_value,
        } => {
            if let Some((_, v)) = branches.first() {
                expr_type(v, input)?
            } else if let Some(e) = else_value {
                expr_type(e, input)?
            } else {
                DataType::String
            }
        }
    })
}

/// The result type of an aggregate over an argument type.
pub fn agg_output_type(f: AggFunction, arg: Option<&DataType>) -> DataType {
    match f {
        AggFunction::CountStar | AggFunction::Count => DataType::Int,
        AggFunction::Avg => DataType::Double,
        AggFunction::Sum => match arg {
            Some(DataType::Double) => DataType::Double,
            _ => DataType::Int,
        },
        AggFunction::Min | AggFunction::Max => arg.cloned().unwrap_or(DataType::String),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_common::Value;

    fn scan_meta() -> TableMeta {
        TableMeta {
            name: "t".into(),
            schema: hive_common::Schema::parse(&[("a", "bigint")]).unwrap(),
            format: hive_formats::FormatKind::Orc,
            paths: vec!["/w/t".into()],
            size_bytes: 10,
            acid: None,
        }
    }

    #[test]
    fn add_and_splice() {
        let mut g = PlanGraph::default();
        let ts = g.add(
            PlanOp::TableScan {
                alias: "t".into(),
                table: scan_meta(),
                projection: vec![0],
                sarg: None,
            },
            vec![ColumnInfo::new("a", DataType::Int)],
            vec![],
        );
        let f = g.add(
            PlanOp::Filter {
                predicate: ExprNode::lit(Value::Boolean(true)),
            },
            vec![ColumnInfo::new("a", DataType::Int)],
            vec![ts],
        );
        let fs = g.add(PlanOp::FileSink, vec![], vec![f]);
        assert_eq!(g.node(fs).parents, vec![f]);
        g.splice_out(f).unwrap();
        assert_eq!(g.node(fs).parents, vec![ts]);
        assert_eq!(g.node(ts).children, vec![fs]);
        assert!(!g.node(f).alive);
    }

    #[test]
    fn expr_types() {
        let input = vec![
            ColumnInfo::new("a", DataType::Int),
            ColumnInfo::new("b", DataType::Double),
        ];
        let add = ExprNode::binary(BinaryOp::Add, ExprNode::col(0), ExprNode::col(1));
        assert_eq!(expr_type(&add, &input).unwrap(), DataType::Double);
        let ii = ExprNode::binary(BinaryOp::Multiply, ExprNode::col(0), ExprNode::col(0));
        assert_eq!(expr_type(&ii, &input).unwrap(), DataType::Int);
        let div = ExprNode::binary(BinaryOp::Divide, ExprNode::col(0), ExprNode::col(0));
        assert_eq!(expr_type(&div, &input).unwrap(), DataType::Double);
        let cmp = ExprNode::binary(BinaryOp::Lt, ExprNode::col(0), ExprNode::col(1));
        assert_eq!(expr_type(&cmp, &input).unwrap(), DataType::Boolean);
    }

    #[test]
    fn agg_types() {
        assert_eq!(agg_output_type(AggFunction::Count, None), DataType::Int);
        assert_eq!(
            agg_output_type(AggFunction::Sum, Some(&DataType::Double)),
            DataType::Double
        );
        assert_eq!(
            agg_output_type(AggFunction::Avg, Some(&DataType::Int)),
            DataType::Double
        );
        assert_eq!(
            agg_output_type(AggFunction::Max, Some(&DataType::String)),
            DataType::String
        );
    }
}
