//! Plan-cache keying: SQL normalization and a planning-knob fingerprint.
//!
//! The server's prepared-plan cache keys compiled queries on
//! `(normalized SQL, knob fingerprint, metastore generation, DFS
//! generation watermark)`. The two pieces here make the first half of
//! that key:
//!
//! * [`normalize_sql`] canonicalizes whitespace and case (outside string
//!   literals) so `SELECT a FROM t` and `select  a\nfrom t;` share a
//!   cache entry;
//! * [`knob_fingerprint`] hashes every *planning-relevant* effective knob
//!   so a session that flips, say, `hive.auto.convert.join` can never be
//!   served a plan compiled under the old setting. Knobs that cannot
//!   change the compiled plan — server admission, fault injection, the
//!   plan cache's own switches — are excluded, so toggling them keeps
//!   cache entries reachable.

use hive_common::HiveConf;

/// Knob-key prefixes that cannot affect the *compiled plan* and are
/// therefore excluded from the fingerprint. Everything else is hashed.
const NON_PLANNING_PREFIXES: &[&str] = &[
    "hive.server.",           // admission / workload management
    "hive.session.",          // session identity (pool mapping)
    "hive.query.plan.cache.", // the cache's own switches
    "dfs.fault.",             // fault injection perturbs execution, not plans
    "hive.io.cache.",         // block/ORC cache sizing
    "hive.metrics.",          // observability
    "hive.trace.",            // observability
];

fn is_planning_key(key: &str) -> bool {
    !NON_PLANNING_PREFIXES.iter().any(|p| key.starts_with(p))
}

/// Canonical form of a statement for cache lookup: lowercased outside
/// single-quoted string literals, runs of whitespace collapsed to one
/// space, trimmed, trailing `;` stripped. Purely lexical — two statements
/// that normalize equal parse to the same AST.
pub fn normalize_sql(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut in_string = false;
    let mut pending_space = false;
    for c in sql.chars() {
        if in_string {
            out.push(c);
            if c == '\'' {
                in_string = false;
            }
            continue;
        }
        if c.is_whitespace() {
            pending_space = true;
            continue;
        }
        if pending_space {
            if !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
        }
        if c == '\'' {
            in_string = true;
            out.push(c);
        } else {
            out.extend(c.to_lowercase());
        }
    }
    while out.ends_with(';') {
        out.pop();
        while out.ends_with(' ') {
            out.pop();
        }
    }
    out
}

/// FNV-1a 64 over the effective `key=value` pairs of every
/// planning-relevant knob (registry defaults merged with overrides, in
/// sorted key order, so insertion order of `set` calls is irrelevant).
pub fn knob_fingerprint(conf: &HiveConf) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for (k, v) in conf.effective() {
        if !is_planning_key(&k) {
            continue;
        }
        eat(k.as_bytes());
        eat(b"=");
        eat(v.as_bytes());
        eat(b"\n");
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_common::config::keys;

    #[test]
    fn normalization_collapses_case_and_whitespace() {
        assert_eq!(
            normalize_sql("SELECT  a,\n\tb FROM t WHERE a > 1 ;"),
            "select a, b from t where a > 1"
        );
        assert_eq!(normalize_sql("select a from t"), "select a from t");
    }

    #[test]
    fn normalization_preserves_string_literals() {
        assert_eq!(
            normalize_sql("SELECT * FROM t WHERE name = 'Ann  B'"),
            "select * from t where name = 'Ann  B'"
        );
    }

    #[test]
    fn planning_knobs_change_the_fingerprint() {
        let base = HiveConf::new();
        let flipped = HiveConf::new().with(keys::AUTO_CONVERT_JOIN, "false");
        assert_ne!(knob_fingerprint(&base), knob_fingerprint(&flipped));
    }

    #[test]
    fn non_planning_knobs_do_not_change_the_fingerprint() {
        let base = HiveConf::new();
        let tweaked = HiveConf::new()
            .with(keys::SERVER_MAX_CONCURRENT, "7")
            .with(keys::SESSION_USER, "ann")
            .with(keys::PLAN_CACHE_ENABLED, "true")
            .with(keys::PLAN_CACHE_SIZE, "8");
        assert_eq!(knob_fingerprint(&base), knob_fingerprint(&tweaked));
    }

    #[test]
    fn fingerprint_is_stable_across_set_order() {
        let a = HiveConf::new()
            .with(keys::CBO_ENABLE, "false")
            .with(keys::OPT_CORRELATION, "false");
        let b = HiveConf::new()
            .with(keys::OPT_CORRELATION, "false")
            .with(keys::CBO_ENABLE, "false");
        assert_eq!(knob_fingerprint(&a), knob_fingerprint(&b));
    }
}
