#![allow(
    clippy::needless_range_loop,
    clippy::if_same_then_else,
    clippy::only_used_in_recursion,
    clippy::ptr_arg
)]
//! The query planner (paper Sections 2, 5 and 6.4).
//!
//! The planner walks the AST, assembles an operator tree with
//! ReduceSinkOperators at every repartitioning boundary, applies the
//! optimizations the paper describes —
//!
//! * predicate pushdown and column pruning into the scans,
//! * Reduce Join → Map Join conversion,
//! * **elimination of unnecessary Map phases** by merging Map-only jobs
//!   into their child job (Section 5.1),
//! * the **Correlation Optimizer** removing unnecessary shuffles and scans
//!   (Section 5.2), rewiring the Reduce side with Demux/Mux operators,
//! * the rule-based **vectorization pass** replacing eligible map-side
//!   chains with vectorized pipelines (Section 6.4),
//!
//! — and finally compiles the tree into a DAG of MapReduce jobs.

pub mod catalog;
pub mod cbo;
pub mod compile;
pub mod correlation;
pub mod fingerprint;
pub mod mapjoin;
pub mod plan;
pub mod semantic;
pub mod vectorize;

pub use catalog::{Catalog, TableMeta};
pub use compile::{compile, CompiledQuery};
pub use plan::{AggCall, PlanGraph, PlanNode, PlanOp};
pub use semantic::{translate, Translation};

use hive_common::{HiveConf, Result};
use hive_ql::SelectStmt;

/// Full planning: AST → optimized operator DAG → MapReduce job DAG.
pub fn plan_query(
    stmt: &SelectStmt,
    catalog: &dyn Catalog,
    conf: &HiveConf,
) -> Result<CompiledQuery> {
    let stmt = if conf.get_bool(hive_common::config::keys::CBO_ENABLE)? {
        let mut reordered = stmt.clone();
        cbo::reorder_joins(&mut reordered, catalog);
        std::borrow::Cow::Owned(reordered)
    } else {
        std::borrow::Cow::Borrowed(stmt)
    };
    let mut t = translate(&stmt, catalog, conf)?;
    if conf.get_bool(hive_common::config::keys::AUTO_CONVERT_JOIN)? {
        mapjoin::convert_map_joins(&mut t.graph, conf)?;
    }
    if conf.get_bool(hive_common::config::keys::OPT_CORRELATION)? {
        correlation::optimize(&mut t.graph)?;
    }
    compile::compile(&t, conf)
}
