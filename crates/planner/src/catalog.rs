//! The planner's view of the metastore.

use hive_common::Schema;
use hive_formats::{AcidOverlay, FormatKind};

/// Everything the planner needs to know about a table.
#[derive(Debug, Clone)]
pub struct TableMeta {
    pub name: String,
    pub schema: Schema,
    pub format: FormatKind,
    /// Files of the table in the DFS. For ACID tables these are the
    /// snapshot's base + delta files, in manifest order.
    pub paths: Vec<String>,
    /// Total on-disk bytes — drives the Map Join small-table decision.
    pub size_bytes: u64,
    /// ACID merge-on-read state: present when the table has a manifest.
    /// Scans of such tables overlay delete masks onto `paths`.
    pub acid: Option<AcidOverlay>,
}

/// Resolution of table names, implemented by the metastore.
pub trait Catalog {
    fn table(&self, name: &str) -> Option<TableMeta>;
}

/// An in-memory catalog for tests.
#[derive(Debug, Default)]
pub struct StaticCatalog {
    pub tables: Vec<TableMeta>,
}

impl Catalog for StaticCatalog {
    fn table(&self, name: &str) -> Option<TableMeta> {
        let lower = name.to_ascii_lowercase();
        self.tables
            .iter()
            .find(|t| t.name.to_ascii_lowercase() == lower)
            .cloned()
    }
}
