//! The vectorization optimizer (paper Section 6.4): "the planner first
//! generates a non-vectorized plan and then vectorization optimization is
//! invoked if configured. The vectorization optimization first validates
//! the plan to ensure vectorization is applicable to the operators and
//! expressions used in the plan. If validation succeeds, the optimizer ...
//! replaces each expression tree with corresponding vectorized
//! expressions."
//!
//! Here the pass runs per map-side scan chain: a prefix of
//! Filter / Select / MapJoin / GroupBy(MapHash) / ReduceSink operators over
//! primitive columns is replaced by batch-native exec-graph nodes fed by the
//! format's vectorized reader. A fully vectorized chain ends in a batch
//! shuffle sink (`VectorReduceSink`, or the fused `VectorGroupBySink`); a
//! partially vectorized chain ends in exactly one `RowBridge`, where rows
//! re-enter the row-mode graph at the first non-vectorizable operator.
//! Per-operator gates (`hive.vectorized.execution.<op>.enabled`) break the
//! chain at the gated operator, falling back the same way.

use crate::plan::{GroupByPhase, PlanNode, PlanOp};
use hive_common::{DataType, HiveError, Result, Row, Value};
use hive_exec::agg::AggFunction;
use hive_exec::expr::{BinaryOp, ExprNode, UnaryOp};
use hive_exec::graph::Operator;
use hive_exec::operators::JoinType;
use hive_exec::vector_ops::{
    RowBridgeOperator, VectorGroupBySinkOperator, VectorOpAdapter, VectorReduceSinkOperator,
};
use hive_vector::aggregates::{AggKind, AggSpec, VectorHashAggregator};
use hive_vector::expressions as vx;
use hive_vector::expressions::VectorExpression;
use hive_vector::mapjoin::{KeyPart, MapJoinHashTable, MapJoinKind, VectorMapJoinOperator};
use hive_vector::operators::{VectorFilterOperator, VectorSelectOperator};
use std::collections::{BTreeMap, HashMap, HashSet};

/// The compiler's view of one map input handed to the vectorizer.
pub struct MapInputView<'a> {
    /// The TableScan plan node, when this input reads a base table.
    pub scan: Option<usize>,
    /// Plan node ids belonging to this input's chain.
    pub nodes: &'a [usize],
    /// ReduceSink plan node → shuffle tag.
    pub rs_tags: &'a BTreeMap<usize, usize>,
}

/// Vectorizer configuration derived from the session knobs.
pub struct VectorizeOpts {
    pub batch_size: usize,
    pub num_reducers: usize,
    /// The `hive.vectorized.execution.<op>.enabled` per-operator gates.
    pub mapjoin: bool,
    pub filter: bool,
    pub select: bool,
    pub groupby: bool,
    pub reducesink: bool,
}

/// A compiled batch-native chain: exec-graph operators to run in order,
/// starting from the scan batch.
pub struct VectorizedChain {
    /// Graph nodes in chain order (adapters, sinks, possibly a bridge).
    pub operators: Vec<Box<dyn Operator>>,
    /// Plan nodes the chain replaces.
    pub consumed: HashSet<usize>,
    /// Column types of the scan batch the engine allocates.
    pub batch_types: Vec<DataType>,
    /// When true the chain's last operator is the `RowBridge`, whose rows
    /// must be routed into the row-mode graph at the fallback entry.
    pub bridged: bool,
}

/// A map-join whose output batch types aren't final yet: downstream
/// operators may still allocate scratch columns in the join's output
/// segment, so the operator is constructed only when the segment ends
/// (at the next join, or at the end of the chain).
struct PendingJoin {
    /// Position reserved in the operator list.
    slot: usize,
    kind: MapJoinKind,
    key_expressions: Vec<Box<dyn VectorExpression>>,
    key_columns: Vec<(usize, DataType)>,
    stream_columns: Vec<(usize, DataType)>,
    table: MapJoinHashTable,
    build_width: usize,
}

fn seal_pending_join(
    pending: &mut Option<PendingJoin>,
    operators: &mut [Option<Box<dyn Operator>>],
    out_types: &[DataType],
    batch_size: usize,
) -> Result<()> {
    if let Some(pj) = pending.take() {
        let op = VectorMapJoinOperator::new(
            pj.kind,
            pj.key_expressions,
            pj.key_columns,
            pj.stream_columns,
            pj.table,
            pj.build_width,
            out_types,
            batch_size,
        )?;
        operators[pj.slot] = Some(Box::new(VectorOpAdapter::new(Box::new(op))));
    }
    Ok(())
}

/// Attempt to vectorize the prefix of a map chain. Returns the compiled
/// chain, or `None` when validation fails and the whole input stays
/// row-mode.
pub fn try_vectorize(
    nodes: &[PlanNode],
    input: &MapInputView<'_>,
    side: &HashMap<String, Vec<Row>>,
    opts: &VectorizeOpts,
) -> Result<Option<VectorizedChain>> {
    let Some(scan_id) = input.scan else {
        return Ok(None);
    };
    let PlanOp::TableScan {
        table, projection, ..
    } = &nodes[scan_id].op
    else {
        return Ok(None);
    };
    // Validation 1: primitive scan columns only.
    let scan_types: Vec<DataType> = projection
        .iter()
        .map(|&i| table.schema.field(i).data_type.clone())
        .collect();
    if !scan_types.iter().all(is_vector_type) {
        return Ok(None);
    }

    let c = VecCompiler {
        layout: (0..scan_types.len()).collect(),
        layout_types: scan_types.clone(),
        types: scan_types,
        pending: Vec::new(),
    };
    let out = compile_chain(nodes, input, side, opts, c, scan_id)?;
    if out.consumed.is_empty() {
        return Ok(None);
    }
    Ok(Some(out))
}

/// Compile the linear operator chain starting below `start` into
/// batch-native graph operators. The chain ends either in a shuffle sink
/// (fully vectorized map task) or in a single `RowBridge` where row mode
/// takes over.
fn compile_chain(
    nodes: &[PlanNode],
    input: &MapInputView<'_>,
    side: &HashMap<String, Vec<Row>>,
    opts: &VectorizeOpts,
    mut c: VecCompiler,
    start: usize,
) -> Result<VectorizedChain> {
    let input_nodes = input.nodes;
    let mut operators: Vec<Option<Box<dyn Operator>>> = Vec::new();
    let mut consumed: HashSet<usize> = HashSet::new();
    let mut cur = start;
    let mut ended_in_sink = false;
    // Types of the scan batch: frozen at the first re-batching operator
    // (map join); until then scratch columns keep extending it.
    let mut scan_types: Option<Vec<DataType>> = None;
    let mut pending_join: Option<PendingJoin> = None;

    loop {
        // The chain must be linear within this input.
        let next: Vec<usize> = nodes[cur]
            .children
            .iter()
            .copied()
            .filter(|n| input_nodes.contains(n))
            .collect();
        if next.len() != 1 {
            break;
        }
        let n = next[0];
        match &nodes[n].op {
            PlanOp::Filter { predicate } if opts.filter => {
                let Some(f) = c.compile_filter(predicate)? else {
                    break;
                };
                let mut children: Vec<Box<dyn VectorExpression>> = c.drain_pending();
                children.push(f);
                operators.push(Some(Box::new(VectorOpAdapter::new(Box::new(
                    VectorFilterOperator {
                        predicate: Box::new(vx::FilterAnd { children }),
                    },
                )))));
                consumed.insert(n);
                cur = n;
            }
            PlanOp::Select { exprs } if opts.select => {
                let Some(outputs) = c.compile_values(exprs)? else {
                    break;
                };
                let expressions = c.drain_pending();
                operators.push(Some(Box::new(VectorOpAdapter::new(Box::new(
                    VectorSelectOperator {
                        expressions,
                        output_columns: outputs.clone(),
                    },
                )))));
                c.set_layout(outputs);
                consumed.insert(n);
                cur = n;
            }
            PlanOp::GroupBy {
                phase: GroupByPhase::MapHash,
                keys,
                aggs,
            } if opts.groupby && opts.reducesink => {
                // Fused partial-aggregate + reduce-sink: requires the
                // in-chain child to be a plain (non-degenerate) ReduceSink,
                // which is the planner's invariant shape for map-side
                // hash aggregation.
                let rs: Vec<usize> = nodes[n]
                    .children
                    .iter()
                    .copied()
                    .filter(|x| input_nodes.contains(x))
                    .collect();
                if rs.len() != 1 {
                    break;
                }
                let rs_n = rs[0];
                let PlanOp::ReduceSink {
                    keys: rs_keys,
                    values: rs_values,
                    degenerate: false,
                    ..
                } = &nodes[rs_n].op
                else {
                    break;
                };
                let mut key_cols = Vec::with_capacity(keys.len());
                let mut ok = true;
                for k in keys {
                    match c.compile_value(k)? {
                        Some((col, _)) => key_cols.push(col),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                let mut specs = Vec::with_capacity(aggs.len());
                if ok {
                    for a in aggs {
                        match c.compile_agg(a)? {
                            Some(s) => specs.push(s),
                            None => {
                                ok = false;
                                break;
                            }
                        }
                    }
                }
                if !ok {
                    break;
                }
                let expressions = c.drain_pending();
                let tag = input.rs_tags.get(&rs_n).copied().unwrap_or(0);
                operators.push(Some(Box::new(VectorGroupBySinkOperator::new(
                    expressions,
                    VectorHashAggregator::new(key_cols, specs),
                    rs_keys.clone(),
                    rs_values.clone(),
                    tag,
                    opts.num_reducers,
                ))));
                consumed.insert(n);
                consumed.insert(rs_n);
                ended_in_sink = true;
                break;
            }
            PlanOp::ReduceSink {
                keys,
                values,
                degenerate: true,
                ..
            } if opts.select => {
                // A degenerate sink is a plain projection (keys ++ values);
                // the chain continues through it in batch mode.
                let mut exprs: Vec<ExprNode> = keys.clone();
                exprs.extend(values.iter().cloned());
                let Some(outputs) = c.compile_values(&exprs)? else {
                    break;
                };
                let expressions = c.drain_pending();
                operators.push(Some(Box::new(VectorOpAdapter::new(Box::new(
                    VectorSelectOperator {
                        expressions,
                        output_columns: outputs.clone(),
                    },
                )))));
                c.set_layout(outputs);
                consumed.insert(n);
                cur = n;
            }
            PlanOp::ReduceSink {
                keys,
                values,
                degenerate: false,
                ..
            } if opts.reducesink => {
                let Some(key_columns) = c.compile_values(keys)? else {
                    break;
                };
                let Some(value_columns) = c.compile_values(values)? else {
                    break;
                };
                let expressions = c.drain_pending();
                let tag = input.rs_tags.get(&n).copied().unwrap_or(0);
                operators.push(Some(Box::new(VectorReduceSinkOperator::new(
                    expressions,
                    key_columns,
                    value_columns,
                    tag,
                    opts.num_reducers,
                ))));
                consumed.insert(n);
                ended_in_sink = true;
                break;
            }
            PlanOp::MapJoin { sides } => {
                let Some(pj) = prepare_mapjoin(nodes, side, opts, &mut c, n, sides)? else {
                    break; // row-mode fallback for the join and everything after
                };
                // This segment's types are final now (the new join's key
                // scratch included): seal the previous join, freeze the
                // scan batch types, and reseed the compiler against the
                // join's output batch.
                seal_pending_join(&mut pending_join, &mut operators, &c.types, opts.batch_size)?;
                if scan_types.is_none() {
                    scan_types = Some(c.types.clone());
                }
                let mut out_types: Vec<DataType> =
                    pj.stream_columns.iter().map(|(_, t)| t.clone()).collect();
                out_types.extend(
                    nodes[n].schema[pj.stream_columns.len()..]
                        .iter()
                        .map(|ci| ci.data_type.clone()),
                );
                let slot = operators.len();
                operators.push(None);
                pending_join = Some(PendingJoin { slot, ..pj });
                c = VecCompiler {
                    layout: (0..out_types.len()).collect(),
                    layout_types: out_types.clone(),
                    types: out_types,
                    pending: Vec::new(),
                };
                consumed.insert(n);
                cur = n;
            }
            _ => break,
        }
    }

    if !ended_in_sink && !consumed.is_empty() {
        // The single batch→row crossing: bridge the current layout into
        // the row-mode graph.
        let output_columns: Vec<(usize, DataType)> = c
            .layout
            .iter()
            .copied()
            .zip(c.layout_types.iter().cloned())
            .collect();
        operators.push(Some(Box::new(RowBridgeOperator::new(output_columns))));
    }
    // The last segment's types are final: seal the trailing join (if any).
    seal_pending_join(&mut pending_join, &mut operators, &c.types, opts.batch_size)?;
    let batch_types = scan_types.unwrap_or(c.types);
    let operators: Vec<Box<dyn Operator>> = operators
        .into_iter()
        .map(|o| o.ok_or_else(|| HiveError::Plan("unsealed vectorized join".into())))
        .collect::<Result<_>>()?;
    Ok(VectorizedChain {
        operators,
        consumed,
        batch_types,
        bridged: !ended_in_sink,
    })
}

/// Try to vectorize one MapJoin plan node. `Ok(None)` means the shape is
/// not eligible and the chain should fall back to row mode at this point.
/// On success the compiler's scratch state includes the probe-key columns;
/// the operator itself is constructed later (see [`PendingJoin`]).
fn prepare_mapjoin(
    nodes: &[PlanNode],
    side: &HashMap<String, Vec<Row>>,
    opts: &VectorizeOpts,
    c: &mut VecCompiler,
    n: usize,
    sides: &[crate::plan::MapJoinSide],
) -> Result<Option<PendingJoin>> {
    if !opts.mapjoin || sides.len() != 1 {
        return Ok(None);
    }
    let s = &sides[0];
    let kind = match s.join_type {
        JoinType::Inner => MapJoinKind::Inner,
        JoinType::LeftOuter => MapJoinKind::LeftOuter,
        _ => return Ok(None),
    };
    // The join's output: the streamed layout followed by the stored build
    // row (keys ++ projected columns). All must be primitive.
    let stream_width = c.layout.len();
    let build_types: Vec<DataType> = nodes[n].schema[stream_width..]
        .iter()
        .map(|ci| ci.data_type.clone())
        .collect();
    if build_types.len() != s.width || !build_types.iter().all(is_vector_type) {
        return Ok(None);
    }
    // Probe keys over the current layout.
    let mut key_columns = Vec::with_capacity(s.stream_keys.len());
    for k in &s.stream_keys {
        match c.compile_value(k)? {
            Some(out) => key_columns.push(out),
            None => return Ok(None),
        }
    }
    let key_expressions = c.drain_pending();

    // Build the hash table from the broadcast side, mirroring the row
    // engine: filter, evaluate build keys, skip NULL keys, store the row as
    // keys ++ columns. A key value the typed-key space cannot represent
    // falls back to row mode.
    let Some(rows) = side.get(&s.alias) else {
        return Ok(None);
    };
    let mut table = MapJoinHashTable::new();
    for r in rows {
        if let Some(f) = &s.build_filter {
            if !f.eval_predicate(r)? {
                continue;
            }
        }
        let mut key = Vec::with_capacity(s.build_keys.len());
        let mut vals: Vec<Value> = Vec::with_capacity(s.width);
        let mut null_key = false;
        for k in &s.build_keys {
            let v = k.eval(r)?;
            match KeyPart::from_value(&v) {
                Ok(Some(part)) => key.push(part),
                Ok(None) => null_key = true,
                Err(_) => return Ok(None),
            }
            vals.push(v);
        }
        if null_key {
            continue;
        }
        vals.extend(r.values().iter().cloned());
        table.entry(key).or_default().push(Row::new(vals));
    }

    let stream_columns: Vec<(usize, DataType)> = c
        .layout
        .iter()
        .copied()
        .zip(c.layout_types.iter().cloned())
        .collect();
    Ok(Some(PendingJoin {
        slot: 0, // assigned by the caller
        kind,
        key_expressions,
        key_columns,
        stream_columns,
        table,
        build_width: s.width,
    }))
}

/// Fold a (possibly unary-negated) numeric literal down to a plain value,
/// so `-10` compiles through the same col-scalar templates as `10`.
fn fold_literal(e: &ExprNode) -> Option<Value> {
    match e {
        ExprNode::Literal(v) => Some(v.clone()),
        ExprNode::Unary {
            op: UnaryOp::Neg,
            expr,
        } => match fold_literal(expr)? {
            Value::Int(x) => Some(Value::Int(-x)),
            Value::Double(x) => Some(Value::Double(-x)),
            _ => None,
        },
        _ => None,
    }
}

/// Normalize a possibly-negated literal node to a plain `Literal` so the
/// scalar template matches below see `-10` the same as `10`.
fn normalized(e: &ExprNode) -> std::borrow::Cow<'_, ExprNode> {
    match fold_literal(e) {
        Some(v) if !matches!(e, ExprNode::Literal(_)) => {
            std::borrow::Cow::Owned(ExprNode::Literal(v))
        }
        _ => std::borrow::Cow::Borrowed(e),
    }
}

fn is_vector_type(t: &DataType) -> bool {
    matches!(
        t,
        DataType::Int
            | DataType::Boolean
            | DataType::Timestamp
            | DataType::Double
            | DataType::String
    )
}

/// Compiles row-mode expression trees into vectorized expression chains.
struct VecCompiler {
    /// Logical column → physical batch column.
    layout: Vec<usize>,
    layout_types: Vec<DataType>,
    /// Physical batch column types (scan + scratch).
    types: Vec<DataType>,
    /// Accumulated expressions awaiting attachment to an operator.
    pending: Vec<Box<dyn VectorExpression>>,
}

/// Vector-level type of a physical column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VType {
    Long,
    Double,
    Bytes,
}

fn vtype(t: &DataType) -> VType {
    match t {
        DataType::Double => VType::Double,
        DataType::String => VType::Bytes,
        _ => VType::Long,
    }
}

impl VecCompiler {
    fn scratch(&mut self, t: DataType) -> usize {
        self.types.push(t);
        self.types.len() - 1
    }

    fn drain_pending(&mut self) -> Vec<Box<dyn VectorExpression>> {
        std::mem::take(&mut self.pending)
    }

    /// Compile a list of value expressions; `None` when any fails.
    fn compile_values(&mut self, exprs: &[ExprNode]) -> Result<Option<Vec<(usize, DataType)>>> {
        let mut outputs = Vec::with_capacity(exprs.len());
        for e in exprs {
            match self.compile_value(e)? {
                Some(out) => outputs.push(out),
                None => return Ok(None),
            }
        }
        Ok(Some(outputs))
    }

    /// Reset the logical layout to the given physical columns (after a
    /// projection changed the row shape).
    fn set_layout(&mut self, outputs: Vec<(usize, DataType)>) {
        self.layout = outputs.iter().map(|(i, _)| *i).collect();
        self.layout_types = outputs.into_iter().map(|(_, t)| t).collect();
    }

    /// Compile a value expression; returns its physical column + type.
    fn compile_value(&mut self, e: &ExprNode) -> Result<Option<(usize, DataType)>> {
        Ok(match e {
            ExprNode::Column(i) => {
                let Some(&col) = self.layout.get(*i) else {
                    return Err(HiveError::Plan(format!("column {i} out of layout")));
                };
                Some((col, self.layout_types[*i].clone()))
            }
            ExprNode::Literal(v) => match v {
                Value::Int(x) => {
                    let out = self.scratch(DataType::Int);
                    self.pending.push(Box::new(vx::ConstantExpression::Long {
                        output: out,
                        value: *x,
                    }));
                    Some((out, DataType::Int))
                }
                Value::Double(x) => {
                    let out = self.scratch(DataType::Double);
                    self.pending.push(Box::new(vx::ConstantExpression::Double {
                        output: out,
                        value: *x,
                    }));
                    Some((out, DataType::Double))
                }
                Value::String(s) => {
                    let out = self.scratch(DataType::String);
                    self.pending.push(Box::new(vx::ConstantExpression::Bytes {
                        output: out,
                        value: s.as_bytes().to_vec(),
                    }));
                    Some((out, DataType::String))
                }
                Value::Boolean(b) => {
                    let out = self.scratch(DataType::Boolean);
                    self.pending.push(Box::new(vx::ConstantExpression::Long {
                        output: out,
                        value: *b as i64,
                    }));
                    Some((out, DataType::Boolean))
                }
                _ => None,
            },
            ExprNode::Cast { expr, target } => {
                let Some((col, t)) = self.compile_value(expr)? else {
                    return Ok(None);
                };
                match (vtype(&t), vtype(target)) {
                    (a, b) if a == b => Some((col, target.clone())),
                    (VType::Long, VType::Double) => Some((self.widen(col), DataType::Double)),
                    (VType::Double, VType::Long) => {
                        let out = self.scratch(DataType::Int);
                        self.pending.push(Box::new(vx::CastDoubleToLong {
                            input_column: col,
                            output_column: out,
                        }));
                        Some((out, target.clone()))
                    }
                    _ => None,
                }
            }
            ExprNode::Unary {
                op: UnaryOp::Neg,
                expr,
            } => {
                if let Some(v) = fold_literal(e) {
                    return self.compile_value(&ExprNode::Literal(v));
                }
                let Some((col, t)) = self.compile_value(expr)? else {
                    return Ok(None);
                };
                match vtype(&t) {
                    VType::Long => {
                        let out = self.scratch(t.clone());
                        self.pending.push(Box::new(vx::LongColMultiplyLongScalar {
                            input_column: col,
                            output_column: out,
                            scalar: -1,
                        }));
                        Some((out, t))
                    }
                    VType::Double => {
                        let out = self.scratch(DataType::Double);
                        self.pending
                            .push(Box::new(vx::DoubleColMultiplyDoubleScalar {
                                input_column: col,
                                output_column: out,
                                scalar: -1.0,
                            }));
                        Some((out, DataType::Double))
                    }
                    VType::Bytes => None,
                }
            }
            ExprNode::Binary { op, left, right } => self.compile_binary(*op, left, right)?,
            _ => None,
        })
    }

    fn widen(&mut self, col: usize) -> usize {
        let out = self.scratch(DataType::Double);
        self.pending.push(Box::new(vx::CastLongToDouble {
            input_column: col,
            output_column: out,
        }));
        out
    }

    #[allow(clippy::type_complexity)]
    fn compile_binary(
        &mut self,
        op: BinaryOp,
        left: &ExprNode,
        right: &ExprNode,
    ) -> Result<Option<(usize, DataType)>> {
        use BinaryOp::*;
        if matches!(op, And | Or | Modulo) {
            return Ok(None);
        }
        // Scalar fast paths (the paper's col-scalar templates).
        let scalar = match fold_literal(right) {
            Some(Value::Int(x)) => Some((x as f64, true)),
            Some(Value::Double(x)) => Some((x, false)),
            _ => None,
        };
        let Some((lcol, lt)) = self.compile_value(left)? else {
            return Ok(None);
        };

        if matches!(op, Add | Subtract | Multiply | Divide) {
            if let Some((sval, s_is_int)) = scalar {
                // Column ⊕ scalar.
                let want_double = op == Divide || vtype(&lt) == VType::Double || !s_is_int;
                if vtype(&lt) == VType::Bytes {
                    return Ok(None);
                }
                return Ok(Some(if want_double {
                    let col = if vtype(&lt) == VType::Long {
                        self.widen(lcol)
                    } else {
                        lcol
                    };
                    let out = self.scratch(DataType::Double);
                    let e: Box<dyn VectorExpression> = match op {
                        Add => Box::new(vx::DoubleColAddDoubleScalar {
                            input_column: col,
                            output_column: out,
                            scalar: sval,
                        }),
                        Subtract => Box::new(vx::DoubleColSubtractDoubleScalar {
                            input_column: col,
                            output_column: out,
                            scalar: sval,
                        }),
                        Multiply => Box::new(vx::DoubleColMultiplyDoubleScalar {
                            input_column: col,
                            output_column: out,
                            scalar: sval,
                        }),
                        Divide => Box::new(vx::DoubleColDivideDoubleScalar {
                            input_column: col,
                            output_column: out,
                            scalar: sval,
                        }),
                        _ => unreachable!(),
                    };
                    self.pending.push(e);
                    (out, DataType::Double)
                } else {
                    let out = self.scratch(DataType::Int);
                    let s = sval as i64;
                    let e: Box<dyn VectorExpression> = match op {
                        Add => Box::new(vx::LongColAddLongScalar {
                            input_column: lcol,
                            output_column: out,
                            scalar: s,
                        }),
                        Subtract => Box::new(vx::LongColSubtractLongScalar {
                            input_column: lcol,
                            output_column: out,
                            scalar: s,
                        }),
                        Multiply => Box::new(vx::LongColMultiplyLongScalar {
                            input_column: lcol,
                            output_column: out,
                            scalar: s,
                        }),
                        _ => unreachable!(),
                    };
                    self.pending.push(e);
                    (out, DataType::Int)
                }));
            }
            // Column ⊕ column.
            let Some((rcol, rt)) = self.compile_value(right)? else {
                return Ok(None);
            };
            if vtype(&lt) == VType::Bytes || vtype(&rt) == VType::Bytes {
                return Ok(None);
            }
            let want_double =
                op == Divide || vtype(&lt) == VType::Double || vtype(&rt) == VType::Double;
            return Ok(Some(if want_double {
                let l = if vtype(&lt) == VType::Long {
                    self.widen(lcol)
                } else {
                    lcol
                };
                let r = if vtype(&rt) == VType::Long {
                    self.widen(rcol)
                } else {
                    rcol
                };
                let out = self.scratch(DataType::Double);
                let e: Box<dyn VectorExpression> = match op {
                    Add => Box::new(vx::DoubleColAddDoubleColumn {
                        left_column: l,
                        right_column: r,
                        output_column: out,
                    }),
                    Subtract => Box::new(vx::DoubleColSubtractDoubleColumn {
                        left_column: l,
                        right_column: r,
                        output_column: out,
                    }),
                    Multiply => Box::new(vx::DoubleColMultiplyDoubleColumn {
                        left_column: l,
                        right_column: r,
                        output_column: out,
                    }),
                    Divide => Box::new(vx::DoubleColDivideDoubleColumn {
                        left_column: l,
                        right_column: r,
                        output_column: out,
                    }),
                    _ => unreachable!(),
                };
                self.pending.push(e);
                (out, DataType::Double)
            } else {
                let out = self.scratch(DataType::Int);
                let e: Box<dyn VectorExpression> = match op {
                    Add => Box::new(vx::LongColAddLongColumn {
                        left_column: lcol,
                        right_column: rcol,
                        output_column: out,
                    }),
                    Subtract => Box::new(vx::LongColSubtractLongColumn {
                        left_column: lcol,
                        right_column: rcol,
                        output_column: out,
                    }),
                    Multiply => Box::new(vx::LongColMultiplyLongColumn {
                        left_column: lcol,
                        right_column: rcol,
                        output_column: out,
                    }),
                    _ => unreachable!(),
                };
                self.pending.push(e);
                (out, DataType::Int)
            }));
        }

        // Comparisons producing boolean columns.
        if matches!(op, Eq | NotEq | Lt | LtEq | Gt | GtEq) {
            if let Some((sval, s_is_int)) = scalar {
                let out = self.scratch(DataType::Boolean);
                let e: Option<Box<dyn VectorExpression>> = match vtype(&lt) {
                    VType::Long if s_is_int => {
                        let s = sval as i64;
                        Some(match op {
                            Eq => Box::new(vx::LongColEqualLongScalar {
                                input_column: lcol,
                                output_column: out,
                                scalar: s,
                            }),
                            NotEq => Box::new(vx::LongColNotEqualLongScalar {
                                input_column: lcol,
                                output_column: out,
                                scalar: s,
                            }),
                            Lt => Box::new(vx::LongColLessLongScalar {
                                input_column: lcol,
                                output_column: out,
                                scalar: s,
                            }),
                            LtEq => Box::new(vx::LongColLessEqualLongScalar {
                                input_column: lcol,
                                output_column: out,
                                scalar: s,
                            }),
                            Gt => Box::new(vx::LongColGreaterLongScalar {
                                input_column: lcol,
                                output_column: out,
                                scalar: s,
                            }),
                            GtEq => Box::new(vx::LongColGreaterEqualLongScalar {
                                input_column: lcol,
                                output_column: out,
                                scalar: s,
                            }),
                            _ => unreachable!(),
                        })
                    }
                    VType::Double | VType::Long => {
                        let col = if vtype(&lt) == VType::Long {
                            self.widen(lcol)
                        } else {
                            lcol
                        };
                        Some(match op {
                            Eq => Box::new(vx::DoubleColEqualDoubleScalar {
                                input_column: col,
                                output_column: out,
                                scalar: sval,
                            }),
                            NotEq => Box::new(vx::DoubleColNotEqualDoubleScalar {
                                input_column: col,
                                output_column: out,
                                scalar: sval,
                            }),
                            Lt => Box::new(vx::DoubleColLessDoubleScalar {
                                input_column: col,
                                output_column: out,
                                scalar: sval,
                            }),
                            LtEq => Box::new(vx::DoubleColLessEqualDoubleScalar {
                                input_column: col,
                                output_column: out,
                                scalar: sval,
                            }),
                            Gt => Box::new(vx::DoubleColGreaterDoubleScalar {
                                input_column: col,
                                output_column: out,
                                scalar: sval,
                            }),
                            GtEq => Box::new(vx::DoubleColGreaterEqualDoubleScalar {
                                input_column: col,
                                output_column: out,
                                scalar: sval,
                            }),
                            _ => unreachable!(),
                        })
                    }
                    VType::Bytes => None,
                };
                if let Some(e) = e {
                    self.pending.push(e);
                    return Ok(Some((out, DataType::Boolean)));
                }
                return Ok(None);
            }
            let Some((rcol, rt)) = self.compile_value(right)? else {
                return Ok(None);
            };
            if vtype(&lt) == VType::Long && vtype(&rt) == VType::Long {
                let out = self.scratch(DataType::Boolean);
                let e: Option<Box<dyn VectorExpression>> = match op {
                    Eq => Some(Box::new(vx::LongColEqualLongColumn {
                        left_column: lcol,
                        right_column: rcol,
                        output_column: out,
                    })),
                    Lt => Some(Box::new(vx::LongColLessLongColumn {
                        left_column: lcol,
                        right_column: rcol,
                        output_column: out,
                    })),
                    Gt => Some(Box::new(vx::LongColGreaterLongColumn {
                        left_column: lcol,
                        right_column: rcol,
                        output_column: out,
                    })),
                    _ => None,
                };
                if let Some(e) = e {
                    self.pending.push(e);
                    return Ok(Some((out, DataType::Boolean)));
                }
            }
            return Ok(None);
        }
        Ok(None)
    }

    /// Compile a predicate into an in-place filter expression.
    fn compile_filter(&mut self, e: &ExprNode) -> Result<Option<Box<dyn VectorExpression>>> {
        use BinaryOp::*;
        Ok(match e {
            ExprNode::Binary {
                op: And,
                left,
                right,
            } => {
                let (Some(l), Some(r)) = (self.compile_filter(left)?, self.compile_filter(right)?)
                else {
                    return Ok(None);
                };
                Some(Box::new(vx::FilterAnd {
                    children: vec![l, r],
                }))
            }
            ExprNode::Binary {
                op: Or,
                left,
                right,
            } => {
                let (Some(l), Some(r)) = (self.compile_filter(left)?, self.compile_filter(right)?)
                else {
                    return Ok(None);
                };
                Some(Box::new(vx::FilterOr {
                    children: vec![l, r],
                }))
            }
            ExprNode::Binary { op, left, right }
                if matches!(op, Eq | NotEq | Lt | LtEq | Gt | GtEq) =>
            {
                self.compile_cmp_filter(*op, left, right)?
            }
            ExprNode::Between {
                expr,
                lo,
                hi,
                negated: false,
            } => {
                let Some((col, t)) = self.compile_value(expr)? else {
                    return Ok(None);
                };
                let (lo, hi) = (normalized(lo), normalized(hi));
                match (vtype(&t), &*lo, &*hi) {
                    (
                        VType::Long,
                        ExprNode::Literal(Value::Int(a)),
                        ExprNode::Literal(Value::Int(b)),
                    ) => Some(Box::new(vx::FilterLongColumnBetween {
                        column: col,
                        lo: *a,
                        hi: *b,
                    })),
                    (VType::Double, ExprNode::Literal(la), ExprNode::Literal(lb)) => {
                        let (Some(a), Some(b)) = (la.as_double(), lb.as_double()) else {
                            return Ok(None);
                        };
                        Some(Box::new(vx::FilterDoubleColumnBetween {
                            column: col,
                            lo: a,
                            hi: b,
                        }))
                    }
                    (VType::Long, ExprNode::Literal(la), ExprNode::Literal(lb)) => {
                        let (Some(a), Some(b)) = (la.as_double(), lb.as_double()) else {
                            return Ok(None);
                        };
                        let wide = self.widen(col);
                        Some(Box::new(vx::FilterDoubleColumnBetween {
                            column: wide,
                            lo: a,
                            hi: b,
                        }))
                    }
                    (
                        VType::Bytes,
                        ExprNode::Literal(Value::String(a)),
                        ExprNode::Literal(Value::String(b)),
                    ) => Some(Box::new(vx::FilterAnd {
                        children: vec![
                            Box::new(vx::FilterBytesColGreaterEqualBytesScalar {
                                column: col,
                                scalar: a.as_bytes().to_vec(),
                            }),
                            Box::new(vx::FilterBytesColLessEqualBytesScalar {
                                column: col,
                                scalar: b.as_bytes().to_vec(),
                            }),
                        ],
                    })),
                    _ => None,
                }
            }
            ExprNode::IsNull { expr, negated } => {
                let Some((col, _)) = self.compile_value(expr)? else {
                    return Ok(None);
                };
                Some(Box::new(vx::FilterIsNull {
                    column: col,
                    negated: *negated,
                }))
            }
            ExprNode::InList {
                expr,
                list,
                negated: false,
            } => {
                // col IN (a, b, ...) → OR of equality filters.
                let mut children: Vec<Box<dyn VectorExpression>> = Vec::with_capacity(list.len());
                for item in list {
                    let eq = ExprNode::Binary {
                        op: Eq,
                        left: Box::new((**expr).clone()),
                        right: Box::new(item.clone()),
                    };
                    let Some(f) = self.compile_filter(&eq)? else {
                        return Ok(None);
                    };
                    children.push(f);
                }
                Some(Box::new(vx::FilterOr { children }))
            }
            ExprNode::Column(_) => {
                let Some((col, t)) = self.compile_value(e)? else {
                    return Ok(None);
                };
                if vtype(&t) != VType::Long {
                    return Ok(None);
                }
                Some(Box::new(vx::FilterBoolColumn { column: col }))
            }
            _ => None,
        })
    }

    fn compile_cmp_filter(
        &mut self,
        op: BinaryOp,
        left: &ExprNode,
        right: &ExprNode,
    ) -> Result<Option<Box<dyn VectorExpression>>> {
        use BinaryOp::*;
        let Some((lcol, lt)) = self.compile_value(left)? else {
            return Ok(None);
        };
        let right = normalized(right);
        match &*right {
            ExprNode::Literal(Value::String(s)) if vtype(&lt) == VType::Bytes => {
                let scalar = s.as_bytes().to_vec();
                Ok(Some(match op {
                    Eq => Box::new(vx::FilterBytesColEqualBytesScalar {
                        column: lcol,
                        scalar,
                    }),
                    NotEq => Box::new(vx::FilterBytesColNotEqualBytesScalar {
                        column: lcol,
                        scalar,
                    }),
                    Lt => Box::new(vx::FilterBytesColLessBytesScalar {
                        column: lcol,
                        scalar,
                    }),
                    LtEq => Box::new(vx::FilterBytesColLessEqualBytesScalar {
                        column: lcol,
                        scalar,
                    }),
                    Gt => Box::new(vx::FilterBytesColGreaterBytesScalar {
                        column: lcol,
                        scalar,
                    }),
                    GtEq => Box::new(vx::FilterBytesColGreaterEqualBytesScalar {
                        column: lcol,
                        scalar,
                    }),
                    _ => return Ok(None),
                }))
            }
            ExprNode::Literal(Value::Int(x)) if vtype(&lt) == VType::Long => {
                let scalar = *x;
                Ok(Some(match op {
                    Eq => Box::new(vx::FilterLongColEqualLongScalar {
                        column: lcol,
                        scalar,
                    }),
                    NotEq => Box::new(vx::FilterLongColNotEqualLongScalar {
                        column: lcol,
                        scalar,
                    }),
                    Lt => Box::new(vx::FilterLongColLessLongScalar {
                        column: lcol,
                        scalar,
                    }),
                    LtEq => Box::new(vx::FilterLongColLessEqualLongScalar {
                        column: lcol,
                        scalar,
                    }),
                    Gt => Box::new(vx::FilterLongColGreaterLongScalar {
                        column: lcol,
                        scalar,
                    }),
                    GtEq => Box::new(vx::FilterLongColGreaterEqualLongScalar {
                        column: lcol,
                        scalar,
                    }),
                    _ => return Ok(None),
                }))
            }
            ExprNode::Literal(v) if v.as_double().is_some() && vtype(&lt) != VType::Bytes => {
                let scalar = v.as_double().unwrap();
                let col = if vtype(&lt) == VType::Long {
                    self.widen(lcol)
                } else {
                    lcol
                };
                Ok(Some(match op {
                    Eq => Box::new(vx::FilterDoubleColEqualDoubleScalar {
                        column: col,
                        scalar,
                    }),
                    NotEq => Box::new(vx::FilterDoubleColNotEqualDoubleScalar {
                        column: col,
                        scalar,
                    }),
                    Lt => Box::new(vx::FilterDoubleColLessDoubleScalar {
                        column: col,
                        scalar,
                    }),
                    LtEq => Box::new(vx::FilterDoubleColLessEqualDoubleScalar {
                        column: col,
                        scalar,
                    }),
                    Gt => Box::new(vx::FilterDoubleColGreaterDoubleScalar {
                        column: col,
                        scalar,
                    }),
                    GtEq => Box::new(vx::FilterDoubleColGreaterEqualDoubleScalar {
                        column: col,
                        scalar,
                    }),
                    _ => return Ok(None),
                }))
            }
            _ => {
                // Column-column filters (long/double subset).
                let Some((rcol, rt)) = self.compile_value(&right)? else {
                    return Ok(None);
                };
                match (vtype(&lt), vtype(&rt), op) {
                    (VType::Long, VType::Long, Eq) => {
                        Ok(Some(Box::new(vx::FilterLongColEqualLongColumn {
                            left_column: lcol,
                            right_column: rcol,
                        })))
                    }
                    (VType::Long, VType::Long, Lt) => {
                        Ok(Some(Box::new(vx::FilterLongColLessLongColumn {
                            left_column: lcol,
                            right_column: rcol,
                        })))
                    }
                    (VType::Long, VType::Long, Gt) => {
                        Ok(Some(Box::new(vx::FilterLongColGreaterLongColumn {
                            left_column: lcol,
                            right_column: rcol,
                        })))
                    }
                    (VType::Double, VType::Double, Lt) => {
                        Ok(Some(Box::new(vx::FilterDoubleColLessDoubleColumn {
                            left_column: lcol,
                            right_column: rcol,
                        })))
                    }
                    (VType::Double, VType::Double, Gt) => {
                        Ok(Some(Box::new(vx::FilterDoubleColGreaterDoubleColumn {
                            left_column: lcol,
                            right_column: rcol,
                        })))
                    }
                    _ => Ok(None),
                }
            }
        }
    }

    /// Map a row-mode aggregate onto a vectorized AggSpec.
    fn compile_agg(&mut self, a: &crate::plan::AggCall) -> Result<Option<AggSpec>> {
        let (col, t) = match &a.arg {
            None => (None, None),
            Some(arg) => match self.compile_value(arg)? {
                Some((c, t)) => (Some(c), Some(t)),
                None => return Ok(None),
            },
        };
        let kind = match (a.function, t.as_ref().map(vtype)) {
            (AggFunction::CountStar, _) => AggKind::CountStar,
            (AggFunction::Count, _) => AggKind::Count,
            (AggFunction::Sum, Some(VType::Long)) => AggKind::SumLong,
            (AggFunction::Sum, Some(VType::Double)) => AggKind::SumDouble,
            (AggFunction::Avg, Some(VType::Long | VType::Double)) => AggKind::Avg,
            (AggFunction::Min, Some(VType::Long)) => AggKind::MinLong,
            (AggFunction::Min, Some(VType::Double)) => AggKind::MinDouble,
            (AggFunction::Min, Some(VType::Bytes)) => AggKind::MinBytes,
            (AggFunction::Max, Some(VType::Long)) => AggKind::MaxLong,
            (AggFunction::Max, Some(VType::Double)) => AggKind::MaxDouble,
            (AggFunction::Max, Some(VType::Bytes)) => AggKind::MaxBytes,
            _ => return Ok(None),
        };
        Ok(Some(AggSpec {
            kind,
            input_column: col,
        }))
    }
}
