//! The Correlation Optimizer (paper Section 5.2), after YSmart [Lee et al.,
//! ICDCS 2011].
//!
//! Two correlations are exploited:
//!
//! * **Job-flow correlation** — a downstream major operator's ReduceSink
//!   partitions on exactly the key its upstream major operator already
//!   partitioned on. The downstream ReduceSink is unnecessary: it degrades
//!   into a plain Select (keys ++ values), so both major operators execute
//!   in the *same* Reduce phase. (The Demux/Mux machinery that keeps such a
//!   plan executable is inserted by the task compiler.)
//! * **Input correlation** — two identical table scans feed ReduceSinks of
//!   the same job. The scans are merged so the table is loaded once.
//!
//! Correlation detection walks up from the FileSinks, stopping at each
//! ReduceSink and searching for the furthest correlated upstream
//! ReduceSinks, as Section 5.2.2 describes.

use crate::plan::{GroupByPhase, PlanGraph, PlanOp};
use hive_common::Result;
use hive_exec::expr::ExprNode;
use std::collections::BTreeMap;

/// Apply both correlation rewrites until a fixpoint.
pub fn optimize(g: &mut PlanGraph) -> Result<()> {
    // Job-flow correlations first: they enlarge reduce phases, which is
    // what makes input correlations land in the same job.
    loop {
        let mut changed = false;
        for rs in g.find(|n| matches!(n.op, PlanOp::ReduceSink { .. })) {
            if try_eliminate_reduce_sink(g, rs)? {
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    merge_correlated_scans(g)?;
    Ok(())
}

/// Try to remove one ReduceSink via job-flow correlation.
fn try_eliminate_reduce_sink(g: &mut PlanGraph, rs: usize) -> Result<bool> {
    if !g.node(rs).alive {
        return Ok(false);
    }
    let PlanOp::ReduceSink {
        keys, degenerate, ..
    } = g.node(rs).op.clone()
    else {
        return Ok(false);
    };
    if degenerate {
        return Ok(false);
    }
    if keys.is_empty() {
        // Global aggregations funnel to one reducer; removing the shuffle
        // would change semantics.
        return Ok(false);
    }
    // The consumer must be a major operator.
    let Some(&consumer) = g.node(rs).children.first() else {
        return Ok(false);
    };
    if !g.node(consumer).op.is_major() {
        return Ok(false);
    }
    // All keys must be plain column references to be traceable.
    let mut key_cols = Vec::with_capacity(keys.len());
    for k in &keys {
        match k {
            ExprNode::Column(i) => key_cols.push(*i),
            _ => return Ok(false),
        }
    }
    // Walk upstream through Select/Filter to the producing operator,
    // tracking where each key column comes from. A map-side partial
    // GroupBy directly above the ReduceSink is part of the pattern: if the
    // shuffle goes away, so does the partial aggregation (the reduce-side
    // GroupBy then aggregates raw rows).
    let mut cur = match g.node(rs).parents.first() {
        Some(&p) => p,
        None => return Ok(false),
    };
    let mut partial_gby: Option<usize> = None;
    if let PlanOp::GroupBy {
        phase: GroupByPhase::MapHash,
        keys: gkeys,
        ..
    } = &g.node(cur).op
    {
        // Key columns of the GBY output (0..nk) map to its key exprs.
        let mut mapped = Vec::with_capacity(key_cols.len());
        for &c in &key_cols {
            match gkeys.get(c) {
                Some(ExprNode::Column(j)) => mapped.push(*j),
                _ => return Ok(false),
            }
        }
        partial_gby = Some(cur);
        key_cols = mapped;
        cur = g.node(cur).parents[0];
    }
    let mut cols = key_cols;
    loop {
        match &g.node(cur).op {
            PlanOp::Filter { .. } | PlanOp::Limit(_) => {
                cur = g.node(cur).parents[0];
            }
            PlanOp::Select { exprs } => {
                let mut mapped = Vec::with_capacity(cols.len());
                for &c in &cols {
                    match exprs.get(c) {
                        Some(ExprNode::Column(j)) => mapped.push(*j),
                        _ => return Ok(false),
                    }
                }
                cols = mapped;
                cur = g.node(cur).parents[0];
            }
            PlanOp::ReduceSink {
                keys: rkeys,
                values: rvals,
                degenerate: true,
                ..
            } => {
                // A degenerate sink projects keys ++ values.
                let nk2 = rkeys.len();
                let mut mapped = Vec::with_capacity(cols.len());
                for &c in &cols {
                    let e = if c < nk2 {
                        rkeys.get(c)
                    } else {
                        rvals.get(c - nk2)
                    };
                    match e {
                        Some(ExprNode::Column(j)) => mapped.push(*j),
                        _ => return Ok(false),
                    }
                }
                cols = mapped;
                cur = g.node(cur).parents[0];
            }
            PlanOp::GroupBy {
                phase: GroupByPhase::ReduceMerge,
                keys: gkeys,
                ..
            } => {
                // GroupBy output: keys at positions 0..nk.
                let nk = gkeys.len();
                if nk != cols.len() {
                    return Ok(false);
                }
                let ordinals: Vec<usize> = cols.clone();
                if ordinals != (0..nk).collect::<Vec<_>>() {
                    return Ok(false);
                }
                return apply_rewrite(g, rs, consumer, partial_gby);
            }
            PlanOp::Join { input_widths, .. } => {
                // Join output layout: [k0..nk, left cols, k0..nk, right
                // cols]; key ordinals appear at 0..nk and at input_widths[0]
                // .. input_widths[0]+nk.
                let Some(&lw) = input_widths.first() else {
                    return Ok(false);
                };
                // Number of join keys: recover from any RS parent.
                let Some(jkeys) = g
                    .node(cur)
                    .parents
                    .iter()
                    .find_map(|&p| match &g.node(p).op {
                        PlanOp::ReduceSink { keys, .. } => Some(keys.clone()),
                        _ => None,
                    })
                else {
                    return Ok(false);
                };
                let nk = jkeys.len();
                if nk != cols.len() {
                    return Ok(false);
                }
                // Value columns that are copies of key expressions also
                // qualify (the RS re-emits every input column as a value).
                let rs_l = g.node(cur).parents[0];
                let rs_r = g.node(cur).parents[1];
                let key_ordinal_of_value = |rs: usize, v: usize| -> Option<usize> {
                    let PlanOp::ReduceSink { keys, .. } = &g.node(rs).op else {
                        return None;
                    };
                    keys.iter().position(|k| *k == ExprNode::Column(v))
                };
                let mut ordinals = Vec::with_capacity(cols.len());
                for &c in &cols {
                    if c < nk {
                        ordinals.push(c);
                    } else if c < lw {
                        match key_ordinal_of_value(rs_l, c - nk) {
                            Some(k) => ordinals.push(k),
                            None => return Ok(false),
                        }
                    } else if c < lw + nk {
                        ordinals.push(c - lw);
                    } else {
                        match key_ordinal_of_value(rs_r, c - lw - nk) {
                            Some(k) => ordinals.push(k),
                            None => return Ok(false),
                        }
                    }
                }
                if ordinals != (0..nk).collect::<Vec<_>>() {
                    return Ok(false);
                }
                return apply_rewrite(g, rs, consumer, partial_gby);
            }
            _ => return Ok(false),
        }
    }
}

/// Perform the rewrite once a correlation is confirmed.
fn apply_rewrite(
    g: &mut PlanGraph,
    rs: usize,
    consumer: usize,
    partial_gby: Option<usize>,
) -> Result<bool> {
    match partial_gby {
        None => Ok(mark_degenerate(g, rs)),
        Some(gbm) => {
            // Pattern: chain → GBY(MapHash) → RS → GBY(ReduceMerge).
            // The consumer must be the merging GroupBy; it takes over the
            // map GBY's raw keys and arguments and aggregates complete.
            let PlanOp::GroupBy {
                phase: GroupByPhase::ReduceMerge,
                ..
            } = g.node(consumer).op.clone()
            else {
                return Ok(false);
            };
            let PlanOp::GroupBy {
                keys: raw_keys,
                aggs: raw_aggs,
                ..
            } = g.node(gbm).op.clone()
            else {
                return Ok(false);
            };
            g.node_mut(consumer).op = PlanOp::GroupBy {
                phase: GroupByPhase::ReduceComplete,
                keys: raw_keys,
                aggs: raw_aggs,
            };
            g.splice_out(rs)?;
            g.splice_out(gbm)?;
            Ok(true)
        }
    }
}

/// Mark the redundant ReduceSink degenerate: it now executes as a plain
/// projection (keys ++ values) in the upstream Reduce phase and stops
/// being a job boundary.
fn mark_degenerate(g: &mut PlanGraph, rs: usize) -> bool {
    if let PlanOp::ReduceSink { degenerate, .. } = &mut g.node_mut(rs).op {
        *degenerate = true;
    }
    true
}

/// Merge identical TableScans whose ReduceSinks land in the same job
/// (input correlation): the shared table is then loaded once.
fn merge_correlated_scans(g: &mut PlanGraph) -> Result<()> {
    let frag = fragments(g);
    let scans = g.scans();
    for i in 0..scans.len() {
        for j in (i + 1)..scans.len() {
            let (a, b) = (scans[i], scans[j]);
            if !g.node(a).alive || !g.node(b).alive {
                continue;
            }
            if !scans_identical(g, a, b) {
                continue;
            }
            // Same job: every consuming reduce fragment of a's sink RSs must
            // coincide with b's.
            let fa = sink_fragments(g, a, &frag);
            let fb = sink_fragments(g, b, &frag);
            if fa.is_empty() || fa != fb {
                continue;
            }
            // Merge b into a: a adopts b's children.
            let b_children = g.node(b).children.clone();
            for &c in &b_children {
                for slot in g.node_mut(c).parents.iter_mut() {
                    if *slot == b {
                        *slot = a;
                    }
                }
                g.node_mut(a).children.push(c);
            }
            let nb = g.node_mut(b);
            nb.alive = false;
            nb.children.clear();
            nb.parents.clear();
        }
    }
    Ok(())
}

fn scans_identical(g: &PlanGraph, a: usize, b: usize) -> bool {
    let (
        PlanOp::TableScan {
            table: ta,
            projection: pa,
            sarg: sa,
            ..
        },
        PlanOp::TableScan {
            table: tb,
            projection: pb,
            sarg: sb,
            ..
        },
    ) = (&g.node(a).op, &g.node(b).op)
    else {
        return false;
    };
    ta.name == tb.name && pa == pb && sa == sb
}

/// Fragment ids of the reduce fragments this scan's downstream RSs feed.
fn sink_fragments(g: &PlanGraph, scan: usize, frag: &BTreeMap<usize, usize>) -> Vec<usize> {
    let mut out = Vec::new();
    let mut stack = vec![scan];
    let mut seen = vec![false; g.nodes.len()];
    while let Some(n) = stack.pop() {
        if seen[n] {
            continue;
        }
        seen[n] = true;
        if let PlanOp::ReduceSink {
            degenerate: false, ..
        } = g.node(n).op
        {
            for &c in &g.node(n).children {
                if let Some(&f) = frag.get(&c) {
                    out.push(f);
                }
            }
            continue;
        }
        for &c in &g.node(n).children {
            stack.push(c);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Union-find fragments over non-boundary edges (boundaries: RS→child and
/// IntermediateCut→child).
pub fn fragments(g: &PlanGraph) -> BTreeMap<usize, usize> {
    let n = g.nodes.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        let mut r = x;
        while parent[r] != r {
            r = parent[r];
        }
        let mut c = x;
        while parent[c] != c {
            let next = parent[c];
            parent[c] = r;
            c = next;
        }
        r
    }
    for node in &g.nodes {
        if !node.alive {
            continue;
        }
        let boundary = matches!(
            node.op,
            PlanOp::ReduceSink {
                degenerate: false,
                ..
            } | PlanOp::IntermediateCut
        );
        if boundary {
            continue; // edges out of a boundary op start a new fragment
        }
        for &c in &node.children {
            let (ra, rb) = (find(&mut parent, node.id), find(&mut parent, c));
            parent[ra] = rb;
        }
    }
    let mut out = BTreeMap::new();
    for node in &g.nodes {
        if node.alive {
            let r = find(&mut parent, node.id);
            out.insert(node.id, r);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{StaticCatalog, TableMeta};
    use crate::semantic::translate;
    use hive_common::{HiveConf, Schema};
    use hive_ql::{parse, Statement};

    fn catalog() -> StaticCatalog {
        let t = |name: &str, cols: &[(&str, &str)], size: u64| TableMeta {
            name: name.into(),
            schema: Schema::parse(cols).unwrap(),
            format: hive_formats::FormatKind::Orc,
            paths: vec![format!("/w/{name}")],
            size_bytes: size,
            acid: None,
        };
        StaticCatalog {
            tables: vec![
                t(
                    "big2",
                    &[
                        ("key", "bigint"),
                        ("value1", "double"),
                        ("value2", "double"),
                    ],
                    1 << 30,
                ),
                t(
                    "big3",
                    &[
                        ("key", "bigint"),
                        ("value1", "double"),
                        ("value2", "double"),
                    ],
                    1 << 30,
                ),
            ],
        }
    }

    fn graph_for(sql: &str) -> PlanGraph {
        let Statement::Select(stmt) = parse(sql).unwrap() else {
            panic!()
        };
        translate(&stmt, &catalog(), &HiveConf::new())
            .unwrap()
            .graph
    }

    fn count_rs(g: &PlanGraph) -> usize {
        g.find(|n| {
            matches!(
                n.op,
                PlanOp::ReduceSink {
                    degenerate: false,
                    ..
                }
            )
        })
        .len()
    }

    #[test]
    fn join_then_group_by_same_key_drops_a_shuffle() {
        // Job-flow correlation: GROUP BY on the join key.
        let mut g = graph_for(
            "SELECT big2.key, sum(big3.value1) FROM big2 \
             JOIN big3 ON (big2.key = big3.key) GROUP BY big2.key",
        );
        assert_eq!(count_rs(&g), 3, "2 join RSs + 1 group-by RS");
        optimize(&mut g).unwrap();
        assert_eq!(count_rs(&g), 2, "the group-by RS must be eliminated");
    }

    #[test]
    fn group_by_different_key_is_untouched() {
        let mut g = graph_for(
            "SELECT big3.value1, count(*) FROM big2 \
             JOIN big3 ON (big2.key = big3.key) GROUP BY big3.value1",
        );
        let before = count_rs(&g);
        optimize(&mut g).unwrap();
        assert_eq!(count_rs(&g), before, "different key ⇒ no correlation");
    }

    #[test]
    fn self_join_scans_merge() {
        let mut g = graph_for(
            "SELECT a.key, count(*) FROM big2 a JOIN big2 b ON (a.key = b.key) \
             GROUP BY a.key",
        );
        assert_eq!(g.scans().len(), 2);
        optimize(&mut g).unwrap();
        assert_eq!(
            g.scans().len(),
            1,
            "identical scans merge (input correlation)"
        );
    }

    #[test]
    fn global_aggregate_keeps_its_shuffle() {
        let mut g =
            graph_for("SELECT sum(big3.value1) FROM big2 JOIN big3 ON (big2.key = big3.key)");
        let before = count_rs(&g);
        optimize(&mut g).unwrap();
        assert_eq!(count_rs(&g), before);
    }
}
