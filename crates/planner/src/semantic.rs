//! Semantic analysis: AST → resolved operator DAG.
//!
//! Performs name resolution against the catalog, column pruning into table
//! scans, predicate pushdown (including SearchArgument extraction for
//! storage-level PPD), ReduceSink insertion for joins and aggregations, and
//! the map-side/reduce-side aggregation split.

use crate::catalog::Catalog;
use crate::plan::{
    agg_output_type, expr_type, AggCall, ColumnInfo, GroupByPhase, PlanGraph, PlanOp,
};
use hive_common::config::keys;
use hive_common::{DataType, HiveConf, HiveError, Result, Value};
use hive_exec::agg::{parse_agg_function, AggFunction};
use hive_exec::expr::{BinaryOp, ExprNode, UnaryOp};
use hive_exec::operators::JoinType;
use hive_formats::{PredicateLeaf, PredicateOp, SearchArgument};
use hive_ql::{BinOp, Expr, JoinKind, SelectStmt, TableRef, UnOp};
use std::collections::{BTreeMap, BTreeSet};

/// A translated query: the operator DAG plus the driver-side finishing
/// steps (final sort and limit; see DESIGN.md on ORDER BY handling).
#[derive(Debug, Clone)]
pub struct Translation {
    pub graph: PlanGraph,
    /// Final-output column index + ascending flag.
    pub order_by: Vec<(usize, bool)>,
    pub limit: Option<u64>,
    /// Names of the final output columns.
    pub output_names: Vec<String>,
}

/// A relation under construction: a plan node plus its column bindings.
#[derive(Debug, Clone)]
struct Rel {
    node: usize,
    /// Per output column: (binding, column name, type).
    cols: Vec<(Option<String>, String, DataType)>,
}

impl Rel {
    fn schema(&self) -> Vec<ColumnInfo> {
        self.cols
            .iter()
            .map(|(_, n, t)| ColumnInfo::new(n.clone(), t.clone()))
            .collect()
    }

    /// Find a column by (optional) qualifier and name.
    fn lookup(&self, table: Option<&str>, name: &str) -> Result<usize> {
        let name_l = name.to_ascii_lowercase();
        let mut hits = Vec::new();
        for (i, (binding, cname, _)) in self.cols.iter().enumerate() {
            if cname.to_ascii_lowercase() != name_l {
                continue;
            }
            match (table, binding) {
                (Some(t), Some(b)) if t.eq_ignore_ascii_case(b) => hits.push(i),
                (None, _) => hits.push(i),
                _ => {}
            }
        }
        match hits.len() {
            0 => Err(HiveError::Semantic(format!(
                "unknown column `{}{}`",
                table.map(|t| format!("{t}.")).unwrap_or_default(),
                name
            ))),
            1 => Ok(hits[0]),
            _ => Err(HiveError::Semantic(format!("ambiguous column `{name}`"))),
        }
    }
}

/// Translate a SELECT into an operator DAG ending in a FileSink.
pub fn translate(stmt: &SelectStmt, catalog: &dyn Catalog, conf: &HiveConf) -> Result<Translation> {
    let mut g = PlanGraph::default();
    let (rel, order_by, limit, names) = plan_select(&mut g, stmt, catalog, conf)?;
    let schema = rel.schema();
    g.add(PlanOp::FileSink, schema, vec![rel.node]);
    Ok(Translation {
        graph: g,
        order_by,
        limit,
        output_names: names,
    })
}

#[allow(clippy::type_complexity)]
fn plan_select(
    g: &mut PlanGraph,
    stmt: &SelectStmt,
    catalog: &dyn Catalog,
    conf: &HiveConf,
) -> Result<(Rel, Vec<(usize, bool)>, Option<u64>, Vec<String>)> {
    // ------ 1. Column-usage pre-pass for scan pruning. -----------------
    let bindings = collect_bindings(stmt);
    let mut used: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    {
        let mut record = |e: &Expr| collect_columns(e, &bindings, catalog, &mut used);
        for p in &stmt.projections {
            record(&p.expr);
        }
        for j in &stmt.joins {
            record(&j.on);
        }
        if let Some(w) = &stmt.where_clause {
            record(w);
        }
        for e in &stmt.group_by {
            record(e);
        }
        if let Some(h) = &stmt.having {
            record(h);
        }
        for o in &stmt.order_by {
            record(&o.expr);
        }
        // SELECT * needs everything.
        if stmt
            .projections
            .iter()
            .any(|p| matches!(p.expr, Expr::Star))
        {
            for (binding, tref) in &bindings {
                if let TableRef::Table { name, .. } = tref {
                    if let Some(meta) = catalog.table(name) {
                        let set = used.entry(binding.clone()).or_default();
                        for f in meta.schema.fields() {
                            set.insert(f.name.to_ascii_lowercase());
                        }
                    }
                }
            }
        }
    }

    // ------ 2. WHERE split by binding. ---------------------------------
    let empty_where = Expr::Literal(Value::Boolean(true));
    let where_expr = stmt.where_clause.as_ref().unwrap_or(&empty_where);
    let mut per_binding: BTreeMap<String, Vec<&Expr>> = BTreeMap::new();
    let mut post_join: Vec<&Expr> = Vec::new();
    for conj in where_expr.conjuncts() {
        if matches!(conj, Expr::Literal(Value::Boolean(true))) {
            continue;
        }
        match owning_binding(conj, &bindings, catalog) {
            Some(b) => per_binding.entry(b).or_default().push(conj),
            None => post_join.push(conj),
        }
    }

    // ------ 3. Base relations with pushed-down filters. -----------------
    let build_rel = |g: &mut PlanGraph, tref: &TableRef| -> Result<Rel> {
        let binding = tref.binding().to_string();
        let mut rel = plan_table_ref(g, tref, catalog, conf, used.get(&binding))?;
        if let Some(conjs) = per_binding.get(&binding) {
            // Storage-level pushdown into the scan, then a residual Filter
            // (ORC may return whole index groups; the Filter stays correct).
            let pred = conjs
                .iter()
                .map(|e| resolve(e, &rel))
                .collect::<Result<Vec<_>>>()?
                .into_iter()
                .reduce(|a, b| ExprNode::binary(BinaryOp::And, a, b))
                .unwrap();
            if conf.get_bool(keys::OPT_PPD_STORAGE).unwrap_or(true) {
                attach_sarg(g, &rel, &pred);
            }
            let schema = rel.schema();
            let f = g.add(PlanOp::Filter { predicate: pred }, schema, vec![rel.node]);
            rel.node = f;
        }
        Ok(rel)
    };

    let mut acc = build_rel(g, &stmt.from)?;

    // ------ 4. Joins (left-deep chain of binary reduce joins). ----------
    //
    // Consecutive *outer* joins over the same key collapse into one n-ary
    // Join operator, like Hive's JoinOperator merge. The row engine only
    // implements binary outer joins, so such plans surface its
    // "outer joins must be binary" error as a typed HiveError at run time
    // instead of silently producing a wrong left-deep answer.
    let mut outer_merge: Option<OuterMerge> = None;
    for join in &stmt.joins {
        let right = build_rel(g, &join.table)?;
        let (equi, residual) = split_join_condition(&join.on, &acc, &right)?;
        if equi.is_empty() {
            return Err(HiveError::Semantic(
                "join without an equality condition is not supported".into(),
            ));
        }
        let num_reducers = conf.get_usize(keys::REDUCE_TASKS)?.max(1);
        let kind = match join.kind {
            JoinKind::Inner => JoinType::Inner,
            JoinKind::LeftOuter => JoinType::LeftOuter,
            JoinKind::RightOuter => JoinType::RightOuter,
            JoinKind::FullOuter => JoinType::FullOuter,
        };
        if let Some(state) = outer_merge.as_mut().filter(|s| {
            kind != JoinType::Inner
                && s.node == acc.node
                && s.kind == kind
                && s.nk == equi.len()
                && residual.is_empty()
                && equi
                    .iter()
                    .enumerate()
                    .all(|(i, (l, _))| matches!(l, ExprNode::Column(c) if s.equiv[i].contains(c)))
        }) {
            merge_outer_join(g, state, &mut acc, right, &equi, num_reducers)?;
            continue;
        }
        let nk = equi.len();
        let left_len = acc.cols.len();
        let key_cols: Vec<(Option<usize>, Option<usize>)> = equi
            .iter()
            .map(|(l, r)| {
                let col = |e: &ExprNode| match e {
                    ExprNode::Column(c) => Some(*c),
                    _ => None,
                };
                (col(l), col(r))
            })
            .collect();
        acc = add_reduce_join(g, acc, right, &equi, kind, num_reducers)?;
        let mergeable = kind != JoinType::Inner && residual.is_empty();
        for r in residual {
            let pred = resolve_owned(r, &acc)?;
            let schema = acc.schema();
            let f = g.add(PlanOp::Filter { predicate: pred }, schema, vec![acc.node]);
            acc.node = f;
        }
        outer_merge = mergeable.then(|| {
            // Columns of the joined layout [_lkeys, l_cols, _rkeys, r_cols]
            // known equal to key i, so a later join keyed on any of them
            // can merge in.
            let mut equiv = vec![BTreeSet::new(); nk];
            for (i, (lc, rc)) in key_cols.iter().enumerate() {
                equiv[i].insert(i);
                if let Some(c) = lc {
                    equiv[i].insert(nk + c);
                }
                equiv[i].insert(nk + left_len + i);
                if let Some(c) = rc {
                    equiv[i].insert(nk + left_len + nk + c);
                }
            }
            OuterMerge {
                node: acc.node,
                kind,
                nk,
                equiv,
            }
        });
    }

    // ------ 5. Post-join WHERE conjuncts. --------------------------------
    for conj in post_join {
        let pred = resolve(conj, &acc)?;
        let schema = acc.schema();
        let f = g.add(PlanOp::Filter { predicate: pred }, schema, vec![acc.node]);
        acc.node = f;
    }

    // ------ 6. Aggregation. ----------------------------------------------
    let mut agg_calls: Vec<Expr> = Vec::new();
    for p in &stmt.projections {
        collect_agg_calls(&p.expr, &mut agg_calls);
    }
    if let Some(h) = &stmt.having {
        collect_agg_calls(h, &mut agg_calls);
    }
    for o in &stmt.order_by {
        collect_agg_calls(&o.expr, &mut agg_calls);
    }
    let has_agg = !agg_calls.is_empty() || !stmt.group_by.is_empty();

    let (final_rel, group_subst): (Rel, Option<GroupSubst>) = if has_agg {
        let (rel, subst) = add_aggregation(g, acc, &stmt.group_by, &agg_calls, conf)?;
        (rel, Some(subst))
    } else {
        (acc, None)
    };

    // ------ 7. HAVING. -----------------------------------------------------
    let mut final_rel = final_rel;
    if let Some(h) = &stmt.having {
        let pred = match &group_subst {
            Some(s) => resolve_with_groups(h, s, &final_rel)?,
            None => resolve(h, &final_rel)?,
        };
        let schema = final_rel.schema();
        let f = g.add(
            PlanOp::Filter { predicate: pred },
            schema,
            vec![final_rel.node],
        );
        final_rel.node = f;
    }

    // ------ 8. Final projection. ------------------------------------------
    let mut out_exprs = Vec::new();
    let mut out_cols = Vec::new();
    let mut out_names = Vec::new();
    for (i, p) in stmt.projections.iter().enumerate() {
        if matches!(p.expr, Expr::Star) {
            for (c, (b, n, t)) in final_rel.cols.iter().enumerate() {
                out_exprs.push(ExprNode::col(c));
                out_cols.push((b.clone(), n.clone(), t.clone()));
                out_names.push(n.clone());
            }
            continue;
        }
        let e = match &group_subst {
            Some(s) => resolve_with_groups(&p.expr, s, &final_rel)?,
            None => resolve(&p.expr, &final_rel)?,
        };
        let t = expr_type(&e, &final_rel.schema())?;
        let name = p.alias.clone().unwrap_or_else(|| match &p.expr {
            Expr::Column { name, .. } => name.clone(),
            _ => format!("_c{i}"),
        });
        out_exprs.push(e);
        out_cols.push((None, name.clone(), t));
        out_names.push(name);
    }
    let out_schema: Vec<ColumnInfo> = out_cols
        .iter()
        .map(|(_, n, t)| ColumnInfo::new(n.clone(), t.clone()))
        .collect();
    let sel = g.add(
        PlanOp::Select {
            exprs: out_exprs.clone(),
        },
        out_schema,
        vec![final_rel.node],
    );
    let mut result = Rel {
        node: sel,
        cols: out_cols,
    };

    // ------ 9. ORDER BY: resolve to output positions (driver-side sort). --
    let mut order_by = Vec::new();
    for o in &stmt.order_by {
        let idx = resolve_order_item(
            &o.expr,
            stmt,
            &out_names,
            &group_subst,
            &final_rel,
            &out_exprs,
        )?;
        order_by.push((idx, o.ascending));
    }

    // ------ 10. LIMIT (plan-level only when no final sort is pending). ----
    let limit = stmt.limit;
    if let Some(n) = limit {
        if order_by.is_empty() {
            let schema = result.schema();
            let l = g.add(PlanOp::Limit(n), schema, vec![result.node]);
            result.node = l;
        }
    }

    Ok((result, order_by, limit, out_names))
}

/// Collect `(binding, table_ref)` pairs from the FROM clause.
fn collect_bindings(stmt: &SelectStmt) -> Vec<(String, TableRef)> {
    let mut out = vec![(stmt.from.binding().to_string(), stmt.from.clone())];
    for j in &stmt.joins {
        out.push((j.table.binding().to_string(), j.table.clone()));
    }
    out
}

/// Record every column reference of `e` against its owning binding.
fn collect_columns(
    e: &Expr,
    bindings: &[(String, TableRef)],
    catalog: &dyn Catalog,
    used: &mut BTreeMap<String, BTreeSet<String>>,
) {
    match e {
        Expr::Column { table, name } => {
            let name_l = name.to_ascii_lowercase();
            match table {
                Some(t) => {
                    used.entry(t.to_ascii_lowercase())
                        .or_default()
                        .insert(name_l);
                }
                None => {
                    // Attribute to whichever binding's table has the column.
                    for (binding, tref) in bindings {
                        let has = match tref {
                            TableRef::Table { name: tname, .. } => catalog
                                .table(tname)
                                .map(|m| m.schema.index_of(name).is_ok())
                                .unwrap_or(false),
                            TableRef::Subquery { query, .. } => query.projections.iter().any(|p| {
                                p.alias.as_deref().map(|a| a.eq_ignore_ascii_case(name)).unwrap_or(
                                    matches!(&p.expr, Expr::Column { name: n, .. } if n.eq_ignore_ascii_case(name)),
                                )
                            }),
                        };
                        if has {
                            used.entry(binding.to_ascii_lowercase())
                                .or_default()
                                .insert(name_l.clone());
                        }
                    }
                }
            }
        }
        Expr::Binary { left, right, .. } => {
            collect_columns(left, bindings, catalog, used);
            collect_columns(right, bindings, catalog, used);
        }
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => {
            collect_columns(expr, bindings, catalog, used)
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_columns(a, bindings, catalog, used);
            }
        }
        Expr::Between { expr, lo, hi, .. } => {
            collect_columns(expr, bindings, catalog, used);
            collect_columns(lo, bindings, catalog, used);
            collect_columns(hi, bindings, catalog, used);
        }
        Expr::IsNull { expr, .. } => collect_columns(expr, bindings, catalog, used),
        Expr::InList { expr, list, .. } => {
            collect_columns(expr, bindings, catalog, used);
            for l in list {
                collect_columns(l, bindings, catalog, used);
            }
        }
        Expr::Case {
            branches,
            else_value,
        } => {
            for (c, v) in branches {
                collect_columns(c, bindings, catalog, used);
                collect_columns(v, bindings, catalog, used);
            }
            if let Some(e) = else_value {
                collect_columns(e, bindings, catalog, used);
            }
        }
        Expr::Literal(_) | Expr::Star => {}
    }
}

/// The single binding `e` references, or None (zero or several).
fn owning_binding(
    e: &Expr,
    bindings: &[(String, TableRef)],
    catalog: &dyn Catalog,
) -> Option<String> {
    let mut used: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    collect_columns(e, bindings, catalog, &mut used);
    let refs: Vec<&String> = used
        .iter()
        .filter(|(_, v)| !v.is_empty())
        .map(|(k, _)| k)
        .collect();
    if refs.len() == 1 {
        Some(refs[0].clone())
    } else {
        None
    }
}

/// Plan a FROM-clause table reference.
fn plan_table_ref(
    g: &mut PlanGraph,
    tref: &TableRef,
    catalog: &dyn Catalog,
    conf: &HiveConf,
    used: Option<&BTreeSet<String>>,
) -> Result<Rel> {
    match tref {
        TableRef::Table { name, alias } => {
            let meta = catalog
                .table(name)
                .ok_or_else(|| HiveError::Semantic(format!("unknown table `{name}`")))?;
            let binding = alias.clone().unwrap_or_else(|| name.clone());
            // Column pruning: only the referenced columns are scanned.
            let projection: Vec<usize> = match used {
                Some(set) if !set.is_empty() => meta
                    .schema
                    .fields()
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| set.contains(&f.name.to_ascii_lowercase()))
                    .map(|(i, _)| i)
                    .collect(),
                _ => (0..meta.schema.len()).collect(),
            };
            let projection = if projection.is_empty() {
                vec![0] // always scan something (COUNT(*)-only queries)
            } else {
                projection
            };
            let cols: Vec<(Option<String>, String, DataType)> = projection
                .iter()
                .map(|&i| {
                    let f = meta.schema.field(i);
                    (Some(binding.clone()), f.name.clone(), f.data_type.clone())
                })
                .collect();
            let schema: Vec<ColumnInfo> = cols
                .iter()
                .map(|(_, n, t)| ColumnInfo::new(n.clone(), t.clone()))
                .collect();
            let node = g.add(
                PlanOp::TableScan {
                    alias: binding.clone(),
                    table: meta,
                    projection,
                    sarg: None,
                },
                schema,
                vec![],
            );
            Ok(Rel { node, cols })
        }
        TableRef::Subquery { query, alias } => {
            let (mut rel, order, _limit, _names) = plan_select(g, query, catalog, conf)?;
            if !order.is_empty() {
                return Err(HiveError::Semantic(
                    "ORDER BY in FROM-clause subqueries is not supported".into(),
                ));
            }
            // Re-bind output columns under the subquery alias.
            for c in rel.cols.iter_mut() {
                c.0 = Some(alias.clone());
            }
            Ok(rel)
        }
    }
}

/// Resolve an AST expression against a relation.
fn resolve(e: &Expr, rel: &Rel) -> Result<ExprNode> {
    Ok(match e {
        Expr::Column { table, name } => ExprNode::Column(rel.lookup(table.as_deref(), name)?),
        Expr::Literal(v) => ExprNode::Literal(v.clone()),
        Expr::Binary { op, left, right } => ExprNode::Binary {
            op: convert_binop(*op),
            left: Box::new(resolve(left, rel)?),
            right: Box::new(resolve(right, rel)?),
        },
        Expr::Unary { op, expr } => ExprNode::Unary {
            op: match op {
                UnOp::Neg => UnaryOp::Neg,
                UnOp::Not => UnaryOp::Not,
            },
            expr: Box::new(resolve(expr, rel)?),
        },
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => ExprNode::Between {
            expr: Box::new(resolve(expr, rel)?),
            lo: Box::new(resolve(lo, rel)?),
            hi: Box::new(resolve(hi, rel)?),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => ExprNode::IsNull {
            expr: Box::new(resolve(expr, rel)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => ExprNode::InList {
            expr: Box::new(resolve(expr, rel)?),
            list: list
                .iter()
                .map(|l| resolve(l, rel))
                .collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Cast { expr, target } => ExprNode::Cast {
            expr: Box::new(resolve(expr, rel)?),
            target: target.clone(),
        },
        Expr::Case {
            branches,
            else_value,
        } => ExprNode::Case {
            branches: branches
                .iter()
                .map(|(c, v)| Ok((resolve(c, rel)?, resolve(v, rel)?)))
                .collect::<Result<_>>()?,
            else_value: match else_value {
                Some(e) => Some(Box::new(resolve(e, rel)?)),
                None => None,
            },
        },
        Expr::Function { name, .. } => {
            return Err(HiveError::Semantic(format!(
                "function `{name}` is not valid here (aggregates need GROUP BY context; \
                 scalar UDFs are not supported)"
            )))
        }
        Expr::Star => return Err(HiveError::Semantic("`*` is only valid in COUNT(*)".into())),
    })
}

fn resolve_owned(e: &Expr, rel: &Rel) -> Result<ExprNode> {
    resolve(e, rel)
}

fn convert_binop(op: BinOp) -> BinaryOp {
    match op {
        BinOp::Add => BinaryOp::Add,
        BinOp::Subtract => BinaryOp::Subtract,
        BinOp::Multiply => BinaryOp::Multiply,
        BinOp::Divide => BinaryOp::Divide,
        BinOp::Modulo => BinaryOp::Modulo,
        BinOp::Eq => BinaryOp::Eq,
        BinOp::NotEq => BinaryOp::NotEq,
        BinOp::Lt => BinaryOp::Lt,
        BinOp::LtEq => BinaryOp::LtEq,
        BinOp::Gt => BinaryOp::Gt,
        BinOp::GtEq => BinaryOp::GtEq,
        BinOp::And => BinaryOp::And,
        BinOp::Or => BinaryOp::Or,
    }
}

/// Extract a SearchArgument from scan-level conjuncts and attach it
/// (column indexes refer to the *table schema*, pre-projection).
fn attach_sarg(g: &mut PlanGraph, rel: &Rel, pred: &ExprNode) {
    let node = rel.node;
    let projection = match &g.node(node).op {
        PlanOp::TableScan { projection, .. } => projection.clone(),
        _ => return,
    };
    let mut leaves = Vec::new();
    collect_sarg_leaves(pred, &projection, &mut leaves);
    if !leaves.is_empty() {
        if let PlanOp::TableScan { sarg: s, .. } = &mut g.node_mut(node).op {
            *s = Some(SearchArgument::new(leaves));
        }
    }
}

/// A literal usable in a sarg leaf: plain literals, plus negated numeric
/// literals — the parser keeps `-181` as `Neg(181)`, and a pushed-down
/// range like `v BETWEEN -181 AND -121` must not lose its sarg over it.
fn sarg_literal(e: &ExprNode) -> Option<Value> {
    match e {
        ExprNode::Literal(v) => Some(v.clone()),
        ExprNode::Unary {
            op: UnaryOp::Neg,
            expr,
        } => match &**expr {
            ExprNode::Literal(Value::Int(i)) => Some(Value::Int(-i)),
            ExprNode::Literal(Value::Double(d)) => Some(Value::Double(-d)),
            _ => None,
        },
        _ => None,
    }
}

fn collect_sarg_leaves(e: &ExprNode, projection: &[usize], out: &mut Vec<PredicateLeaf>) {
    match e {
        ExprNode::Binary {
            op: BinaryOp::And,
            left,
            right,
        } => {
            collect_sarg_leaves(left, projection, out);
            collect_sarg_leaves(right, projection, out);
        }
        ExprNode::Binary { op, left, right } => {
            let mapped = |i: usize| projection.get(i).copied();
            let (col, lit, op) = match (&**left, &**right) {
                (ExprNode::Column(i), rhs) => match sarg_literal(rhs) {
                    Some(v) => (mapped(*i), v, *op),
                    None => return,
                },
                (lhs, ExprNode::Column(i)) => match sarg_literal(lhs) {
                    Some(v) => {
                        // Flip the comparison: lit OP col ≡ col OP' lit.
                        let flipped = match op {
                            BinaryOp::Lt => BinaryOp::Gt,
                            BinaryOp::LtEq => BinaryOp::GtEq,
                            BinaryOp::Gt => BinaryOp::Lt,
                            BinaryOp::GtEq => BinaryOp::LtEq,
                            other => *other,
                        };
                        (mapped(*i), v, flipped)
                    }
                    None => return,
                },
                _ => return,
            };
            let Some(col) = col else { return };
            let pop = match op {
                BinaryOp::Eq => PredicateOp::Equals,
                BinaryOp::NotEq => PredicateOp::NotEquals,
                BinaryOp::Lt => PredicateOp::LessThan,
                BinaryOp::LtEq => PredicateOp::LessThanEquals,
                BinaryOp::Gt => PredicateOp::GreaterThan,
                BinaryOp::GtEq => PredicateOp::GreaterThanEquals,
                _ => return,
            };
            out.push(PredicateLeaf::new(col, pop, Some(lit)));
        }
        ExprNode::Between {
            expr,
            lo,
            hi,
            negated: false,
        } => {
            if let ExprNode::Column(i) = &**expr {
                if let (Some(col), Some(l), Some(h)) = (
                    projection.get(*i).copied(),
                    sarg_literal(lo),
                    sarg_literal(hi),
                ) {
                    out.push(PredicateLeaf::between(col, l, h));
                }
            }
        }
        ExprNode::IsNull { expr, negated } => {
            if let ExprNode::Column(i) = &**expr {
                if let Some(col) = projection.get(*i).copied() {
                    out.push(PredicateLeaf::new(
                        col,
                        if *negated {
                            PredicateOp::IsNotNull
                        } else {
                            PredicateOp::IsNull
                        },
                        None,
                    ));
                }
            }
        }
        ExprNode::InList {
            expr,
            list,
            negated: false,
        } => {
            if let ExprNode::Column(i) = &**expr {
                let values: Option<Vec<_>> = list.iter().map(sarg_literal).collect();
                if let (Some(col), Some(values)) = (projection.get(*i).copied(), values) {
                    out.push(PredicateLeaf::in_list(col, values));
                }
            }
        }
        _ => {}
    }
}

/// Split a join condition into equi-key pairs `(left_expr, right_expr)`
/// and residual conjuncts.
#[allow(clippy::type_complexity)]
fn split_join_condition<'a>(
    on: &'a Expr,
    left: &Rel,
    right: &Rel,
) -> Result<(Vec<(ExprNode, ExprNode)>, Vec<&'a Expr>)> {
    let mut equi = Vec::new();
    let mut residual = Vec::new();
    for conj in on.conjuncts() {
        if let Expr::Binary {
            op: BinOp::Eq,
            left: a,
            right: b,
        } = conj
        {
            // Try (a over left, b over right), then flipped.
            if let (Ok(l), Ok(r)) = (resolve(a, left), resolve(b, right)) {
                equi.push((l, r));
                continue;
            }
            if let (Ok(l), Ok(r)) = (resolve(b, left), resolve(a, right)) {
                equi.push((l, r));
                continue;
            }
        }
        residual.push(conj);
    }
    Ok((equi, residual))
}

/// Merge bookkeeping for consecutive same-key outer joins: the Join node
/// they collapse into and, per key position, the set of output columns of
/// the accumulated relation known equal to that key.
struct OuterMerge {
    node: usize,
    kind: JoinType,
    nk: usize,
    equiv: Vec<BTreeSet<usize>>,
}

/// Fold another input into an existing n-ary outer Join node: add a
/// ReduceSink over `right` keyed like the join, wire it in as one more
/// parent, and extend the joined layout with `[_rkeys, r_cols]`.
fn merge_outer_join(
    g: &mut PlanGraph,
    state: &mut OuterMerge,
    acc: &mut Rel,
    right: Rel,
    equi: &[(ExprNode, ExprNode)],
    num_reducers: usize,
) -> Result<()> {
    let nk = state.nk;
    let rkeys: Vec<ExprNode> = equi.iter().map(|(_, r)| r.clone()).collect();
    let rvals: Vec<ExprNode> = (0..right.cols.len()).map(ExprNode::col).collect();
    let key_types: Vec<DataType> = acc.cols[..nk].iter().map(|(_, _, t)| t.clone()).collect();

    let mut rs_schema: Vec<ColumnInfo> = key_types
        .iter()
        .enumerate()
        .map(|(i, t)| ColumnInfo::new(format!("_key{i}"), t.clone()))
        .collect();
    rs_schema.extend(right.schema());
    let rs = g.add(
        PlanOp::ReduceSink {
            keys: rkeys.clone(),
            values: rvals,
            num_reducers,
            degenerate: false,
        },
        rs_schema,
        vec![right.node],
    );

    let off = acc.cols.len();
    g.nodes[state.node].parents.push(rs);
    g.nodes[rs].children.push(state.node);
    match &mut g.nodes[state.node].op {
        PlanOp::Join { input_widths, .. } => input_widths.push(nk + right.cols.len()),
        _ => unreachable!("outer-merge state always points at a Join node"),
    }
    for (i, t) in key_types.iter().enumerate() {
        acc.cols.push((None, format!("_rkey{i}"), t.clone()));
    }
    acc.cols.extend(right.cols.iter().cloned());
    g.nodes[state.node].schema = acc.schema();

    for (i, key) in rkeys.iter().enumerate() {
        state.equiv[i].insert(off + i);
        if let ExprNode::Column(c) = key {
            state.equiv[i].insert(off + nk + *c);
        }
    }
    Ok(())
}

/// Insert RS + RS + Join for a binary reduce join. The joined row layout is
/// `[l_keys, l_cols, r_keys, r_cols]` because reduce-side rows arrive as
/// key ++ value.
fn add_reduce_join(
    g: &mut PlanGraph,
    left: Rel,
    right: Rel,
    equi: &[(ExprNode, ExprNode)],
    kind: JoinType,
    num_reducers: usize,
) -> Result<Rel> {
    let nk = equi.len();
    let lkeys: Vec<ExprNode> = equi.iter().map(|(l, _)| l.clone()).collect();
    let rkeys: Vec<ExprNode> = equi.iter().map(|(_, r)| r.clone()).collect();
    let lvals: Vec<ExprNode> = (0..left.cols.len()).map(ExprNode::col).collect();
    let rvals: Vec<ExprNode> = (0..right.cols.len()).map(ExprNode::col).collect();

    let key_types: Vec<DataType> = lkeys
        .iter()
        .map(|e| expr_type(e, &left.schema()))
        .collect::<Result<_>>()?;

    let mut rs_schema_l: Vec<ColumnInfo> = key_types
        .iter()
        .enumerate()
        .map(|(i, t)| ColumnInfo::new(format!("_key{i}"), t.clone()))
        .collect();
    rs_schema_l.extend(left.schema());
    let mut rs_schema_r: Vec<ColumnInfo> = key_types
        .iter()
        .enumerate()
        .map(|(i, t)| ColumnInfo::new(format!("_key{i}"), t.clone()))
        .collect();
    rs_schema_r.extend(right.schema());

    let rs_l = g.add(
        PlanOp::ReduceSink {
            keys: lkeys,
            values: lvals,
            num_reducers,
            degenerate: false,
        },
        rs_schema_l.clone(),
        vec![left.node],
    );
    let rs_r = g.add(
        PlanOp::ReduceSink {
            keys: rkeys,
            values: rvals,
            num_reducers,
            degenerate: false,
        },
        rs_schema_r.clone(),
        vec![right.node],
    );

    let mut cols: Vec<(Option<String>, String, DataType)> = Vec::new();
    for i in 0..nk {
        cols.push((None, format!("_lkey{i}"), key_types[i].clone()));
    }
    cols.extend(left.cols.iter().cloned());
    for i in 0..nk {
        cols.push((None, format!("_rkey{i}"), key_types[i].clone()));
    }
    cols.extend(right.cols.iter().cloned());
    let schema: Vec<ColumnInfo> = cols
        .iter()
        .map(|(_, n, t)| ColumnInfo::new(n.clone(), t.clone()))
        .collect();

    let join = g.add(
        PlanOp::Join {
            kind,
            input_widths: vec![nk + left.cols.len(), nk + right.cols.len()],
        },
        schema,
        vec![rs_l, rs_r],
    );
    Ok(Rel { node: join, cols })
}

/// The substitution context built by aggregation planning.
#[derive(Debug, Clone)]
struct GroupSubst {
    /// Resolved group expressions (over the pre-GBY rel) → output position.
    groups: Vec<(ExprNode, usize)>,
    /// Aggregate calls: (function, resolved arg) → output position.
    aggs: Vec<(AggFunction, Option<ExprNode>, usize)>,
    /// The pre-aggregation relation (for resolving inner expressions).
    input_rel: Rel,
}

/// Insert map-side hash GBY → RS → reduce-side merge GBY.
fn add_aggregation(
    g: &mut PlanGraph,
    input: Rel,
    group_by: &[Expr],
    agg_calls: &[Expr],
    conf: &HiveConf,
) -> Result<(Rel, GroupSubst)> {
    let nk = group_by.len();
    let mut key_exprs = Vec::with_capacity(nk);
    let mut key_infos = Vec::with_capacity(nk);
    for (i, e) in group_by.iter().enumerate() {
        let r = resolve(e, &input)?;
        let t = expr_type(&r, &input.schema())?;
        let name = match e {
            Expr::Column { name, .. } => name.clone(),
            _ => format!("_gk{i}"),
        };
        key_exprs.push(r);
        key_infos.push(ColumnInfo::new(name, t));
    }

    let mut calls = Vec::with_capacity(agg_calls.len());
    let mut subst_aggs = Vec::new();
    for (i, e) in agg_calls.iter().enumerate() {
        let Expr::Function {
            name,
            args,
            distinct,
        } = e
        else {
            return Err(HiveError::Semantic("expected aggregate call".into()));
        };
        if *distinct {
            return Err(HiveError::Semantic(
                "DISTINCT aggregates are not supported".into(),
            ));
        }
        let star = matches!(args.first(), Some(Expr::Star));
        let function = parse_agg_function(name, star)
            .ok_or_else(|| HiveError::Semantic(format!("unknown aggregate `{name}`")))?;
        let arg = if star || args.is_empty() {
            None
        } else {
            Some(resolve(&args[0], &input)?)
        };
        let arg_type = match &arg {
            Some(a) => Some(expr_type(a, &input.schema())?),
            None => None,
        };
        let out_type = agg_output_type(function, arg_type.as_ref());
        subst_aggs.push((function, arg.clone(), nk + i));
        calls.push(AggCall {
            function,
            arg,
            output_name: format!("_agg{i}"),
            output_type: out_type,
        });
    }

    // Map-side partial aggregation.
    let mut map_schema = key_infos.clone();
    for c in &calls {
        // Partial AVG travels as a struct(sum, count).
        let t = if c.function == AggFunction::Avg {
            DataType::Struct(vec![
                ("sum".into(), DataType::Double),
                ("cnt".into(), DataType::Int),
            ])
        } else {
            c.output_type.clone()
        };
        map_schema.push(ColumnInfo::new(c.output_name.clone(), t));
    }
    let map_gby = g.add(
        PlanOp::GroupBy {
            phase: GroupByPhase::MapHash,
            keys: key_exprs.clone(),
            aggs: calls.clone(),
        },
        map_schema.clone(),
        vec![input.node],
    );

    // Shuffle on the group keys.
    let num_reducers = if nk == 0 {
        1
    } else {
        conf.get_usize(keys::REDUCE_TASKS)?.max(1)
    };
    let rs_keys: Vec<ExprNode> = (0..nk).map(ExprNode::col).collect();
    let rs_values: Vec<ExprNode> = (nk..nk + calls.len()).map(ExprNode::col).collect();
    let rs = g.add(
        PlanOp::ReduceSink {
            keys: rs_keys,
            values: rs_values,
            num_reducers,
            degenerate: false,
        },
        map_schema.clone(),
        vec![map_gby],
    );

    // Reduce-side merge.
    let merge_calls: Vec<AggCall> = calls
        .iter()
        .enumerate()
        .map(|(i, c)| AggCall {
            function: c.function,
            arg: Some(ExprNode::col(nk + i)),
            output_name: c.output_name.clone(),
            output_type: c.output_type.clone(),
        })
        .collect();
    let mut out_schema = key_infos.clone();
    for c in &calls {
        out_schema.push(ColumnInfo::new(
            c.output_name.clone(),
            c.output_type.clone(),
        ));
    }
    let merge_gby = g.add(
        PlanOp::GroupBy {
            phase: GroupByPhase::ReduceMerge,
            keys: (0..nk).map(ExprNode::col).collect(),
            aggs: merge_calls,
        },
        out_schema.clone(),
        vec![rs],
    );

    let cols: Vec<(Option<String>, String, DataType)> = out_schema
        .iter()
        .map(|c| (None, c.name.clone(), c.data_type.clone()))
        .collect();
    let subst = GroupSubst {
        groups: key_exprs
            .into_iter()
            .enumerate()
            .map(|(i, e)| (e, i))
            .collect(),
        aggs: subst_aggs,
        input_rel: input,
    };
    Ok((
        Rel {
            node: merge_gby,
            cols,
        },
        subst,
    ))
}

/// Resolve an expression over the aggregation output: group expressions and
/// aggregate calls become column references; anything else must be composed
/// of them.
fn resolve_with_groups(e: &Expr, subst: &GroupSubst, out_rel: &Rel) -> Result<ExprNode> {
    // An aggregate call?
    if let Expr::Function { name, args, .. } = e {
        let star = matches!(args.first(), Some(Expr::Star));
        if let Some(f) = parse_agg_function(name, star) {
            let arg = if star || args.is_empty() {
                None
            } else {
                Some(resolve(&args[0], &subst.input_rel)?)
            };
            for (af, aarg, idx) in &subst.aggs {
                if *af == f && *aarg == arg {
                    return Ok(ExprNode::col(*idx));
                }
            }
            return Err(HiveError::Semantic(format!(
                "aggregate `{name}` was not collected during planning"
            )));
        }
    }
    // A group expression (structurally, after resolution)?
    if let Ok(resolved) = resolve(e, &subst.input_rel) {
        for (ge, idx) in &subst.groups {
            if *ge == resolved {
                return Ok(ExprNode::col(*idx));
            }
        }
        // A bare column that is not grouped is an error; composite
        // expressions may still decompose below.
        if matches!(e, Expr::Column { .. }) {
            return Err(HiveError::Semantic(format!(
                "column {e:?} is neither grouped nor aggregated"
            )));
        }
    }
    // Recurse structurally.
    Ok(match e {
        Expr::Literal(v) => ExprNode::Literal(v.clone()),
        Expr::Binary { op, left, right } => ExprNode::Binary {
            op: convert_binop(*op),
            left: Box::new(resolve_with_groups(left, subst, out_rel)?),
            right: Box::new(resolve_with_groups(right, subst, out_rel)?),
        },
        Expr::Unary { op, expr } => ExprNode::Unary {
            op: match op {
                UnOp::Neg => UnaryOp::Neg,
                UnOp::Not => UnaryOp::Not,
            },
            expr: Box::new(resolve_with_groups(expr, subst, out_rel)?),
        },
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => ExprNode::Between {
            expr: Box::new(resolve_with_groups(expr, subst, out_rel)?),
            lo: Box::new(resolve_with_groups(lo, subst, out_rel)?),
            hi: Box::new(resolve_with_groups(hi, subst, out_rel)?),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => ExprNode::IsNull {
            expr: Box::new(resolve_with_groups(expr, subst, out_rel)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => ExprNode::InList {
            expr: Box::new(resolve_with_groups(expr, subst, out_rel)?),
            list: list
                .iter()
                .map(|l| resolve_with_groups(l, subst, out_rel))
                .collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Cast { expr, target } => ExprNode::Cast {
            expr: Box::new(resolve_with_groups(expr, subst, out_rel)?),
            target: target.clone(),
        },
        Expr::Case {
            branches,
            else_value,
        } => ExprNode::Case {
            branches: branches
                .iter()
                .map(|(c, v)| {
                    Ok((
                        resolve_with_groups(c, subst, out_rel)?,
                        resolve_with_groups(v, subst, out_rel)?,
                    ))
                })
                .collect::<Result<_>>()?,
            else_value: match else_value {
                Some(x) => Some(Box::new(resolve_with_groups(x, subst, out_rel)?)),
                None => None,
            },
        },
        other => {
            return Err(HiveError::Semantic(format!(
                "cannot resolve {other:?} over the aggregation output"
            )))
        }
    })
}

fn collect_agg_calls(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Function { name, args, .. } => {
            let star = matches!(args.first(), Some(Expr::Star));
            if parse_agg_function(name, star).is_some() {
                if !out.contains(e) {
                    out.push(e.clone());
                }
                return;
            }
            for a in args {
                collect_agg_calls(a, out);
            }
        }
        Expr::Binary { left, right, .. } => {
            collect_agg_calls(left, out);
            collect_agg_calls(right, out);
        }
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => collect_agg_calls(expr, out),
        Expr::Between { expr, lo, hi, .. } => {
            collect_agg_calls(expr, out);
            collect_agg_calls(lo, out);
            collect_agg_calls(hi, out);
        }
        Expr::IsNull { expr, .. } => collect_agg_calls(expr, out),
        Expr::InList { expr, list, .. } => {
            collect_agg_calls(expr, out);
            for l in list {
                collect_agg_calls(l, out);
            }
        }
        Expr::Case {
            branches,
            else_value,
        } => {
            for (c, v) in branches {
                collect_agg_calls(c, out);
                collect_agg_calls(v, out);
            }
            if let Some(e) = else_value {
                collect_agg_calls(e, out);
            }
        }
        _ => {}
    }
}

/// Resolve one ORDER BY item to a final-output column index.
fn resolve_order_item(
    e: &Expr,
    _stmt: &SelectStmt,
    out_names: &[String],
    subst: &Option<GroupSubst>,
    final_rel: &Rel,
    out_exprs: &[ExprNode],
) -> Result<usize> {
    // By alias / output name.
    if let Expr::Column { table: None, name } = e {
        if let Some(i) = out_names.iter().position(|n| n.eq_ignore_ascii_case(name)) {
            return Ok(i);
        }
    }
    // By matching the projected expression.
    let resolved = match subst {
        Some(s) => resolve_with_groups(e, s, final_rel)?,
        None => resolve(e, final_rel)?,
    };
    if let Some(i) = out_exprs.iter().position(|x| *x == resolved) {
        return Ok(i);
    }
    Err(HiveError::Semantic(format!(
        "ORDER BY expression {e:?} is not in the select list"
    )))
}
