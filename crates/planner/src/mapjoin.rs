//! Reduce Join → Map Join conversion (paper Section 5.1).
//!
//! "One representative example is, for a two way join, to build a hashtable
//! for the smaller table and load it in every Map task reading the larger
//! table for a hash join." When a join side is a simple scan chain
//! (TableScan [→ Filter]) over a table below the small-table threshold, the
//! Join and its two ReduceSinks are replaced by a MapJoin operator on the
//! streamed side, and the small side becomes a broadcast ("distributed
//! cache") input.

use crate::plan::{ColumnInfo, MapJoinSide, PlanGraph, PlanOp};
use hive_common::config::keys;
use hive_common::{HiveConf, Result};
use hive_exec::expr::ExprNode;
use hive_exec::operators::JoinType;

/// A join side that qualifies as a Map Join build side.
struct SmallSide {
    scan_id: usize,
    filter: Option<ExprNode>,
    /// Nodes to delete when converting (scan + filter chain + its RS).
    chain: Vec<usize>,
}

/// Convert every eligible Reduce Join into a Map Join.
pub fn convert_map_joins(g: &mut PlanGraph, conf: &HiveConf) -> Result<()> {
    let threshold = conf.get_usize(keys::MAPJOIN_SMALLTABLE_SIZE)? as u64;
    // Joins are visited bottom-up (lower ids were added earlier = closer to
    // the scans), so chained star joins convert one by one.
    let join_ids = g.find(|n| matches!(n.op, PlanOp::Join { .. }));
    for j in join_ids {
        try_convert(g, j, threshold)?;
    }
    Ok(())
}

fn try_convert(g: &mut PlanGraph, join_id: usize, threshold: u64) -> Result<()> {
    if !g.node(join_id).alive {
        return Ok(());
    }
    let PlanOp::Join { kind, .. } = g.node(join_id).op.clone() else {
        return Ok(());
    };
    let parents = g.node(join_id).parents.clone();
    if parents.len() != 2 {
        return Ok(());
    }
    let (rs_l, rs_r) = (parents[0], parents[1]);

    // Outer joins can only stream the preserved side.
    let right_ok = matches!(kind, JoinType::Inner | JoinType::LeftOuter);
    let left_ok = matches!(kind, JoinType::Inner);
    let small_r = if right_ok {
        small_side(g, rs_r, threshold)
    } else {
        None
    };
    let small_l = if left_ok {
        small_side(g, rs_l, threshold)
    } else {
        None
    };

    // Prefer hashing the right side (keeps column order without a
    // permutation); fall back to the left for inner joins.
    if let Some(side) = small_r {
        convert(g, join_id, rs_l, rs_r, side, kind, false)?;
    } else if let Some(side) = small_l {
        convert(g, join_id, rs_r, rs_l, side, kind, true)?;
    }
    Ok(())
}

/// Check whether the subtree above `rs` is a scan chain over a small table.
fn small_side(g: &PlanGraph, rs: usize, threshold: u64) -> Option<SmallSide> {
    let mut chain = vec![rs];
    let mut cur = *g.node(rs).parents.first()?;
    let mut filter = None;
    loop {
        match &g.node(cur).op {
            PlanOp::Filter { predicate } => {
                // Conjoin stacked filters.
                filter = Some(match filter {
                    None => predicate.clone(),
                    Some(f) => {
                        ExprNode::binary(hive_exec::expr::BinaryOp::And, predicate.clone(), f)
                    }
                });
                chain.push(cur);
                cur = *g.node(cur).parents.first()?;
            }
            PlanOp::TableScan { table, .. } => {
                if table.size_bytes <= threshold {
                    chain.push(cur);
                    return Some(SmallSide {
                        scan_id: cur,
                        filter,
                        chain,
                    });
                }
                return None;
            }
            _ => return None,
        }
    }
}

/// Perform the rewrite. `stream_rs` is the big side's ReduceSink,
/// `build_rs` the small side's. `swapped` means the build side is the
/// join's LEFT input (output needs a permutation to keep its layout).
fn convert(
    g: &mut PlanGraph,
    join_id: usize,
    stream_rs: usize,
    build_rs: usize,
    side: SmallSide,
    kind: JoinType,
    swapped: bool,
) -> Result<()> {
    let PlanOp::TableScan {
        alias,
        table,
        projection,
        ..
    } = g.node(side.scan_id).op.clone()
    else {
        unreachable!()
    };
    let PlanOp::ReduceSink {
        keys: build_keys, ..
    } = g.node(build_rs).op.clone()
    else {
        unreachable!()
    };
    let PlanOp::ReduceSink {
        keys: stream_keys,
        values: stream_vals,
        ..
    } = g.node(stream_rs).op.clone()
    else {
        unreachable!()
    };
    let nk = build_keys.len();
    let small_width = projection.len();
    let stream_parent = g.node(stream_rs).parents[0];
    let stream_schema = g.node(stream_parent).schema.clone();
    let join_schema = g.node(join_id).schema.clone();
    let join_children = g.node(join_id).children.clone();

    // 1. A Select prepending the stream's join keys (the layout an RS would
    //    have produced: keys ++ values).
    let mut sel_exprs = stream_keys.clone();
    sel_exprs.extend(stream_vals.clone());
    let mut sel_schema: Vec<ColumnInfo> = Vec::new();
    for (i, k) in stream_keys.iter().enumerate() {
        let t = crate::plan::expr_type(k, &stream_schema)?;
        sel_schema.push(ColumnInfo::new(format!("_key{i}"), t));
    }
    sel_schema.extend(stream_schema.clone());
    let sel = g.add(
        PlanOp::Select { exprs: sel_exprs },
        sel_schema.clone(),
        vec![stream_parent],
    );

    // 2. The MapJoin. Hash-table rows are stored as keys ++ projected
    //    columns; probing appends them to the stream.
    let mj_side = MapJoinSide {
        alias: format!("{alias}#{}", side.scan_id),
        table,
        projection,
        build_filter: side.filter,
        build_keys,
        stream_keys: (0..nk).map(ExprNode::col).collect(),
        join_type: kind,
        width: nk + small_width,
    };
    // MapJoin raw output: [stream_keys, stream_cols, build_keys, build_cols].
    let mut mj_schema = sel_schema.clone();
    for i in 0..nk {
        mj_schema.push(ColumnInfo::new(
            format!("_bkey{i}"),
            sel_schema[i].data_type.clone(),
        ));
    }
    let small_schema: Vec<ColumnInfo> = {
        let PlanOp::TableScan {
            table, projection, ..
        } = &g.node(side.scan_id).op
        else {
            unreachable!()
        };
        projection
            .iter()
            .map(|&i| {
                let f = table.schema.field(i);
                ColumnInfo::new(f.name.clone(), f.data_type.clone())
            })
            .collect()
    };
    mj_schema.extend(small_schema);
    let mj = g.add(
        PlanOp::MapJoin {
            sides: vec![mj_side],
        },
        mj_schema.clone(),
        vec![sel],
    );

    // 3. Restore the original join's column order if the build side was
    //    the join's left input.
    let out = if swapped {
        // Raw layout: [rkeys, rcols, lkeys, lcols] (stream = right).
        // Target:     [lkeys, lcols, rkeys, rcols].
        let rw = sel_schema.len(); // nk + right cols
        let lw = mj_schema.len() - rw;
        let mut perm: Vec<ExprNode> = Vec::with_capacity(mj_schema.len());
        for i in 0..lw {
            perm.push(ExprNode::col(rw + i));
        }
        for i in 0..rw {
            perm.push(ExprNode::col(i));
        }
        g.add(
            PlanOp::Select { exprs: perm },
            join_schema.clone(),
            vec![mj],
        )
    } else {
        mj
    };

    // 4. Rewire the join's children onto the MapJoin output.
    for &c in &join_children {
        for slot in g.node_mut(c).parents.iter_mut() {
            if *slot == join_id {
                *slot = out;
            }
        }
        g.node_mut(out).children.push(c);
    }

    // 5. Kill the replaced nodes.
    for dead in side.chain.iter().copied().chain([join_id, stream_rs]) {
        let n = g.node_mut(dead);
        n.alive = false;
        n.children.clear();
        n.parents.clear();
    }
    // Unhook stream_parent's edge to the dead RS.
    g.node_mut(stream_parent)
        .children
        .retain(|&c| c != stream_rs);
    Ok(())
}
