//! Structural tests of the task compiler: SQL in → expected job DAG out,
//! under every optimizer setting (paper Sections 5 and 6.4).

use hive_common::config::keys;
use hive_common::{HiveConf, Schema};
use hive_planner::catalog::{StaticCatalog, TableMeta};
use hive_planner::plan_query;
use hive_ql::{parse, Statement};

fn catalog() -> StaticCatalog {
    let t = |name: &str, cols: &[(&str, &str)], size: u64| TableMeta {
        name: name.into(),
        schema: Schema::parse(cols).unwrap(),
        format: hive_formats::FormatKind::Orc,
        paths: vec![format!("/w/{name}/part-0")],
        size_bytes: size,
        acid: None,
    };
    StaticCatalog {
        tables: vec![
            t(
                "fact",
                &[
                    ("k", "bigint"),
                    ("d1", "bigint"),
                    ("d2", "bigint"),
                    ("v", "double"),
                ],
                1 << 30,
            ),
            t("fact2", &[("k", "bigint"), ("v", "double")], 1 << 30),
            t("dim1", &[("k", "bigint"), ("name", "string")], 1 << 10),
            t("dim2", &[("k", "bigint"), ("name", "string")], 1 << 10),
        ],
    }
}

fn compile_with(sql: &str, tweak: impl FnOnce(&mut HiveConf)) -> hive_planner::CompiledQuery {
    let Statement::Select(stmt) = parse(sql).unwrap() else {
        panic!("expected select")
    };
    let mut conf = HiveConf::new();
    tweak(&mut conf);
    plan_query(&stmt, &catalog(), &conf).unwrap()
}

fn job_shape(q: &hive_planner::CompiledQuery) -> (usize, usize) {
    let map_only = q.jobs.iter().filter(|j| j.reduce_factory.is_none()).count();
    (map_only, q.jobs.len() - map_only)
}

#[test]
fn scan_filter_aggregate_is_one_job() {
    let q = compile_with(
        "SELECT k, SUM(v) FROM fact WHERE v > 1.5 GROUP BY k",
        |_| {},
    );
    assert_eq!(job_shape(&q), (0, 1));
}

#[test]
fn global_aggregate_uses_one_reducer() {
    let q = compile_with("SELECT COUNT(*) FROM fact", |_| {});
    assert_eq!(q.jobs.len(), 1);
    assert_eq!(q.jobs[0].num_reducers, 1);
}

#[test]
fn star_join_merges_into_one_job_with_merge_on() {
    let sql = "SELECT dim1.name, SUM(fact.v) FROM fact \
               JOIN dim1 ON (fact.d1 = dim1.k) \
               JOIN dim2 ON (fact.d2 = dim2.k) \
               GROUP BY dim1.name";
    let merged = compile_with(sql, |c| {
        c.set(keys::MERGE_MAPONLY_JOBS, "true");
    });
    assert_eq!(job_shape(&merged), (0, 1), "{}", merged.explain);

    let unmerged = compile_with(sql, |c| {
        c.set(keys::MERGE_MAPONLY_JOBS, "false");
    });
    assert_eq!(job_shape(&unmerged), (2, 1), "{}", unmerged.explain);
}

#[test]
fn big_big_join_stays_a_reduce_join() {
    let q = compile_with(
        "SELECT fact.v, COUNT(*) FROM fact JOIN fact2 ON (fact.k = fact2.k) \
         GROUP BY fact.v",
        |c| {
            c.set(keys::OPT_CORRELATION, "false");
        },
    );
    // join job + group-by job (grouped on a non-key column).
    assert_eq!(job_shape(&q), (0, 2), "{}", q.explain);
}

#[test]
fn correlation_collapses_group_by_on_join_key() {
    let sql = "SELECT fact.k, COUNT(*) FROM fact JOIN fact2 ON (fact.k = fact2.k) \
               GROUP BY fact.k";
    let with = compile_with(sql, |c| {
        c.set(keys::OPT_CORRELATION, "true");
    });
    assert_eq!(job_shape(&with), (0, 1), "{}", with.explain);
    let without = compile_with(sql, |c| {
        c.set(keys::OPT_CORRELATION, "false");
    });
    assert_eq!(job_shape(&without), (0, 2), "{}", without.explain);
}

#[test]
fn map_join_then_shuffle_in_same_job() {
    // MapJoin on the scan chain merges into the shuffle job's map phase.
    let q = compile_with(
        "SELECT dim1.name, SUM(fact.v) FROM fact JOIN dim1 ON (fact.d1 = dim1.k) \
         GROUP BY dim1.name",
        |_| {},
    );
    assert_eq!(job_shape(&q), (0, 1));
    assert_eq!(
        q.jobs[0].side_inputs.len(),
        1,
        "dim1 rides the distributed cache"
    );
}

#[test]
fn order_by_resolves_to_driver_side_sort() {
    let q = compile_with(
        "SELECT k, SUM(v) AS s FROM fact GROUP BY k ORDER BY s DESC, k LIMIT 7",
        |_| {},
    );
    assert_eq!(q.order_by, vec![(1, false), (0, true)]);
    assert_eq!(q.limit, Some(7));
    assert_eq!(q.output_names, vec!["k".to_string(), "s".to_string()]);
}

#[test]
fn column_pruning_reaches_the_scan() {
    let q = compile_with("SELECT SUM(v) FROM fact WHERE d1 = 3", |_| {});
    let input = &q.jobs[0].inputs[0];
    // Only d1 and v are needed (columns 1 and 3 of the table).
    assert_eq!(input.projection.as_deref(), Some(&[1usize, 3][..]));
}

#[test]
fn sarg_extraction_respects_ppd_knob() {
    let sql = "SELECT SUM(v) FROM fact WHERE k BETWEEN 10 AND 20";
    let on = compile_with(sql, |_| {});
    assert!(
        on.jobs[0].inputs[0].sarg.is_some(),
        "PPD on → sarg attached"
    );
    let off = compile_with(sql, |c| {
        c.set(keys::OPT_PPD_STORAGE, "false");
    });
    assert!(off.jobs[0].inputs[0].sarg.is_none(), "PPD off → no sarg");
}

#[test]
fn explain_names_every_stage() {
    let q = compile_with(
        "SELECT dim1.name, COUNT(*) FROM fact JOIN dim1 ON (fact.d1 = dim1.k) \
         GROUP BY dim1.name",
        |c| {
            c.set(keys::AUTO_CONVERT_JOIN, "false");
        },
    );
    for needle in ["TableScan", "ReduceSink", "Join", "GroupBy", "FileSink"] {
        assert!(
            q.explain.contains(needle),
            "missing {needle}:\n{}",
            q.explain
        );
    }
}

#[test]
fn unknown_column_and_table_fail_cleanly() {
    let Statement::Select(stmt) = parse("SELECT nope FROM fact").unwrap() else {
        panic!()
    };
    assert!(plan_query(&stmt, &catalog(), &HiveConf::new()).is_err());
    let Statement::Select(stmt) = parse("SELECT 1 FROM ghost").unwrap() else {
        panic!()
    };
    assert!(plan_query(&stmt, &catalog(), &HiveConf::new()).is_err());
}

#[test]
fn non_equi_join_is_rejected() {
    let Statement::Select(stmt) =
        parse("SELECT fact.k FROM fact JOIN dim1 ON (fact.k > dim1.k)").unwrap()
    else {
        panic!()
    };
    assert!(plan_query(&stmt, &catalog(), &HiveConf::new()).is_err());
}

#[test]
fn aggregate_of_nongrouped_column_is_rejected() {
    let Statement::Select(stmt) = parse("SELECT v, COUNT(*) FROM fact GROUP BY k").unwrap() else {
        panic!()
    };
    assert!(plan_query(&stmt, &catalog(), &HiveConf::new()).is_err());
}
