//! The run-length byte stream (paper Section 4.3, second primitive kind).
//!
//! Encoding, following ORC's `RunLengthByteWriter`:
//! * a **run**: control byte `0..=127` meaning `control + MIN_RUN` copies of
//!   the next byte (runs of length 3..=130);
//! * a **literal group**: control byte `-1..=-128` (two's complement) meaning
//!   `-control` raw bytes follow (groups of 1..=128).

use hive_common::{HiveError, Result};

const MIN_RUN: usize = 3;
const MAX_RUN: usize = 130;
const MAX_LITERAL: usize = 128;

/// Streaming encoder for run-length byte streams.
#[derive(Debug, Default)]
pub struct ByteRleEncoder {
    out: Vec<u8>,
    /// Pending bytes not yet committed as a run or literal group.
    pending: Vec<u8>,
    /// Length of the trailing run of identical bytes within `pending`.
    tail_run: usize,
}

impl ByteRleEncoder {
    pub fn new() -> ByteRleEncoder {
        ByteRleEncoder::default()
    }

    pub fn write(&mut self, b: u8) {
        if let Some(&last) = self.pending.last() {
            if last == b {
                self.tail_run += 1;
            } else {
                // A long-enough tail run is emitted as a run; shorter ones
                // stay pending and will go out as literals.
                if self.tail_run >= MIN_RUN {
                    self.emit_run();
                }
                self.tail_run = 1;
            }
        } else {
            self.tail_run = 1;
        }
        self.pending.push(b);
        if self.tail_run == MAX_RUN {
            self.emit_run();
        } else if self.pending.len() - self.tail_run >= MAX_LITERAL {
            self.flush_split();
        }
    }

    pub fn write_all(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write(b);
        }
    }

    /// Emit the pending literal prefix (if any), keep the tail run pending.
    fn flush_split(&mut self) {
        let lit_len = self.pending.len() - self.tail_run;
        if lit_len > 0 {
            let tail = self.pending.split_off(lit_len);
            self.emit_literals();
            self.tail_run = tail.len();
            self.pending = tail;
        }
    }

    fn emit_run(&mut self) {
        // `pending` may hold literals before the run.
        self.flush_split();
        let run_len = self.pending.len();
        debug_assert!((MIN_RUN..=MAX_RUN).contains(&run_len));
        self.out.push((run_len - MIN_RUN) as u8);
        self.out.push(self.pending[0]);
        self.pending.clear();
        self.tail_run = 0;
    }

    fn emit_literals(&mut self) {
        let mut start = 0;
        while start < self.pending.len() {
            let chunk = (self.pending.len() - start).min(MAX_LITERAL);
            self.out.push((-(chunk as i64)) as u8);
            self.out
                .extend_from_slice(&self.pending[start..start + chunk]);
            start += chunk;
        }
        self.pending.clear();
        self.tail_run = 0;
    }

    /// Finish the stream and return the encoded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        if self.tail_run >= MIN_RUN {
            self.emit_run();
        } else if !self.pending.is_empty() {
            self.emit_literals();
        }
        self.out
    }

    /// Encoded size so far (pending bytes estimated pessimistically).
    pub fn estimated_size(&self) -> usize {
        self.out.len() + self.pending.len() + 2
    }
}

/// One-shot convenience encoder.
pub fn encode(bytes: &[u8]) -> Vec<u8> {
    let mut e = ByteRleEncoder::new();
    e.write_all(bytes);
    e.finish()
}

/// Decoder over an encoded run-length byte stream.
#[derive(Debug)]
pub struct ByteRleDecoder<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Remaining copies of `run_byte` to emit.
    run_remaining: usize,
    run_byte: u8,
    /// Remaining raw bytes in the current literal group.
    literals_remaining: usize,
}

impl<'a> ByteRleDecoder<'a> {
    pub fn new(buf: &'a [u8]) -> ByteRleDecoder<'a> {
        ByteRleDecoder {
            buf,
            pos: 0,
            run_remaining: 0,
            run_byte: 0,
            literals_remaining: 0,
        }
    }

    /// Whether more bytes remain.
    pub fn has_next(&self) -> bool {
        self.run_remaining > 0 || self.literals_remaining > 0 || self.pos < self.buf.len()
    }

    #[allow(clippy::should_implement_trait)] // fallible cursor, not an Iterator
    pub fn next(&mut self) -> Result<u8> {
        if self.run_remaining > 0 {
            self.run_remaining -= 1;
            return Ok(self.run_byte);
        }
        if self.literals_remaining > 0 {
            let b = *self
                .buf
                .get(self.pos)
                .ok_or_else(|| HiveError::Codec("byte-rle literal truncated".into()))?;
            self.pos += 1;
            self.literals_remaining -= 1;
            return Ok(b);
        }
        let control = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| HiveError::Codec("byte-rle stream exhausted".into()))?;
        self.pos += 1;
        if control < 0x80 {
            self.run_remaining = control as usize + MIN_RUN;
            self.run_byte = *self
                .buf
                .get(self.pos)
                .ok_or_else(|| HiveError::Codec("byte-rle run truncated".into()))?;
            self.pos += 1;
        } else {
            self.literals_remaining = (256 - control as usize) & 0xff;
        }
        self.next()
    }

    /// Skip `n` decoded bytes without materializing them (index seeks).
    pub fn skip(&mut self, mut n: usize) -> Result<()> {
        while n > 0 {
            if self.run_remaining > 0 {
                let take = self.run_remaining.min(n);
                self.run_remaining -= take;
                n -= take;
            } else if self.literals_remaining > 0 {
                let take = self.literals_remaining.min(n);
                if self.pos + take > self.buf.len() {
                    return Err(HiveError::Codec("byte-rle skip past end".into()));
                }
                self.pos += take;
                self.literals_remaining -= take;
                n -= take;
            } else {
                // Load the next group header via next(), putting one byte back.
                let b = self.next()?;
                let _ = b;
                n -= 1;
            }
        }
        Ok(())
    }
}

/// One-shot convenience decoder.
pub fn decode(buf: &[u8]) -> Result<Vec<u8>> {
    let mut d = ByteRleDecoder::new(buf);
    let mut out = Vec::new();
    while d.has_next() {
        out.push(d.next()?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let enc = encode(data);
        assert_eq!(decode(&enc).unwrap(), data, "failed for {data:?}");
    }

    #[test]
    fn empty_and_single() {
        round_trip(&[]);
        round_trip(&[42]);
    }

    #[test]
    fn pure_run_compresses_well() {
        let data = vec![9u8; 1000];
        let enc = encode(&data);
        assert!(enc.len() <= 2 * (1000 / 130 + 1));
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn pure_literals() {
        let data: Vec<u8> = (0..=255).collect();
        round_trip(&data);
    }

    #[test]
    fn mixed_runs_and_literals() {
        let mut data = Vec::new();
        data.extend_from_slice(&[1, 2, 3]);
        data.extend(std::iter::repeat_n(7u8, 50));
        data.extend_from_slice(&[4, 5]);
        data.extend(std::iter::repeat_n(0u8, 200));
        data.extend_from_slice(&[6]);
        round_trip(&data);
    }

    #[test]
    fn two_byte_runs_stay_literals() {
        // Runs below MIN_RUN must not be emitted as runs.
        round_trip(&[5, 5, 6, 6, 7, 7]);
    }

    #[test]
    fn skip_matches_sequential_decode() {
        let mut data = Vec::new();
        for i in 0..500u32 {
            data.push((i % 7) as u8);
            if i % 3 == 0 {
                data.extend(std::iter::repeat_n(9u8, 10));
            }
        }
        let enc = encode(&data);
        for skip_n in [0usize, 1, 10, 137, 499] {
            let mut d = ByteRleDecoder::new(&enc);
            d.skip(skip_n).unwrap();
            assert_eq!(d.next().unwrap(), data[skip_n], "skip {skip_n}");
        }
    }

    #[test]
    fn truncated_stream_errors() {
        let enc = encode(&[3u8; 100]);
        let cut = &enc[..enc.len() - 1];
        let mut d = ByteRleDecoder::new(cut);
        let mut result = Ok(0u8);
        for _ in 0..100 {
            if !d.has_next() {
                break;
            }
            result = d.next();
            if result.is_err() {
                break;
            }
        }
        // Either we ran out early (has_next false before 100) or errored.
        let decoded_fine = result.is_ok() && !d.has_next();
        assert!(!decoded_fine || decode(cut).unwrap().len() < 100);
    }
}
