//! The LZ77 core shared by the Snappy-class and Deflate-class codecs.
//!
//! Format (mirrors Snappy's): a varint uncompressed length, then a tag
//! stream. Tag low 2 bits:
//!
//! * `00` — literal run. Upper 6 bits = length-1 when < 60; 60/61 mean the
//!   length-1 follows in 1/2 little-endian bytes.
//! * `01` — copy, length 4..=11 in bits 2..5, offset 1..=2047 from bits 5..8
//!   plus one byte.
//! * `10` — copy, length 1..=64 in upper 6 bits, 2-byte LE offset.
//!
//! The compressor is greedy with a 4-byte hash table, 64 KB window.

use crate::varint;
use hive_common::{HiveError, Result};

const HASH_BITS: u32 = 14;
const HASH_SIZE: usize = 1 << HASH_BITS;
const MAX_OFFSET: usize = 65535;
const MIN_MATCH: usize = 4;

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(0x1e35a7bd) >> (32 - HASH_BITS)) as usize
}

fn emit_literals(out: &mut Vec<u8>, lits: &[u8]) {
    let mut start = 0;
    while start < lits.len() {
        let chunk = (lits.len() - start).min(65536);
        let n = chunk - 1;
        if n < 60 {
            out.push((n as u8) << 2);
        } else if n < 256 {
            out.push(60 << 2);
            out.push(n as u8);
        } else {
            out.push(61 << 2);
            out.push(n as u8);
            out.push((n >> 8) as u8);
        }
        out.extend_from_slice(&lits[start..start + chunk]);
        start += chunk;
    }
}

fn emit_copy(out: &mut Vec<u8>, offset: usize, mut len: usize) {
    debug_assert!((1..=MAX_OFFSET).contains(&offset));
    // Long matches are emitted as several copies of at most 64 bytes.
    while len > 0 {
        let chunk = len.min(64);
        // Tail shorter than 4 can't be a 01-tag; force 10-tag.
        if (4..=11).contains(&chunk) && offset < 2048 {
            out.push(0b01 | (((chunk - 4) as u8) << 2) | (((offset >> 8) as u8) << 5));
            out.push(offset as u8);
        } else {
            out.push(0b10 | (((chunk - 1) as u8) << 2));
            out.push(offset as u8);
            out.push((offset >> 8) as u8);
        }
        len -= chunk;
    }
}

/// Compress `data` into the tag stream format.
pub fn snappy_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    varint::write_unsigned(&mut out, data.len() as u64);
    if data.is_empty() {
        return out;
    }
    let mut table = vec![usize::MAX; HASH_SIZE];
    let mut i = 0usize;
    let mut lit_start = 0usize;
    while i + MIN_MATCH <= data.len() {
        let h = hash4(data, i);
        let cand = table[h];
        table[h] = i;
        let ok = cand != usize::MAX
            && i - cand <= MAX_OFFSET
            && data[cand..cand + MIN_MATCH] == data[i..i + MIN_MATCH];
        if ok {
            // Extend the match as far as possible.
            let mut len = MIN_MATCH;
            let max = data.len() - i;
            while len < max && data[cand + len] == data[i + len] {
                len += 1;
            }
            emit_literals(&mut out, &data[lit_start..i]);
            emit_copy(&mut out, i - cand, len);
            // Re-seed the hash table sparsely inside the match (speed).
            let end = i + len;
            let mut j = i + 1;
            while j + MIN_MATCH <= data.len() && j < end {
                table[hash4(data, j)] = j;
                j += if len > 64 { 8 } else { 1 };
            }
            i = end;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    emit_literals(&mut out, &data[lit_start..]);
    out
}

/// Decompress a buffer produced by [`snappy_compress`].
pub fn snappy_decompress(buf: &[u8]) -> Result<Vec<u8>> {
    let mut pos = 0usize;
    let expect = varint::read_unsigned(buf, &mut pos)? as usize;
    let mut out = Vec::with_capacity(expect);
    while pos < buf.len() {
        let tag = buf[pos];
        pos += 1;
        match tag & 0b11 {
            0b00 => {
                let mut n = (tag >> 2) as usize;
                if n >= 60 {
                    let extra = n - 59; // 1 or 2 bytes
                    if n > 61 {
                        return Err(HiveError::Codec("bad literal tag".into()));
                    }
                    if pos + extra > buf.len() {
                        return Err(HiveError::Codec("literal length truncated".into()));
                    }
                    n = 0;
                    for (k, &b) in buf[pos..pos + extra].iter().enumerate() {
                        n |= (b as usize) << (8 * k);
                    }
                    pos += extra;
                }
                let len = n + 1;
                if pos + len > buf.len() {
                    return Err(HiveError::Codec("literal run truncated".into()));
                }
                out.extend_from_slice(&buf[pos..pos + len]);
                pos += len;
            }
            0b01 => {
                if pos >= buf.len() {
                    return Err(HiveError::Codec("copy tag truncated".into()));
                }
                let len = ((tag >> 2) & 0x7) as usize + 4;
                let offset = (((tag >> 5) as usize) << 8) | buf[pos] as usize;
                pos += 1;
                copy_back(&mut out, offset, len)?;
            }
            0b10 => {
                if pos + 2 > buf.len() {
                    return Err(HiveError::Codec("copy tag truncated".into()));
                }
                let len = (tag >> 2) as usize + 1;
                let offset = buf[pos] as usize | ((buf[pos + 1] as usize) << 8);
                pos += 2;
                copy_back(&mut out, offset, len)?;
            }
            _ => return Err(HiveError::Codec("unsupported copy tag 0b11".into())),
        }
    }
    if out.len() != expect {
        return Err(HiveError::Codec(format!(
            "decompressed {} bytes, expected {expect}",
            out.len()
        )));
    }
    Ok(out)
}

/// Copy `len` bytes from `offset` back in `out`, allowing the overlapping
/// RLE-style copies LZ77 depends on.
fn copy_back(out: &mut Vec<u8>, offset: usize, len: usize) -> Result<()> {
    if offset == 0 || offset > out.len() {
        return Err(HiveError::Codec(format!(
            "copy offset {offset} out of range (have {} bytes)",
            out.len()
        )));
    }
    let start = out.len() - offset;
    for k in 0..len {
        let b = out[start + k];
        out.push(b);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let c = snappy_compress(data);
        assert_eq!(snappy_decompress(&c).unwrap(), data);
    }

    #[test]
    fn basic_round_trips() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abcabcabcabcabcabcabc");
        round_trip(&b"x".repeat(100_000));
    }

    #[test]
    fn overlapping_copy_rle() {
        // offset 1, long length — the classic RLE-via-LZ case.
        let data = vec![9u8; 1000];
        let c = snappy_compress(&data);
        assert!(c.len() < 64);
        assert_eq!(snappy_decompress(&c).unwrap(), data);
    }

    #[test]
    fn long_literal_runs() {
        // > 60 and > 256 literal lengths exercise the extended tags.
        let mut x = 1u64;
        let data: Vec<u8> = (0..5000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) as u8
            })
            .collect();
        round_trip(&data);
    }

    #[test]
    fn matches_beyond_2048_use_two_byte_offsets() {
        let mut data = vec![0u8; 5000];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let mut doubled = data.clone();
        doubled.extend_from_slice(&data);
        round_trip(&doubled);
        let c = snappy_compress(&doubled);
        assert!(c.len() < doubled.len());
    }

    #[test]
    fn bad_offset_is_error() {
        let mut buf = Vec::new();
        varint::write_unsigned(&mut buf, 10);
        buf.push(0b10 | (9 << 2)); // copy len 10
        buf.push(5); // offset 5 but output is empty
        buf.push(0);
        assert!(snappy_decompress(&buf).is_err());
    }

    #[test]
    fn length_mismatch_is_error() {
        let mut buf = Vec::new();
        varint::write_unsigned(&mut buf, 100); // claims 100 bytes
        buf.push(0 << 2); // literal of 1 byte
        buf.push(b'z');
        assert!(snappy_decompress(&buf).is_err());
    }
}
