//! Dictionary building for string columns (paper Section 4.3).
//!
//! The ORC writer collects string values, then checks whether
//! `distinct / total <= threshold` (default 0.8). If so, the column is
//! stored dictionary-encoded (byte stream of entries + entry lengths +
//! value indexes); otherwise it falls back to direct encoding (byte stream
//! of values + value lengths).

use std::collections::HashMap;

/// Accumulates values and decides between DICTIONARY and DIRECT encoding.
#[derive(Debug, Default)]
pub struct DictionaryBuilder {
    /// Entry → dictionary id, in first-seen order.
    ids: HashMap<Vec<u8>, u32>,
    /// Entries by id.
    entries: Vec<Vec<u8>>,
    /// Per-value dictionary ids, in row order.
    row_ids: Vec<u32>,
    /// Total bytes across all added values (for size estimates).
    total_value_bytes: usize,
}

/// The encoding chosen once all values of a stripe are seen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StringEncoding {
    /// Store the dictionary once + integer ids per row.
    Dictionary,
    /// Store every value directly.
    Direct,
}

impl DictionaryBuilder {
    pub fn new() -> DictionaryBuilder {
        DictionaryBuilder::default()
    }

    /// Add one value in row order.
    pub fn add(&mut self, value: &[u8]) {
        self.total_value_bytes += value.len();
        let next_id = self.entries.len() as u32;
        let id = *self.ids.entry(value.to_vec()).or_insert_with(|| {
            self.entries.push(value.to_vec());
            next_id
        });
        self.row_ids.push(id);
    }

    pub fn num_values(&self) -> usize {
        self.row_ids.len()
    }

    pub fn num_distinct(&self) -> usize {
        self.entries.len()
    }

    pub fn total_value_bytes(&self) -> usize {
        self.total_value_bytes
    }

    /// The distinct/total ratio the threshold check uses. 0 for no values.
    pub fn distinct_ratio(&self) -> f64 {
        if self.row_ids.is_empty() {
            0.0
        } else {
            self.num_distinct() as f64 / self.num_values() as f64
        }
    }

    /// Decide the encoding per the paper's rule: dictionary iff the
    /// distinct/total ratio is not greater than `threshold`.
    pub fn choose(&self, threshold: f64) -> StringEncoding {
        if self.distinct_ratio() <= threshold {
            StringEncoding::Dictionary
        } else {
            StringEncoding::Direct
        }
    }

    /// Dictionary entries in id order.
    pub fn entries(&self) -> &[Vec<u8>] {
        &self.entries
    }

    /// Per-row dictionary ids.
    pub fn row_ids(&self) -> &[u32] {
        &self.row_ids
    }

    /// Reset for the next stripe, keeping allocated capacity.
    pub fn clear(&mut self) {
        self.ids.clear();
        self.entries.clear();
        self.row_ids.clear();
        self.total_value_bytes = 0;
    }

    /// Approximate memory footprint (writer memory-manager accounting).
    pub fn memory_size(&self) -> usize {
        self.total_value_bytes * 2 // entries + hashmap keys
            + self.row_ids.len() * 4
            + self.entries.len() * 48
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_values_share_ids() {
        let mut d = DictionaryBuilder::new();
        for v in ["ca", "ny", "ca", "tx", "ny", "ca"] {
            d.add(v.as_bytes());
        }
        assert_eq!(d.num_values(), 6);
        assert_eq!(d.num_distinct(), 3);
        assert_eq!(d.row_ids(), &[0, 1, 0, 2, 1, 0]);
        assert_eq!(d.entries()[2], b"tx".to_vec());
    }

    #[test]
    fn threshold_rule_matches_paper() {
        let mut low_card = DictionaryBuilder::new();
        for i in 0..100 {
            low_card.add(format!("v{}", i % 10).as_bytes());
        }
        assert_eq!(low_card.choose(0.8), StringEncoding::Dictionary);

        let mut high_card = DictionaryBuilder::new();
        for i in 0..100 {
            high_card.add(format!("unique-{i}").as_bytes());
        }
        // ratio = 1.0 > 0.8 → direct (the TPC-H comment-column case).
        assert_eq!(high_card.choose(0.8), StringEncoding::Direct);
    }

    #[test]
    fn boundary_ratio_is_inclusive() {
        // "not greater than the threshold" → exactly at threshold keeps
        // dictionary encoding.
        let mut d = DictionaryBuilder::new();
        for i in 0..10 {
            d.add(format!("x{}", i % 8).as_bytes());
        }
        assert_eq!(d.distinct_ratio(), 0.8);
        assert_eq!(d.choose(0.8), StringEncoding::Dictionary);
    }

    #[test]
    fn clear_resets_state() {
        let mut d = DictionaryBuilder::new();
        d.add(b"a");
        d.clear();
        assert_eq!(d.num_values(), 0);
        assert_eq!(d.num_distinct(), 0);
        assert_eq!(d.distinct_ratio(), 0.0);
    }
}
