//! The integer stream (paper Section 4.3, third primitive kind).
//!
//! Integers are encoded with **run-length + delta encoding**, picking the
//! scheme per sub-sequence based on its pattern, like ORC's `RunLengthIntegerWriter`:
//!
//! * a **run**: control byte `0..=127` → `control + MIN_RUN` values starting
//!   at a zigzag-varint base with a fixed signed single-byte delta
//!   (covers constant sequences, delta = 0, and arithmetic sequences such as
//!   auto-increment keys);
//! * a **literal group**: control byte `-1..=-128` → `-control` zigzag
//!   varints follow.

use crate::varint;
use hive_common::{HiveError, Result};

const MIN_RUN: usize = 3;
const MAX_RUN: usize = 130;
const MAX_LITERAL: usize = 128;
const MIN_DELTA: i64 = -128;
const MAX_DELTA: i64 = 127;

/// Streaming encoder for integer streams.
#[derive(Debug, Default)]
pub struct IntRleEncoder {
    out: Vec<u8>,
    pending: Vec<i64>,
    /// Length of the trailing arithmetic run (constant delta) in `pending`.
    tail_run: usize,
    /// Delta of that trailing run, meaningful when `tail_run >= 2`.
    tail_delta: i64,
}

impl IntRleEncoder {
    pub fn new() -> IntRleEncoder {
        IntRleEncoder::default()
    }

    pub fn write(&mut self, v: i64) {
        let n = self.pending.len();
        if n == 0 {
            self.pending.push(v);
            self.tail_run = 1;
            return;
        }
        let last = self.pending[n - 1];
        let delta = v.wrapping_sub(last);
        let delta_ok = (MIN_DELTA..=MAX_DELTA).contains(&delta);
        if self.tail_run == 1 && delta_ok {
            self.tail_run = 2;
            self.tail_delta = delta;
        } else if self.tail_run >= 2 && delta_ok && delta == self.tail_delta {
            self.tail_run += 1;
        } else {
            if self.tail_run >= MIN_RUN {
                self.emit_run();
                self.pending.push(v);
                self.tail_run = 1;
                return;
            }
            // The old tail no longer extends; the new value may start a new
            // 2-run with the previous value.
            if delta_ok {
                self.tail_run = 2;
                self.tail_delta = delta;
            } else {
                self.tail_run = 1;
            }
        }
        self.pending.push(v);
        if self.tail_run == MAX_RUN {
            self.emit_run();
        } else if self.pending.len() - self.tail_run >= MAX_LITERAL {
            self.flush_literal_prefix();
        }
    }

    pub fn write_all(&mut self, vals: &[i64]) {
        for &v in vals {
            self.write(v);
        }
    }

    fn flush_literal_prefix(&mut self) {
        let lit_len = self.pending.len() - self.tail_run;
        if lit_len == 0 {
            return;
        }
        let tail = self.pending.split_off(lit_len);
        let lits = std::mem::replace(&mut self.pending, tail);
        self.emit_literals_of(&lits);
    }

    fn emit_run(&mut self) {
        self.flush_literal_prefix();
        let run_len = self.pending.len();
        debug_assert!((MIN_RUN..=MAX_RUN).contains(&run_len));
        self.out.push((run_len - MIN_RUN) as u8);
        self.out.push(self.tail_delta as i8 as u8);
        varint::write_signed(&mut self.out, self.pending[0]);
        self.pending.clear();
        self.tail_run = 0;
        self.tail_delta = 0;
    }

    fn emit_literals_of(&mut self, vals: &[i64]) {
        let mut start = 0;
        while start < vals.len() {
            let chunk = (vals.len() - start).min(MAX_LITERAL);
            self.out.push((-(chunk as i64)) as u8);
            for &v in &vals[start..start + chunk] {
                varint::write_signed(&mut self.out, v);
            }
            start += chunk;
        }
    }

    pub fn finish(mut self) -> Vec<u8> {
        if self.tail_run >= MIN_RUN {
            self.emit_run();
        } else if !self.pending.is_empty() {
            let vals = std::mem::take(&mut self.pending);
            self.emit_literals_of(&vals);
        }
        self.out
    }

    /// Rough encoded size so far (pending counted pessimistically).
    pub fn estimated_size(&self) -> usize {
        self.out.len() + self.pending.len() * 3 + 2
    }
}

/// One-shot encode.
pub fn encode(vals: &[i64]) -> Vec<u8> {
    let mut e = IntRleEncoder::new();
    e.write_all(vals);
    e.finish()
}

/// Decoder over an encoded integer stream.
#[derive(Debug)]
pub struct IntRleDecoder<'a> {
    buf: &'a [u8],
    pos: usize,
    run_remaining: usize,
    run_value: i64,
    run_delta: i64,
    literals_remaining: usize,
}

impl<'a> IntRleDecoder<'a> {
    pub fn new(buf: &'a [u8]) -> IntRleDecoder<'a> {
        IntRleDecoder {
            buf,
            pos: 0,
            run_remaining: 0,
            run_value: 0,
            run_delta: 0,
            literals_remaining: 0,
        }
    }

    pub fn has_next(&self) -> bool {
        self.run_remaining > 0 || self.literals_remaining > 0 || self.pos < self.buf.len()
    }

    #[allow(clippy::should_implement_trait)] // fallible cursor, not an Iterator
    pub fn next(&mut self) -> Result<i64> {
        if self.run_remaining > 0 {
            let v = self.run_value;
            self.run_value = self.run_value.wrapping_add(self.run_delta);
            self.run_remaining -= 1;
            return Ok(v);
        }
        if self.literals_remaining > 0 {
            self.literals_remaining -= 1;
            return varint::read_signed(self.buf, &mut self.pos);
        }
        let control = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| HiveError::Codec("int-rle stream exhausted".into()))?;
        self.pos += 1;
        if control < 0x80 {
            self.run_remaining = control as usize + MIN_RUN;
            self.run_delta = control_delta(self.buf, &mut self.pos)?;
            self.run_value = varint::read_signed(self.buf, &mut self.pos)?;
        } else {
            self.literals_remaining = 256 - control as usize;
        }
        self.next()
    }

    /// Skip `n` values (used by index-group seeks).
    pub fn skip(&mut self, mut n: usize) -> Result<()> {
        while n > 0 {
            if self.run_remaining > 0 {
                let take = self.run_remaining.min(n);
                self.run_value = self
                    .run_value
                    .wrapping_add(self.run_delta.wrapping_mul(take as i64));
                self.run_remaining -= take;
                n -= take;
            } else if self.literals_remaining > 0 {
                varint::read_signed(self.buf, &mut self.pos)?;
                self.literals_remaining -= 1;
                n -= 1;
            } else {
                self.next()?;
                n -= 1;
            }
        }
        Ok(())
    }
}

fn control_delta(buf: &[u8], pos: &mut usize) -> Result<i64> {
    let b = *buf
        .get(*pos)
        .ok_or_else(|| HiveError::Codec("int-rle run truncated".into()))?;
    *pos += 1;
    Ok(b as i8 as i64)
}

/// One-shot decode.
pub fn decode(buf: &[u8]) -> Result<Vec<i64>> {
    let mut d = IntRleDecoder::new(buf);
    let mut out = Vec::new();
    while d.has_next() {
        out.push(d.next()?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(vals: &[i64]) {
        let enc = encode(vals);
        assert_eq!(decode(&enc).unwrap(), vals, "failed for {vals:?}");
    }

    #[test]
    fn empty_single_pair() {
        round_trip(&[]);
        round_trip(&[42]);
        round_trip(&[1, -1]);
    }

    #[test]
    fn constant_run_is_tiny() {
        let vals = vec![7i64; 10_000];
        let enc = encode(&vals);
        // 10000 / 130 runs, ~3 bytes each.
        assert!(enc.len() < 300, "got {} bytes", enc.len());
        round_trip(&vals);
    }

    #[test]
    fn increasing_sequence_is_delta_encoded() {
        let vals: Vec<i64> = (0..10_000).collect();
        let enc = encode(&vals);
        assert!(enc.len() < 500, "got {} bytes", enc.len());
        round_trip(&vals);
    }

    #[test]
    fn random_values_round_trip() {
        // Deterministic pseudo-random values (no Math.random analogue).
        let mut x = 0x243f6a8885a308d3u64;
        let vals: Vec<i64> = (0..5000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as i64
            })
            .collect();
        round_trip(&vals);
    }

    #[test]
    fn mixed_runs_and_noise() {
        let mut vals = Vec::new();
        vals.extend_from_slice(&[5, 100, -3]);
        vals.extend(std::iter::repeat_n(0i64, 500));
        vals.extend((0..50).map(|i| i * 3));
        vals.extend_from_slice(&[i64::MAX, i64::MIN, 0]);
        round_trip(&vals);
    }

    #[test]
    fn negative_delta_runs() {
        let vals: Vec<i64> = (0..1000).map(|i| 5000 - 5 * i).collect();
        let enc = encode(&vals);
        assert!(enc.len() < 100);
        round_trip(&vals);
    }

    #[test]
    fn skip_matches_sequential() {
        let mut vals = Vec::new();
        for i in 0..2000i64 {
            vals.push(if i % 5 == 0 { 17 } else { i * i % 997 });
        }
        let enc = encode(&vals);
        for skip_n in [0usize, 1, 7, 131, 1999] {
            let mut d = IntRleDecoder::new(&enc);
            d.skip(skip_n).unwrap();
            assert_eq!(d.next().unwrap(), vals[skip_n], "skip {skip_n}");
        }
    }

    #[test]
    fn extremes_round_trip() {
        round_trip(&[i64::MIN, i64::MAX, i64::MIN + 1, i64::MAX - 1, 0]);
    }
}
