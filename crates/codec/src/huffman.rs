//! Canonical order-0 Huffman coding over bytes, the entropy stage of the
//! Deflate-class block codec.

use hive_common::{HiveError, Result};

const NSYM: usize = 256;
const MAX_LEN: usize = 32;

/// Compute Huffman code lengths for the given symbol frequencies.
///
/// Classic two-queue construction over a heap; returns one length per
/// symbol (0 for unused symbols). With ≤256 KB inputs the maximum depth is
/// bounded well under [`MAX_LEN`].
fn code_lengths(freqs: &[u64; NSYM]) -> [u8; NSYM] {
    #[derive(Clone)]
    struct Node {
        // Leaf symbol or internal children indexes into `nodes`.
        kind: NodeKind,
    }
    #[derive(Clone)]
    enum NodeKind {
        Leaf(usize),
        Internal(usize, usize),
    }

    let mut lengths = [0u8; NSYM];
    let mut nodes: Vec<Node> = Vec::new();
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>> =
        std::collections::BinaryHeap::new();
    for (sym, &f) in freqs.iter().enumerate() {
        if f > 0 {
            let idx = nodes.len();
            nodes.push(Node {
                kind: NodeKind::Leaf(sym),
            });
            heap.push(std::cmp::Reverse((f, idx)));
        }
    }
    match heap.len() {
        0 => return lengths,
        1 => {
            // A single distinct symbol still needs 1 bit.
            if let NodeKind::Leaf(sym) = nodes[0].kind {
                lengths[sym] = 1;
            }
            return lengths;
        }
        _ => {}
    }
    while heap.len() > 1 {
        let std::cmp::Reverse((w1, i1)) = heap.pop().unwrap();
        let std::cmp::Reverse((w2, i2)) = heap.pop().unwrap();
        let idx = nodes.len();
        nodes.push(Node {
            kind: NodeKind::Internal(i1, i2),
        });
        heap.push(std::cmp::Reverse((w1 + w2, idx)));
    }
    // Depth-first assign depths.
    let root = heap.pop().unwrap().0 .1;
    let mut stack = vec![(root, 0u8)];
    while let Some((idx, depth)) = stack.pop() {
        match nodes[idx].kind {
            NodeKind::Leaf(sym) => lengths[sym] = depth.max(1),
            NodeKind::Internal(a, b) => {
                stack.push((a, depth + 1));
                stack.push((b, depth + 1));
            }
        }
    }
    lengths
}

/// Assign canonical codes from lengths: shorter codes first, ties by symbol.
fn canonical_codes(lengths: &[u8; NSYM]) -> [u32; NSYM] {
    let mut codes = [0u32; NSYM];
    let mut count = [0u32; MAX_LEN + 1];
    for &l in lengths.iter() {
        count[l as usize] += 1;
    }
    count[0] = 0;
    let mut next = [0u32; MAX_LEN + 1];
    let mut code = 0u32;
    for len in 1..=MAX_LEN {
        code = (code + count[len - 1]) << 1;
        next[len] = code;
    }
    for sym in 0..NSYM {
        let l = lengths[sym] as usize;
        if l > 0 {
            codes[sym] = next[l];
            next[l] += 1;
        }
    }
    codes
}

/// MSB-first bit writer.
#[derive(Default)]
struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    fn put(&mut self, code: u32, len: u32) {
        debug_assert!(len <= 32);
        self.acc = (self.acc << len) | code as u64;
        self.nbits += len;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.out.push((self.acc >> self.nbits) as u8);
        }
    }

    fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push((self.acc << (8 - self.nbits)) as u8);
        }
        self.out
    }
}

/// MSB-first bit reader.
struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        BitReader {
            buf,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    fn next_bit(&mut self) -> Result<u32> {
        if self.nbits == 0 {
            let b = *self
                .buf
                .get(self.pos)
                .ok_or_else(|| HiveError::Codec("huffman bitstream truncated".into()))?;
            self.pos += 1;
            self.acc = b as u64;
            self.nbits = 8;
        }
        self.nbits -= 1;
        Ok(((self.acc >> self.nbits) & 1) as u32)
    }
}

/// Compress `data`: header = 256 code lengths (1 byte each) + varint count
/// + bitstream. Returns `None` if every byte has frequency 0 (empty input).
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut freqs = [0u64; NSYM];
    for &b in data {
        freqs[b as usize] += 1;
    }
    let lengths = code_lengths(&freqs);
    let codes = canonical_codes(&lengths);

    let mut out = Vec::with_capacity(NSYM + data.len() / 2 + 16);
    out.extend_from_slice(&lengths);
    crate::varint::write_unsigned(&mut out, data.len() as u64);
    let mut bw = BitWriter::default();
    for &b in data {
        bw.put(codes[b as usize], lengths[b as usize] as u32);
    }
    out.extend_from_slice(&bw.finish());
    out
}

/// Inverse of [`compress`].
pub fn decompress(buf: &[u8]) -> Result<Vec<u8>> {
    if buf.len() < NSYM {
        return Err(HiveError::Codec("huffman header truncated".into()));
    }
    let mut lengths = [0u8; NSYM];
    lengths.copy_from_slice(&buf[..NSYM]);
    for &l in lengths.iter() {
        if l as usize > MAX_LEN {
            return Err(HiveError::Codec(format!("huffman length {l} too large")));
        }
    }
    let mut pos = NSYM;
    let n = crate::varint::read_unsigned(buf, &mut pos)? as usize;

    // Canonical decode tables: first code and symbol offset per length.
    let mut count = [0u32; MAX_LEN + 1];
    for &l in lengths.iter() {
        count[l as usize] += 1;
    }
    count[0] = 0;
    let mut first = [0u32; MAX_LEN + 1];
    let mut offset = [0u32; MAX_LEN + 1];
    let mut code = 0u32;
    let mut total = 0u32;
    for len in 1..=MAX_LEN {
        code = (code + count[len - 1]) << 1;
        first[len] = code;
        offset[len] = total;
        total += count[len];
    }
    // Symbols sorted by (length, symbol) — canonical order.
    let mut symbols = Vec::with_capacity(total as usize);
    for len in 1..=MAX_LEN as u8 {
        for (sym, &l) in lengths.iter().enumerate() {
            if l == len {
                symbols.push(sym as u8);
            }
        }
    }
    if n > 0 && symbols.is_empty() {
        return Err(HiveError::Codec(
            "huffman table empty but data present".into(),
        ));
    }

    let mut br = BitReader::new(&buf[pos..]);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut code = 0u32;
        let mut len = 0usize;
        loop {
            code = (code << 1) | br.next_bit()?;
            len += 1;
            if len > MAX_LEN {
                return Err(HiveError::Codec("huffman code too long".into()));
            }
            let idx = code.wrapping_sub(first[len]);
            if idx < count[len] {
                out.push(symbols[(offset[len] + idx) as usize]);
                break;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_text() {
        let data = b"the quick brown fox jumps over the lazy dog; the dog sleeps".repeat(50);
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        // English-ish text should beat 8 bits/byte even with the 256-byte header.
        assert!(c.len() < data.len());
    }

    #[test]
    fn round_trip_empty_and_single_symbol() {
        assert_eq!(decompress(&compress(b"")).unwrap(), b"");
        let data = vec![7u8; 1000];
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        // 1 bit per byte + header.
        assert!(c.len() < 256 + 1000 / 8 + 16);
    }

    #[test]
    fn round_trip_uniform_random() {
        let mut x = 0x9e3779b97f4a7c15u64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn truncated_errors() {
        let c = compress(b"hello world hello world");
        assert!(decompress(&c[..NSYM - 1]).is_err());
        assert!(decompress(&c[..c.len() - 1]).is_err());
    }
}
