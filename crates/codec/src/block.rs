//! General-purpose block codecs (paper Section 4.3, second compression
//! level): ZLIB, Snappy and LZO in Hive; here a from-scratch Snappy-class
//! LZ77 codec and a Deflate-class LZ77+Huffman codec.
//!
//! Streams are compressed in fixed-size *compression units* (default 256 KB)
//! by the file-format layer; the codecs themselves are one-shot over a unit.

mod lz;

use crate::huffman;
use hive_common::{HiveError, Result};

/// Which general-purpose compression to apply, as configured by
/// `hive.exec.orc.default.compress`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Compression {
    /// Only the type-specific stream encodings.
    #[default]
    None,
    /// Snappy-class: fast byte-oriented LZ77, moderate ratio.
    Snappy,
    /// ZLIB-class: LZ77 + canonical Huffman, better ratio, slower.
    Zlib,
}

impl Compression {
    /// Parse the configuration spelling.
    pub fn parse(s: &str) -> Result<Compression> {
        match s.to_ascii_lowercase().as_str() {
            "none" => Ok(Compression::None),
            "snappy" | "lzo" => Ok(Compression::Snappy),
            "zlib" | "deflate" => Ok(Compression::Zlib),
            other => Err(HiveError::Config(format!(
                "unknown compression codec `{other}`"
            ))),
        }
    }

    /// The codec implementation, or `None` for uncompressed.
    pub fn codec(&self) -> Option<Box<dyn BlockCodec>> {
        match self {
            Compression::None => None,
            Compression::Snappy => Some(Box::new(SnappyLikeCodec)),
            Compression::Zlib => Some(Box::new(DeflateLikeCodec)),
        }
    }
}

impl std::fmt::Display for Compression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Compression::None => write!(f, "none"),
            Compression::Snappy => write!(f, "snappy"),
            Compression::Zlib => write!(f, "zlib"),
        }
    }
}

/// A one-shot block compressor/decompressor.
pub trait BlockCodec: Send + Sync {
    /// Compress `data`; may return a buffer larger than the input (the
    /// caller is expected to keep the original if so, as ORC does).
    fn compress(&self, data: &[u8]) -> Vec<u8>;

    /// Decompress a buffer produced by [`compress`](BlockCodec::compress).
    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>>;

    /// Codec name for diagnostics.
    fn name(&self) -> &'static str;
}

/// Identity codec (useful for tests and as a guard value).
pub struct NoneCodec;

impl BlockCodec for NoneCodec {
    fn compress(&self, data: &[u8]) -> Vec<u8> {
        data.to_vec()
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>> {
        Ok(data.to_vec())
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

/// Snappy-class codec: greedy LZ77 with a 4-byte hash chain over a 64 KB
/// window, byte-aligned tag format (varint length header, literal and copy
/// tags). No entropy stage — that is what makes it fast.
pub struct SnappyLikeCodec;

impl BlockCodec for SnappyLikeCodec {
    fn compress(&self, data: &[u8]) -> Vec<u8> {
        lz::snappy_compress(data)
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>> {
        lz::snappy_decompress(data)
    }

    fn name(&self) -> &'static str {
        "snappy-like"
    }
}

/// Deflate-class codec: the same LZ77 front end serialized into a token
/// stream, then order-0 canonical Huffman over the whole token stream.
pub struct DeflateLikeCodec;

impl BlockCodec for DeflateLikeCodec {
    fn compress(&self, data: &[u8]) -> Vec<u8> {
        huffman::compress(&lz::snappy_compress(data))
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>> {
        lz::snappy_decompress(&huffman::decompress(data)?)
    }

    fn name(&self) -> &'static str {
        "deflate-like"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codecs() -> Vec<Box<dyn BlockCodec>> {
        vec![
            Box::new(NoneCodec),
            Box::new(SnappyLikeCodec),
            Box::new(DeflateLikeCodec),
        ]
    }

    fn sample_text() -> Vec<u8> {
        b"SIGMOD 2014: Major Technical Advancements in Apache Hive. \
          ORC File provides high storage efficiency with low overhead. "
            .repeat(200)
    }

    #[test]
    fn all_codecs_round_trip_text() {
        let data = sample_text();
        for c in codecs() {
            let comp = c.compress(&data);
            assert_eq!(c.decompress(&comp).unwrap(), data, "codec {}", c.name());
        }
    }

    #[test]
    fn all_codecs_round_trip_edge_inputs() {
        let inputs: Vec<Vec<u8>> = vec![
            vec![],
            vec![0],
            vec![0xff; 5],
            (0..=255u8).collect(),
            vec![1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3, 9],
        ];
        for data in inputs {
            for c in codecs() {
                let comp = c.compress(&data);
                assert_eq!(c.decompress(&comp).unwrap(), data, "codec {}", c.name());
            }
        }
    }

    #[test]
    fn repetitive_data_compresses_hard() {
        let data = vec![42u8; 100_000];
        // Like real Snappy, copies cap at 64 bytes → ~3 bytes per 64.
        let s = SnappyLikeCodec.compress(&data);
        assert!(s.len() < 6000, "snappy-like: {} bytes", s.len());
        // The entropy stage squeezes the repetitive tag stream much further.
        let z = DeflateLikeCodec.compress(&data);
        assert!(z.len() < 2500, "deflate-like: {} bytes", z.len());
    }

    #[test]
    fn deflate_like_beats_snappy_like_on_text() {
        let data = sample_text();
        let s = SnappyLikeCodec.compress(&data);
        let z = DeflateLikeCodec.compress(&data);
        assert!(
            z.len() < s.len(),
            "deflate {} should be < snappy {}",
            z.len(),
            s.len()
        );
        assert!(s.len() < data.len());
    }

    #[test]
    fn random_data_does_not_explode() {
        let mut x = 0x2545f4914f6cdd1du64;
        let data: Vec<u8> = (0..65536)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        for c in codecs() {
            let comp = c.compress(&data);
            // Incompressible data should cost only small framing overhead.
            assert!(
                comp.len() < data.len() + data.len() / 8 + 512,
                "codec {} blew up: {}",
                c.name(),
                comp.len()
            );
            assert_eq!(c.decompress(&comp).unwrap(), data);
        }
    }

    #[test]
    fn compression_parse_and_display() {
        assert_eq!(Compression::parse("SNAPPY").unwrap(), Compression::Snappy);
        assert_eq!(Compression::parse("zlib").unwrap(), Compression::Zlib);
        assert_eq!(Compression::parse("none").unwrap(), Compression::None);
        assert!(Compression::parse("gzip2").is_err());
        assert!(Compression::None.codec().is_none());
        assert_eq!(Compression::Snappy.codec().unwrap().name(), "snappy-like");
    }

    #[test]
    fn corrupt_input_errors_not_panics() {
        let data = sample_text();
        let mut comp = SnappyLikeCodec.compress(&data);
        // Flip bytes in the middle.
        let mid = comp.len() / 2;
        comp[mid] ^= 0xff;
        comp[mid + 1] ^= 0xff;
        // Either an error or a wrong (but safely produced) output.
        if let Ok(out) = SnappyLikeCodec.decompress(&comp) {
            assert_ne!(out, data);
        }
        assert!(
            SnappyLikeCodec
                .decompress(&comp[..3.min(comp.len())])
                .is_err()
                || data.is_empty()
        );
    }
}
