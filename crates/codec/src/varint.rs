//! LEB128 varints and zigzag transforms, the base-128 integer
//! representation underlying the integer streams.

use hive_common::{HiveError, Result};

/// Append `v` as an unsigned LEB128 varint.
pub fn write_unsigned(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append `v` as a zigzag-encoded signed varint.
pub fn write_signed(out: &mut Vec<u8>, v: i64) {
    write_unsigned(out, zigzag(v));
}

/// Map a signed integer to an unsigned one with small absolute values
/// staying small: 0→0, -1→1, 1→2, -2→3, ...
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Read an unsigned varint from `buf` starting at `*pos`, advancing it.
pub fn read_unsigned(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| HiveError::Codec("varint truncated".into()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(HiveError::Codec("varint overflows u64".into()));
        }
        result |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(result);
        }
        shift += 7;
    }
}

/// Read a zigzag-encoded signed varint.
pub fn read_signed(buf: &[u8], pos: &mut usize) -> Result<i64> {
    Ok(unzigzag(read_unsigned(buf, pos)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsigned_round_trip() {
        let cases = [0u64, 1, 127, 128, 300, 16383, 16384, u64::MAX];
        for &v in &cases {
            let mut buf = Vec::new();
            write_unsigned(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_unsigned(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn signed_round_trip() {
        let cases = [0i64, -1, 1, -64, 63, 64, -65, i64::MAX, i64::MIN];
        for &v in &cases {
            let mut buf = Vec::new();
            write_signed(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_signed(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_keeps_small_magnitudes_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(unzigzag(zigzag(-123456789)), -123456789);
    }

    #[test]
    fn truncated_input_errors() {
        let buf = vec![0x80, 0x80];
        let mut pos = 0;
        assert!(read_unsigned(&buf, &mut pos).is_err());
    }

    #[test]
    fn overlong_input_errors() {
        let buf = vec![0x80; 11];
        let mut pos = 0;
        assert!(read_unsigned(&buf, &mut pos).is_err());
    }
}
