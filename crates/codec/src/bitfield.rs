//! The bit-field stream (paper Section 4.3, fourth primitive kind): a
//! sequence of booleans, one bit each, "backed by a run length byte stream".
//!
//! ORC uses these for null-presence (`PRESENT`) streams. Long all-set or
//! all-clear stretches — the common case for mostly-non-null columns —
//! collapse into byte runs underneath.

use crate::byte_rle::{ByteRleDecoder, ByteRleEncoder};
use hive_common::Result;

/// Encoder packing booleans MSB-first into a run-length byte stream.
#[derive(Debug, Default)]
pub struct BitFieldEncoder {
    byte_rle: ByteRleEncoder,
    current: u8,
    bits_used: u8,
    count: u64,
}

impl BitFieldEncoder {
    pub fn new() -> BitFieldEncoder {
        BitFieldEncoder::default()
    }

    pub fn write(&mut self, bit: bool) {
        self.current = (self.current << 1) | bit as u8;
        self.bits_used += 1;
        self.count += 1;
        if self.bits_used == 8 {
            self.byte_rle.write(self.current);
            self.current = 0;
            self.bits_used = 0;
        }
    }

    pub fn write_all(&mut self, bits: &[bool]) {
        for &b in bits {
            self.write(b);
        }
    }

    /// Number of bits written so far.
    pub fn len(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Finish: pad the last byte with zero bits and return encoded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        if self.bits_used > 0 {
            self.current <<= 8 - self.bits_used;
            self.byte_rle.write(self.current);
        }
        self.byte_rle.finish()
    }

    pub fn estimated_size(&self) -> usize {
        self.byte_rle.estimated_size() + 1
    }
}

/// One-shot encode.
pub fn encode(bits: &[bool]) -> Vec<u8> {
    let mut e = BitFieldEncoder::new();
    e.write_all(bits);
    e.finish()
}

/// Decoder over an encoded bit-field stream.
#[derive(Debug)]
pub struct BitFieldDecoder<'a> {
    byte_rle: ByteRleDecoder<'a>,
    current: u8,
    bits_left: u8,
}

impl<'a> BitFieldDecoder<'a> {
    pub fn new(buf: &'a [u8]) -> BitFieldDecoder<'a> {
        BitFieldDecoder {
            byte_rle: ByteRleDecoder::new(buf),
            current: 0,
            bits_left: 0,
        }
    }

    #[allow(clippy::should_implement_trait)] // fallible cursor, not an Iterator
    pub fn next(&mut self) -> Result<bool> {
        if self.bits_left == 0 {
            self.current = self.byte_rle.next()?;
            self.bits_left = 8;
        }
        self.bits_left -= 1;
        Ok((self.current >> self.bits_left) & 1 == 1)
    }

    /// Skip `n` bits.
    pub fn skip(&mut self, n: usize) -> Result<()> {
        let mut n = n as u64;
        // Consume bits in the current partial byte first.
        let avail = self.bits_left as u64;
        if n <= avail {
            self.bits_left -= n as u8;
            return Ok(());
        }
        n -= avail;
        self.bits_left = 0;
        let whole_bytes = (n / 8) as usize;
        self.byte_rle.skip(whole_bytes)?;
        let rem = (n % 8) as u8;
        if rem > 0 {
            self.current = self.byte_rle.next()?;
            self.bits_left = 8 - rem;
        }
        Ok(())
    }
}

/// One-shot decode of exactly `n` bits.
pub fn decode(buf: &[u8], n: usize) -> Result<Vec<bool>> {
    let mut d = BitFieldDecoder::new(buf);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(d.next()?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(bits: &[bool]) {
        let enc = encode(bits);
        assert_eq!(decode(&enc, bits.len()).unwrap(), bits);
    }

    #[test]
    fn basic_patterns() {
        round_trip(&[]);
        round_trip(&[true]);
        round_trip(&[false]);
        round_trip(&[true, false, true, true, false, false, true, false, true]);
    }

    #[test]
    fn all_set_compresses_to_byte_runs() {
        let bits = vec![true; 100_000];
        let enc = encode(&bits);
        // 12500 bytes of 0xFF → a handful of byte-RLE runs.
        assert!(enc.len() < 250, "got {}", enc.len());
        round_trip(&bits);
    }

    #[test]
    fn non_multiple_of_eight_lengths() {
        for n in [1usize, 7, 8, 9, 15, 16, 17, 63, 65] {
            let bits: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            round_trip(&bits);
        }
    }

    #[test]
    fn skip_matches_sequential() {
        let bits: Vec<bool> = (0..10_000).map(|i| (i * 7) % 11 < 4).collect();
        let enc = encode(&bits);
        for skip_n in [0usize, 1, 8, 9, 4999, 9999] {
            let mut d = BitFieldDecoder::new(&enc);
            d.skip(skip_n).unwrap();
            assert_eq!(d.next().unwrap(), bits[skip_n], "skip {skip_n}");
        }
    }

    #[test]
    fn skip_within_partial_byte() {
        let bits = vec![
            true, false, true, false, true, false, true, false, true, true,
        ];
        let enc = encode(&bits);
        let mut d = BitFieldDecoder::new(&enc);
        d.next().unwrap(); // consume one bit
        d.skip(3).unwrap();
        assert_eq!(d.next().unwrap(), bits[4]);
    }
}
