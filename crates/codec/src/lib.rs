//! Encodings and compression for the file-format layer.
//!
//! Two levels, exactly as Section 4.3 of the paper describes:
//!
//! 1. **Stream-type-specific encodings** — the four primitive stream kinds
//!    (byte, run-length byte, integer, bit-field) plus the dictionary
//!    machinery used for strings.
//! 2. **General-purpose block codecs** — applied on top of encoded streams
//!    in fixed-size compression units. We implement a Snappy-class LZ77
//!    codec and a Deflate-class LZ77+Huffman codec from scratch (the real
//!    Snappy/ZLIB are not available offline; these preserve the speed/ratio
//!    trade-off the experiments depend on).

pub mod bitfield;
pub mod block;
pub mod byte_rle;
pub mod dictionary;
pub mod huffman;
pub mod int_rle;
pub mod varint;

pub use bitfield::{BitFieldDecoder, BitFieldEncoder};
pub use block::{BlockCodec, Compression, DeflateLikeCodec, NoneCodec, SnappyLikeCodec};
pub use byte_rle::{ByteRleDecoder, ByteRleEncoder};
pub use dictionary::DictionaryBuilder;
pub use int_rle::{IntRleDecoder, IntRleEncoder};
