//! A minimal in-tree stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships this shim: the `criterion_group!`/`criterion_main!`
//! macros, `Criterion`, `BenchmarkGroup`, `BenchmarkId`, and `Throughput`,
//! implemented as a plain timing loop that prints mean wall-clock time per
//! iteration (plus throughput when configured). No statistics, plots, or
//! baselines — enough to run `cargo bench` and compare numbers by eye.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export so benches importing `criterion::black_box` keep working.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Declared throughput of one iteration, used to print bytes/s or elem/s.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A two-part benchmark name (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The timing loop driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    mean_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then `samples` timed calls.
        black_box(f());
        let t0 = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean_ns = t0.elapsed().as_nanos() as f64 / self.samples as f64;
    }
}

fn report(name: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let time = if mean_ns >= 1e9 {
        format!("{:.3} s", mean_ns / 1e9)
    } else if mean_ns >= 1e6 {
        format!("{:.3} ms", mean_ns / 1e6)
    } else if mean_ns >= 1e3 {
        format!("{:.3} µs", mean_ns / 1e3)
    } else {
        format!("{mean_ns:.1} ns")
    };
    let rate = match throughput {
        Some(Throughput::Bytes(b)) => {
            format!(
                "  ({:.1} MiB/s)",
                b as f64 / (mean_ns / 1e9) / (1 << 20) as f64
            )
        }
        Some(Throughput::Elements(n)) => {
            format!("  ({:.0} elem/s)", n as f64 / (mean_ns / 1e9))
        }
        None => String::new(),
    };
    println!("{name:<60} {time:>12}{rate}");
}

/// Top-level benchmark registry/driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b);
        report(&name.into_id(), b.mean_ns, None);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.into_id()),
            b.mean_ns,
            self.throughput,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.into_id()),
            b.mean_ns,
            self.throughput,
        );
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        c.bench_function("probe", |b| b.iter(|| runs += 1));
        assert!(runs > 0, "iter body must execute");
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1024)).sample_size(3);
        g.bench_with_input(BenchmarkId::new("f", "x"), &5u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }
}
