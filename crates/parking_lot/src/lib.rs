//! A minimal in-tree stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships this shim instead: the same `Mutex`/`RwLock` surface the
//! codebase uses (guards returned without a poison `Result`), implemented on
//! `std::sync`. Poisoning is ignored — a panic while holding a lock does not
//! make the protected data unreachable, matching parking_lot semantics.

use std::fmt;
use std::sync::PoisonError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
