//! The row-mode operators (paper Sections 2 and 5.2.2).
//!
//! Standard operators — TableScan is implicit (the task driver pushes rows
//! in), Filter, Select, GroupBy, ReduceSink, Join, MapJoin, Limit,
//! FileSink — plus the two operators the Correlation Optimizer adds to make
//! merged plans executable under the push model: **DemuxOperator** (retag
//! and dispatch rows to the right major operator at the start of the Reduce
//! phase) and **MuxOperator** (coordinate group signals arriving from
//! several parents before waking its child).

use crate::agg::{AggFunction, AggMode, RowAggState};
use crate::expr::ExprNode;
use crate::graph::{Emit, Message, Operator, ShuffleRecord};
use hive_common::{HiveError, Result, Row, Value};
use std::collections::HashMap;

/// Broadcasts everything to all children — the fan-out point used when a
/// merged table scan feeds several chains (input correlation).
pub struct PassThroughOperator;

impl Operator for PassThroughOperator {
    fn name(&self) -> String {
        "PassThroughOperator".into()
    }

    fn receive(&mut self, msg: Message) -> Result<Vec<Emit>> {
        Ok(vec![Emit::Broadcast(msg)])
    }
}

/// Evaluates a predicate; non-matching rows are dropped.
pub struct FilterOperator {
    pub predicate: ExprNode,
}

impl Operator for FilterOperator {
    fn name(&self) -> String {
        "FilterOperator".into()
    }

    fn receive(&mut self, msg: Message) -> Result<Vec<Emit>> {
        match msg {
            Message::Row { row, tag } => {
                if self.predicate.eval_predicate(&row)? {
                    Ok(vec![Emit::Forward {
                        child_slot: 0,
                        msg: Message::Row { row, tag },
                    }])
                } else {
                    Ok(vec![])
                }
            }
            signal => Ok(vec![Emit::Broadcast(signal)]),
        }
    }
}

/// Projects expressions over each row.
pub struct SelectOperator {
    pub exprs: Vec<ExprNode>,
}

impl Operator for SelectOperator {
    fn name(&self) -> String {
        "SelectOperator".into()
    }

    fn receive(&mut self, msg: Message) -> Result<Vec<Emit>> {
        match msg {
            Message::Row { row, tag } => {
                let mut vals = Vec::with_capacity(self.exprs.len());
                for e in &self.exprs {
                    vals.push(e.eval(&row)?);
                }
                Ok(vec![Emit::Forward {
                    child_slot: 0,
                    msg: Message::Row {
                        row: Row::new(vals),
                        tag,
                    },
                }])
            }
            signal => Ok(vec![Emit::Broadcast(signal)]),
        }
    }
}

/// Stops forwarding after `limit` rows.
pub struct LimitOperator {
    pub limit: u64,
    seen: u64,
}

impl LimitOperator {
    pub fn new(limit: u64) -> LimitOperator {
        LimitOperator { limit, seen: 0 }
    }
}

impl Operator for LimitOperator {
    fn name(&self) -> String {
        format!("LimitOperator({})", self.limit)
    }

    fn receive(&mut self, msg: Message) -> Result<Vec<Emit>> {
        match msg {
            Message::Row { row, tag } => {
                if self.seen < self.limit {
                    self.seen += 1;
                    Ok(vec![Emit::Forward {
                        child_slot: 0,
                        msg: Message::Row { row, tag },
                    }])
                } else {
                    Ok(vec![])
                }
            }
            signal => Ok(vec![Emit::Broadcast(signal)]),
        }
    }
}

/// Emits rows to the shuffle with a key and a tag — "the boundary between a
/// Map phase and a Reduce phase" (paper Section 2).
pub struct ReduceSinkOperator {
    pub key_exprs: Vec<ExprNode>,
    pub value_exprs: Vec<ExprNode>,
    pub tag: usize,
    pub num_reducers: usize,
}

impl Operator for ReduceSinkOperator {
    fn name(&self) -> String {
        format!("ReduceSinkOperator(tag {})", self.tag)
    }

    fn receive(&mut self, msg: Message) -> Result<Vec<Emit>> {
        match msg {
            Message::Row { row, .. } => {
                let mut key = Vec::with_capacity(self.key_exprs.len());
                for e in &self.key_exprs {
                    key.push(e.eval(&row)?);
                }
                let mut value = Vec::with_capacity(self.value_exprs.len());
                for e in &self.value_exprs {
                    value.push(e.eval(&row)?);
                }
                Ok(vec![Emit::Shuffle(ShuffleRecord {
                    key,
                    value: Row::new(value),
                    tag: self.tag,
                    num_reducers: self.num_reducers,
                })])
            }
            // Group signals never cross the shuffle boundary.
            _ => Ok(vec![]),
        }
    }
}

/// Terminal operator: emits rows as task output.
pub struct FileSinkOperator;

impl Operator for FileSinkOperator {
    fn name(&self) -> String {
        "FileSinkOperator".into()
    }

    fn receive(&mut self, msg: Message) -> Result<Vec<Emit>> {
        match msg {
            Message::Row { row, .. } => Ok(vec![Emit::Output(row)]),
            _ => Ok(vec![]),
        }
    }
}

/// One aggregate of a GroupByOperator: function, mode, input expression
/// (None for COUNT(*)).
#[derive(Clone)]
pub struct AggSpec {
    pub function: AggFunction,
    pub mode: AggMode,
    pub arg: Option<ExprNode>,
}

/// How the GroupByOperator collects groups.
pub enum GroupByMode {
    /// Hash aggregation (map side): buffers all groups, flushes on close.
    Hash,
    /// Streaming (reduce side): input arrives grouped; group signals from
    /// the reducer driver delimit groups.
    Streaming,
}

/// Group-by with partial/final aggregate modes.
pub struct GroupByOperator {
    pub key_exprs: Vec<ExprNode>,
    pub aggs: Vec<AggSpec>,
    mode: GroupByMode,
    hash: HashMap<Vec<String>, (Vec<Value>, Vec<RowAggState>)>,
    current: Option<(Vec<Value>, Vec<RowAggState>)>,
}

impl GroupByOperator {
    pub fn new(key_exprs: Vec<ExprNode>, aggs: Vec<AggSpec>, mode: GroupByMode) -> GroupByOperator {
        GroupByOperator {
            key_exprs,
            aggs,
            mode,
            hash: HashMap::new(),
            current: None,
        }
    }

    fn fresh_states(&self) -> Vec<RowAggState> {
        self.aggs
            .iter()
            .map(|a| RowAggState::new(a.function, a.mode))
            .collect()
    }

    fn update_states(&self, states: &mut [RowAggState], row: &Row) -> Result<()> {
        for (spec, state) in self.aggs.iter().zip(states.iter_mut()) {
            let v = match &spec.arg {
                Some(e) => e.eval(row)?,
                None => Value::Null, // COUNT(*) ignores it
            };
            state.update(&v)?;
        }
        Ok(())
    }

    fn result_row(key: &[Value], states: &[RowAggState]) -> Row {
        let mut vals: Vec<Value> = key.to_vec();
        vals.extend(states.iter().map(RowAggState::output));
        Row::new(vals)
    }

    /// Approximate hash-table footprint.
    pub fn memory_size(&self) -> usize {
        self.hash.len() * (64 + self.aggs.len() * 96)
    }
}

impl Operator for GroupByOperator {
    fn name(&self) -> String {
        match self.mode {
            GroupByMode::Hash => "GroupByOperator(hash)".into(),
            GroupByMode::Streaming => "GroupByOperator(streaming)".into(),
        }
    }

    fn receive(&mut self, msg: Message) -> Result<Vec<Emit>> {
        match msg {
            Message::Row { row, .. } => {
                let mut key = Vec::with_capacity(self.key_exprs.len());
                for e in &self.key_exprs {
                    key.push(e.eval(&row)?);
                }
                match self.mode {
                    GroupByMode::Hash => {
                        let hkey: Vec<String> = key.iter().map(|v| format!("{v:?}")).collect();
                        if !self.hash.contains_key(&hkey) {
                            let states = self.fresh_states();
                            self.hash.insert(hkey.clone(), (key, states));
                        }
                        let (_, states) = self.hash.get_mut(&hkey).unwrap();
                        let mut tmp = std::mem::take(states);
                        self.update_states(&mut tmp, &row)?;
                        self.hash.get_mut(&hkey).unwrap().1 = tmp;
                    }
                    GroupByMode::Streaming => {
                        // Rows of one key group arrive between Start/End
                        // signals, so the first row's key names the group.
                        if self.current.is_none() {
                            self.current = Some((key, self.fresh_states()));
                        }
                        let (k, mut states) = self.current.take().unwrap();
                        self.update_states(&mut states, &row)?;
                        self.current = Some((k, states));
                    }
                }
                Ok(vec![])
            }
            Message::Batch { .. } => Err(HiveError::Execution(
                "GroupByOperator is row-mode; a batch reaching it is a planner wiring bug".into(),
            )),
            Message::StartGroup => {
                if matches!(self.mode, GroupByMode::Streaming) {
                    self.current = None;
                }
                Ok(vec![Emit::Broadcast(Message::StartGroup)])
            }
            Message::EndGroup => {
                let mut emits = Vec::new();
                if matches!(self.mode, GroupByMode::Streaming) {
                    if let Some((key, states)) = self.current.take() {
                        emits.push(Emit::Forward {
                            child_slot: 0,
                            msg: Message::Row {
                                row: Self::result_row(&key, &states),
                                tag: 0,
                            },
                        });
                    }
                }
                emits.push(Emit::Broadcast(Message::EndGroup));
                Ok(emits)
            }
        }
    }

    fn close(&mut self) -> Result<Vec<Emit>> {
        let mut emits = Vec::new();
        match self.mode {
            GroupByMode::Hash => {
                let mut entries: Vec<_> = self.hash.drain().collect();
                entries.sort_by(|a, b| a.0.cmp(&b.0));
                for (_, (key, states)) in entries {
                    emits.push(Emit::Forward {
                        child_slot: 0,
                        msg: Message::Row {
                            row: Self::result_row(&key, &states),
                            tag: 0,
                        },
                    });
                }
            }
            GroupByMode::Streaming => {
                if let Some((key, states)) = self.current.take() {
                    emits.push(Emit::Forward {
                        child_slot: 0,
                        msg: Message::Row {
                            row: Self::result_row(&key, &states),
                            tag: 0,
                        },
                    });
                }
            }
        }
        Ok(emits)
    }
}

/// Join flavour for one side pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    Inner,
    LeftOuter,
    RightOuter,
    FullOuter,
}

/// Reduce-side join ("Reduce Join" / common join). Buffers the rows of
/// each tag within a key group; on EndGroup emits the joined rows.
///
/// N-way inner joins are supported; outer joins for the binary case (which
/// is what the planner generates — multiway joins are chains).
pub struct CommonJoinOperator {
    pub n_inputs: usize,
    pub join_type: JoinType,
    /// Row width per input (to build null sides for outer joins).
    pub widths: Vec<usize>,
    buffers: Vec<Vec<Row>>,
}

impl CommonJoinOperator {
    pub fn new(n_inputs: usize, join_type: JoinType, widths: Vec<usize>) -> CommonJoinOperator {
        assert_eq!(widths.len(), n_inputs);
        CommonJoinOperator {
            n_inputs,
            join_type,
            widths,
            buffers: vec![Vec::new(); n_inputs],
        }
    }

    fn emit_group(&mut self) -> Result<Vec<Emit>> {
        let mut out = Vec::new();
        let buffers = &self.buffers;
        let any_empty = buffers.iter().any(Vec::is_empty);
        match self.join_type {
            JoinType::Inner => {
                if !any_empty {
                    // Cross product across all inputs.
                    let mut acc: Vec<Row> = vec![Row::default()];
                    for buf in buffers {
                        let mut next = Vec::with_capacity(acc.len() * buf.len());
                        for a in &acc {
                            for b in buf {
                                next.push(a.concat(b));
                            }
                        }
                        acc = next;
                    }
                    for row in acc {
                        out.push(Emit::Forward {
                            child_slot: 0,
                            msg: Message::Row { row, tag: 0 },
                        });
                    }
                }
            }
            JoinType::LeftOuter | JoinType::RightOuter | JoinType::FullOuter => {
                if self.n_inputs != 2 {
                    return Err(HiveError::Execution(
                        "outer joins must be binary in this engine".into(),
                    ));
                }
                let (l, r) = (&buffers[0], &buffers[1]);
                let null_l = Row::new(vec![Value::Null; self.widths[0]]);
                let null_r = Row::new(vec![Value::Null; self.widths[1]]);
                if !l.is_empty() && !r.is_empty() {
                    for a in l {
                        for b in r {
                            out.push(Emit::Forward {
                                child_slot: 0,
                                msg: Message::Row {
                                    row: a.concat(b),
                                    tag: 0,
                                },
                            });
                        }
                    }
                } else if !l.is_empty()
                    && matches!(self.join_type, JoinType::LeftOuter | JoinType::FullOuter)
                {
                    for a in l {
                        out.push(Emit::Forward {
                            child_slot: 0,
                            msg: Message::Row {
                                row: a.concat(&null_r),
                                tag: 0,
                            },
                        });
                    }
                } else if !r.is_empty()
                    && matches!(self.join_type, JoinType::RightOuter | JoinType::FullOuter)
                {
                    for b in r {
                        out.push(Emit::Forward {
                            child_slot: 0,
                            msg: Message::Row {
                                row: null_l.concat(b),
                                tag: 0,
                            },
                        });
                    }
                }
            }
        }
        for buf in &mut self.buffers {
            buf.clear();
        }
        Ok(out)
    }
}

impl Operator for CommonJoinOperator {
    fn name(&self) -> String {
        format!("JoinOperator({:?}, {} way)", self.join_type, self.n_inputs)
    }

    fn receive(&mut self, msg: Message) -> Result<Vec<Emit>> {
        match msg {
            Message::Row { row, tag } => {
                if tag >= self.n_inputs {
                    return Err(HiveError::Execution(format!(
                        "join received tag {tag}, expected < {}",
                        self.n_inputs
                    )));
                }
                self.buffers[tag].push(row);
                Ok(vec![])
            }
            Message::Batch { .. } => Err(HiveError::Execution(
                "JoinOperator is row-mode; a batch reaching it is a planner wiring bug".into(),
            )),
            Message::StartGroup => Ok(vec![Emit::Broadcast(Message::StartGroup)]),
            Message::EndGroup => {
                let mut emits = self.emit_group()?;
                emits.push(Emit::Broadcast(Message::EndGroup));
                Ok(emits)
            }
        }
    }

    fn close(&mut self) -> Result<Vec<Emit>> {
        // A trailing group with no EndGroup (defensive; drivers send it).
        self.emit_group()
    }
}

/// One small table of a Map Join: rows grouped by their join key.
pub struct MapJoinTable {
    pub rows_by_key: HashMap<Vec<String>, Vec<Row>>,
    pub width: usize,
    pub join_type: JoinType,
    /// Key expressions over the *stream* (big side) row as it looks when it
    /// reaches this table (already extended by earlier tables).
    pub key_exprs: Vec<ExprNode>,
}

impl MapJoinTable {
    /// Build the hash table from the small side's rows.
    pub fn build(
        rows: &[Row],
        key_exprs: &[ExprNode],
        stream_keys: Vec<ExprNode>,
        join_type: JoinType,
        width: usize,
    ) -> Result<MapJoinTable> {
        let mut rows_by_key: HashMap<Vec<String>, Vec<Row>> = HashMap::new();
        for row in rows {
            let mut key = Vec::with_capacity(key_exprs.len());
            let mut has_null = false;
            for e in key_exprs {
                let v = e.eval(row)?;
                has_null |= v.is_null();
                key.push(format!("{v:?}"));
            }
            if has_null {
                continue; // NULL keys never match
            }
            rows_by_key.entry(key).or_default().push(row.clone());
        }
        Ok(MapJoinTable {
            rows_by_key,
            width,
            join_type,
            key_exprs: stream_keys,
        })
    }

    /// Approximate footprint, for the small-table threshold checks.
    pub fn memory_size(&self) -> usize {
        self.rows_by_key
            .values()
            .flat_map(|rows| rows.iter().map(Row::heap_size))
            .sum::<usize>()
            + self.rows_by_key.len() * 48
    }
}

/// Map Join: the big table streams through; each small table was built
/// into a hash table at task setup. Several Map Joins merged into one Map
/// phase (paper Section 5.1) are just several tables here, probed "in a
/// pipelined fashion".
pub struct MapJoinOperator {
    pub tables: Vec<MapJoinTable>,
}

impl Operator for MapJoinOperator {
    fn name(&self) -> String {
        format!("MapJoinOperator({} tables)", self.tables.len())
    }

    fn receive(&mut self, msg: Message) -> Result<Vec<Emit>> {
        match msg {
            Message::Row { row, tag } => {
                // Probe tables in order, expanding matches as we go.
                let mut acc = vec![row];
                for t in &self.tables {
                    let mut next = Vec::with_capacity(acc.len());
                    for big in acc {
                        let mut key = Vec::with_capacity(t.key_exprs.len());
                        let mut has_null = false;
                        for e in &t.key_exprs {
                            let v = e.eval(&big)?;
                            has_null |= v.is_null();
                            key.push(format!("{v:?}"));
                        }
                        let matches = if has_null {
                            None
                        } else {
                            t.rows_by_key.get(&key)
                        };
                        match matches {
                            Some(small_rows) => {
                                for s in small_rows {
                                    next.push(big.concat(s));
                                }
                            }
                            None => {
                                if matches!(t.join_type, JoinType::LeftOuter | JoinType::FullOuter)
                                {
                                    next.push(big.concat(&Row::new(vec![Value::Null; t.width])));
                                }
                            }
                        }
                    }
                    acc = next;
                }
                Ok(acc
                    .into_iter()
                    .map(|row| Emit::Forward {
                        child_slot: 0,
                        msg: Message::Row { row, tag },
                    })
                    .collect())
            }
            signal => Ok(vec![Emit::Broadcast(signal)]),
        }
    }
}

/// DemuxOperator (paper Figure 5): sits right after the Reducer Driver in a
/// correlation-optimized plan, reassigning new tags back to the original
/// ("old") tags and dispatching rows to the right major operator.
pub struct DemuxOperator {
    /// Indexed by incoming (new) tag: `(child_slot, old_tag)`.
    pub routes: Vec<(usize, usize)>,
}

impl Operator for DemuxOperator {
    fn name(&self) -> String {
        "DemuxOperator".into()
    }

    fn receive(&mut self, msg: Message) -> Result<Vec<Emit>> {
        match msg {
            Message::Row { row, tag } => {
                let &(child_slot, old_tag) = self.routes.get(tag).ok_or_else(|| {
                    HiveError::Execution(format!("demux has no route for tag {tag}"))
                })?;
                Ok(vec![Emit::Forward {
                    child_slot,
                    msg: Message::Row { row, tag: old_tag },
                }])
            }
            // Signals are propagated to the whole tree (paper: "the DemuxOp
            // will propagate this signal to the operator tree").
            signal => Ok(vec![Emit::Broadcast(signal)]),
        }
    }
}

/// MuxOperator (paper Figure 5): the single parent of each GroupBy/Join in
/// an optimized plan. It forwards rows (optionally assigning a tag for its
/// join child) and coordinates group signals: the child sees EndGroup only
/// when *all* of the Mux's parents have ended the group.
pub struct MuxOperator {
    pub num_parents: usize,
    /// Tag to assign to forwarded rows (None = preserve; used when the
    /// child is a Join and this Mux funnels one of its inputs).
    pub assign_tag: Option<usize>,
    starts_seen: usize,
    ends_seen: usize,
}

impl MuxOperator {
    pub fn new(num_parents: usize, assign_tag: Option<usize>) -> MuxOperator {
        MuxOperator {
            num_parents: num_parents.max(1),
            assign_tag,
            starts_seen: 0,
            ends_seen: 0,
        }
    }
}

impl Operator for MuxOperator {
    fn name(&self) -> String {
        format!(
            "MuxOperator({} parents, tag {:?})",
            self.num_parents, self.assign_tag
        )
    }

    fn receive(&mut self, msg: Message) -> Result<Vec<Emit>> {
        match msg {
            Message::Row { row, tag } => Ok(vec![Emit::Forward {
                child_slot: 0,
                msg: Message::Row {
                    row,
                    tag: self.assign_tag.unwrap_or(tag),
                },
            }]),
            Message::Batch { .. } => Err(HiveError::Execution(
                "MuxOperator is row-mode; a batch reaching it is a planner wiring bug".into(),
            )),
            Message::StartGroup => {
                self.starts_seen += 1;
                if self.starts_seen == self.num_parents {
                    self.starts_seen = 0;
                    Ok(vec![Emit::Broadcast(Message::StartGroup)])
                } else {
                    Ok(vec![])
                }
            }
            Message::EndGroup => {
                self.ends_seen += 1;
                // "When a MuxOp gets this ending group signal, it will check
                // if all of its parent operators have sent this signal to
                // it. If so, it will ask its child to generate results."
                if self.ends_seen == self.num_parents {
                    self.ends_seen = 0;
                    Ok(vec![Emit::Broadcast(Message::EndGroup)])
                } else {
                    Ok(vec![])
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::OperatorGraph;

    fn row(vals: &[i64]) -> Row {
        Row::new(vals.iter().map(|&v| Value::Int(v)).collect())
    }

    fn run_rows(
        g: &mut OperatorGraph,
        root: usize,
        rows: Vec<Row>,
    ) -> (Vec<Row>, Vec<ShuffleRecord>) {
        let mut out = Vec::new();
        let mut shuffled = Vec::new();
        for r in rows {
            g.push(
                root,
                Message::Row { row: r, tag: 0 },
                &mut |s| shuffled.push(s),
                &mut |r| out.push(r),
            )
            .unwrap();
        }
        g.finish(&mut |s| shuffled.push(s), &mut |r| out.push(r))
            .unwrap();
        (out, shuffled)
    }

    #[test]
    fn filter_select_sink_pipeline() {
        let mut g = OperatorGraph::new();
        let f = g.add(Box::new(FilterOperator {
            predicate: ExprNode::binary(
                crate::expr::BinaryOp::Gt,
                ExprNode::col(0),
                ExprNode::lit(Value::Int(1)),
            ),
        }));
        let s = g.add(Box::new(SelectOperator {
            exprs: vec![ExprNode::binary(
                crate::expr::BinaryOp::Multiply,
                ExprNode::col(0),
                ExprNode::lit(Value::Int(10)),
            )],
        }));
        let fs = g.add(Box::new(FileSinkOperator));
        g.connect(f, s, None);
        g.connect(s, fs, None);
        let (out, _) = run_rows(&mut g, f, vec![row(&[1]), row(&[2]), row(&[3])]);
        assert_eq!(out, vec![row(&[20]), row(&[30])]);
    }

    #[test]
    fn hash_group_by_partial() {
        let mut g = OperatorGraph::new();
        let gb = g.add(Box::new(GroupByOperator::new(
            vec![ExprNode::col(0)],
            vec![
                AggSpec {
                    function: AggFunction::Sum,
                    mode: AggMode::Partial,
                    arg: Some(ExprNode::col(1)),
                },
                AggSpec {
                    function: AggFunction::CountStar,
                    mode: AggMode::Partial,
                    arg: None,
                },
            ],
            GroupByMode::Hash,
        )));
        let fs = g.add(Box::new(FileSinkOperator));
        g.connect(gb, fs, None);
        let (out, _) = run_rows(
            &mut g,
            gb,
            vec![row(&[1, 10]), row(&[2, 20]), row(&[1, 30])],
        );
        assert_eq!(out.len(), 2);
        assert!(out.contains(&row(&[1, 40, 2])));
        assert!(out.contains(&row(&[2, 20, 1])));
    }

    #[test]
    fn streaming_group_by_uses_group_signals() {
        let mut g = OperatorGraph::new();
        let gb = g.add(Box::new(GroupByOperator::new(
            vec![ExprNode::col(0)],
            vec![AggSpec {
                function: AggFunction::Sum,
                mode: AggMode::Final,
                arg: Some(ExprNode::col(1)),
            }],
            GroupByMode::Streaming,
        )));
        let fs = g.add(Box::new(FileSinkOperator));
        g.connect(gb, fs, None);
        let mut out = Vec::new();
        let push = |g: &mut OperatorGraph, m: Message, out: &mut Vec<Row>| {
            g.push(gb, m, &mut |_| {}, &mut |r| out.push(r)).unwrap();
        };
        push(&mut g, Message::StartGroup, &mut out);
        push(
            &mut g,
            Message::Row {
                row: row(&[1, 5]),
                tag: 0,
            },
            &mut out,
        );
        push(
            &mut g,
            Message::Row {
                row: row(&[1, 6]),
                tag: 0,
            },
            &mut out,
        );
        push(&mut g, Message::EndGroup, &mut out);
        push(&mut g, Message::StartGroup, &mut out);
        push(
            &mut g,
            Message::Row {
                row: row(&[2, 7]),
                tag: 0,
            },
            &mut out,
        );
        push(&mut g, Message::EndGroup, &mut out);
        g.finish(&mut |_| {}, &mut |r| out.push(r)).unwrap();
        assert_eq!(out, vec![row(&[1, 11]), row(&[2, 7])]);
    }

    #[test]
    fn reduce_sink_emits_shuffle_records() {
        let mut g = OperatorGraph::new();
        let rs = g.add(Box::new(ReduceSinkOperator {
            key_exprs: vec![ExprNode::col(0)],
            value_exprs: vec![ExprNode::col(1)],
            tag: 3,
            num_reducers: 4,
        }));
        let (_, shuffled) = run_rows(&mut g, rs, vec![row(&[7, 70])]);
        assert_eq!(shuffled.len(), 1);
        assert_eq!(shuffled[0].key, vec![Value::Int(7)]);
        assert_eq!(shuffled[0].value, row(&[70]));
        assert_eq!(shuffled[0].tag, 3);
    }

    #[test]
    fn common_join_inner_and_outer() {
        // Inner join of one group with 2 left rows and 2 right rows → 4.
        let mut g = OperatorGraph::new();
        let j = g.add(Box::new(CommonJoinOperator::new(
            2,
            JoinType::Inner,
            vec![2, 1],
        )));
        let fs = g.add(Box::new(FileSinkOperator));
        g.connect(j, fs, None);
        let mut out = Vec::new();
        let send = |g: &mut OperatorGraph, m: Message, out: &mut Vec<Row>| {
            g.push(j, m, &mut |_| {}, &mut |r| out.push(r)).unwrap();
        };
        send(&mut g, Message::StartGroup, &mut out);
        send(
            &mut g,
            Message::Row {
                row: row(&[1, 10]),
                tag: 0,
            },
            &mut out,
        );
        send(
            &mut g,
            Message::Row {
                row: row(&[1, 11]),
                tag: 0,
            },
            &mut out,
        );
        send(
            &mut g,
            Message::Row {
                row: row(&[100]),
                tag: 1,
            },
            &mut out,
        );
        send(
            &mut g,
            Message::Row {
                row: row(&[101]),
                tag: 1,
            },
            &mut out,
        );
        send(&mut g, Message::EndGroup, &mut out);
        assert_eq!(out.len(), 4);
        assert!(out.contains(&row(&[1, 10, 100])));
        assert!(out.contains(&row(&[1, 11, 101])));

        // Left outer with empty right side.
        let mut g2 = OperatorGraph::new();
        let j2 = g2.add(Box::new(CommonJoinOperator::new(
            2,
            JoinType::LeftOuter,
            vec![2, 1],
        )));
        let fs2 = g2.add(Box::new(FileSinkOperator));
        g2.connect(j2, fs2, None);
        let mut out2 = Vec::new();
        g2.push(
            j2,
            Message::Row {
                row: row(&[5, 50]),
                tag: 0,
            },
            &mut |_| {},
            &mut |r| out2.push(r),
        )
        .unwrap();
        g2.push(j2, Message::EndGroup, &mut |_| {}, &mut |r| out2.push(r))
            .unwrap();
        assert_eq!(
            out2,
            vec![Row::new(vec![Value::Int(5), Value::Int(50), Value::Null])]
        );
    }

    #[test]
    fn map_join_probes_pipelined_tables() {
        // Two small tables, like M-JoinOp-1 / M-JoinOp-2 in Figure 4(b).
        let small1 = vec![row(&[1, 100]), row(&[2, 200])];
        let small2 = vec![row(&[7, 700])];
        let t1 = MapJoinTable::build(
            &small1,
            &[ExprNode::col(0)],
            vec![ExprNode::col(0)], // big1.skey1 is col 0
            JoinType::Inner,
            2,
        )
        .unwrap();
        let t2 = MapJoinTable::build(
            &small2,
            &[ExprNode::col(0)],
            vec![ExprNode::col(1)], // big1.skey2 is col 1
            JoinType::Inner,
            2,
        )
        .unwrap();
        let mut g = OperatorGraph::new();
        let mj = g.add(Box::new(MapJoinOperator {
            tables: vec![t1, t2],
        }));
        let fs = g.add(Box::new(FileSinkOperator));
        g.connect(mj, fs, None);
        let (out, _) = run_rows(
            &mut g,
            mj,
            vec![row(&[1, 7, 42]), row(&[9, 7, 43]), row(&[2, 8, 44])],
        );
        // Row 1 matches both; row 2 misses small1; row 3 misses small2.
        assert_eq!(out, vec![row(&[1, 7, 42, 1, 100, 7, 700])]);
    }

    #[test]
    fn demux_routes_and_retags() {
        struct Capture(Vec<(Row, usize)>);
        impl Operator for Capture {
            fn name(&self) -> String {
                "Capture".into()
            }
            fn receive(&mut self, msg: Message) -> Result<Vec<Emit>> {
                if let Message::Row { row, tag } = msg {
                    self.0.push((row.clone(), tag));
                    return Ok(vec![Emit::Output(row)]);
                }
                Ok(vec![])
            }
        }
        let mut g = OperatorGraph::new();
        let d = g.add(Box::new(DemuxOperator {
            // new tag 0 → child 0 old tag 0; new tag 1 → child 1 old tag 0;
            // new tag 2 → child 1 old tag 1 (Figure 5's mapping shape).
            routes: vec![(0, 0), (1, 0), (1, 1)],
        }));
        let c0 = g.add(Box::new(Capture(Vec::new())));
        let c1 = g.add(Box::new(Capture(Vec::new())));
        g.connect(d, c0, None);
        g.connect(d, c1, None);
        let mut out = Vec::new();
        for (vals, tag) in [(vec![1], 0), (vec![2], 1), (vec![3], 2)] {
            g.push(
                d,
                Message::Row {
                    row: Row::new(vals.into_iter().map(Value::Int).collect()),
                    tag,
                },
                &mut |_| {},
                &mut |r| out.push(r),
            )
            .unwrap();
        }
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn mux_waits_for_all_parents() {
        let mut mux = MuxOperator::new(2, None);
        // First EndGroup: swallowed.
        assert!(mux.receive(Message::EndGroup).unwrap().is_empty());
        // Second: forwarded.
        let emits = mux.receive(Message::EndGroup).unwrap();
        assert_eq!(emits.len(), 1);
        // Counter reset: next pair behaves the same.
        assert!(mux.receive(Message::EndGroup).unwrap().is_empty());
        assert_eq!(mux.receive(Message::EndGroup).unwrap().len(), 1);
    }

    #[test]
    fn mux_assigns_tags() {
        let mut mux = MuxOperator::new(1, Some(5));
        let emits = mux
            .receive(Message::Row {
                row: row(&[1]),
                tag: 0,
            })
            .unwrap();
        let Emit::Forward {
            msg: Message::Row { tag, .. },
            ..
        } = &emits[0]
        else {
            panic!()
        };
        assert_eq!(*tag, 5);
    }

    #[test]
    fn pass_through_broadcasts_to_all_children() {
        let mut g = OperatorGraph::new();
        let tee = g.add(Box::new(PassThroughOperator));
        let a = g.add(Box::new(FileSinkOperator));
        let b = g.add(Box::new(FileSinkOperator));
        g.connect(tee, a, None);
        g.connect(tee, b, None);
        let mut out = Vec::new();
        g.push(
            tee,
            Message::Row {
                row: row(&[9]),
                tag: 0,
            },
            &mut |_| {},
            &mut |r| out.push(r),
        )
        .unwrap();
        assert_eq!(out.len(), 2, "one copy per child (shared-scan fan-out)");
    }

    #[test]
    fn mux_start_signals_also_coordinate() {
        let mut mux = MuxOperator::new(3, None);
        assert!(mux.receive(Message::StartGroup).unwrap().is_empty());
        assert!(mux.receive(Message::StartGroup).unwrap().is_empty());
        assert_eq!(mux.receive(Message::StartGroup).unwrap().len(), 1);
        // And the counter resets for the next group.
        assert!(mux.receive(Message::StartGroup).unwrap().is_empty());
    }

    #[test]
    fn join_clears_buffers_between_groups() {
        let mut j = CommonJoinOperator::new(2, JoinType::Inner, vec![1, 1]);
        j.receive(Message::Row {
            row: row(&[1]),
            tag: 0,
        })
        .unwrap();
        j.receive(Message::Row {
            row: row(&[2]),
            tag: 1,
        })
        .unwrap();
        let first = j.receive(Message::EndGroup).unwrap();
        assert_eq!(first.len(), 2, "1 joined row + EndGroup broadcast");
        // Next group must not see the previous group's rows.
        j.receive(Message::Row {
            row: row(&[3]),
            tag: 0,
        })
        .unwrap();
        let second = j.receive(Message::EndGroup).unwrap();
        assert_eq!(second.len(), 1, "no match → only the EndGroup broadcast");
    }

    #[test]
    fn limit_cuts_off() {
        let mut g = OperatorGraph::new();
        let l = g.add(Box::new(LimitOperator::new(2)));
        let fs = g.add(Box::new(FileSinkOperator));
        g.connect(l, fs, None);
        let (out, _) = run_rows(&mut g, l, (0..10).map(|i| row(&[i])).collect());
        assert_eq!(out.len(), 2);
    }
}
