//! The row-mode (one-row-at-a-time) query execution engine.
//!
//! Hive "inherited this working model [from MapReduce] and it processes
//! rows with a one-row-at-a-time way" (paper Section 3, fourth
//! shortcoming). This crate reproduces that engine faithfully — interpreted
//! expressions with per-row dynamic dispatch, push-based operators driven
//! by group signals — because it is both the baseline the vectorized engine
//! (hive-vector) is measured against (Fig. 12) and the machinery the
//! Correlation Optimizer must keep working (Section 5.2.2's operator
//! coordination via Demux/Mux).

pub mod agg;
pub mod expr;
pub mod graph;
pub mod operators;
pub mod vector_ops;

pub use agg::{AggFunction, AggMode, RowAggState};
pub use expr::ExprNode;
pub use graph::{Emit, Message, OperatorGraph, ShuffleRecord};
pub use operators::*;
pub use vector_ops::{
    RowBridgeOperator, VectorGroupBySinkOperator, VectorOpAdapter, VectorReduceSinkOperator,
};
