//! Interpreted row-mode expressions.
//!
//! Every evaluation walks a boxed tree with dynamic dispatch per node per
//! row — precisely the "interpretation overhead, under-utilized
//! parallelism, low cache performance, and high function call overhead"
//! the paper's Section 3 attributes to the row engine. Keep it this way:
//! it is the measured baseline.

use hive_common::{DataType, HiveError, Result, Row, Value};
use std::cmp::Ordering;

/// Binary operators (subset matching the HiveQL dialect).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Add,
    Subtract,
    Multiply,
    Divide,
    Modulo,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
}

/// A compiled (resolved) expression over input rows.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprNode {
    /// Input column by position.
    Column(usize),
    Literal(Value),
    Binary {
        op: BinaryOp,
        left: Box<ExprNode>,
        right: Box<ExprNode>,
    },
    Unary {
        op: UnaryOp,
        expr: Box<ExprNode>,
    },
    Between {
        expr: Box<ExprNode>,
        lo: Box<ExprNode>,
        hi: Box<ExprNode>,
        negated: bool,
    },
    IsNull {
        expr: Box<ExprNode>,
        negated: bool,
    },
    InList {
        expr: Box<ExprNode>,
        list: Vec<ExprNode>,
        negated: bool,
    },
    Cast {
        expr: Box<ExprNode>,
        target: DataType,
    },
    Case {
        branches: Vec<(ExprNode, ExprNode)>,
        else_value: Option<Box<ExprNode>>,
    },
}

impl ExprNode {
    pub fn col(i: usize) -> ExprNode {
        ExprNode::Column(i)
    }

    pub fn lit(v: Value) -> ExprNode {
        ExprNode::Literal(v)
    }

    pub fn binary(op: BinaryOp, l: ExprNode, r: ExprNode) -> ExprNode {
        ExprNode::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    /// Evaluate against one row (SQL three-valued logic; NULL propagates).
    pub fn eval(&self, row: &Row) -> Result<Value> {
        match self {
            ExprNode::Column(i) => {
                if *i >= row.len() {
                    return Err(HiveError::Execution(format!(
                        "column {i} out of range for row of width {}",
                        row.len()
                    )));
                }
                Ok(row[*i].clone())
            }
            ExprNode::Literal(v) => Ok(v.clone()),
            ExprNode::Binary { op, left, right } => {
                eval_binary(*op, &left.eval(row)?, &right.eval(row)?)
            }
            ExprNode::Unary { op, expr } => {
                let v = expr.eval(row)?;
                match op {
                    UnaryOp::Neg => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Int(x) => Ok(Value::Int(-x)),
                        Value::Double(x) => Ok(Value::Double(-x)),
                        other => Err(HiveError::Type(format!("cannot negate {other}"))),
                    },
                    UnaryOp::Not => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Boolean(b) => Ok(Value::Boolean(!b)),
                        other => Err(HiveError::Type(format!("NOT of non-boolean {other}"))),
                    },
                }
            }
            ExprNode::Between {
                expr,
                lo,
                hi,
                negated,
            } => {
                let v = expr.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let lo = lo.eval(row)?;
                let hi = hi.eval(row)?;
                if lo.is_null() || hi.is_null() {
                    return Ok(Value::Null);
                }
                let inside =
                    v.sql_cmp(&lo) != Ordering::Less && v.sql_cmp(&hi) != Ordering::Greater;
                Ok(Value::Boolean(inside != *negated))
            }
            ExprNode::IsNull { expr, negated } => {
                let v = expr.eval(row)?;
                Ok(Value::Boolean(v.is_null() != *negated))
            }
            ExprNode::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let it = item.eval(row)?;
                    if it.is_null() {
                        saw_null = true;
                        continue;
                    }
                    if v.sql_cmp(&it) == Ordering::Equal {
                        return Ok(Value::Boolean(!*negated));
                    }
                }
                if saw_null {
                    // SQL: x IN (..., NULL) is NULL when no match.
                    Ok(Value::Null)
                } else {
                    Ok(Value::Boolean(*negated))
                }
            }
            ExprNode::Cast { expr, target } => cast_value(&expr.eval(row)?, target),
            ExprNode::Case {
                branches,
                else_value,
            } => {
                for (cond, val) in branches {
                    if cond.eval(row)?.as_bool() == Some(true) {
                        return val.eval(row);
                    }
                }
                match else_value {
                    Some(e) => e.eval(row),
                    None => Ok(Value::Null),
                }
            }
        }
    }

    /// Evaluate as a predicate: NULL counts as false (WHERE semantics).
    pub fn eval_predicate(&self, row: &Row) -> Result<bool> {
        Ok(self.eval(row)?.as_bool().unwrap_or(false))
    }
}

fn eval_binary(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    use BinaryOp::*;
    match op {
        And => {
            // Three-valued AND.
            return Ok(match (l.as_bool(), r.as_bool()) {
                (Some(false), _) | (_, Some(false)) => Value::Boolean(false),
                (Some(true), Some(true)) => Value::Boolean(true),
                _ => Value::Null,
            });
        }
        Or => {
            return Ok(match (l.as_bool(), r.as_bool()) {
                (Some(true), _) | (_, Some(true)) => Value::Boolean(true),
                (Some(false), Some(false)) => Value::Boolean(false),
                _ => Value::Null,
            });
        }
        _ => {}
    }
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    if matches!(op, Eq | NotEq | Lt | LtEq | Gt | GtEq) {
        let ord = l.sql_cmp(r);
        let b = match op {
            Eq => ord == Ordering::Equal,
            NotEq => ord != Ordering::Equal,
            Lt => ord == Ordering::Less,
            LtEq => ord != Ordering::Greater,
            Gt => ord == Ordering::Greater,
            GtEq => ord != Ordering::Less,
            _ => unreachable!(),
        };
        return Ok(Value::Boolean(b));
    }
    // Arithmetic: int op int stays int (except /), otherwise widen.
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok(match op {
            Add => Value::Int(a.wrapping_add(*b)),
            Subtract => Value::Int(a.wrapping_sub(*b)),
            Multiply => Value::Int(a.wrapping_mul(*b)),
            Divide => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Double(*a as f64 / *b as f64)
                }
            }
            Modulo => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a % b)
                }
            }
            _ => unreachable!(),
        }),
        _ => {
            let (Some(a), Some(b)) = (l.as_double(), r.as_double()) else {
                return Err(HiveError::Type(format!(
                    "cannot apply {op:?} to {l} and {r}"
                )));
            };
            Ok(match op {
                Add => Value::Double(a + b),
                Subtract => Value::Double(a - b),
                Multiply => Value::Double(a * b),
                Divide => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Double(a / b)
                    }
                }
                Modulo => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Double(a % b)
                    }
                }
                _ => unreachable!(),
            })
        }
    }
}

/// SQL CAST.
pub fn cast_value(v: &Value, target: &DataType) -> Result<Value> {
    if v.is_null() {
        return Ok(Value::Null);
    }
    Ok(match target {
        DataType::Int => match v {
            Value::Int(x) => Value::Int(*x),
            Value::Double(x) => Value::Int(*x as i64),
            Value::Boolean(b) => Value::Int(*b as i64),
            Value::Timestamp(x) => Value::Int(*x),
            Value::String(s) => s
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .unwrap_or(Value::Null),
            other => return Err(HiveError::Type(format!("cannot cast {other} to bigint"))),
        },
        DataType::Double => match v {
            Value::Int(x) => Value::Double(*x as f64),
            Value::Double(x) => Value::Double(*x),
            Value::Boolean(b) => Value::Double(*b as i64 as f64),
            Value::String(s) => s
                .trim()
                .parse::<f64>()
                .map(Value::Double)
                .unwrap_or(Value::Null),
            other => return Err(HiveError::Type(format!("cannot cast {other} to double"))),
        },
        DataType::String => Value::String(v.to_string()),
        DataType::Boolean => match v {
            Value::Boolean(b) => Value::Boolean(*b),
            Value::Int(x) => Value::Boolean(*x != 0),
            other => return Err(HiveError::Type(format!("cannot cast {other} to boolean"))),
        },
        DataType::Timestamp => match v {
            Value::Int(x) | Value::Timestamp(x) => Value::Timestamp(*x),
            other => return Err(HiveError::Type(format!("cannot cast {other} to timestamp"))),
        },
        other => return Err(HiveError::Type(format!("unsupported CAST target {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        Row::new(vec![
            Value::Int(10),
            Value::Double(2.5),
            Value::String("abc".into()),
            Value::Null,
        ])
    }

    #[test]
    fn arithmetic_and_widening() {
        let e = ExprNode::binary(
            BinaryOp::Add,
            ExprNode::col(0),
            ExprNode::lit(Value::Int(5)),
        );
        assert_eq!(e.eval(&row()).unwrap(), Value::Int(15));
        let e2 = ExprNode::binary(BinaryOp::Multiply, ExprNode::col(0), ExprNode::col(1));
        assert_eq!(e2.eval(&row()).unwrap(), Value::Double(25.0));
        let div = ExprNode::binary(
            BinaryOp::Divide,
            ExprNode::col(0),
            ExprNode::lit(Value::Int(4)),
        );
        assert_eq!(div.eval(&row()).unwrap(), Value::Double(2.5));
    }

    #[test]
    fn null_propagation() {
        let e = ExprNode::binary(
            BinaryOp::Add,
            ExprNode::col(3),
            ExprNode::lit(Value::Int(1)),
        );
        assert_eq!(e.eval(&row()).unwrap(), Value::Null);
        assert!(!e.eval_predicate(&row()).unwrap());
    }

    #[test]
    fn three_valued_logic() {
        let null = ExprNode::lit(Value::Null);
        let t = ExprNode::lit(Value::Boolean(true));
        let f = ExprNode::lit(Value::Boolean(false));
        let and_nf = ExprNode::binary(BinaryOp::And, null.clone(), f.clone());
        assert_eq!(and_nf.eval(&row()).unwrap(), Value::Boolean(false));
        let and_nt = ExprNode::binary(BinaryOp::And, null.clone(), t.clone());
        assert_eq!(and_nt.eval(&row()).unwrap(), Value::Null);
        let or_nt = ExprNode::binary(BinaryOp::Or, null.clone(), t);
        assert_eq!(or_nt.eval(&row()).unwrap(), Value::Boolean(true));
        let or_nf = ExprNode::binary(BinaryOp::Or, null, f);
        assert_eq!(or_nf.eval(&row()).unwrap(), Value::Null);
    }

    #[test]
    fn between_and_in() {
        let between = ExprNode::Between {
            expr: Box::new(ExprNode::col(0)),
            lo: Box::new(ExprNode::lit(Value::Int(0))),
            hi: Box::new(ExprNode::lit(Value::Int(10))),
            negated: false,
        };
        assert_eq!(between.eval(&row()).unwrap(), Value::Boolean(true));
        let inlist = ExprNode::InList {
            expr: Box::new(ExprNode::col(2)),
            list: vec![
                ExprNode::lit(Value::String("xyz".into())),
                ExprNode::lit(Value::String("abc".into())),
            ],
            negated: false,
        };
        assert_eq!(inlist.eval(&row()).unwrap(), Value::Boolean(true));
        let notin = ExprNode::InList {
            expr: Box::new(ExprNode::col(2)),
            list: vec![ExprNode::lit(Value::String("zzz".into()))],
            negated: true,
        };
        assert_eq!(notin.eval(&row()).unwrap(), Value::Boolean(true));
    }

    #[test]
    fn in_with_null_member_is_null_on_no_match() {
        let e = ExprNode::InList {
            expr: Box::new(ExprNode::col(0)),
            list: vec![ExprNode::lit(Value::Null), ExprNode::lit(Value::Int(99))],
            negated: false,
        };
        assert_eq!(e.eval(&row()).unwrap(), Value::Null);
    }

    #[test]
    fn case_expression() {
        let e = ExprNode::Case {
            branches: vec![(
                ExprNode::binary(BinaryOp::Gt, ExprNode::col(0), ExprNode::lit(Value::Int(5))),
                ExprNode::lit(Value::String("big".into())),
            )],
            else_value: Some(Box::new(ExprNode::lit(Value::String("small".into())))),
        };
        assert_eq!(e.eval(&row()).unwrap(), Value::String("big".into()));
    }

    #[test]
    fn casts() {
        assert_eq!(
            cast_value(&Value::String(" 42 ".into()), &DataType::Int).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            cast_value(&Value::Double(3.9), &DataType::Int).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            cast_value(&Value::Int(7), &DataType::String).unwrap(),
            Value::String("7".into())
        );
        assert_eq!(
            cast_value(&Value::String("bogus".into()), &DataType::Int).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn division_by_zero_is_null() {
        let e = ExprNode::binary(
            BinaryOp::Divide,
            ExprNode::lit(Value::Int(1)),
            ExprNode::lit(Value::Int(0)),
        );
        assert_eq!(e.eval(&row()).unwrap(), Value::Null);
        let m = ExprNode::binary(
            BinaryOp::Modulo,
            ExprNode::lit(Value::Int(1)),
            ExprNode::lit(Value::Int(0)),
        );
        assert_eq!(m.eval(&row()).unwrap(), Value::Null);
    }
}
