//! The push-based operator graph.
//!
//! Hive "inherits the push-based data processing model in a Map and a
//! Reduce task from the MapReduce engine" (paper Section 5.2.2). Operators
//! receive messages — rows (tagged with their input source, as the
//! MapReduce engine tags shuffle inputs) and group boundary signals — and
//! emit messages to their children. The graph is a DAG, not a tree: after
//! the Correlation Optimizer runs, a MuxOperator can have several parents.

use hive_common::{HiveError, Result, Row, Value};
use hive_obs::OpProfile;
use hive_vector::VectorizedRowBatch;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// A message flowing between operators (or from the task driver).
///
/// Data arrives either row-at-a-time or as a shared 1024-row column batch —
/// the batch-native redesign makes `Batch` the common case on the map side,
/// with `Row` the explicit fallback. Batches are `Arc`-shared so broadcast
/// fan-out is zero-copy; an operator that mutates its input batch does so
/// copy-on-write (`Arc::make_mut`), cloning only when the batch is actually
/// shared.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A row with its input tag ("used to identify the source of a row").
    Row { row: Row, tag: usize },
    /// A shared vectorized row batch with its input tag.
    Batch {
        batch: Arc<VectorizedRowBatch>,
        tag: usize,
    },
    /// A new key group is starting (reduce side only).
    StartGroup,
    /// The current key group has ended; buffering operators emit results.
    EndGroup,
}

impl Message {
    /// Logical rows carried by this message: the *selected* count for a
    /// batch (`size` already reflects `selected[]`), 1 for a row. Profile
    /// accounting is pinned to logical rows so row- and batch-mode plans
    /// report identical `rows_in`/`rows_out`.
    pub fn logical_rows(&self) -> u64 {
        match self {
            Message::Row { .. } => 1,
            Message::Batch { batch, .. } => batch.size as u64,
            Message::StartGroup | Message::EndGroup => 0,
        }
    }
}

/// A record destined for the shuffle, produced by ReduceSinkOperators.
#[derive(Debug, Clone, PartialEq)]
pub struct ShuffleRecord {
    pub key: Vec<Value>,
    pub value: Row,
    pub tag: usize,
    pub num_reducers: usize,
}

/// What an operator emits in response to a message.
#[derive(Debug)]
pub enum Emit {
    /// Send to the child connected at `child_slot`.
    Forward { child_slot: usize, msg: Message },
    /// Send to every child.
    Broadcast(Message),
    /// Leave the task toward the shuffle.
    Shuffle(ShuffleRecord),
    /// Leave the task toward the query output / file sink.
    Output(Row),
}

/// A push-based operator.
pub trait Operator: Send {
    fn name(&self) -> String;

    /// Handle one message.
    fn receive(&mut self, msg: Message) -> Result<Vec<Emit>>;

    /// End of input: flush buffered state. The graph closes operators in
    /// topological order, so emissions here still reach children before
    /// the children close.
    fn close(&mut self) -> Result<Vec<Emit>> {
        Ok(Vec::new())
    }

    /// Operator-specific profile counters surfaced as `OpProfile.detail`
    /// in `EXPLAIN ANALYZE` (e.g. batch counts for vectorized operators).
    fn profile_detail(&self) -> Vec<(String, u64)> {
        Vec::new()
    }
}

/// An operator DAG with tagged edges.
///
/// The graph profiles itself as it runs: per-operator rows in/out and CPU
/// time, exported as [`OpProfile`]s for `EXPLAIN ANALYZE`. (Under the
/// deterministic clock the engine replaces the measured CPU with the
/// per-row constant, so profiles stay reproducible.)
pub struct OperatorGraph {
    ops: Vec<Box<dyn Operator>>,
    /// `edges[op][slot] = (child, tag_override)`.
    edges: Vec<Vec<(usize, Option<usize>)>>,
    closed: Vec<bool>,
    /// Row messages received, per operator.
    rows_in: Vec<u64>,
    /// Rows sent downstream (children + shuffle + output), per operator.
    rows_out: Vec<u64>,
    /// Measured nanoseconds in `receive`/`close`, per operator.
    cpu_ns: Vec<u64>,
}

// The parallel task runtime moves whole pipelines onto pool workers, so the
// execution types must stay `Send`. Keep these assertions next to the type
// definitions: they fail the build the moment someone adds an `Rc`/`RefCell`.
const _: () = {
    const fn assert_send<T: Send + ?Sized>() {}
    assert_send::<OperatorGraph>();
    assert_send::<Box<dyn Operator>>();
    assert_send::<Message>();
    assert_send::<ShuffleRecord>();
    assert_send::<crate::expr::ExprNode>();
};

impl OperatorGraph {
    pub fn new() -> OperatorGraph {
        OperatorGraph {
            ops: Vec::new(),
            edges: Vec::new(),
            closed: Vec::new(),
            rows_in: Vec::new(),
            rows_out: Vec::new(),
            cpu_ns: Vec::new(),
        }
    }

    pub fn add(&mut self, op: Box<dyn Operator>) -> usize {
        self.ops.push(op);
        self.edges.push(Vec::new());
        self.closed.push(false);
        self.rows_in.push(0);
        self.rows_out.push(0);
        self.cpu_ns.push(0);
        self.ops.len() - 1
    }

    /// Connect `parent` slot-ordered to `child`. Rows crossing this edge
    /// get their tag rewritten to `tag` when given.
    pub fn connect(&mut self, parent: usize, child: usize, tag: Option<usize>) {
        self.edges[parent].push((child, tag));
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Operator names with child lists (EXPLAIN-style output).
    pub fn describe(&self) -> Vec<String> {
        self.ops
            .iter()
            .enumerate()
            .map(|(i, op)| {
                let kids: Vec<String> = self.edges[i]
                    .iter()
                    .map(|(c, t)| match t {
                        Some(t) => format!("{c}(tag {t})"),
                        None => format!("{c}"),
                    })
                    .collect();
                format!("#{i} {} -> [{}]", op.name(), kids.join(", "))
            })
            .collect()
    }

    /// Push one message into `root`, dispatching transitively.
    pub fn push(
        &mut self,
        root: usize,
        msg: Message,
        shuffle: &mut dyn FnMut(ShuffleRecord),
        output: &mut dyn FnMut(Row),
    ) -> Result<()> {
        let mut queue: VecDeque<(usize, Message)> = VecDeque::new();
        queue.push_back((root, msg));
        self.run(&mut queue, shuffle, output)
    }

    fn run(
        &mut self,
        queue: &mut VecDeque<(usize, Message)>,
        shuffle: &mut dyn FnMut(ShuffleRecord),
        output: &mut dyn FnMut(Row),
    ) -> Result<()> {
        while let Some((op_id, msg)) = queue.pop_front() {
            self.rows_in[op_id] += msg.logical_rows();
            let start = Instant::now();
            let emits = self.ops[op_id].receive(msg)?;
            self.cpu_ns[op_id] += start.elapsed().as_nanos() as u64;
            self.dispatch(op_id, emits, queue, shuffle, output)?;
        }
        Ok(())
    }

    fn dispatch(
        &mut self,
        op_id: usize,
        emits: Vec<Emit>,
        queue: &mut VecDeque<(usize, Message)>,
        shuffle: &mut dyn FnMut(ShuffleRecord),
        output: &mut dyn FnMut(Row),
    ) -> Result<()> {
        for e in emits {
            match e {
                Emit::Forward { child_slot, msg } => {
                    let (child, tag_override) =
                        *self.edges[op_id].get(child_slot).ok_or_else(|| {
                            HiveError::Execution(format!(
                                "operator #{op_id} has no child slot {child_slot}"
                            ))
                        })?;
                    self.rows_out[op_id] += msg.logical_rows();
                    queue.push_back((child, apply_tag(msg, tag_override)));
                }
                Emit::Broadcast(msg) => {
                    self.rows_out[op_id] += msg.logical_rows() * self.edges[op_id].len() as u64;
                    // Cloning a `Batch` message clones the `Arc`, not the
                    // columns: fan-out stays zero-copy.
                    for &(child, tag_override) in &self.edges[op_id] {
                        queue.push_back((child, apply_tag(msg.clone(), tag_override)));
                    }
                }
                Emit::Shuffle(rec) => {
                    self.rows_out[op_id] += 1;
                    shuffle(rec);
                }
                Emit::Output(row) => {
                    self.rows_out[op_id] += 1;
                    output(row);
                }
            }
        }
        Ok(())
    }

    /// Close every operator in topological order so flushed rows still
    /// reach downstream operators before they close.
    pub fn finish(
        &mut self,
        shuffle: &mut dyn FnMut(ShuffleRecord),
        output: &mut dyn FnMut(Row),
    ) -> Result<()> {
        for op_id in self.topo_order()? {
            if self.closed[op_id] {
                continue;
            }
            self.closed[op_id] = true;
            let start = Instant::now();
            let emits = self.ops[op_id].close()?;
            self.cpu_ns[op_id] += start.elapsed().as_nanos() as u64;
            let mut queue = VecDeque::new();
            self.dispatch(op_id, emits, &mut queue, shuffle, output)?;
            self.run(&mut queue, shuffle, output)?;
        }
        Ok(())
    }

    fn topo_order(&self) -> Result<Vec<usize>> {
        let n = self.ops.len();
        let mut indeg = vec![0usize; n];
        for edges in &self.edges {
            for &(c, _) in edges {
                indeg[c] += 1;
            }
        }
        let mut queue: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop_front() {
            order.push(i);
            for &(c, _) in &self.edges[i] {
                indeg[c] -= 1;
                if indeg[c] == 0 {
                    queue.push_back(c);
                }
            }
        }
        if order.len() != n {
            return Err(HiveError::Plan("operator graph has a cycle".into()));
        }
        Ok(order)
    }

    /// Per-operator runtime profiles collected so far, by operator index.
    pub fn profiles(&self) -> Vec<OpProfile> {
        self.ops
            .iter()
            .enumerate()
            .map(|(i, op)| OpProfile {
                name: op.name(),
                rows_in: self.rows_in[i],
                rows_out: self.rows_out[i],
                cpu_ns: self.cpu_ns[i],
                detail: op.profile_detail(),
            })
            .collect()
    }

    /// Logical rows received by one operator so far.
    pub fn rows_in_of(&self, op_id: usize) -> u64 {
        self.rows_in[op_id]
    }

    /// Logical rows sent downstream by one operator so far.
    pub fn rows_out_of(&self, op_id: usize) -> u64 {
        self.rows_out[op_id]
    }

    /// Number of parents of each operator (MuxOperator setup needs this).
    pub fn parent_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.ops.len()];
        for edges in &self.edges {
            for &(c, _) in edges {
                counts[c] += 1;
            }
        }
        counts
    }
}

impl Default for OperatorGraph {
    fn default() -> Self {
        OperatorGraph::new()
    }
}

fn apply_tag(msg: Message, tag_override: Option<usize>) -> Message {
    match (msg, tag_override) {
        (Message::Row { row, .. }, Some(t)) => Message::Row { row, tag: t },
        (Message::Batch { batch, .. }, Some(t)) => Message::Batch { batch, tag: t },
        (m, _) => m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Forwards rows, appending a marker value.
    struct Tagger(i64);

    impl Operator for Tagger {
        fn name(&self) -> String {
            format!("Tagger({})", self.0)
        }

        fn receive(&mut self, msg: Message) -> Result<Vec<Emit>> {
            match msg {
                Message::Row { mut row, tag } => {
                    row.values_mut().push(Value::Int(self.0));
                    Ok(vec![Emit::Forward {
                        child_slot: 0,
                        msg: Message::Row { row, tag },
                    }])
                }
                other => Ok(vec![Emit::Broadcast(other)]),
            }
        }
    }

    struct Sink;

    impl Operator for Sink {
        fn name(&self) -> String {
            "Sink".into()
        }

        fn receive(&mut self, msg: Message) -> Result<Vec<Emit>> {
            match msg {
                Message::Row { row, .. } => Ok(vec![Emit::Output(row)]),
                _ => Ok(vec![]),
            }
        }
    }

    #[test]
    fn linear_pipeline_delivers_in_order() {
        let mut g = OperatorGraph::new();
        let a = g.add(Box::new(Tagger(1)));
        let b = g.add(Box::new(Tagger(2)));
        let s = g.add(Box::new(Sink));
        g.connect(a, b, None);
        g.connect(b, s, None);
        let mut out = Vec::new();
        g.push(
            a,
            Message::Row {
                row: Row::new(vec![Value::Int(0)]),
                tag: 0,
            },
            &mut |_| {},
            &mut |r| out.push(r),
        )
        .unwrap();
        assert_eq!(
            out,
            vec![Row::new(vec![Value::Int(0), Value::Int(1), Value::Int(2)])]
        );
    }

    #[test]
    fn edge_tags_rewrite_row_tags() {
        struct TagCheck(Vec<usize>);
        impl Operator for TagCheck {
            fn name(&self) -> String {
                "TagCheck".into()
            }
            fn receive(&mut self, msg: Message) -> Result<Vec<Emit>> {
                if let Message::Row { tag, .. } = msg {
                    self.0.push(tag);
                }
                Ok(vec![])
            }
            fn close(&mut self) -> Result<Vec<Emit>> {
                assert_eq!(self.0, vec![7]);
                Ok(vec![])
            }
        }
        let mut g = OperatorGraph::new();
        let a = g.add(Box::new(Tagger(0)));
        let c = g.add(Box::new(TagCheck(Vec::new())));
        g.connect(a, c, Some(7));
        g.push(
            a,
            Message::Row {
                row: Row::new(vec![]),
                tag: 0,
            },
            &mut |_| {},
            &mut |_| {},
        )
        .unwrap();
        g.finish(&mut |_| {}, &mut |_| {}).unwrap();
    }

    #[test]
    fn profiles_count_rows_through_the_graph() {
        let mut g = OperatorGraph::new();
        let a = g.add(Box::new(Tagger(1)));
        let s = g.add(Box::new(Sink));
        g.connect(a, s, None);
        let mut out = Vec::new();
        for i in 0..3 {
            g.push(
                a,
                Message::Row {
                    row: Row::new(vec![Value::Int(i)]),
                    tag: 0,
                },
                &mut |_| {},
                &mut |r| out.push(r),
            )
            .unwrap();
        }
        g.finish(&mut |_| {}, &mut |_| {}).unwrap();
        let profiles = g.profiles();
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[0].name, "Tagger(1)");
        assert_eq!(profiles[0].rows_in, 3);
        assert_eq!(profiles[0].rows_out, 3);
        assert_eq!(profiles[1].rows_in, 3);
        assert_eq!(profiles[1].rows_out, 3); // Sink emits Output rows
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn batch_broadcast_is_zero_copy_and_counts_logical_rows() {
        use hive_common::DataType;

        /// Remembers the Arc of every batch it sees, then forwards nothing.
        struct BatchSink(Vec<Arc<VectorizedRowBatch>>);
        impl Operator for BatchSink {
            fn name(&self) -> String {
                "BatchSink".into()
            }
            fn receive(&mut self, msg: Message) -> Result<Vec<Emit>> {
                if let Message::Batch { batch, .. } = msg {
                    self.0.push(batch);
                }
                Ok(vec![])
            }
        }
        /// Broadcasts whatever it receives.
        struct Fan;
        impl Operator for Fan {
            fn name(&self) -> String {
                "Fan".into()
            }
            fn receive(&mut self, msg: Message) -> Result<Vec<Emit>> {
                Ok(vec![Emit::Broadcast(msg)])
            }
        }

        let mut g = OperatorGraph::new();
        let f = g.add(Box::new(Fan));
        let a = g.add(Box::new(BatchSink(Vec::new())));
        let b = g.add(Box::new(BatchSink(Vec::new())));
        g.connect(f, a, None);
        g.connect(f, b, Some(3));

        let mut batch = VectorizedRowBatch::new(&[DataType::Int], 8).unwrap();
        // 5 valid rows, 3 selected → 3 logical rows.
        batch.size = 3;
        batch.selected_in_use = true;
        batch.selected[..3].copy_from_slice(&[0, 2, 4]);
        let shared = Arc::new(batch);
        g.push(
            f,
            Message::Batch {
                batch: Arc::clone(&shared),
                tag: 0,
            },
            &mut |_| {},
            &mut |_| {},
        )
        .unwrap();

        assert_eq!(g.rows_in_of(f), 3);
        assert_eq!(g.rows_out_of(f), 6, "3 logical rows × 2 children");
        assert_eq!(g.rows_in_of(a), 3);
        assert_eq!(g.rows_in_of(b), 3);
        // Zero-copy: this handle plus both sinks share one allocation.
        assert_eq!(Arc::strong_count(&shared), 3);
    }

    #[test]
    fn cycle_detection() {
        let mut g = OperatorGraph::new();
        let a = g.add(Box::new(Sink));
        let b = g.add(Box::new(Sink));
        g.connect(a, b, None);
        g.connect(b, a, None);
        assert!(g.finish(&mut |_| {}, &mut |_| {}).is_err());
    }

    #[test]
    fn parent_counts() {
        let mut g = OperatorGraph::new();
        let a = g.add(Box::new(Sink));
        let b = g.add(Box::new(Sink));
        let m = g.add(Box::new(Sink));
        g.connect(a, m, None);
        g.connect(b, m, None);
        assert_eq!(g.parent_counts(), vec![0, 0, 2]);
    }
}
