//! Exec-graph nodes for batch-native execution.
//!
//! Vectorized operators from `hive-vector` run as ordinary nodes of the
//! push-based operator graph, wrapped in [`VectorOpAdapter`], which handles
//! `Arc` sharing (copy-on-write on mutation) and batch counting. Three
//! boundary operators complete the protocol:
//!
//! * [`RowBridgeOperator`] — the *only* batch→row crossing point. A
//!   vectorized segment that ends before a row-mode operator ends in
//!   exactly one bridge.
//! * [`VectorReduceSinkOperator`] — emits shuffle records straight from
//!   batches, so a fully vectorized map task never bridges.
//! * [`VectorGroupBySinkOperator`] — the fused map-side partial
//!   aggregation + reduce sink: batches stream into a typed vectorized
//!   hash aggregator, and the (small) per-group partial rows only come
//!   into existence as shuffle records at close.

use crate::expr::ExprNode;
use crate::graph::{Emit, Message, Operator, ShuffleRecord};
use hive_common::{DataType, HiveError, Result, Row};
use hive_vector::aggregates::VectorHashAggregator;
use hive_vector::row_convert::{batch_to_rows, get_value};
use hive_vector::{VectorExpression, VectorOperator, VectorizedRowBatch};
use std::sync::Arc;

fn wiring_bug(op: &str, got: &str) -> HiveError {
    HiveError::Execution(format!(
        "{op} received a {got} message; this is a planner wiring bug"
    ))
}

/// Runs one [`VectorOperator`] as a graph node.
pub struct VectorOpAdapter {
    inner: Box<dyn VectorOperator>,
    batches: u64,
}

impl VectorOpAdapter {
    pub fn new(inner: Box<dyn VectorOperator>) -> VectorOpAdapter {
        VectorOpAdapter { inner, batches: 0 }
    }
}

impl Operator for VectorOpAdapter {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn receive(&mut self, msg: Message) -> Result<Vec<Emit>> {
        match msg {
            Message::Batch { batch, tag } => {
                self.batches += 1;
                let mut shared = batch;
                let mut emits = Vec::new();
                // Copy-on-write: `make_mut` clones the columns only when the
                // batch is actually shared (broadcast fan-out); the common
                // linear-chain case mutates in place.
                let flows = {
                    let b = Arc::make_mut(&mut shared);
                    let mut out = |fresh: VectorizedRowBatch| {
                        emits.push(Emit::Forward {
                            child_slot: 0,
                            msg: Message::Batch {
                                batch: Arc::new(fresh),
                                tag,
                            },
                        });
                    };
                    self.inner.process(b, &mut out)?
                };
                if flows && shared.size > 0 {
                    emits.push(Emit::Forward {
                        child_slot: 0,
                        msg: Message::Batch { batch: shared, tag },
                    });
                }
                Ok(emits)
            }
            Message::Row { .. } => Err(wiring_bug(&self.name(), "row")),
            signal => Ok(vec![Emit::Broadcast(signal)]),
        }
    }

    fn close(&mut self) -> Result<Vec<Emit>> {
        let mut emits = Vec::new();
        let mut out = |fresh: VectorizedRowBatch| {
            emits.push(Emit::Forward {
                child_slot: 0,
                msg: Message::Batch {
                    batch: Arc::new(fresh),
                    tag: 0,
                },
            });
        };
        self.inner.close(&mut out)?;
        Ok(emits)
    }

    fn profile_detail(&self) -> Vec<(String, u64)> {
        let mut d = vec![("batches".to_string(), self.batches)];
        d.extend(self.inner.profile_detail());
        d
    }
}

/// The single batch→row crossing point. A vectorized segment that cannot
/// continue in batch mode (unsupported downstream shape, per-operator gate
/// off) ends in exactly one bridge, which materializes the selected rows
/// and forwards them row-mode.
pub struct RowBridgeOperator {
    /// Batch column index + logical type of each materialized column.
    pub output_columns: Vec<(usize, DataType)>,
    batches: u64,
}

impl RowBridgeOperator {
    pub fn new(output_columns: Vec<(usize, DataType)>) -> RowBridgeOperator {
        RowBridgeOperator {
            output_columns,
            batches: 0,
        }
    }
}

impl Operator for RowBridgeOperator {
    fn name(&self) -> String {
        "RowBridge".into()
    }

    fn receive(&mut self, msg: Message) -> Result<Vec<Emit>> {
        match msg {
            Message::Batch { batch, tag } => {
                self.batches += 1;
                Ok(batch_to_rows(&batch, &self.output_columns)
                    .into_iter()
                    .map(|row| Emit::Forward {
                        child_slot: 0,
                        msg: Message::Row { row, tag },
                    })
                    .collect())
            }
            Message::Row { .. } => Err(wiring_bug("RowBridge", "row")),
            signal => Ok(vec![Emit::Broadcast(signal)]),
        }
    }

    fn profile_detail(&self) -> Vec<(String, u64)> {
        vec![("batches".to_string(), self.batches)]
    }
}

/// Batch-native reduce sink: evaluates key/value columns per selected row
/// and emits shuffle records directly, with no intermediate row operator.
pub struct VectorReduceSinkOperator {
    /// Scratch-column expressions run per batch before key/value extraction.
    pub expressions: Vec<Box<dyn VectorExpression>>,
    pub key_columns: Vec<(usize, DataType)>,
    pub value_columns: Vec<(usize, DataType)>,
    pub tag: usize,
    pub num_reducers: usize,
    batches: u64,
}

impl VectorReduceSinkOperator {
    pub fn new(
        expressions: Vec<Box<dyn VectorExpression>>,
        key_columns: Vec<(usize, DataType)>,
        value_columns: Vec<(usize, DataType)>,
        tag: usize,
        num_reducers: usize,
    ) -> VectorReduceSinkOperator {
        VectorReduceSinkOperator {
            expressions,
            key_columns,
            value_columns,
            tag,
            num_reducers,
            batches: 0,
        }
    }
}

impl Operator for VectorReduceSinkOperator {
    fn name(&self) -> String {
        format!("VectorReduceSink(tag {})", self.tag)
    }

    fn receive(&mut self, msg: Message) -> Result<Vec<Emit>> {
        match msg {
            Message::Batch { batch, tag: _ } => {
                self.batches += 1;
                let mut shared = batch;
                let b = Arc::make_mut(&mut shared);
                for e in &self.expressions {
                    e.evaluate(b)?;
                }
                let mut emits = Vec::with_capacity(b.size);
                for i in b.iter_selected() {
                    let key = self
                        .key_columns
                        .iter()
                        .map(|(c, dt)| get_value(&b.columns[*c], i, dt))
                        .collect();
                    let value = self
                        .value_columns
                        .iter()
                        .map(|(c, dt)| get_value(&b.columns[*c], i, dt))
                        .collect();
                    emits.push(Emit::Shuffle(ShuffleRecord {
                        key,
                        value: Row::new(value),
                        tag: self.tag,
                        num_reducers: self.num_reducers,
                    }));
                }
                Ok(emits)
            }
            Message::Row { .. } => Err(wiring_bug(&self.name(), "row")),
            // Group signals never cross the shuffle boundary.
            _ => Ok(vec![]),
        }
    }

    fn profile_detail(&self) -> Vec<(String, u64)> {
        vec![("batches".to_string(), self.batches)]
    }
}

/// Fused map-side partial group-by + reduce sink: the batch chain ends in a
/// typed vectorized hash aggregation, and partial results surface only as
/// shuffle records at close (AVG partials are `struct(sum, count)` values,
/// which never fit a column vector — the shuffle is the natural row
/// boundary, and per-group row counts are small).
pub struct VectorGroupBySinkOperator {
    /// Scratch-column expressions run per batch (group keys + agg inputs).
    pub expressions: Vec<Box<dyn VectorExpression>>,
    aggregator: VectorHashAggregator,
    /// Row-mode expressions over the partial row (keys ++ partial values).
    pub key_exprs: Vec<ExprNode>,
    pub value_exprs: Vec<ExprNode>,
    pub tag: usize,
    pub num_reducers: usize,
    batches: u64,
    rows_seen: u64,
    groups_out: u64,
}

impl VectorGroupBySinkOperator {
    pub fn new(
        expressions: Vec<Box<dyn VectorExpression>>,
        aggregator: VectorHashAggregator,
        key_exprs: Vec<ExprNode>,
        value_exprs: Vec<ExprNode>,
        tag: usize,
        num_reducers: usize,
    ) -> VectorGroupBySinkOperator {
        VectorGroupBySinkOperator {
            expressions,
            aggregator,
            key_exprs,
            value_exprs,
            tag,
            num_reducers,
            batches: 0,
            rows_seen: 0,
            groups_out: 0,
        }
    }
}

impl Operator for VectorGroupBySinkOperator {
    fn name(&self) -> String {
        format!("VectorGroupBySink(tag {})", self.tag)
    }

    fn receive(&mut self, msg: Message) -> Result<Vec<Emit>> {
        match msg {
            Message::Batch { batch, tag: _ } => {
                self.batches += 1;
                let mut shared = batch;
                let b = Arc::make_mut(&mut shared);
                for e in &self.expressions {
                    e.evaluate(b)?;
                }
                self.rows_seen += b.size as u64;
                self.aggregator.process(b)?;
                Ok(vec![])
            }
            Message::Row { .. } => Err(wiring_bug(&self.name(), "row")),
            _ => Ok(vec![]),
        }
    }

    fn close(&mut self) -> Result<Vec<Emit>> {
        // Match the row-mode hash GroupBy: no input rows → no partials (the
        // hash table never grew an entry).
        if self.rows_seen == 0 {
            return Ok(vec![]);
        }
        let agg = std::mem::replace(
            &mut self.aggregator,
            VectorHashAggregator::new(vec![], vec![]),
        );
        let partials = agg.finish_partial();
        self.groups_out = partials.len() as u64;
        let mut emits = Vec::with_capacity(partials.len());
        for row in partials {
            let mut key = Vec::with_capacity(self.key_exprs.len());
            for e in &self.key_exprs {
                key.push(e.eval(&row)?);
            }
            let mut value = Vec::with_capacity(self.value_exprs.len());
            for e in &self.value_exprs {
                value.push(e.eval(&row)?);
            }
            emits.push(Emit::Shuffle(ShuffleRecord {
                key,
                value: Row::new(value),
                tag: self.tag,
                num_reducers: self.num_reducers,
            }));
        }
        Ok(emits)
    }

    fn profile_detail(&self) -> Vec<(String, u64)> {
        vec![
            ("batches".to_string(), self.batches),
            ("groups".to_string(), self.groups_out),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::OperatorGraph;
    use hive_common::Value;
    use hive_vector::aggregates::{AggKind, AggSpec};
    use hive_vector::row_convert::rows_to_batch;
    use hive_vector::VectorFilterOperator;

    fn int_batch(vals: &[i64]) -> VectorizedRowBatch {
        let rows: Vec<Row> = vals
            .iter()
            .map(|&v| Row::new(vec![Value::Int(v)]))
            .collect();
        let mut b = VectorizedRowBatch::new(&[DataType::Int], vals.len().max(1)).unwrap();
        rows_to_batch(&rows, &mut b).unwrap();
        b
    }

    #[test]
    fn adapter_filter_then_bridge_counts_logical_rows() {
        use hive_vector::expressions::filters::FilterLongColGreaterLongScalar;

        let mut g = OperatorGraph::new();
        let f = g.add(Box::new(VectorOpAdapter::new(Box::new(
            VectorFilterOperator {
                predicate: Box::new(FilterLongColGreaterLongScalar {
                    column: 0,
                    scalar: 2,
                }),
            },
        ))));
        let br = g.add(Box::new(RowBridgeOperator::new(vec![(0, DataType::Int)])));
        let s = g.add(Box::new(crate::operators::FileSinkOperator));
        g.connect(f, br, None);
        g.connect(br, s, None);

        let mut out = Vec::new();
        g.push(
            f,
            Message::Batch {
                batch: Arc::new(int_batch(&[1, 2, 3, 4, 5])),
                tag: 0,
            },
            &mut |_| {},
            &mut |r| out.push(r),
        )
        .unwrap();
        g.finish(&mut |_| {}, &mut |_| {}).unwrap();

        assert_eq!(
            out,
            vec![
                Row::new(vec![Value::Int(3)]),
                Row::new(vec![Value::Int(4)]),
                Row::new(vec![Value::Int(5)]),
            ]
        );
        // Logical-row accounting: filter 5 in → 3 out; bridge 3 in → 3 out.
        assert_eq!(g.rows_in_of(f), 5);
        assert_eq!(g.rows_out_of(f), 3);
        assert_eq!(g.rows_in_of(br), 3);
        assert_eq!(g.rows_out_of(br), 3);
        let profs = g.profiles();
        assert!(profs[0].detail.contains(&("batches".to_string(), 1)));
    }

    #[test]
    fn vector_reduce_sink_emits_shuffle_records() {
        let mut op = VectorReduceSinkOperator::new(
            vec![],
            vec![(0, DataType::Int)],
            vec![(0, DataType::Int)],
            2,
            4,
        );
        let emits = op
            .receive(Message::Batch {
                batch: Arc::new(int_batch(&[7, 8])),
                tag: 0,
            })
            .unwrap();
        assert_eq!(emits.len(), 2);
        match &emits[0] {
            Emit::Shuffle(rec) => {
                assert_eq!(rec.key, vec![Value::Int(7)]);
                assert_eq!(rec.value, Row::new(vec![Value::Int(7)]));
                assert_eq!(rec.tag, 2);
                assert_eq!(rec.num_reducers, 4);
            }
            other => panic!("expected shuffle, got {other:?}"),
        }
    }

    #[test]
    fn group_by_sink_aggregates_and_flushes_partials_at_close() {
        let mut op = VectorGroupBySinkOperator::new(
            vec![],
            VectorHashAggregator::new(
                vec![0],
                vec![AggSpec {
                    kind: AggKind::CountStar,
                    input_column: None,
                }],
            ),
            vec![ExprNode::Column(0)],
            vec![ExprNode::Column(1)],
            0,
            1,
        );
        let emits = op
            .receive(Message::Batch {
                batch: Arc::new(int_batch(&[1, 2, 1, 1])),
                tag: 0,
            })
            .unwrap();
        assert!(emits.is_empty(), "partials only surface at close");
        let flushed = op.close().unwrap();
        assert_eq!(flushed.len(), 2);
        match &flushed[0] {
            Emit::Shuffle(rec) => {
                assert_eq!(rec.key, vec![Value::Int(1)]);
                assert_eq!(rec.value, Row::new(vec![Value::Int(3)]));
            }
            other => panic!("expected shuffle, got {other:?}"),
        }
        assert!(op.profile_detail().contains(&("groups".to_string(), 2)));
    }

    #[test]
    fn group_by_sink_empty_input_emits_nothing() {
        let mut op = VectorGroupBySinkOperator::new(
            vec![],
            VectorHashAggregator::new(
                vec![],
                vec![AggSpec {
                    kind: AggKind::CountStar,
                    input_column: None,
                }],
            ),
            vec![],
            vec![ExprNode::Column(0)],
            0,
            1,
        );
        assert!(op.close().unwrap().is_empty());
    }

    #[test]
    fn rows_reaching_vector_operators_are_wiring_bugs() {
        let row = Message::Row {
            row: Row::new(vec![]),
            tag: 0,
        };
        let mut bridge = RowBridgeOperator::new(vec![]);
        assert!(bridge.receive(row.clone()).is_err());
        let mut rs = VectorReduceSinkOperator::new(vec![], vec![], vec![], 0, 1);
        assert!(rs.receive(row).is_err());
    }
}
