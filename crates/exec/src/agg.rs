//! Row-mode aggregate functions with Hive's partial/final mode split:
//! map-side GroupByOperators produce *partial* states that travel through
//! the shuffle as plain values; reduce-side GroupByOperators merge them.

use hive_common::{HiveError, Result, Value};

/// The aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunction {
    CountStar,
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

/// Where in the plan the aggregation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggMode {
    /// Raw input → partial state (map side).
    Partial,
    /// Partial states → final value (reduce side).
    Final,
    /// Raw input → final value (single-stage plans).
    Complete,
}

/// Running state for one aggregate in one group.
#[derive(Debug, Clone, PartialEq)]
pub struct RowAggState {
    function: AggFunction,
    mode: AggMode,
    count: i64,
    sum_i: i64,
    sum_f: f64,
    /// Whether any non-null input was seen (sum of empty = NULL).
    seen: bool,
    /// Whether integer summation still fits i64 / inputs were all ints.
    int_domain: bool,
    min: Option<Value>,
    max: Option<Value>,
}

impl RowAggState {
    pub fn new(function: AggFunction, mode: AggMode) -> RowAggState {
        RowAggState {
            function,
            mode,
            count: 0,
            sum_i: 0,
            sum_f: 0.0,
            seen: false,
            int_domain: true,
            min: None,
            max: None,
        }
    }

    /// Feed one input value (the evaluated argument; ignored for COUNT(*)).
    pub fn update(&mut self, v: &Value) -> Result<()> {
        match self.mode {
            AggMode::Partial | AggMode::Complete => self.update_raw(v),
            AggMode::Final => self.merge_partial(v),
        }
    }

    fn update_raw(&mut self, v: &Value) -> Result<()> {
        match self.function {
            AggFunction::CountStar => {
                self.count += 1;
            }
            AggFunction::Count => {
                if !v.is_null() {
                    self.count += 1;
                }
            }
            AggFunction::Sum | AggFunction::Avg => {
                if v.is_null() {
                    return Ok(());
                }
                match v {
                    Value::Int(x) => {
                        self.sum_i = self.sum_i.wrapping_add(*x);
                        self.sum_f += *x as f64;
                    }
                    Value::Double(x) => {
                        self.int_domain = false;
                        self.sum_f += *x;
                    }
                    other => {
                        return Err(HiveError::Type(format!("cannot SUM/AVG {other}")));
                    }
                }
                self.count += 1;
                self.seen = true;
            }
            AggFunction::Min => {
                if !v.is_null()
                    && self
                        .min
                        .as_ref()
                        .is_none_or(|m| v.sql_cmp(m) == std::cmp::Ordering::Less)
                {
                    self.min = Some(v.clone());
                }
            }
            AggFunction::Max => {
                if !v.is_null()
                    && self
                        .max
                        .as_ref()
                        .is_none_or(|m| v.sql_cmp(m) == std::cmp::Ordering::Greater)
                {
                    self.max = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    /// Merge a partial state produced by [`partial_value`](Self::partial_value).
    fn merge_partial(&mut self, v: &Value) -> Result<()> {
        match self.function {
            AggFunction::CountStar | AggFunction::Count => {
                let Some(n) = v.as_int() else {
                    if v.is_null() {
                        return Ok(());
                    }
                    return Err(HiveError::Type(format!("bad COUNT partial {v}")));
                };
                self.count += n;
            }
            AggFunction::Sum => match v {
                Value::Null => {}
                Value::Int(x) => {
                    self.sum_i = self.sum_i.wrapping_add(*x);
                    self.sum_f += *x as f64;
                    self.seen = true;
                }
                Value::Double(x) => {
                    self.int_domain = false;
                    self.sum_f += *x;
                    self.seen = true;
                }
                other => return Err(HiveError::Type(format!("bad SUM partial {other}"))),
            },
            AggFunction::Avg => match v {
                Value::Null => {}
                // Partial AVG travels as struct(sum double, count bigint).
                Value::Struct(fields) if fields.len() == 2 => {
                    let s = fields[0].as_double().unwrap_or(0.0);
                    let c = fields[1].as_int().unwrap_or(0);
                    self.sum_f += s;
                    self.count += c;
                    self.seen |= c > 0;
                    self.int_domain = false;
                }
                other => return Err(HiveError::Type(format!("bad AVG partial {other}"))),
            },
            AggFunction::Min => self.update_raw(v)?,
            AggFunction::Max => self.update_raw(v)?,
        }
        Ok(())
    }

    /// The value this state contributes when the mode is Partial — what
    /// flows through the shuffle.
    pub fn partial_value(&self) -> Value {
        match self.function {
            AggFunction::CountStar | AggFunction::Count => Value::Int(self.count),
            AggFunction::Sum => self.sum_value(),
            AggFunction::Avg => {
                Value::Struct(vec![Value::Double(self.sum_f), Value::Int(self.count)])
            }
            AggFunction::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunction::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }

    /// The final SQL value (modes Final and Complete).
    pub fn final_value(&self) -> Value {
        match self.function {
            AggFunction::CountStar | AggFunction::Count => Value::Int(self.count),
            AggFunction::Sum => self.sum_value(),
            AggFunction::Avg => {
                if self.count > 0 {
                    Value::Double(self.sum_f / self.count as f64)
                } else {
                    Value::Null
                }
            }
            AggFunction::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunction::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }

    fn sum_value(&self) -> Value {
        if !self.seen {
            Value::Null
        } else if self.int_domain {
            Value::Int(self.sum_i)
        } else {
            Value::Double(self.sum_f)
        }
    }

    /// The emitted value for this state's own mode.
    pub fn output(&self) -> Value {
        match self.mode {
            AggMode::Partial => self.partial_value(),
            AggMode::Final | AggMode::Complete => self.final_value(),
        }
    }
}

/// Parse a function name from HiveQL.
pub fn parse_agg_function(name: &str, star: bool) -> Option<AggFunction> {
    Some(match (name, star) {
        ("count", true) => AggFunction::CountStar,
        ("count", false) => AggFunction::Count,
        ("sum", _) => AggFunction::Sum,
        ("avg", _) => AggFunction::Avg,
        ("min", _) => AggFunction::Min,
        ("max", _) => AggFunction::Max,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_mode_basics() {
        let mut s = RowAggState::new(AggFunction::Sum, AggMode::Complete);
        for v in [Value::Int(1), Value::Null, Value::Int(2)] {
            s.update(&v).unwrap();
        }
        assert_eq!(s.output(), Value::Int(3));

        let mut a = RowAggState::new(AggFunction::Avg, AggMode::Complete);
        for v in [Value::Int(1), Value::Int(2), Value::Null] {
            a.update(&v).unwrap();
        }
        assert_eq!(a.output(), Value::Double(1.5));
    }

    #[test]
    fn partial_then_final_equals_complete() {
        // Split [1,2,3,4] into two partials and merge.
        for f in [
            AggFunction::Sum,
            AggFunction::Count,
            AggFunction::Avg,
            AggFunction::Min,
            AggFunction::Max,
            AggFunction::CountStar,
        ] {
            let vals = [Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(4)];
            let mut complete = RowAggState::new(f, AggMode::Complete);
            for v in &vals {
                complete.update(v).unwrap();
            }

            let mut p1 = RowAggState::new(f, AggMode::Partial);
            let mut p2 = RowAggState::new(f, AggMode::Partial);
            p1.update(&vals[0]).unwrap();
            p1.update(&vals[1]).unwrap();
            p2.update(&vals[2]).unwrap();
            p2.update(&vals[3]).unwrap();
            let mut fin = RowAggState::new(f, AggMode::Final);
            fin.update(&p1.output()).unwrap();
            fin.update(&p2.output()).unwrap();
            assert_eq!(fin.output(), complete.output(), "{f:?}");
        }
    }

    #[test]
    fn empty_groups() {
        let s = RowAggState::new(AggFunction::Sum, AggMode::Complete);
        assert_eq!(s.output(), Value::Null);
        let c = RowAggState::new(AggFunction::Count, AggMode::Complete);
        assert_eq!(c.output(), Value::Int(0));
        let a = RowAggState::new(AggFunction::Avg, AggMode::Complete);
        assert_eq!(a.output(), Value::Null);
    }

    #[test]
    fn sum_switches_to_double_domain() {
        let mut s = RowAggState::new(AggFunction::Sum, AggMode::Complete);
        s.update(&Value::Int(1)).unwrap();
        s.update(&Value::Double(0.5)).unwrap();
        assert_eq!(s.output(), Value::Double(1.5));
    }

    #[test]
    fn min_max_strings() {
        let mut mn = RowAggState::new(AggFunction::Min, AggMode::Complete);
        let mut mx = RowAggState::new(AggFunction::Max, AggMode::Complete);
        for v in ["m", "a", "z"] {
            mn.update(&Value::String(v.into())).unwrap();
            mx.update(&Value::String(v.into())).unwrap();
        }
        assert_eq!(mn.output(), Value::String("a".into()));
        assert_eq!(mx.output(), Value::String("z".into()));
    }

    #[test]
    fn function_parsing() {
        assert_eq!(
            parse_agg_function("count", true),
            Some(AggFunction::CountStar)
        );
        assert_eq!(parse_agg_function("sum", false), Some(AggFunction::Sum));
        assert_eq!(parse_agg_function("concat", false), None);
    }
}
