//! End-to-end ORC tests: round trips, decomposition, indexes, predicate
//! pushdown, compression, padding, the memory manager and the vectorized
//! reader — each mapped to a behaviour Section 4 / 6.5 of the paper claims.

use hive_codec::block::Compression;
use hive_common::{DataType, Row, Schema, Value};
use hive_dfs::{Dfs, DfsConfig};
use hive_formats::orc::reader::{OrcReadOptions, OrcReader};
use hive_formats::orc::writer::{OrcWriter, OrcWriterOptions};
use hive_formats::orc::MemoryManager;
use hive_formats::{PredicateLeaf, PredicateOp, SearchArgument, TableReader, TableWriter};
use hive_vector::VectorizedRowBatch;

fn dfs() -> Dfs {
    Dfs::new(DfsConfig {
        block_size: 1 << 20,
        replication: 2,
        nodes: 4,
    })
}

fn small_opts() -> OrcWriterOptions {
    OrcWriterOptions {
        stripe_size: 64 << 10,
        row_index_stride: 100,
        ..Default::default()
    }
}

fn write_orc(
    fs: &Dfs,
    path: &str,
    schema: &Schema,
    opts: OrcWriterOptions,
    rows: impl Iterator<Item = Row>,
) {
    let mut w: Box<dyn TableWriter> = Box::new(OrcWriter::create(fs, path, schema, opts, None));
    for r in rows {
        w.write_row(&r).unwrap();
    }
    w.close().unwrap();
}

fn read_all(fs: &Dfs, path: &str, opts: OrcReadOptions) -> (Vec<Row>, OrcReader) {
    let mut r = OrcReader::open(fs, path, opts).unwrap();
    let mut rows = Vec::new();
    while let Some(row) = r.next_row().unwrap() {
        rows.push(row);
    }
    (rows, r)
}

#[test]
fn primitive_round_trip_across_stripes_and_groups() {
    let fs = dfs();
    let schema = Schema::parse(&[
        ("i", "bigint"),
        ("d", "double"),
        ("s", "string"),
        ("b", "boolean"),
        ("t", "timestamp"),
    ])
    .unwrap();
    let make = |i: i64| {
        Row::new(vec![
            Value::Int(i * 3 - 500),
            Value::Double(i as f64 / 7.0),
            Value::String(format!("val-{}", i % 13)),
            Value::Boolean(i % 2 == 0),
            Value::Timestamp(1_400_000_000_000 + i),
        ])
    };
    write_orc(&fs, "/orc/prim", &schema, small_opts(), (0..5000).map(make));
    let (rows, r) = read_all(&fs, "/orc/prim", OrcReadOptions::default());
    assert_eq!(r.num_rows(), 5000);
    assert_eq!(rows.len(), 5000);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(*row, make(i as i64), "row {i}");
    }
}

#[test]
fn figure_3_complex_types_round_trip() {
    let fs = dfs();
    let schema = Schema::parse(&[
        ("col1", "int"),
        ("col2", "array<int>"),
        ("col4", "map<string,struct<col7:string,col8:int>>"),
        ("col9", "string"),
    ])
    .unwrap();
    let make = |i: i64| {
        Row::new(vec![
            Value::Int(i),
            Value::Array((0..(i % 4)).map(Value::Int).collect()),
            Value::Map(vec![(
                Value::String(format!("k{i}")),
                Value::Struct(vec![Value::String(format!("s{i}")), Value::Int(i * 2)]),
            )]),
            Value::String(format!("tail-{i}")),
        ])
    };
    write_orc(&fs, "/orc/cplx", &schema, small_opts(), (0..1000).map(make));
    let (rows, _) = read_all(&fs, "/orc/cplx", OrcReadOptions::default());
    assert_eq!(rows.len(), 1000);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(*row, make(i as i64), "row {i}");
    }
}

#[test]
fn nulls_round_trip_everywhere() {
    let fs = dfs();
    let schema = Schema::parse(&[("i", "bigint"), ("s", "string"), ("a", "array<int>")]).unwrap();
    let make = |i: i64| {
        Row::new(vec![
            if i % 3 == 0 {
                Value::Null
            } else {
                Value::Int(i)
            },
            if i % 5 == 0 {
                Value::Null
            } else {
                Value::String(format!("x{i}"))
            },
            if i % 7 == 0 {
                Value::Null
            } else {
                Value::Array(vec![if i % 2 == 0 {
                    Value::Null
                } else {
                    Value::Int(i)
                }])
            },
        ])
    };
    write_orc(
        &fs,
        "/orc/nulls",
        &schema,
        small_opts(),
        (0..2000).map(make),
    );
    let (rows, _) = read_all(&fs, "/orc/nulls", OrcReadOptions::default());
    assert_eq!(rows.len(), 2000);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(*row, make(i as i64), "row {i}");
    }
}

#[test]
fn union_type_round_trip() {
    let fs = dfs();
    let schema = Schema::parse(&[("u", "uniontype<bigint,string>")]).unwrap();
    let make = |i: i64| {
        Row::new(vec![if i % 2 == 0 {
            Value::Union(0, Box::new(Value::Int(i)))
        } else {
            Value::Union(1, Box::new(Value::String(format!("u{i}"))))
        }])
    };
    write_orc(&fs, "/orc/union", &schema, small_opts(), (0..500).map(make));
    let (rows, _) = read_all(&fs, "/orc/union", OrcReadOptions::default());
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(*row, make(i as i64));
    }
}

#[test]
fn dictionary_and_direct_encodings_both_round_trip() {
    let fs = dfs();
    let schema = Schema::parse(&[("lo", "string"), ("hi", "string")]).unwrap();
    // `lo` has 10 distinct values (dictionary); `hi` is all-distinct (direct).
    let make = |i: i64| {
        Row::new(vec![
            Value::String(format!("cat-{}", i % 10)),
            Value::String(format!("unique-{i}-xyzzy")),
        ])
    };
    write_orc(&fs, "/orc/dict", &schema, small_opts(), (0..3000).map(make));
    let (rows, _) = read_all(&fs, "/orc/dict", OrcReadOptions::default());
    assert_eq!(rows.len(), 3000);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(*row, make(i as i64));
    }
}

#[test]
fn dictionary_encoding_shrinks_low_cardinality_columns() {
    let fs = dfs();
    let schema = Schema::parse(&[("s", "string")]).unwrap();
    let lowcard = |i: i64| Row::new(vec![Value::String(format!("state-{:02}", i % 50))]);
    let mut x = 88172645463325252u64;
    let mut highcard = |_: i64| {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        Row::new(vec![Value::String(format!("{x:032x}{x:032x}"))])
    };
    write_orc(
        &fs,
        "/orc/low",
        &schema,
        small_opts(),
        (0..20000).map(lowcard),
    );
    write_orc(
        &fs,
        "/orc/high",
        &schema,
        small_opts(),
        (0..20000).map(&mut highcard),
    );
    let low = fs.len("/orc/low").unwrap();
    let high = fs.len("/orc/high").unwrap();
    // Dictionary: ~2 bytes/row of ids vs 64 bytes/row of direct data.
    assert!(low * 4 < high, "dictionary file {low} vs direct {high}");
}

#[test]
fn compression_variants_round_trip_and_shrink() {
    let fs = dfs();
    let schema = Schema::parse(&[("i", "bigint"), ("s", "string")]).unwrap();
    let make = |i: i64| {
        Row::new(vec![
            Value::Int(i % 100),
            Value::String(format!("the quick brown fox {i} jumps over the lazy dog")),
        ])
    };
    let mut sizes = Vec::new();
    for comp in [Compression::None, Compression::Snappy, Compression::Zlib] {
        let path = format!("/orc/comp-{comp}");
        let opts = OrcWriterOptions {
            compression: comp,
            compress_unit: 8 << 10,
            ..small_opts()
        };
        write_orc(&fs, &path, &schema, opts, (0..5000).map(make));
        let (rows, _) = read_all(&fs, &path, OrcReadOptions::default());
        assert_eq!(rows.len(), 5000, "codec {comp}");
        assert_eq!(rows[4321], make(4321));
        sizes.push(fs.len(&path).unwrap());
    }
    assert!(sizes[1] < sizes[0], "snappy should shrink: {sizes:?}");
    assert!(sizes[2] < sizes[0], "zlib should shrink: {sizes:?}");
}

#[test]
fn projection_reads_fewer_bytes_and_decomposed_children() {
    let fs = dfs();
    let schema = Schema::parse(&[
        ("a", "bigint"),
        ("blob", "string"),
        ("m", "map<string,int>"),
    ])
    .unwrap();
    let make = |i: i64| {
        Row::new(vec![
            Value::Int(i),
            Value::String(format!("{:0>200}", i)), // fat column
            Value::Map(vec![(Value::String(format!("k{i}")), Value::Int(i))]),
        ])
    };
    write_orc(&fs, "/orc/proj", &schema, small_opts(), (0..3000).map(make));

    fs.stats().reset();
    let (rows, _) = read_all(&fs, "/orc/proj", OrcReadOptions::default());
    assert_eq!(rows.len(), 3000);
    let full = fs.stats().snapshot().bytes_read();

    fs.stats().reset();
    let (rows, _) = read_all(
        &fs,
        "/orc/proj",
        OrcReadOptions {
            projection: Some(vec![0]),
            ..Default::default()
        },
    );
    assert_eq!(rows[5].values(), &[Value::Int(5)]);
    let narrow = fs.stats().snapshot().bytes_read();
    assert!(
        narrow * 5 < full,
        "projected read {narrow} should be far below full {full}"
    );
}

#[test]
fn predicate_pushdown_skips_stripes_and_groups() {
    let fs = dfs();
    let schema = Schema::parse(&[("x", "bigint"), ("v", "double")]).unwrap();
    // x is sorted, so stats ranges are tight per group/stripe.
    let make = |i: i64| Row::new(vec![Value::Int(i), Value::Double(i as f64)]);
    write_orc(&fs, "/orc/ppd", &schema, small_opts(), (0..20000).map(make));

    let sarg = SearchArgument::new(vec![PredicateLeaf::between(
        0,
        Value::Int(500),
        Value::Int(600),
    )]);

    // No PPD: everything read.
    fs.stats().reset();
    let (rows_all, r_all) = read_all(&fs, "/orc/ppd", OrcReadOptions::default());
    let bytes_all = fs.stats().snapshot().bytes_read();
    assert_eq!(rows_all.len(), 20000);
    assert_eq!(r_all.counters.groups_read, r_all.counters.groups_total);

    // PPD: only the overlapping groups read.
    fs.stats().reset();
    let (rows_sel, r_sel) = read_all(
        &fs,
        "/orc/ppd",
        OrcReadOptions {
            sarg: Some(sarg),
            use_index: true,
            ..Default::default()
        },
    );
    let bytes_sel = fs.stats().snapshot().bytes_read();
    // Selected rows form a superset of the exact range (whole groups).
    assert!(
        rows_sel.len() >= 101 && rows_sel.len() <= 400,
        "{}",
        rows_sel.len()
    );
    assert!(rows_sel.iter().any(|r| r[0] == Value::Int(550)));
    assert!(r_sel.counters.groups_read < r_all.counters.groups_total / 10);
    assert!(
        bytes_sel * 5 < bytes_all,
        "PPD bytes {bytes_sel} vs full {bytes_all}"
    );
}

#[test]
fn stripe_level_skipping_without_index_groups() {
    let fs = dfs();
    let schema = Schema::parse(&[("x", "bigint")]).unwrap();
    let make = |i: i64| Row::new(vec![Value::Int(i)]);
    write_orc(
        &fs,
        "/orc/stripe-skip",
        &schema,
        small_opts(),
        (0..50000).map(make),
    );
    let sarg = SearchArgument::new(vec![PredicateLeaf::new(
        0,
        PredicateOp::LessThan,
        Some(Value::Int(100)),
    )]);
    let (_, r) = read_all(
        &fs,
        "/orc/stripe-skip",
        OrcReadOptions {
            sarg: Some(sarg),
            use_index: false, // only stripe statistics
            ..Default::default()
        },
    );
    assert!(r.counters.stripes_total > 1);
    assert!(
        r.counters.stripes_read < r.counters.stripes_total,
        "{:?}",
        r.counters
    );
}

#[test]
fn block_padding_keeps_stripes_within_blocks() {
    let fs = Dfs::new(DfsConfig {
        block_size: 96 << 10, // deliberately small
        replication: 1,
        nodes: 2,
    });
    let schema = Schema::parse(&[("i", "bigint"), ("s", "string")]).unwrap();
    let make = |i: i64| {
        Row::new(vec![
            Value::Int(i),
            Value::String(format!("padding-test-row-{i:08}")),
        ])
    };
    let opts = OrcWriterOptions {
        stripe_size: 32 << 10,
        row_index_stride: 100,
        block_padding: true,
        ..Default::default()
    };
    let mut w = OrcWriter::create(&fs, "/orc/padded", &schema, opts, None);
    for i in 0..20000 {
        TableWriter::write_row(&mut w, &make(i)).unwrap();
    }
    let padding = w.padding_bytes;
    Box::new(w).close().unwrap();
    assert!(padding > 0, "expected some padding with tiny blocks");

    // Verify alignment by reading footer stripe infos via the reader.
    let r = OrcReader::open(&fs, "/orc/padded", OrcReadOptions::default()).unwrap();
    let _ = r;
    // And the data still round-trips.
    let (rows, _) = read_all(&fs, "/orc/padded", OrcReadOptions::default());
    assert_eq!(rows.len(), 20000);
    assert_eq!(rows[12345], make(12345));
}

#[test]
fn file_stats_answer_simple_aggregations() {
    let fs = dfs();
    let schema = Schema::parse(&[("x", "bigint")]).unwrap();
    write_orc(
        &fs,
        "/orc/stats",
        &schema,
        small_opts(),
        (0..1000).map(|i| Row::new(vec![Value::Int(i)])),
    );
    let r = OrcReader::open(&fs, "/orc/stats", OrcReadOptions::default()).unwrap();
    let stats = r.file_stats(0).unwrap();
    assert_eq!(stats.count(), 1000);
    assert_eq!(stats.min_value(), Some(Value::Int(0)));
    assert_eq!(stats.max_value(), Some(Value::Int(999)));
    assert_eq!(stats.sum_value(), Some(Value::Int(499_500)));
}

#[test]
fn memory_manager_shrinks_stripes_under_pressure() {
    let fs = dfs();
    let schema = Schema::parse(&[("i", "bigint"), ("s", "string")]).unwrap();
    let make = |i: i64| {
        Row::new(vec![
            Value::Int(i),
            Value::String(format!("row-{i}-{}", "y".repeat(64))),
        ])
    };
    // Tight memory: 10 concurrent writers with 64 KB stripes vs 128 KB pool.
    let mm = MemoryManager::new(128 << 10);
    let mut writers: Vec<OrcWriter> = (0..10)
        .map(|w| {
            OrcWriter::create(
                &fs,
                &format!("/orc/mm-{w}"),
                &schema,
                OrcWriterOptions {
                    stripe_size: 64 << 10,
                    row_index_stride: 100,
                    ..Default::default()
                },
                Some(&mm),
            )
        })
        .collect();
    for i in 0..2000 {
        for w in writers.iter_mut() {
            TableWriter::write_row(w, &make(i)).unwrap();
        }
        // The bound must hold at all times.
        let total: usize = writers.iter().map(|w| w.memory_estimate()).sum();
        assert!(
            total <= (160 << 10),
            "writers exceeded the bounded footprint: {total}"
        );
    }
    for w in writers {
        Box::new(w).close().unwrap();
    }
    // All files still readable.
    for wid in 0..10 {
        let (rows, _) = read_all(&fs, &format!("/orc/mm-{wid}"), OrcReadOptions::default());
        assert_eq!(rows.len(), 2000);
    }
}

#[test]
fn vectorized_reader_matches_row_reader() {
    let fs = dfs();
    let schema = Schema::parse(&[("i", "bigint"), ("d", "double"), ("s", "string")]).unwrap();
    let make = |i: i64| {
        Row::new(vec![
            if i % 11 == 0 {
                Value::Null
            } else {
                Value::Int(i)
            },
            Value::Double(i as f64 * 0.5),
            Value::String(format!("s{}", i % 3)),
        ])
    };
    write_orc(&fs, "/orc/vec", &schema, small_opts(), (0..3000).map(make));

    let (rows, _) = read_all(&fs, "/orc/vec", OrcReadOptions::default());

    let mut r = OrcReader::open(&fs, "/orc/vec", OrcReadOptions::default()).unwrap();
    let types: Vec<DataType> = schema
        .fields()
        .iter()
        .map(|f| f.data_type.clone())
        .collect();
    let mut batch = VectorizedRowBatch::new(&types, 256).unwrap();
    let mut got = Vec::new();
    while r.next_batch(&mut batch).unwrap() {
        let cols: Vec<(usize, DataType)> = types.iter().cloned().enumerate().collect();
        got.extend(hive_vector::row_convert::batch_to_rows(&batch, &cols));
    }
    assert_eq!(got.len(), rows.len());
    for (a, b) in got.iter().zip(rows.iter()) {
        assert_eq!(a, b);
    }
}

#[test]
fn vectorized_reader_sets_no_nulls_flag() {
    let fs = dfs();
    let schema = Schema::parse(&[("i", "bigint")]).unwrap();
    write_orc(
        &fs,
        "/orc/nonull",
        &schema,
        small_opts(),
        (0..500).map(|i| Row::new(vec![Value::Int(i)])),
    );
    let mut r = OrcReader::open(&fs, "/orc/nonull", OrcReadOptions::default()).unwrap();
    let mut batch = VectorizedRowBatch::new(&[DataType::Int], 128).unwrap();
    assert!(r.next_batch(&mut batch).unwrap());
    assert!(batch.columns[0].as_long().unwrap().no_nulls);
}

#[test]
fn empty_file_round_trips() {
    let fs = dfs();
    let schema = Schema::parse(&[("i", "bigint")]).unwrap();
    write_orc(&fs, "/orc/empty", &schema, small_opts(), std::iter::empty());
    let (rows, r) = read_all(&fs, "/orc/empty", OrcReadOptions::default());
    assert!(rows.is_empty());
    assert_eq!(r.num_rows(), 0);
}

#[test]
fn corrupt_magic_is_rejected() {
    let fs = dfs();
    let mut w = fs.create("/orc/bogus");
    w.write(b"this is not an orc file at all, sorry!");
    w.close();
    assert!(OrcReader::open(&fs, "/orc/bogus", OrcReadOptions::default()).is_err());
}

#[test]
fn in_list_predicate_pushdown_skips() {
    let fs = dfs();
    let schema = Schema::parse(&[("state", "string"), ("v", "bigint")]).unwrap();
    // Sorted by state so stripe/group statistics have tight string ranges.
    let states = ["AL", "CA", "GA", "NY", "OH", "SD", "TN", "TX", "WA", "WY"];
    let mut rows = Vec::new();
    for s in states {
        for i in 0..2000i64 {
            rows.push(Row::new(vec![Value::String(s.to_string()), Value::Int(i)]));
        }
    }
    write_orc(&fs, "/orc/in", &schema, small_opts(), rows.into_iter());

    let sarg = SearchArgument::new(vec![hive_formats::PredicateLeaf::in_list(
        0,
        vec![Value::String("SD".into()), Value::String("TN".into())],
    )]);
    let (rows_sel, r) = read_all(
        &fs,
        "/orc/in",
        OrcReadOptions {
            sarg: Some(sarg),
            use_index: true,
            ..Default::default()
        },
    );
    // SD+TN is 20% of the rows; boundary groups straddle states, so allow
    // some slack while still requiring real skipping.
    assert!(
        r.counters.groups_read * 10 < r.counters.groups_total * 6,
        "{:?}",
        r.counters
    );
    assert!(
        r.counters.stripes_read < r.counters.stripes_total,
        "{:?}",
        r.counters
    );
    // Soundness: every SD/TN row is present.
    let hits = rows_sel
        .iter()
        .filter(|row| matches!(row[0].as_str(), Some("SD") | Some("TN")))
        .count();
    assert_eq!(hits, 4000);
}

#[test]
fn block_padding_reduces_remote_reads() {
    // Section 4.1's claim: without stripe/block alignment a stripe can span
    // two blocks (two machines), so a data-local map task must fetch part
    // of its stripe remotely; with padding every stripe is block-local.
    let fs = Dfs::new(DfsConfig {
        block_size: 64 << 10,
        replication: 1, // one replica → any cross-block span is remote
        nodes: 8,
    });
    let schema = Schema::parse(&[("i", "bigint"), ("s", "string")]).unwrap();
    let make = |i: i64| {
        Row::new(vec![
            Value::Int(i),
            Value::String(format!("padding-measure-{i:06}-{}", "z".repeat(24))),
        ])
    };
    let remote_bytes = |padding: bool| -> u64 {
        let path = format!("/orc/pad-{padding}");
        let opts = OrcWriterOptions {
            stripe_size: 24 << 10,
            row_index_stride: 200,
            block_padding: padding,
            ..Default::default()
        };
        write_orc(&fs, &path, &schema, opts, (0..20_000).map(make));
        // One "map task" per block, each reading its own stripes from the
        // block's replica node (data-local scheduling).
        fs.stats().reset();
        let len = fs.len(&path).unwrap();
        let mut total_rows = 0;
        for block in fs.blocks(&path).unwrap() {
            let node = block.replicas[0];
            let mut r = OrcReader::open(
                &fs,
                &path,
                OrcReadOptions {
                    split: Some((block.offset, block.offset + block.len)),
                    node: Some(node),
                    ..Default::default()
                },
            )
            .unwrap();
            while r.next_row().unwrap().is_some() {
                total_rows += 1;
            }
        }
        assert_eq!(total_rows, 20_000, "splits must cover every row once");
        let _ = len;
        fs.stats().snapshot().bytes_remote
    };
    let unpadded = remote_bytes(false);
    let padded = remote_bytes(true);
    assert!(
        padded < unpadded,
        "alignment must cut remote reads: padded {padded} vs unpadded {unpadded}"
    );
}
