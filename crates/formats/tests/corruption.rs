//! Failure injection: flip/truncate bytes anywhere in ORC, RCFile and
//! SequenceFile files and require the readers to fail with errors — never
//! panic, never loop — or, when the corruption misses the bytes a read
//! touches, to succeed. (A storage layer that aborts the process on a bad
//! block would take the whole task down with it.)

use hive_codec::block::Compression;
use hive_common::{Row, Schema, Value};
use hive_dfs::{Dfs, DfsConfig};
use hive_formats::orc::reader::{OrcReadOptions, OrcReader};
use hive_formats::orc::writer::{OrcWriter, OrcWriterOptions};
use hive_formats::rcfile::{RcFileReader, RcFileWriter};
use hive_formats::sequence::{SequenceReader, SequenceWriter};
use hive_formats::{TableReader, TableWriter};

fn dfs() -> Dfs {
    Dfs::new(DfsConfig {
        block_size: 1 << 20,
        replication: 1,
        nodes: 2,
    })
}

fn schema() -> Schema {
    Schema::parse(&[("a", "bigint"), ("b", "string"), ("c", "double")]).unwrap()
}

fn rows() -> Vec<Row> {
    (0..2000)
        .map(|i| {
            Row::new(vec![
                Value::Int(i),
                Value::String(format!("value-{}", i % 37)),
                Value::Double(i as f64 / 3.0),
            ])
        })
        .collect()
}

/// Copy `path` into `dst` with one byte XOR-flipped at `pos`.
fn flip_byte(fs: &Dfs, path: &str, dst: &str, pos: usize) {
    let mut r = fs.open(path, None).unwrap();
    let mut data = r.read_all().unwrap();
    let idx = pos % data.len();
    data[idx] ^= 0x5A;
    let mut w = fs.create(dst);
    w.write(&data);
    w.close();
}

/// Copy `path` into `dst` truncated to `len` bytes.
fn truncate(fs: &Dfs, path: &str, dst: &str, len: usize) {
    let mut r = fs.open(path, None).unwrap();
    let data = r.read_all().unwrap();
    let mut w = fs.create(dst);
    w.write(&data[..len.min(data.len())]);
    w.close();
}

/// Drain a reader; Ok(row count) or the first error. Bounded iterations
/// guard against corruption-induced loops.
fn drain(mut reader: Box<dyn TableReader>) -> Result<usize, hive_common::HiveError> {
    let mut n = 0usize;
    loop {
        match reader.next_row() {
            Ok(Some(_)) => {
                n += 1;
                assert!(n <= 1_000_000, "reader loops under corruption");
            }
            Ok(None) => return Ok(n),
            Err(e) => return Err(e),
        }
    }
}

#[test]
fn orc_survives_bit_flips_everywhere() {
    let fs = dfs();
    let mut w: Box<dyn TableWriter> = Box::new(OrcWriter::create(
        &fs,
        "/c/orc",
        &schema(),
        OrcWriterOptions {
            stripe_size: 16 << 10,
            row_index_stride: 100,
            compression: Compression::Snappy,
            compress_unit: 4 << 10,
            ..Default::default()
        },
        None,
    ));
    for r in rows() {
        w.write_row(&r).unwrap();
    }
    w.close().unwrap();
    let len = fs.len("/c/orc").unwrap() as usize;

    // Flip a byte at 97 positions spread over the whole file.
    for k in 0..97 {
        let pos = k * len / 97;
        flip_byte(&fs, "/c/orc", "/c/orc-bad", pos);
        // Opening may fail cleanly; if it works, draining must not panic
        // (wrong data is acceptable — checksums are out of scope — crashing
        // is not).
        if let Ok(r) = OrcReader::open(&fs, "/c/orc-bad", OrcReadOptions::default()) {
            let _ = drain(Box::new(r));
        }
        // The vectorized path must be equally robust.
        if let Ok(mut r) = OrcReader::open(&fs, "/c/orc-bad", OrcReadOptions::default()) {
            let mut batch = hive_vector::VectorizedRowBatch::new(
                &[
                    hive_common::DataType::Int,
                    hive_common::DataType::String,
                    hive_common::DataType::Double,
                ],
                256,
            )
            .unwrap();
            let mut batches = 0;
            while let Ok(true) = r.next_batch(&mut batch) {
                batches += 1;
                assert!(batches < 100_000, "vectorized reader loops");
            }
        }
    }
}

#[test]
fn orc_survives_truncation_everywhere() {
    let fs = dfs();
    let mut w: Box<dyn TableWriter> = Box::new(OrcWriter::create(
        &fs,
        "/c/orc2",
        &schema(),
        OrcWriterOptions {
            stripe_size: 16 << 10,
            row_index_stride: 100,
            ..Default::default()
        },
        None,
    ));
    for r in rows() {
        w.write_row(&r).unwrap();
    }
    w.close().unwrap();
    let len = fs.len("/c/orc2").unwrap() as usize;
    for k in 1..40 {
        let cut = k * len / 40;
        truncate(&fs, "/c/orc2", "/c/orc2-cut", cut);
        if let Ok(r) = OrcReader::open(&fs, "/c/orc2-cut", OrcReadOptions::default()) {
            let _ = drain(Box::new(r));
        }
    }
}

#[test]
fn rcfile_survives_corruption() {
    let fs = dfs();
    let mut w: Box<dyn TableWriter> = Box::new(RcFileWriter::create(
        &fs,
        "/c/rc",
        &schema(),
        16 << 10,
        Compression::Snappy,
    ));
    for r in rows() {
        w.write_row(&r).unwrap();
    }
    w.close().unwrap();
    let len = fs.len("/c/rc").unwrap() as usize;
    for k in 0..60 {
        let pos = k * len / 60;
        flip_byte(&fs, "/c/rc", "/c/rc-bad", pos);
        if let Ok(r) = RcFileReader::open(&fs, "/c/rc-bad", &schema(), None, None) {
            let _ = drain(Box::new(r));
        }
        truncate(&fs, "/c/rc", "/c/rc-cut", pos.max(8));
        if let Ok(r) = RcFileReader::open(&fs, "/c/rc-cut", &schema(), None, None) {
            let _ = drain(Box::new(r));
        }
    }
}

#[test]
fn sequencefile_survives_corruption() {
    let fs = dfs();
    let mut w: Box<dyn TableWriter> = Box::new(SequenceWriter::create(&fs, "/c/seq"));
    for r in rows() {
        w.write_row(&r).unwrap();
    }
    w.close().unwrap();
    let len = fs.len("/c/seq").unwrap() as usize;
    for k in 0..60 {
        let pos = k * len / 60;
        flip_byte(&fs, "/c/seq", "/c/seq-bad", pos);
        if let Ok(r) = SequenceReader::open(&fs, "/c/seq-bad", schema(), None, None) {
            let _ = drain(Box::new(r));
        }
    }
}
