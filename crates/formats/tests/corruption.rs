//! Failure injection: flip/truncate bytes anywhere in ORC, RCFile and
//! SequenceFile files and require the readers to fail with errors — never
//! panic, never loop — or, when the corruption misses the bytes a read
//! touches, to succeed. (A storage layer that aborts the process on a bad
//! block would take the whole task down with it.)

use hive_codec::block::Compression;
use hive_common::{Row, Schema, Value};
use hive_dfs::{Dfs, DfsConfig};
use hive_formats::orc::reader::{OrcReadOptions, OrcReader};
use hive_formats::orc::writer::{OrcWriter, OrcWriterOptions};
use hive_formats::rcfile::{RcFileReader, RcFileWriter};
use hive_formats::sequence::{SequenceReader, SequenceWriter};
use hive_formats::{TableReader, TableWriter};

fn dfs() -> Dfs {
    Dfs::new(DfsConfig {
        block_size: 1 << 20,
        replication: 1,
        nodes: 2,
    })
}

fn schema() -> Schema {
    Schema::parse(&[("a", "bigint"), ("b", "string"), ("c", "double")]).unwrap()
}

fn rows() -> Vec<Row> {
    (0..2000)
        .map(|i| {
            Row::new(vec![
                Value::Int(i),
                Value::String(format!("value-{}", i % 37)),
                Value::Double(i as f64 / 3.0),
            ])
        })
        .collect()
}

/// Copy `path` into `dst` with one byte XOR-flipped at `pos`.
fn flip_byte(fs: &Dfs, path: &str, dst: &str, pos: usize) {
    let mut r = fs.open(path, None).unwrap();
    let mut data = r.read_all().unwrap();
    let idx = pos % data.len();
    data[idx] ^= 0x5A;
    let mut w = fs.create(dst);
    w.write(&data);
    w.close();
}

/// Copy `path` into `dst` truncated to `len` bytes.
fn truncate(fs: &Dfs, path: &str, dst: &str, len: usize) {
    let mut r = fs.open(path, None).unwrap();
    let data = r.read_all().unwrap();
    let mut w = fs.create(dst);
    w.write(&data[..len.min(data.len())]);
    w.close();
}

/// Drain a reader; Ok(row count) or the first error. Bounded iterations
/// guard against corruption-induced loops.
fn drain(mut reader: Box<dyn TableReader>) -> Result<usize, hive_common::HiveError> {
    let mut n = 0usize;
    loop {
        match reader.next_row() {
            Ok(Some(_)) => {
                n += 1;
                assert!(n <= 1_000_000, "reader loops under corruption");
            }
            Ok(None) => return Ok(n),
            Err(e) => return Err(e),
        }
    }
}

#[test]
fn orc_survives_bit_flips_everywhere() {
    let fs = dfs();
    let mut w: Box<dyn TableWriter> = Box::new(OrcWriter::create(
        &fs,
        "/c/orc",
        &schema(),
        OrcWriterOptions {
            stripe_size: 16 << 10,
            row_index_stride: 100,
            compression: Compression::Snappy,
            compress_unit: 4 << 10,
            ..Default::default()
        },
        None,
    ));
    for r in rows() {
        w.write_row(&r).unwrap();
    }
    w.close().unwrap();
    let len = fs.len("/c/orc").unwrap() as usize;

    // Flip a byte at 97 positions spread over the whole file.
    for k in 0..97 {
        let pos = k * len / 97;
        flip_byte(&fs, "/c/orc", "/c/orc-bad", pos);
        // Opening may fail cleanly; if it works, draining must not panic
        // (wrong data is acceptable — checksums are out of scope — crashing
        // is not).
        if let Ok(r) = OrcReader::open(&fs, "/c/orc-bad", OrcReadOptions::default()) {
            let _ = drain(Box::new(r));
        }
        // The vectorized path must be equally robust.
        if let Ok(mut r) = OrcReader::open(&fs, "/c/orc-bad", OrcReadOptions::default()) {
            let mut batch = hive_vector::VectorizedRowBatch::new(
                &[
                    hive_common::DataType::Int,
                    hive_common::DataType::String,
                    hive_common::DataType::Double,
                ],
                256,
            )
            .unwrap();
            let mut batches = 0;
            while let Ok(true) = r.next_batch(&mut batch) {
                batches += 1;
                assert!(batches < 100_000, "vectorized reader loops");
            }
        }
    }
}

#[test]
fn orc_survives_truncation_everywhere() {
    let fs = dfs();
    let mut w: Box<dyn TableWriter> = Box::new(OrcWriter::create(
        &fs,
        "/c/orc2",
        &schema(),
        OrcWriterOptions {
            stripe_size: 16 << 10,
            row_index_stride: 100,
            ..Default::default()
        },
        None,
    ));
    for r in rows() {
        w.write_row(&r).unwrap();
    }
    w.close().unwrap();
    let len = fs.len("/c/orc2").unwrap() as usize;
    for k in 1..40 {
        let cut = k * len / 40;
        truncate(&fs, "/c/orc2", "/c/orc2-cut", cut);
        if let Ok(r) = OrcReader::open(&fs, "/c/orc2-cut", OrcReadOptions::default()) {
            let _ = drain(Box::new(r));
        }
    }
}

#[test]
fn rcfile_survives_corruption() {
    let fs = dfs();
    let mut w: Box<dyn TableWriter> = Box::new(RcFileWriter::create(
        &fs,
        "/c/rc",
        &schema(),
        16 << 10,
        Compression::Snappy,
    ));
    for r in rows() {
        w.write_row(&r).unwrap();
    }
    w.close().unwrap();
    let len = fs.len("/c/rc").unwrap() as usize;
    for k in 0..60 {
        let pos = k * len / 60;
        flip_byte(&fs, "/c/rc", "/c/rc-bad", pos);
        if let Ok(r) = RcFileReader::open(&fs, "/c/rc-bad", &schema(), None, None) {
            let _ = drain(Box::new(r));
        }
        truncate(&fs, "/c/rc", "/c/rc-cut", pos.max(8));
        if let Ok(r) = RcFileReader::open(&fs, "/c/rc-cut", &schema(), None, None) {
            let _ = drain(Box::new(r));
        }
    }
}

/// Write an ORC file with small stripes/groups onto a small-block DFS so
/// one corrupt block touches only part of the file.
fn write_orc(fs: &Dfs, path: &str, nrows: i64) {
    let mut w: Box<dyn TableWriter> = Box::new(OrcWriter::create(
        fs,
        path,
        &schema(),
        OrcWriterOptions {
            stripe_size: 16 << 10,
            row_index_stride: 100,
            compression: Compression::Snappy,
            compress_unit: 4 << 10,
            ..Default::default()
        },
        None,
    ));
    for i in 0..nrows {
        w.write_row(&Row::new(vec![
            Value::Int(i),
            Value::String(format!("value-{}", i % 37)),
            Value::Double(i as f64 / 3.0),
        ]))
        .unwrap();
    }
    w.close().unwrap();
}

/// Every surviving row must be internally consistent with how it was
/// written — degradation may *drop* rows, never alter them.
fn assert_row_intact(row: &Row) {
    let a = row[0].as_int().unwrap();
    assert_eq!(row[1], Value::String(format!("value-{}", a % 37)));
    assert_eq!(row[2], Value::Double(a as f64 / 3.0));
}

#[test]
fn skip_corrupt_data_degrades_instead_of_failing() {
    let fs = Dfs::new(DfsConfig {
        block_size: 8 << 10,
        replication: 1,
        nodes: 2,
    });
    let nrows = 4000i64;
    write_orc(&fs, "/c/skip", nrows);
    let len = fs.len("/c/skip").unwrap();
    // Tamper with one stored byte mid-file, keeping the stale block CRCs:
    // every read covering that block now fails checksum verification.
    // Stay clear of the footer tail the reader fetches at open time.
    let pos = len / 4;
    assert!(pos + (16 << 10) < len, "file too small for the test layout");
    fs.corrupt_stored("/c/skip", pos, 0x5a).unwrap();

    // Without degradation the checksum failure is fatal.
    let strict = OrcReader::open(&fs, "/c/skip", OrcReadOptions::default()).unwrap();
    let err = drain(Box::new(strict)).expect_err("stale checksum must fail a strict read");
    assert!(err.is_data_corruption(), "unexpected error kind: {err:?}");

    // With `hive.exec.orc.skip.corrupt.data` the read completes; the rows
    // of corrupt groups/stripes are skipped and everything else survives
    // intact, with exact accounting.
    let mut r = OrcReader::open(
        &fs,
        "/c/skip",
        OrcReadOptions {
            skip_corrupt: true,
            ..Default::default()
        },
    )
    .unwrap();
    let mut survived = 0u64;
    let mut last_a = -1i64;
    while let Some(row) = r.next_row().unwrap() {
        assert_row_intact(&row);
        let a = row[0].as_int().unwrap();
        assert!(a > last_a, "surviving rows out of order");
        last_a = a;
        survived += 1;
    }
    let skipped = r.rows_skipped();
    assert!(skipped > 0, "the corrupt block must cost some rows");
    assert!(
        skipped < nrows as u64,
        "group-level salvage must save most of the file"
    );
    assert_eq!(
        survived + skipped,
        nrows as u64,
        "rows lost without account"
    );
    assert_eq!(r.counters.rows_skipped, skipped);
}

#[test]
fn skip_corrupt_data_vectorized_matches_row_reader() {
    let fs = Dfs::new(DfsConfig {
        block_size: 8 << 10,
        replication: 1,
        nodes: 2,
    });
    let nrows = 4000i64;
    write_orc(&fs, "/c/skipv", nrows);
    let len = fs.len("/c/skipv").unwrap();
    fs.corrupt_stored("/c/skipv", len / 4, 0x5a).unwrap();
    let opts = || OrcReadOptions {
        skip_corrupt: true,
        ..Default::default()
    };

    let mut row_reader = OrcReader::open(&fs, "/c/skipv", opts()).unwrap();
    let mut row_values: Vec<i64> = Vec::new();
    while let Some(row) = row_reader.next_row().unwrap() {
        row_values.push(row[0].as_int().unwrap());
    }

    let mut vec_reader = OrcReader::open(&fs, "/c/skipv", opts()).unwrap();
    let mut batch = hive_vector::VectorizedRowBatch::new(
        &[
            hive_common::DataType::Int,
            hive_common::DataType::String,
            hive_common::DataType::Double,
        ],
        256,
    )
    .unwrap();
    let mut vec_values: Vec<i64> = Vec::new();
    while vec_reader.next_batch(&mut batch).unwrap() {
        let hive_vector::ColumnVector::Long(col) = &batch.columns[0] else {
            panic!("expected long column");
        };
        vec_values.extend_from_slice(&col.vector[..batch.size]);
    }

    assert_eq!(vec_values, row_values, "vectorized salvage diverged");
    assert_eq!(vec_reader.rows_skipped(), row_reader.rows_skipped());
    assert_eq!(
        vec_values.len() as u64 + vec_reader.rows_skipped(),
        nrows as u64
    );
}

/// With degradation on, arbitrary payload bit-flips (re-checksummed, so
/// the DFS CRC does not catch them) must never surface an error from
/// either read path: decode failures are absorbed as skipped rows.
#[test]
fn skip_corrupt_data_absorbs_bit_flips_everywhere() {
    let fs = dfs();
    write_orc(&fs, "/c/flips", 2000);
    let len = fs.len("/c/flips").unwrap() as usize;
    let opts = || OrcReadOptions {
        skip_corrupt: true,
        ..Default::default()
    };
    for k in 0..97 {
        let pos = k * len / 97;
        flip_byte(&fs, "/c/flips", "/c/flips-bad", pos);
        // Opening can still fail (file footer damage); reads must not.
        if let Ok(mut r) = OrcReader::open(&fs, "/c/flips-bad", opts()) {
            let mut n = 0u64;
            while let Some(row) = r.next_row().expect("skip_corrupt read errored") {
                drop(row);
                n += 1;
                assert!(n <= 2000, "reader produced extra rows");
            }
        }
        if let Ok(mut r) = OrcReader::open(&fs, "/c/flips-bad", opts()) {
            let mut batch = hive_vector::VectorizedRowBatch::new(
                &[
                    hive_common::DataType::Int,
                    hive_common::DataType::String,
                    hive_common::DataType::Double,
                ],
                256,
            )
            .unwrap();
            let mut batches = 0;
            while r
                .next_batch(&mut batch)
                .expect("vectorized skip_corrupt errored")
            {
                batches += 1;
                assert!(batches < 100_000, "vectorized reader loops");
            }
        }
    }
}

/// A tampered or torn bloom-filter section must degrade to "read the
/// group": same rows as a clean file, never a wrong answer, never a
/// panic, with the degradation counted for EXPLAIN ANALYZE's skip
/// accounting. The file is *republished* after tampering (fresh DFS block
/// CRCs), so only the bloom section's own CRC can catch it.
#[test]
fn tampered_bloom_section_degrades_to_stats_only() {
    use hive_formats::orc::sarg::{PredicateLeaf, PredicateOp, SearchArgument};

    let fs = dfs();
    let mut w: Box<dyn TableWriter> = Box::new(OrcWriter::create(
        &fs,
        "/c/bloom",
        &schema(),
        OrcWriterOptions {
            stripe_size: 16 << 10,
            row_index_stride: 100,
            bloom_columns: vec![1], // the string column `b`
            bloom_fpp: 0.02,
            ..Default::default()
        },
        None,
    ));
    // Scattered string values: every group's lexical min/max spans nearly
    // the whole domain (useless to stats), but each concrete value lives
    // in only a handful of groups (prunable by bloom).
    let scatter = |i: i64| format!("value-{}", (i * 7919) % 509);
    let check = |row: &Row| {
        let a = row[0].as_int().unwrap();
        assert_eq!(row[1], Value::String(scatter(a)));
        a
    };
    for i in 0..4000i64 {
        w.write_row(&Row::new(vec![
            Value::Int(i),
            Value::String(scatter(i)),
            Value::Double(i as f64 / 3.0),
        ]))
        .unwrap();
    }
    w.close().unwrap();

    // An equality predicate on `b` that stats can't prune but bloom can.
    let sarg = SearchArgument::new(vec![PredicateLeaf::new(
        1,
        PredicateOp::Equals,
        Some(Value::String("value-11".into())),
    )]);
    let opts = |sarg: &SearchArgument| OrcReadOptions {
        sarg: Some(sarg.clone()),
        use_index: true,
        ..Default::default()
    };

    // Clean baseline: bloom pruning fires and every matching row is
    // still returned (the reader skips groups; row-level filtering is the
    // query engine's job, so surviving groups return non-matching rows
    // too).
    let mut clean = OrcReader::open(&fs, "/c/bloom", opts(&sarg)).unwrap();
    let infos: Vec<_> = clean.stripe_infos().to_vec();
    assert!(infos.iter().all(|si| si.bloom_len > 0), "bloom emitted");
    let mut clean_total = 0usize;
    let mut clean_rows: Vec<i64> = Vec::new();
    while let Some(row) = clean.next_row().unwrap() {
        let a = check(&row);
        clean_total += 1;
        if scatter(a) == "value-11" {
            clean_rows.push(a);
        }
    }
    let expect: Vec<i64> = (0..4000).filter(|&i| scatter(i) == "value-11").collect();
    assert_eq!(clean_rows, expect, "bloom pruning lost matching rows");
    assert!(
        clean.counters.groups_bloom_pruned > 0,
        "bloom filters should prune groups stats cannot"
    );
    assert_eq!(clean.counters.bloom_corrupt, 0);

    let mut data = fs.open("/c/bloom", None).unwrap().read_all().unwrap();
    let si = &infos[0];
    let bloom_start = (si.offset + si.index_len) as usize;
    let bloom_end = bloom_start + si.bloom_len as usize;

    // Tamper variants inside the first stripe's bloom section: single-bit
    // flips spread across it, plus a torn (half-zeroed) section.
    let mut variants: Vec<Vec<u8>> = (0..8)
        .map(|k| {
            let mut v = data.clone();
            v[bloom_start + k * si.bloom_len as usize / 8] ^= 0x5A;
            v
        })
        .collect();
    let mid = (bloom_start + bloom_end) / 2;
    data[mid..bloom_end].fill(0);
    variants.push(data);

    for (i, v) in variants.into_iter().enumerate() {
        let mut w = fs.create("/c/bloom-bad");
        w.write(&v);
        w.close();
        let mut r = OrcReader::open(&fs, "/c/bloom-bad", opts(&sarg)).unwrap();
        let mut got_total = 0usize;
        let mut got: Vec<i64> = Vec::new();
        while let Some(row) = r.next_row().unwrap() {
            let a = check(&row);
            got_total += 1;
            if scatter(a) == "value-11" {
                got.push(a);
            }
        }
        assert_eq!(got, expect, "variant {i}: degraded read lost rows");
        // Degradation means "read the group": never fewer rows than the
        // bloom-pruned clean read produced.
        assert!(
            got_total >= clean_total,
            "variant {i}: degraded read skipped groups it cannot vouch for"
        );
        assert!(
            r.counters.bloom_corrupt > 0,
            "variant {i}: degradation must be counted"
        );
    }
}

/// Bloom pruning must be exact for equality and IN predicates: never
/// drop a matching row, whatever the literal's type representation.
#[test]
fn bloom_pruning_never_loses_rows() {
    use hive_formats::orc::sarg::{PredicateLeaf, PredicateOp, SearchArgument};

    let fs = dfs();
    let mut w: Box<dyn TableWriter> = Box::new(OrcWriter::create(
        &fs,
        "/c/bloom2",
        &schema(),
        OrcWriterOptions {
            stripe_size: 16 << 10,
            row_index_stride: 100,
            bloom_columns: vec![0, 1, 2],
            ..Default::default()
        },
        None,
    ));
    for r in rows() {
        w.write_row(&r).unwrap();
    }
    w.close().unwrap();

    type RowPred = Box<dyn Fn(&Row) -> bool>;
    let cases: Vec<(PredicateLeaf, RowPred)> = vec![
        (
            PredicateLeaf::new(0, PredicateOp::Equals, Some(Value::Int(777))),
            Box::new(|r: &Row| r[0] == Value::Int(777)),
        ),
        (
            // Double literal against the bigint column: numeric coercion.
            PredicateLeaf::new(0, PredicateOp::Equals, Some(Value::Double(777.0))),
            Box::new(|r: &Row| r[0] == Value::Int(777)),
        ),
        (
            PredicateLeaf {
                column: 1,
                op: PredicateOp::In,
                literal: None,
                literal2: None,
                literal_list: vec![
                    Value::String("value-3".into()),
                    Value::String("value-19".into()),
                ],
            },
            Box::new(|r: &Row| {
                r[1] == Value::String("value-3".into()) || r[1] == Value::String("value-19".into())
            }),
        ),
        (
            PredicateLeaf::new(2, PredicateOp::Equals, Some(Value::Double(300.0))),
            Box::new(|r: &Row| r[2] == Value::Double(300.0)),
        ),
    ];
    for (leaf, want) in cases {
        let mut r = OrcReader::open(
            &fs,
            "/c/bloom2",
            OrcReadOptions {
                sarg: Some(SearchArgument::new(vec![leaf.clone()])),
                use_index: true,
                ..Default::default()
            },
        )
        .unwrap();
        let mut got = 0usize;
        while let Some(row) = r.next_row().unwrap() {
            if want(&row) {
                got += 1;
            }
        }
        let expect = rows().iter().filter(|r| want(r)).count();
        assert_eq!(got, expect, "bloom pruning lost rows for {leaf:?}");
    }
}

#[test]
fn sequencefile_survives_corruption() {
    let fs = dfs();
    let mut w: Box<dyn TableWriter> = Box::new(SequenceWriter::create(&fs, "/c/seq"));
    for r in rows() {
        w.write_row(&r).unwrap();
    }
    w.close().unwrap();
    let len = fs.len("/c/seq").unwrap() as usize;
    for k in 0..60 {
        let pos = k * len / 60;
        flip_byte(&fs, "/c/seq", "/c/seq-bad", pos);
        if let Ok(r) = SequenceReader::open(&fs, "/c/seq-bad", schema(), None, None) {
            let _ = drain(Box::new(r));
        }
    }
}
