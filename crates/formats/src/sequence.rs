//! SequenceFile: "a flat file consisting of binary key/value pairs"
//! (paper Section 3). Hive stores the row in the value and leaves the key
//! empty; rows are binary-serialized one at a time.

use crate::serde;
use crate::{TableReader, TableWriter};
use hive_common::{HiveError, Result, Row, Schema};
use hive_dfs::{Dfs, DfsReader, DfsWriter, NodeId};

const MAGIC: &[u8; 4] = b"SEQ6";

/// Writer of binary key/value records.
pub struct SequenceWriter {
    writer: DfsWriter,
    buf: Vec<u8>,
}

impl SequenceWriter {
    pub fn create(dfs: &Dfs, path: &str) -> SequenceWriter {
        let mut writer = dfs.create(path);
        writer.write(MAGIC);
        SequenceWriter {
            writer,
            buf: Vec::new(),
        }
    }
}

impl TableWriter for SequenceWriter {
    fn write_row(&mut self, row: &Row) -> Result<()> {
        self.buf.clear();
        serde::binary_serialize_row(row, &mut self.buf);
        // Record frame: varint key length (0, Hive leaves keys empty),
        // varint value length, value bytes.
        let mut frame = Vec::with_capacity(self.buf.len() + 8);
        hive_codec::varint::write_unsigned(&mut frame, 0);
        hive_codec::varint::write_unsigned(&mut frame, self.buf.len() as u64);
        self.writer.write(&frame);
        self.writer.write(&self.buf);
        Ok(())
    }

    fn close(self: Box<Self>) -> Result<u64> {
        self.writer.try_close()
    }
}

/// Sequential reader of binary records.
pub struct SequenceReader {
    reader: DfsReader,
    projection: Option<Vec<usize>>,
    offset: u64,
    buf: Vec<u8>,
    pos: usize,
}

const READ_CHUNK: usize = 1 << 20;

impl SequenceReader {
    pub fn open(
        dfs: &Dfs,
        path: &str,
        _schema: Schema,
        projection: Option<Vec<usize>>,
        node: Option<NodeId>,
    ) -> Result<SequenceReader> {
        let mut reader = dfs.open(path, node)?;
        let header = reader.read_at(0, 4)?;
        if header != MAGIC {
            return Err(HiveError::Format(format!(
                "not a SequenceFile: {path} (bad magic)"
            )));
        }
        Ok(SequenceReader {
            reader,
            projection,
            offset: 4,
            buf: Vec::new(),
            pos: 0,
        })
    }

    /// Ensure at least `need` unread bytes are buffered, if available.
    fn ensure(&mut self, need: usize) -> Result<()> {
        while self.buf.len() - self.pos < need && self.offset < self.reader.len() {
            let chunk = self.reader.read_at(self.offset, READ_CHUNK)?;
            self.offset += chunk.len() as u64;
            // Compact the consumed prefix occasionally.
            if self.pos > (1 << 20) {
                self.buf.drain(..self.pos);
                self.pos = 0;
            }
            self.buf.extend_from_slice(&chunk);
        }
        Ok(())
    }
}

impl TableReader for SequenceReader {
    fn next_row(&mut self) -> Result<Option<Row>> {
        self.ensure(10)?;
        if self.pos >= self.buf.len() {
            return Ok(None);
        }
        let key_len = hive_codec::varint::read_unsigned(&self.buf, &mut self.pos)? as usize;
        let val_len = hive_codec::varint::read_unsigned(&self.buf, &mut self.pos)? as usize;
        self.ensure(key_len + val_len)?;
        if self.buf.len() - self.pos < key_len + val_len {
            return Err(HiveError::Format("truncated SequenceFile record".into()));
        }
        self.pos += key_len; // keys are empty in Hive's usage
        let mut vpos = self.pos;
        let row = serde::binary_deserialize_row(&self.buf, &mut vpos)?;
        self.pos += val_len;
        if vpos != self.pos {
            return Err(HiveError::Format(
                "SequenceFile value length disagrees with row encoding".into(),
            ));
        }
        Ok(Some(match &self.projection {
            Some(p) => row.project(p),
            None => row,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_common::Value;

    fn dfs() -> Dfs {
        Dfs::new(hive_dfs::DfsConfig {
            block_size: 1 << 20,
            replication: 1,
            nodes: 2,
        })
    }

    fn schema() -> Schema {
        Schema::parse(&[("id", "bigint"), ("payload", "map<string,int>")]).unwrap()
    }

    #[test]
    fn round_trip_with_complex_types() {
        let fs = dfs();
        let mut w: Box<dyn TableWriter> = Box::new(SequenceWriter::create(&fs, "/t/seq"));
        for i in 0..500 {
            w.write_row(&Row::new(vec![
                Value::Int(i),
                Value::Map(vec![(Value::String(format!("k{i}")), Value::Int(i * 2))]),
            ]))
            .unwrap();
        }
        w.close().unwrap();

        let mut r = SequenceReader::open(&fs, "/t/seq", schema(), None, None).unwrap();
        let mut n = 0i64;
        while let Some(row) = r.next_row().unwrap() {
            assert_eq!(row[0], Value::Int(n));
            n += 1;
        }
        assert_eq!(n, 500);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let fs = dfs();
        let mut w = fs.create("/t/notseq");
        w.write(b"nope, not a sequence file");
        w.close();
        assert!(SequenceReader::open(&fs, "/t/notseq", schema(), None, None).is_err());
    }

    #[test]
    fn empty_file_yields_no_rows() {
        let fs = dfs();
        let w: Box<dyn TableWriter> = Box::new(SequenceWriter::create(&fs, "/t/empty"));
        w.close().unwrap();
        let mut r = SequenceReader::open(&fs, "/t/empty", schema(), None, None).unwrap();
        assert!(r.next_row().unwrap().is_none());
    }

    #[test]
    fn projection_applies() {
        let fs = dfs();
        let mut w: Box<dyn TableWriter> = Box::new(SequenceWriter::create(&fs, "/t/proj"));
        w.write_row(&Row::new(vec![Value::Int(1), Value::Map(vec![])]))
            .unwrap();
        w.close().unwrap();
        let mut r = SequenceReader::open(&fs, "/t/proj", schema(), Some(vec![0]), None).unwrap();
        assert_eq!(r.next_row().unwrap().unwrap().values(), &[Value::Int(1)]);
    }
}
