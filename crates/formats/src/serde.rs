//! SerDes: row serialization for the data-type-agnostic formats.
//!
//! `TextSerDe` mirrors Hive's LazySimpleSerDe wire shape (field/collection/
//! map-key delimiters, `\N` for NULL). `BinarySerDe` is the length-prefixed
//! binary encoding used for SequenceFile values and RCFile column cells —
//! one value at a time, with no type-specific compression, which is exactly
//! the shortcoming ORC removes (paper Section 3, first shortcoming).

use hive_common::{DataType, HiveError, Result, Row, Schema, Value};

/// Hive's default delimiters (ctrl-A / ctrl-B / ctrl-C).
pub const FIELD_DELIM: u8 = 0x01;
pub const COLLECTION_DELIM: u8 = 0x02;
pub const MAPKEY_DELIM: u8 = 0x03;
const NULL_TOKEN: &[u8] = b"\\N";

/// Text serialization of one row (no trailing newline).
pub fn text_serialize(row: &Row, out: &mut Vec<u8>) {
    for (i, v) in row.values().iter().enumerate() {
        if i > 0 {
            out.push(FIELD_DELIM);
        }
        text_value(v, out, 0);
    }
}

/// Text-serialize a single value (RCFile's ColumnarSerDe cell encoding).
pub fn text_serialize_value(v: &Value, out: &mut Vec<u8>) {
    text_value(v, out, 0);
}

/// Parse a single text-serialized cell back into a value of type `dt`.
pub fn text_deserialize_value(raw: &[u8], dt: &DataType) -> Result<Value> {
    parse_text_value(raw, dt, 0)
}

fn text_value(v: &Value, out: &mut Vec<u8>, depth: u8) {
    // Nested collections rotate through deeper delimiters like Hive does;
    // two levels are enough for the workloads here.
    let coll = COLLECTION_DELIM + depth * 2;
    let mk = MAPKEY_DELIM + depth * 2;
    match v {
        Value::Null => out.extend_from_slice(NULL_TOKEN),
        Value::Boolean(b) => out.extend_from_slice(if *b { b"true" } else { b"false" }),
        Value::Int(x) => out.extend_from_slice(x.to_string().as_bytes()),
        Value::Double(x) => out.extend_from_slice(format_double(*x).as_bytes()),
        Value::Timestamp(x) => out.extend_from_slice(x.to_string().as_bytes()),
        Value::String(s) => out.extend_from_slice(s.as_bytes()),
        Value::Array(items) => {
            for (i, it) in items.iter().enumerate() {
                if i > 0 {
                    out.push(coll);
                }
                text_value(it, out, depth + 1);
            }
        }
        Value::Map(entries) => {
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(coll);
                }
                text_value(k, out, depth + 1);
                out.push(mk);
                text_value(val, out, depth + 1);
            }
        }
        Value::Struct(fields) => {
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(coll);
                }
                text_value(f, out, depth + 1);
            }
        }
        Value::Union(tag, val) => {
            out.extend_from_slice(tag.to_string().as_bytes());
            out.push(mk);
            text_value(val, out, depth + 1);
        }
    }
}

fn format_double(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

/// Deserialize one text line back into a row for `schema`.
pub fn text_deserialize(line: &[u8], schema: &Schema) -> Result<Row> {
    let fields: Vec<&[u8]> = split(line, FIELD_DELIM);
    let mut values = Vec::with_capacity(schema.len());
    for (i, f) in schema.fields().iter().enumerate() {
        let raw: &[u8] = fields.get(i).copied().unwrap_or(NULL_TOKEN);
        values.push(parse_text_value(raw, &f.data_type, 0)?);
    }
    Ok(Row::new(values))
}

fn split(data: &[u8], delim: u8) -> Vec<&[u8]> {
    if data.is_empty() {
        return vec![b""];
    }
    data.split(|b| *b == delim).collect()
}

fn parse_text_value(raw: &[u8], dt: &DataType, depth: u8) -> Result<Value> {
    if raw == NULL_TOKEN {
        return Ok(Value::Null);
    }
    let coll = COLLECTION_DELIM + depth * 2;
    let mk = MAPKEY_DELIM + depth * 2;
    let text = || String::from_utf8_lossy(raw).into_owned();
    match dt {
        DataType::Boolean => match raw {
            b"true" | b"TRUE" | b"1" => Ok(Value::Boolean(true)),
            b"false" | b"FALSE" | b"0" => Ok(Value::Boolean(false)),
            _ => Ok(Value::Null), // Hive yields NULL for malformed cells
        },
        DataType::Int => Ok(text().parse::<i64>().map(Value::Int).unwrap_or(Value::Null)),
        DataType::Double => Ok(text()
            .parse::<f64>()
            .map(Value::Double)
            .unwrap_or(Value::Null)),
        DataType::Timestamp => Ok(text()
            .parse::<i64>()
            .map(Value::Timestamp)
            .unwrap_or(Value::Null)),
        DataType::String => Ok(Value::String(text())),
        DataType::Array(elem) => {
            if raw.is_empty() {
                return Ok(Value::Array(Vec::new()));
            }
            split(raw, coll)
                .into_iter()
                .map(|part| parse_text_value(part, elem, depth + 1))
                .collect::<Result<Vec<_>>>()
                .map(Value::Array)
        }
        DataType::Map(k, v) => {
            if raw.is_empty() {
                return Ok(Value::Map(Vec::new()));
            }
            let mut entries = Vec::new();
            for part in split(raw, coll) {
                let kv: Vec<&[u8]> = split(part, mk);
                if kv.len() != 2 {
                    return Err(HiveError::SerDe(format!(
                        "malformed map entry `{}`",
                        String::from_utf8_lossy(part)
                    )));
                }
                entries.push((
                    parse_text_value(kv[0], k, depth + 1)?,
                    parse_text_value(kv[1], v, depth + 1)?,
                ));
            }
            Ok(Value::Map(entries))
        }
        DataType::Struct(fields) => {
            let parts = split(raw, coll);
            let mut vals = Vec::with_capacity(fields.len());
            for (i, (_, ft)) in fields.iter().enumerate() {
                let part: &[u8] = parts.get(i).copied().unwrap_or(NULL_TOKEN);
                vals.push(parse_text_value(part, ft, depth + 1)?);
            }
            Ok(Value::Struct(vals))
        }
        DataType::Union(alts) => {
            let kv: Vec<&[u8]> = split(raw, mk);
            if kv.len() != 2 {
                return Err(HiveError::SerDe("malformed union cell".into()));
            }
            let tag: u8 = String::from_utf8_lossy(kv[0])
                .parse()
                .map_err(|_| HiveError::SerDe("bad union tag".into()))?;
            let alt = alts
                .get(tag as usize)
                .ok_or_else(|| HiveError::SerDe(format!("union tag {tag} out of range")))?;
            Ok(Value::Union(
                tag,
                Box::new(parse_text_value(kv[1], alt, depth + 1)?),
            ))
        }
    }
}

// ---------------------------------------------------------------------------
// Binary SerDe
// ---------------------------------------------------------------------------

/// Binary-serialize one value (self-describing tag + payload).
pub fn binary_serialize_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0),
        Value::Boolean(b) => {
            out.push(1);
            out.push(*b as u8);
        }
        Value::Int(x) => {
            out.push(2);
            hive_codec::varint::write_signed(out, *x);
        }
        Value::Double(x) => {
            out.push(3);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::String(s) => {
            out.push(4);
            hive_codec::varint::write_unsigned(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Timestamp(x) => {
            out.push(5);
            hive_codec::varint::write_signed(out, *x);
        }
        Value::Array(items) => {
            out.push(6);
            hive_codec::varint::write_unsigned(out, items.len() as u64);
            for it in items {
                binary_serialize_value(it, out);
            }
        }
        Value::Map(entries) => {
            out.push(7);
            hive_codec::varint::write_unsigned(out, entries.len() as u64);
            for (k, val) in entries {
                binary_serialize_value(k, out);
                binary_serialize_value(val, out);
            }
        }
        Value::Struct(fields) => {
            out.push(8);
            hive_codec::varint::write_unsigned(out, fields.len() as u64);
            for f in fields {
                binary_serialize_value(f, out);
            }
        }
        Value::Union(tag, val) => {
            out.push(9);
            out.push(*tag);
            binary_serialize_value(val, out);
        }
    }
}

/// Binary-deserialize one value at `*pos`, advancing it.
pub fn binary_deserialize_value(buf: &[u8], pos: &mut usize) -> Result<Value> {
    let tag = *buf
        .get(*pos)
        .ok_or_else(|| HiveError::SerDe("binary value truncated".into()))?;
    *pos += 1;
    match tag {
        0 => Ok(Value::Null),
        1 => {
            let b = *buf
                .get(*pos)
                .ok_or_else(|| HiveError::SerDe("boolean truncated".into()))?;
            *pos += 1;
            Ok(Value::Boolean(b != 0))
        }
        2 => Ok(Value::Int(hive_codec::varint::read_signed(buf, pos)?)),
        3 => {
            if *pos + 8 > buf.len() {
                return Err(HiveError::SerDe("double truncated".into()));
            }
            let mut b = [0u8; 8];
            b.copy_from_slice(&buf[*pos..*pos + 8]);
            *pos += 8;
            Ok(Value::Double(f64::from_le_bytes(b)))
        }
        4 => {
            let n = hive_codec::varint::read_unsigned(buf, pos)? as usize;
            if *pos + n > buf.len() {
                return Err(HiveError::SerDe("string truncated".into()));
            }
            let s = String::from_utf8_lossy(&buf[*pos..*pos + n]).into_owned();
            *pos += n;
            Ok(Value::String(s))
        }
        5 => Ok(Value::Timestamp(hive_codec::varint::read_signed(buf, pos)?)),
        6 => {
            let n = hive_codec::varint::read_unsigned(buf, pos)? as usize;
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                items.push(binary_deserialize_value(buf, pos)?);
            }
            Ok(Value::Array(items))
        }
        7 => {
            let n = hive_codec::varint::read_unsigned(buf, pos)? as usize;
            let mut entries = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let k = binary_deserialize_value(buf, pos)?;
                let v = binary_deserialize_value(buf, pos)?;
                entries.push((k, v));
            }
            Ok(Value::Map(entries))
        }
        8 => {
            let n = hive_codec::varint::read_unsigned(buf, pos)? as usize;
            let mut fields = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                fields.push(binary_deserialize_value(buf, pos)?);
            }
            Ok(Value::Struct(fields))
        }
        9 => {
            let t = *buf
                .get(*pos)
                .ok_or_else(|| HiveError::SerDe("union truncated".into()))?;
            *pos += 1;
            Ok(Value::Union(
                t,
                Box::new(binary_deserialize_value(buf, pos)?),
            ))
        }
        other => Err(HiveError::SerDe(format!(
            "unknown binary value tag {other}"
        ))),
    }
}

/// Binary-serialize a whole row.
pub fn binary_serialize_row(row: &Row, out: &mut Vec<u8>) {
    hive_codec::varint::write_unsigned(out, row.len() as u64);
    for v in row.values() {
        binary_serialize_value(v, out);
    }
}

/// Binary-deserialize a whole row.
pub fn binary_deserialize_row(buf: &[u8], pos: &mut usize) -> Result<Row> {
    let n = hive_codec::varint::read_unsigned(buf, pos)? as usize;
    let mut vals = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        vals.push(binary_deserialize_value(buf, pos)?);
    }
    Ok(Row::new(vals))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> Schema {
        Schema::parse(&[
            ("a", "bigint"),
            ("b", "string"),
            ("c", "double"),
            ("d", "array<int>"),
            ("e", "map<string,int>"),
            ("f", "struct<x:int,y:string>"),
            ("g", "boolean"),
        ])
        .unwrap()
    }

    fn sample_row() -> Row {
        Row::new(vec![
            Value::Int(-42),
            Value::String("hello world".into()),
            Value::Double(3.25),
            Value::Array(vec![Value::Int(1), Value::Int(2), Value::Int(3)]),
            Value::Map(vec![
                (Value::String("k1".into()), Value::Int(10)),
                (Value::String("k2".into()), Value::Int(20)),
            ]),
            Value::Struct(vec![Value::Int(7), Value::String("s".into())]),
            Value::Boolean(true),
        ])
    }

    #[test]
    fn text_round_trip() {
        let row = sample_row();
        let mut buf = Vec::new();
        text_serialize(&row, &mut buf);
        let back = text_deserialize(&buf, &sample_schema()).unwrap();
        assert_eq!(back, row);
    }

    #[test]
    fn text_nulls_round_trip() {
        let schema = Schema::parse(&[("a", "bigint"), ("b", "string")]).unwrap();
        let row = Row::new(vec![Value::Null, Value::Null]);
        let mut buf = Vec::new();
        text_serialize(&row, &mut buf);
        assert_eq!(buf, b"\\N\x01\\N");
        assert_eq!(text_deserialize(&buf, &schema).unwrap(), row);
    }

    #[test]
    fn text_malformed_numbers_become_null() {
        let schema = Schema::parse(&[("a", "bigint")]).unwrap();
        let back = text_deserialize(b"not-a-number", &schema).unwrap();
        assert_eq!(back[0], Value::Null);
    }

    #[test]
    fn binary_round_trip() {
        let row = sample_row();
        let mut buf = Vec::new();
        binary_serialize_row(&row, &mut buf);
        let mut pos = 0;
        let back = binary_deserialize_row(&buf, &mut pos).unwrap();
        assert_eq!(back, row);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn binary_union_and_timestamp() {
        let row = Row::new(vec![
            Value::Union(1, Box::new(Value::String("u".into()))),
            Value::Timestamp(1_400_000_000_000_000),
        ]);
        let mut buf = Vec::new();
        binary_serialize_row(&row, &mut buf);
        let mut pos = 0;
        assert_eq!(binary_deserialize_row(&buf, &mut pos).unwrap(), row);
    }

    #[test]
    fn binary_truncation_errors() {
        let mut buf = Vec::new();
        binary_serialize_row(&sample_row(), &mut buf);
        let mut pos = 0;
        assert!(binary_deserialize_row(&buf[..buf.len() - 3], &mut pos).is_err());
    }

    #[test]
    fn text_empty_string_vs_empty_array() {
        let schema = Schema::parse(&[("s", "string"), ("a", "array<int>")]).unwrap();
        let row = Row::new(vec![Value::String(String::new()), Value::Array(vec![])]);
        let mut buf = Vec::new();
        text_serialize(&row, &mut buf);
        let back = text_deserialize(&buf, &schema).unwrap();
        assert_eq!(back, row);
    }
}
