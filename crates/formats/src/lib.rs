//! File formats: TextFile, SequenceFile, RCFile and ORC (paper Section 4).
//!
//! The four formats trace Hive's storage evolution as the paper tells it:
//!
//! * **TextFile** / **SequenceFile** — the data-type-agnostic row formats
//!   Hive started with; every row is (de)serialized through a SerDe.
//! * **RCFile** — the first columnar format: 4 MB row groups, columns stored
//!   as opaque one-row-at-a-time serialized blobs, no indexes, complex types
//!   not decomposed.
//! * **ORC** — the paper's contribution: type-aware writer, 256 MB stripes,
//!   complex-type column decomposition, three-level statistics, position
//!   pointers, predicate pushdown, two-level compression, a writer memory
//!   manager, and a vectorized reader.

pub mod delta;
pub mod factory;
pub mod orc;
pub mod rcfile;
pub mod sequence;
pub mod serde;
pub mod text;

pub use delta::{AcidOverlay, DeleteSet, TableSnapshot};
pub use factory::{create_writer, open_reader, FormatKind, ReadOptions, WriteOptions};
pub use orc::sarg::{PredicateLeaf, PredicateOp, SearchArgument, TruthValue};

use hive_common::{Result, Row};
use hive_vector::VectorizedRowBatch;

/// A row-at-a-time writer for one file of a table.
pub trait TableWriter {
    fn write_row(&mut self, row: &Row) -> Result<()>;

    /// Finish the file; returns its final length in bytes.
    fn close(self: Box<Self>) -> Result<u64>;

    /// Current in-memory buffering estimate (ORC's memory manager input).
    fn memory_estimate(&self) -> usize {
        0
    }
}

/// Input-side read statistics a reader can report for observability:
/// how much of the file the format's indexes let it *not* read, and how
/// many rows corrupt-data salvage dropped. Formats without stripes or
/// indexes report zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadStats {
    /// Stripes in the file overlapping this reader's split.
    pub stripes_total: u64,
    /// Stripes actually read after stripe-level pruning.
    pub stripes_read: u64,
    /// Row index groups considered.
    pub groups_total: u64,
    /// Row index groups read after predicate-pushdown skipping.
    pub groups_read: u64,
    /// Rows dropped by corrupt-data degradation.
    pub rows_skipped: u64,
    /// Decoded file-footer metadata served from / filled into the
    /// process-wide ORC metadata cache. Zero when the cache is off.
    pub footer_cache_hits: u64,
    pub footer_cache_misses: u64,
    /// Decoded stripe-footer and row-index entries served from / filled
    /// into the metadata cache. Zero when the cache is off.
    pub index_cache_hits: u64,
    pub index_cache_misses: u64,
    /// Index groups pruned by bloom-filter probes after surviving min/max
    /// statistics (ORC only; zero without configured bloom columns).
    pub groups_bloom_pruned: u64,
    /// Bloom sections that failed CRC/decode and degraded to stats-only
    /// group selection.
    pub bloom_corrupt: u64,
}

/// A row-at-a-time reader over one file. Projection is applied by the
/// reader: returned rows contain exactly the projected columns, in
/// projection order.
pub trait TableReader {
    fn next_row(&mut self) -> Result<Option<Row>>;

    /// Fill a vectorized batch; returns false when input is exhausted and no
    /// rows were produced. The default adapter materializes rows (used by
    /// formats without a native vectorized reader — only ORC has one, per
    /// paper Section 6.5).
    fn next_batch(&mut self, batch: &mut VectorizedRowBatch) -> Result<bool> {
        batch.reset();
        let mut n = 0;
        while n < batch.max_size {
            match self.next_row()? {
                Some(row) => {
                    for (c, v) in row.values().iter().enumerate() {
                        hive_vector::row_convert::set_value(&mut batch.columns[c], n, v)?;
                    }
                    n += 1;
                }
                None => break,
            }
        }
        batch.size = n;
        Ok(n > 0)
    }

    /// Physical file ordinal of the row most recently returned by
    /// `next_row` — *skip-aware*: stripes and index groups the reader
    /// skipped (splits, predicate pushdown, corrupt-data salvage) still
    /// advance the ordinal, so it always addresses the row's true position
    /// in the file. ACID delete keys are `(file, ordinal)`, so merge-on-read
    /// uses this to mask deleted rows even when data skipping is active.
    /// `None` means the format does not track ordinals; callers must fall
    /// back to sequential counting (correct only for whole-file scans).
    fn last_row_ordinal(&self) -> Option<u64> {
        None
    }

    /// Contiguous `(start ordinal, rows)` runs covering, in order, the
    /// physical rows filled by the most recent `next_batch` call. The run
    /// lengths sum to the batch's physical size. Same skip-awareness and
    /// `None` semantics as [`TableReader::last_row_ordinal`].
    fn batch_ordinal_runs(&self) -> Option<&[(u64, u64)]> {
        None
    }

    /// Rows dropped by corrupt-data degradation
    /// (`hive.exec.orc.skip.corrupt.data`). Formats without salvage
    /// support never skip anything.
    fn rows_skipped(&self) -> u64 {
        0
    }

    /// Read-side statistics (stripe/index-group pruning, salvage). Only
    /// ORC reports non-zero values; other formats use the default.
    fn read_stats(&self) -> ReadStats {
        ReadStats::default()
    }
}
