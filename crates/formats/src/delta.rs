//! ACID delta-store support: snapshot manifests, delete files, and the
//! merge-on-read overlay (paper Section 7 outlook; modern Hive ACID).
//!
//! An ACID table directory holds immutable **base** files, **delta** files
//! (inserted rows, written in the table's own format so the scan layer
//! reads them like any other input), **delete** files (keys of rows masked
//! out, `(file path, row ordinal)`), and a chain of `_manifest_<N>` files.
//! The manifest is the *only* source of truth: a file not listed by the
//! current manifest does not exist as far as readers are concerned, which
//! is what makes crash recovery trivial — orphans from a died writer are
//! invisible garbage, never partial state.
//!
//! Every manifest carries its own CRC32 trailer. A torn manifest (the
//! write died mid-stream) fails its checksum and is skipped, so the
//! newest *valid* manifest defines the snapshot; publishing a manifest via
//! atomic rename is therefore the commit point of every transaction.

use hive_common::{HiveError, Result};
use hive_dfs::{crc, Dfs};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Basename prefix of snapshot manifests: `_manifest_<version>`.
pub const MANIFEST_PREFIX: &str = "_manifest_";
/// Basename prefix of insert-delta files: `delta_<txn>`.
pub const DELTA_PREFIX: &str = "delta_";
/// Basename prefix of delete files: `delete_<txn>`.
pub const DELETE_PREFIX: &str = "delete_";
/// Basename prefix of compaction-written base files: `base_<txn>`. Original
/// (pre-ACID) base files keep whatever name they were loaded under.
pub const BASE_PREFIX: &str = "base_";

/// Whether a path's basename is ACID bookkeeping (manifest, delta, or
/// delete file) rather than plain base data. Raw directory listings must
/// exclude these: their visibility is decided by the manifest alone.
pub fn is_acid_path(path: &str) -> bool {
    let base = path.rsplit('/').next().unwrap_or(path);
    base.starts_with(MANIFEST_PREFIX)
        || base.starts_with(DELTA_PREFIX)
        || base.starts_with(DELETE_PREFIX)
        || base.starts_with(BASE_PREFIX)
}

/// One committed snapshot of an ACID table — the decoded `_manifest_<N>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSnapshot {
    /// Manifest version `N`; doubles as the table's snapshot generation.
    pub version: u64,
    /// Highest transaction id any listed file belongs to. Recovery deletes
    /// orphan delta/delete files with a txn beyond this.
    pub last_txn: u64,
    /// Base files, in scan order.
    pub base: Vec<String>,
    /// Insert deltas as `(txn, path)`, in commit order.
    pub deltas: Vec<(u64, String)>,
    /// Delete files as `(txn, path)`, in commit order.
    pub deletes: Vec<(u64, String)>,
}

impl TableSnapshot {
    /// An empty (pre-ACID) snapshot over existing base files.
    pub fn initial(base: Vec<String>) -> TableSnapshot {
        TableSnapshot {
            version: 0,
            last_txn: 0,
            base,
            deltas: Vec::new(),
            deletes: Vec::new(),
        }
    }

    /// Every file a reader of this snapshot scans: base files then deltas,
    /// in commit order (insert deltas append after base rows).
    pub fn scan_paths(&self) -> Vec<String> {
        let mut out = self.base.clone();
        out.extend(self.deltas.iter().map(|(_, p)| p.clone()));
        out
    }

    /// Serialize with a CRC32 trailer so torn manifests are detectable.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = String::new();
        body.push_str("hivemanifest v1\n");
        body.push_str(&format!("version {}\n", self.version));
        body.push_str(&format!("txn {}\n", self.last_txn));
        for p in &self.base {
            body.push_str(&format!("base {p}\n"));
        }
        for (txn, p) in &self.deltas {
            body.push_str(&format!("delta {txn} {p}\n"));
        }
        for (txn, p) in &self.deletes {
            body.push_str(&format!("delete {txn} {p}\n"));
        }
        let crc = crc::crc32(body.as_bytes());
        body.push_str(&format!("crc {crc:08x}\n"));
        body.into_bytes()
    }

    /// Parse and CRC-verify a manifest image. Any mismatch — truncated
    /// file, missing trailer, flipped byte — is a `Format` error; callers
    /// treat such a manifest as never committed.
    pub fn decode(bytes: &[u8]) -> Result<TableSnapshot> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| HiveError::Format("manifest is not utf-8".into()))?;
        if !text.ends_with('\n') {
            return Err(HiveError::Format("manifest truncated".into()));
        }
        let Some(crc_line_start) = text.trim_end_matches('\n').rfind('\n') else {
            return Err(HiveError::Format("manifest truncated".into()));
        };
        let (body, trailer) = text.split_at(crc_line_start + 1);
        let trailer = trailer.trim_end();
        let Some(stated) = trailer.strip_prefix("crc ") else {
            return Err(HiveError::Format("manifest missing crc trailer".into()));
        };
        let stated = u32::from_str_radix(stated, 16)
            .map_err(|_| HiveError::Format("manifest crc trailer malformed".into()))?;
        let actual = crc::crc32(body.as_bytes());
        if stated != actual {
            return Err(HiveError::Format(format!(
                "manifest crc mismatch (stated {stated:08x}, actual {actual:08x})"
            )));
        }
        let mut lines = body.lines();
        if lines.next() != Some("hivemanifest v1") {
            return Err(HiveError::Format("manifest bad magic".into()));
        }
        let mut snap = TableSnapshot::initial(Vec::new());
        for line in lines {
            let mut parts = line.splitn(2, ' ');
            let (kw, rest) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
            match kw {
                "version" => {
                    snap.version = rest
                        .parse()
                        .map_err(|_| HiveError::Format("manifest bad version".into()))?;
                }
                "txn" => {
                    snap.last_txn = rest
                        .parse()
                        .map_err(|_| HiveError::Format("manifest bad txn".into()))?;
                }
                "base" => snap.base.push(rest.to_string()),
                "delta" | "delete" => {
                    let mut halves = rest.splitn(2, ' ');
                    let txn: u64 = halves
                        .next()
                        .unwrap_or("")
                        .parse()
                        .map_err(|_| HiveError::Format(format!("manifest bad {kw} line")))?;
                    let path = halves
                        .next()
                        .ok_or_else(|| HiveError::Format(format!("manifest bad {kw} line")))?;
                    if kw == "delta" {
                        snap.deltas.push((txn, path.to_string()));
                    } else {
                        snap.deletes.push((txn, path.to_string()));
                    }
                }
                other => {
                    return Err(HiveError::Format(format!(
                        "manifest unknown keyword `{other}`"
                    )));
                }
            }
        }
        Ok(snap)
    }
}

/// The manifest path for version `version` of the table at `location`
/// (trailing `/` included).
pub fn manifest_path(location: &str, version: u64) -> String {
    format!("{location}{MANIFEST_PREFIX}{version:010}")
}

/// Load the newest *valid* snapshot under `location`, or `None` when the
/// table has never committed a transaction (non-ACID so far). Manifests
/// that fail to parse or CRC-verify are skipped — a torn manifest never
/// happened; the previous one still defines the table.
pub fn load_snapshot(dfs: &Dfs, location: &str) -> Result<Option<TableSnapshot>> {
    let prefix = format!("{location}{MANIFEST_PREFIX}");
    let mut versions: Vec<(u64, String)> = dfs
        .list(&prefix)
        .into_iter()
        .filter_map(|p| {
            p.strip_prefix(&prefix)
                .and_then(|s| s.parse::<u64>().ok())
                .map(|v| (v, p))
        })
        .collect();
    versions.sort_unstable_by_key(|v| std::cmp::Reverse(v.0));
    for (_, path) in versions {
        let mut reader = dfs.open(&path, None)?;
        let Ok(bytes) = reader.read_all() else {
            continue; // tampered manifest: skip, an older one governs
        };
        if let Ok(snap) = TableSnapshot::decode(&bytes) {
            return Ok(Some(snap));
        }
    }
    Ok(None)
}

/// The key of one masked-out row: the file that holds it and the row's
/// ordinal within that file (0-based, in the file's physical row order —
/// stable because base and delta files are immutable).
pub type DeleteKey = (String, u64);

/// Serialize one delete file's keys with a CRC trailer.
pub fn encode_delete_file(keys: &[DeleteKey]) -> Vec<u8> {
    let mut body = String::from("hivedelete v1\n");
    for (path, ordinal) in keys {
        body.push_str(&format!("{ordinal}\t{path}\n"));
    }
    let crc = crc::crc32(body.as_bytes());
    body.push_str(&format!("crc {crc:08x}\n"));
    body.into_bytes()
}

/// Parse and CRC-verify one delete file.
pub fn decode_delete_file(bytes: &[u8]) -> Result<Vec<DeleteKey>> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| HiveError::Format("delete file is not utf-8".into()))?;
    if !text.ends_with('\n') {
        return Err(HiveError::Format("delete file truncated".into()));
    }
    let Some(crc_line_start) = text.trim_end_matches('\n').rfind('\n') else {
        return Err(HiveError::Format("delete file truncated".into()));
    };
    let (body, trailer) = text.split_at(crc_line_start + 1);
    let stated = trailer
        .trim_end()
        .strip_prefix("crc ")
        .and_then(|s| u32::from_str_radix(s, 16).ok())
        .ok_or_else(|| HiveError::Format("delete file missing crc trailer".into()))?;
    if stated != crc::crc32(body.as_bytes()) {
        return Err(HiveError::Format("delete file crc mismatch".into()));
    }
    let mut lines = body.lines();
    if lines.next() != Some("hivedelete v1") {
        return Err(HiveError::Format("delete file bad magic".into()));
    }
    lines
        .map(|line| {
            let mut halves = line.splitn(2, '\t');
            let ordinal: u64 = halves
                .next()
                .unwrap_or("")
                .parse()
                .map_err(|_| HiveError::Format("delete file bad ordinal".into()))?;
            let path = halves
                .next()
                .ok_or_else(|| HiveError::Format("delete file bad line".into()))?;
            Ok((path.to_string(), ordinal))
        })
        .collect()
}

/// The union of a snapshot's delete files: which `(path, ordinal)` rows
/// the merge-on-read scan must mask.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct DeleteSet {
    keys: BTreeSet<DeleteKey>,
}

impl DeleteSet {
    pub fn insert(&mut self, path: String, ordinal: u64) {
        self.keys.insert((path, ordinal));
    }

    pub fn contains(&self, path: &str, ordinal: u64) -> bool {
        self.keys.contains(&(path.to_string(), ordinal))
    }

    /// Deleted ordinals of `path` inside `[start, start + len)`, ascending.
    /// One ranged probe per batch run keeps selected[]-level masking
    /// O(log n + hits) instead of O(batch size) point lookups.
    pub fn masked_in(&self, path: &str, start: u64, len: u64) -> impl Iterator<Item = u64> + '_ {
        let lo = (path.to_string(), start);
        let hi = (path.to_string(), start.saturating_add(len));
        self.keys.range(lo..hi).map(|(_, ord)| *ord)
    }

    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &DeleteKey> {
        self.keys.iter()
    }
}

/// Read and union every delete file of `snapshot`.
pub fn load_delete_set(dfs: &Dfs, snapshot: &TableSnapshot) -> Result<DeleteSet> {
    let mut set = DeleteSet::default();
    for (_, path) in &snapshot.deletes {
        let bytes = dfs.open(path, None)?.read_all()?;
        for (file, ordinal) in decode_delete_file(&bytes)? {
            set.insert(file, ordinal);
        }
    }
    Ok(set)
}

/// The merge-on-read overlay a planner attaches to an ACID table's scan:
/// which snapshot the statement pinned, which of its paths are deltas, and
/// which rows are masked out. Delete keys address rows by skip-aware file
/// ordinal, which readers that support data skipping (ORC) report per row
/// or per batch run — so predicate pushdown and block-range splits stay
/// enabled under an overlay. Formats without ordinal tracking are scanned
/// whole-file so sequential counting still lines up.
#[derive(Debug, Clone)]
pub struct AcidOverlay {
    /// Manifest version pinned at plan time.
    pub snapshot_gen: u64,
    /// Paths (among the input's paths) that are insert deltas.
    pub delta_paths: Vec<String>,
    /// Rows masked out of base and delta files.
    pub deletes: Arc<DeleteSet>,
}

impl AcidOverlay {
    pub fn is_delta(&self, path: &str) -> bool {
        self.delta_paths.iter().any(|p| p == path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_dfs::DfsConfig;

    fn fs() -> Dfs {
        Dfs::new(DfsConfig {
            block_size: 1 << 20,
            replication: 1,
            nodes: 2,
        })
    }

    fn snap() -> TableSnapshot {
        TableSnapshot {
            version: 3,
            last_txn: 7,
            base: vec!["/w/t/part-00000".into()],
            deltas: vec![(5, "/w/t/delta_5".into()), (7, "/w/t/delta_7".into())],
            deletes: vec![(6, "/w/t/delete_6".into())],
        }
    }

    #[test]
    fn manifest_round_trips() {
        let s = snap();
        assert_eq!(TableSnapshot::decode(&s.encode()).unwrap(), s);
        assert_eq!(
            s.scan_paths(),
            vec!["/w/t/part-00000", "/w/t/delta_5", "/w/t/delta_7"]
        );
    }

    #[test]
    fn torn_manifest_fails_its_crc() {
        let bytes = snap().encode();
        // Any strict prefix (a torn write) must fail to decode.
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                TableSnapshot::decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        // A flipped byte fails too.
        let mut flipped = bytes.clone();
        flipped[20] ^= 0x40;
        assert!(TableSnapshot::decode(&flipped).is_err());
    }

    #[test]
    fn newest_valid_manifest_wins_torn_ones_are_skipped() {
        let dfs = fs();
        let mut old = snap();
        old.version = 1;
        let mut w = dfs.create(&manifest_path("/w/t/", 1));
        w.write(&old.encode());
        w.close();
        // Manifest 2 committed fully.
        let mut cur = snap();
        cur.version = 2;
        let mut w = dfs.create(&manifest_path("/w/t/", 2));
        w.write(&cur.encode());
        w.close();
        // Manifest 3 is torn: a prefix of its bytes.
        let mut newer = snap();
        newer.version = 3;
        let bytes = newer.encode();
        let mut w = dfs.create(&manifest_path("/w/t/", 3));
        w.write(&bytes[..bytes.len() / 2]);
        w.close();

        let loaded = load_snapshot(&dfs, "/w/t/").unwrap().unwrap();
        assert_eq!(loaded.version, 2, "torn manifest 3 must be invisible");
        assert!(load_snapshot(&dfs, "/w/empty/").unwrap().is_none());
    }

    #[test]
    fn delete_file_round_trips_and_unions() {
        let keys = vec![
            ("/w/t/part-00000".to_string(), 4u64),
            ("/w/t/delta_5".to_string(), 0u64),
        ];
        let decoded = decode_delete_file(&encode_delete_file(&keys)).unwrap();
        assert_eq!(decoded, keys);
        assert!(decode_delete_file(b"hivedelete v1\n").is_err());

        let dfs = fs();
        let mut w = dfs.create("/w/t/delete_6");
        w.write(&encode_delete_file(&keys));
        w.close();
        let mut s = snap();
        s.deletes = vec![(6, "/w/t/delete_6".into())];
        let set = load_delete_set(&dfs, &s).unwrap();
        assert_eq!(set.len(), 2);
        assert!(set.contains("/w/t/part-00000", 4));
        assert!(!set.contains("/w/t/part-00000", 5));
    }

    #[test]
    fn acid_paths_are_recognized() {
        assert!(is_acid_path("/w/t/_manifest_0000000001"));
        assert!(is_acid_path("/w/t/delta_00005"));
        assert!(is_acid_path("/w/t/delete_00006"));
        assert!(is_acid_path("/w/t/base_0000000003"));
        assert!(!is_acid_path("/w/t/part-00000"));
    }
}
