//! TextFile: newline-delimited rows serialized by the text SerDe — the
//! original data-type-agnostic Hive format, used here as the "plain text"
//! size baseline of the paper's Table 2.

use crate::serde;
use crate::{TableReader, TableWriter};
use hive_common::{Result, Row, Schema};
use hive_dfs::{Dfs, DfsWriter, NodeId};

/// Streaming writer of text rows.
pub struct TextWriter {
    writer: DfsWriter,
    buf: Vec<u8>,
}

impl TextWriter {
    pub fn create(dfs: &Dfs, path: &str) -> TextWriter {
        TextWriter {
            writer: dfs.create(path),
            buf: Vec::new(),
        }
    }
}

impl TableWriter for TextWriter {
    fn write_row(&mut self, row: &Row) -> Result<()> {
        self.buf.clear();
        serde::text_serialize(row, &mut self.buf);
        self.buf.push(b'\n');
        self.writer.write(&self.buf);
        Ok(())
    }

    fn close(self: Box<Self>) -> Result<u64> {
        self.writer.try_close()
    }
}

/// Sequential reader of text rows; reads the file in large chunks so the
/// whole file's bytes are charged against DFS (there is no way to skip
/// columns in a row format — the point of Table 2/Fig. 10's comparison).
pub struct TextReader {
    reader: hive_dfs::DfsReader,
    schema: Schema,
    projection: Option<Vec<usize>>,
    offset: u64,
    end: u64,
    /// File offset where the line currently being assembled starts.
    line_start: u64,
    carry: Vec<u8>,
    pending: std::collections::VecDeque<Vec<u8>>,
    done: bool,
}

const READ_CHUNK: usize = 1 << 20;

impl TextReader {
    /// Open for a byte range `[start, end)` of the file (an input split).
    /// Like Hadoop's `TextInputFormat`, a split starts at the first line
    /// boundary after `start` (unless at 0) and finishes the line that
    /// crosses `end`.
    pub fn open_split(
        dfs: &Dfs,
        path: &str,
        schema: Schema,
        projection: Option<Vec<usize>>,
        start: u64,
        end: u64,
        node: Option<NodeId>,
    ) -> Result<TextReader> {
        let mut reader = dfs.open(path, node)?;
        let len = dfs.len(path)?;
        let mut offset = start;
        if start > 0 {
            // Skip the (possibly partial) line owned by the previous split:
            // a line belongs to the split containing its preceding newline,
            // so scanning starts after the first newline at or past `start`.
            let mut probe_at = start;
            loop {
                if probe_at >= len {
                    offset = len;
                    break;
                }
                let probe = reader.read_at(probe_at, READ_CHUNK)?;
                if let Some(i) = probe.iter().position(|b| *b == b'\n') {
                    offset = probe_at + i as u64 + 1;
                    break;
                }
                probe_at += probe.len() as u64;
            }
        }
        Ok(TextReader {
            reader,
            schema,
            projection,
            offset,
            end,
            line_start: offset,
            carry: Vec::new(),
            pending: std::collections::VecDeque::new(),
            done: false,
        })
    }

    pub fn open(
        dfs: &Dfs,
        path: &str,
        schema: Schema,
        projection: Option<Vec<usize>>,
        node: Option<NodeId>,
    ) -> Result<TextReader> {
        let len = dfs.len(path)?;
        Self::open_split(dfs, path, schema, projection, 0, len, node)
    }

    fn refill(&mut self) -> Result<()> {
        // Hadoop's split rule: a line belongs to the split containing its
        // first byte; the reader finishes a line that crosses `end`.
        while self.pending.is_empty() && !self.done {
            if self.line_start > self.end {
                self.done = true;
                return Ok(());
            }
            let file_len = self.reader.len();
            if self.offset >= file_len {
                if !self.carry.is_empty() && self.line_start <= self.end {
                    let line = std::mem::take(&mut self.carry);
                    self.pending.push_back(line);
                }
                self.done = true;
                return Ok(());
            }
            let chunk_base = self.offset;
            let chunk = self.reader.read_at(self.offset, READ_CHUNK)?;
            self.offset += chunk.len() as u64;
            let mut start = 0usize;
            for (i, b) in chunk.iter().enumerate() {
                if *b == b'\n' {
                    let this_line_start = self.line_start;
                    self.line_start = chunk_base + i as u64 + 1;
                    if this_line_start > self.end {
                        self.done = true;
                        self.carry.clear();
                        return Ok(());
                    }
                    let mut line = std::mem::take(&mut self.carry);
                    line.extend_from_slice(&chunk[start..i]);
                    self.pending.push_back(line);
                    start = i + 1;
                }
            }
            self.carry.extend_from_slice(&chunk[start..]);
        }
        Ok(())
    }
}

impl TableReader for TextReader {
    fn next_row(&mut self) -> Result<Option<Row>> {
        if self.pending.is_empty() {
            self.refill()?;
        }
        let Some(line) = self.pending.pop_front() else {
            return Ok(None);
        };
        let row = serde::text_deserialize(&line, &self.schema)?;
        Ok(Some(match &self.projection {
            Some(p) => row.project(p),
            None => row,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_common::Value;
    use hive_dfs::DfsConfig;

    fn fs() -> Dfs {
        Dfs::new(DfsConfig {
            block_size: 1 << 20,
            replication: 1,
            nodes: 2,
        })
    }

    fn schema() -> Schema {
        Schema::parse(&[("id", "bigint"), ("name", "string")]).unwrap()
    }

    fn write_rows(dfs: &Dfs, path: &str, n: i64) {
        let mut w: Box<dyn TableWriter> = Box::new(TextWriter::create(dfs, path));
        for i in 0..n {
            w.write_row(&Row::new(vec![
                Value::Int(i),
                Value::String(format!("row-{i}")),
            ]))
            .unwrap();
        }
        w.close().unwrap();
    }

    #[test]
    fn write_read_round_trip() {
        let dfs = fs();
        write_rows(&dfs, "/t/text", 100);
        let mut r = TextReader::open(&dfs, "/t/text", schema(), None, None).unwrap();
        let mut count = 0;
        while let Some(row) = r.next_row().unwrap() {
            assert_eq!(row[0], Value::Int(count));
            assert_eq!(row[1], Value::String(format!("row-{count}")));
            count += 1;
        }
        assert_eq!(count, 100);
    }

    #[test]
    fn projection_reorders_columns() {
        let dfs = fs();
        write_rows(&dfs, "/t/text2", 3);
        let mut r = TextReader::open(&dfs, "/t/text2", schema(), Some(vec![1, 0]), None).unwrap();
        let row = r.next_row().unwrap().unwrap();
        assert_eq!(
            row.values(),
            &[Value::String("row-0".into()), Value::Int(0)]
        );
    }

    #[test]
    fn splits_cover_every_row_exactly_once() {
        let dfs = fs();
        write_rows(&dfs, "/t/text3", 1000);
        let len = dfs.len("/t/text3").unwrap();
        let mid = len / 2;
        let mut seen = Vec::new();
        for (s, e) in [(0, mid), (mid, len)] {
            let mut r =
                TextReader::open_split(&dfs, "/t/text3", schema(), None, s, e, None).unwrap();
            while let Some(row) = r.next_row().unwrap() {
                seen.push(row[0].as_int().unwrap());
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn three_way_split_also_exact() {
        let dfs = fs();
        write_rows(&dfs, "/t/text4", 500);
        let len = dfs.len("/t/text4").unwrap();
        let bounds = [0, len / 3, 2 * len / 3, len];
        let mut seen = Vec::new();
        for w in bounds.windows(2) {
            let mut r =
                TextReader::open_split(&dfs, "/t/text4", schema(), None, w[0], w[1], None).unwrap();
            while let Some(row) = r.next_row().unwrap() {
                seen.push(row[0].as_int().unwrap());
            }
        }
        seen.sort_unstable();
        assert_eq!(seen.len(), 500);
        assert_eq!(seen, (0..500).collect::<Vec<_>>());
    }
}
