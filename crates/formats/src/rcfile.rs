#![allow(clippy::needless_range_loop)] // column order mirrors the file layout
//! RCFile (Record Columnar File) — the pre-ORC columnar format [He et al.,
//! ICDE 2011] as the paper characterizes it (Sections 3 and 4):
//!
//! * small row groups (4 MB by default — "stripes" in the paper's
//!   terminology),
//! * **data-type-agnostic**: each cell is serialized one row at a time by
//!   the *text* SerDe (Hive's ColumnarSerDe), so no type-specific encoding
//!   is possible and every read re-parses text,
//! * complex types are *not* decomposed — a `map` column is one opaque blob,
//! * no indexes and no predicate pushdown: every row group is read,
//! * lazy column skipping: a reader seeks over the byte ranges of
//!   unprojected columns (the one I/O saving RCFile does provide).
//!
//! Layout: `RCF1` magic, varint column count, then row groups. Each group:
//! varint row count, then per column a run-length-encoded cell-length
//! stream (real RCFile's "key part") followed by the concatenated text
//! cells (the "value part"); the header records both byte lengths.
//! The optional general-purpose codec applies per column value blob.

use crate::serde;
use crate::{TableReader, TableWriter};
use hive_codec::block::Compression;
use hive_common::{HiveError, Result, Row, Schema};
use hive_dfs::{Dfs, DfsReader, DfsWriter, NodeId};

const MAGIC: &[u8; 4] = b"RCF1";

/// Default row-group buffer size: 4 MB, per the paper.
pub const DEFAULT_ROW_GROUP_SIZE: usize = 4 << 20;

/// RCFile writer.
pub struct RcFileWriter {
    writer: DfsWriter,
    ncols: usize,
    cell: Vec<u8>,
    /// Per-column serialized cell buffers for the current row group.
    columns: Vec<Vec<u8>>,
    /// Per-column cell lengths (RLE-encoded at flush, like RCFile's key part).
    lengths: Vec<Vec<i64>>,
    rows_in_group: usize,
    row_group_size: usize,
    compression: Compression,
}

impl RcFileWriter {
    pub fn create(
        dfs: &Dfs,
        path: &str,
        schema: &Schema,
        row_group_size: usize,
        compression: Compression,
    ) -> RcFileWriter {
        let mut writer = dfs.create(path);
        writer.write(MAGIC);
        let mut hdr = Vec::new();
        hive_codec::varint::write_unsigned(&mut hdr, schema.len() as u64);
        hdr.push(match compression {
            Compression::None => 0,
            Compression::Snappy => 1,
            Compression::Zlib => 2,
        });
        writer.write(&hdr);
        RcFileWriter {
            writer,
            ncols: schema.len(),
            cell: Vec::new(),
            columns: vec![Vec::new(); schema.len()],
            lengths: vec![Vec::new(); schema.len()],
            rows_in_group: 0,
            row_group_size,
            compression,
        }
    }

    fn buffered_bytes(&self) -> usize {
        self.columns.iter().map(Vec::len).sum()
    }

    fn flush_group(&mut self) -> Result<()> {
        if self.rows_in_group == 0 {
            return Ok(());
        }
        let codec = self.compression.codec();
        // Per column: RLE'd length stream ("key part") + value blob.
        let mut keys: Vec<Vec<u8>> = Vec::with_capacity(self.ncols);
        let mut blobs: Vec<(Vec<u8>, usize)> = Vec::with_capacity(self.ncols);
        for (col, lens) in self.columns.iter_mut().zip(self.lengths.iter_mut()) {
            keys.push(hive_codec::int_rle::encode(lens));
            lens.clear();
            let raw_len = col.len();
            let blob = match &codec {
                Some(c) => c.compress(col),
                None => std::mem::take(col),
            };
            col.clear();
            blobs.push((blob, raw_len));
        }
        let mut header = Vec::new();
        hive_codec::varint::write_unsigned(&mut header, self.rows_in_group as u64);
        for (key, (blob, raw_len)) in keys.iter().zip(&blobs) {
            hive_codec::varint::write_unsigned(&mut header, key.len() as u64);
            hive_codec::varint::write_unsigned(&mut header, blob.len() as u64);
            hive_codec::varint::write_unsigned(&mut header, *raw_len as u64);
        }
        self.writer.write(&header);
        for (key, (blob, _)) in keys.iter().zip(&blobs) {
            self.writer.write(key);
            self.writer.write(blob);
        }
        self.rows_in_group = 0;
        Ok(())
    }
}

impl TableWriter for RcFileWriter {
    fn write_row(&mut self, row: &Row) -> Result<()> {
        if row.len() != self.ncols {
            return Err(HiveError::SerDe(format!(
                "row has {} columns, table has {}",
                row.len(),
                self.ncols
            )));
        }
        // One-row-at-a-time serialization: each cell appended independently
        // as length-prefixed text, exactly the structure that blocks
        // type-specific encoding (and costs a re-parse per read).
        self.cell.clear();
        for (c, v) in row.values().iter().enumerate() {
            self.cell.clear();
            serde::text_serialize_value(v, &mut self.cell);
            self.lengths[c].push(self.cell.len() as i64);
            self.columns[c].extend_from_slice(&self.cell);
        }
        self.rows_in_group += 1;
        if self.buffered_bytes() >= self.row_group_size {
            self.flush_group()?;
        }
        Ok(())
    }

    fn close(mut self: Box<Self>) -> Result<u64> {
        self.flush_group()?;
        self.writer.try_close()
    }

    fn memory_estimate(&self) -> usize {
        self.buffered_bytes()
    }
}

/// RCFile reader with lazy column skipping.
pub struct RcFileReader {
    reader: DfsReader,
    ncols: usize,
    compression: Compression,
    /// Projected top-level column indexes, in output order.
    projection: Vec<usize>,
    /// Data types of the projected columns (cells re-parse as text).
    projection_types: Vec<hive_common::DataType>,
    offset: u64,
    /// Decoded column cursors for the current group.
    group: Option<GroupCursor>,
    /// Split byte range; groups starting outside it are skipped/stopped at.
    split: Option<(u64, u64)>,
}

struct GroupCursor {
    rows_left: usize,
    /// Per projected column: (cell lengths, value bytes, row idx, byte pos).
    cols: Vec<(Vec<i64>, Vec<u8>, usize, usize)>,
}

impl RcFileReader {
    pub fn open(
        dfs: &Dfs,
        path: &str,
        schema: &Schema,
        projection: Option<Vec<usize>>,
        node: Option<NodeId>,
    ) -> Result<RcFileReader> {
        let mut reader = dfs.open(path, node)?;
        let header = reader.read_at(0, 4 + 10 + 1)?;
        if header.len() < 6 || &header[..4] != MAGIC {
            return Err(HiveError::Format(format!("not an RCFile: {path}")));
        }
        let mut pos = 4;
        let ncols = hive_codec::varint::read_unsigned(&header, &mut pos)? as usize;
        let compression = match header.get(pos) {
            Some(0) => Compression::None,
            Some(1) => Compression::Snappy,
            Some(2) => Compression::Zlib,
            _ => return Err(HiveError::Format("bad RCFile compression flag".into())),
        };
        pos += 1;
        if ncols != schema.len() {
            return Err(HiveError::Format(format!(
                "RCFile has {ncols} columns, schema expects {}",
                schema.len()
            )));
        }
        let projection = projection.unwrap_or_else(|| (0..ncols).collect());
        let projection_types = projection
            .iter()
            .map(|&i| schema.field(i).data_type.clone())
            .collect();
        Ok(RcFileReader {
            reader,
            ncols,
            compression,
            projection,
            projection_types,
            offset: pos as u64,
            group: None,
            split: None,
        })
    }

    /// Restrict to row groups whose start offset lies in `[start, end)` —
    /// the reader scans group headers (the sync-marker walk of real RCFile)
    /// and skips the data bytes of groups it does not own.
    pub fn with_split(mut self, start: u64, end: u64) -> RcFileReader {
        self.split = Some((start, end));
        self
    }

    fn load_group(&mut self) -> Result<bool> {
        loop {
            if self.offset >= self.reader.len() {
                return Ok(false);
            }
            let group_start = self.offset;
            if let Some((_, end)) = self.split {
                if group_start >= end {
                    return Ok(false);
                }
            }
            // Group header: row count + (key_len, comp_len, raw_len) per
            // column. Sized generously; varints are tiny.
            let hdr = self.reader.read_at(self.offset, 10 + self.ncols * 30)?;
            let mut pos = 0usize;
            let nrows = hive_codec::varint::read_unsigned(&hdr, &mut pos)? as usize;
            let mut lens = Vec::with_capacity(self.ncols);
            for _ in 0..self.ncols {
                let key = hive_codec::varint::read_unsigned(&hdr, &mut pos)? as usize;
                let comp = hive_codec::varint::read_unsigned(&hdr, &mut pos)? as usize;
                let raw = hive_codec::varint::read_unsigned(&hdr, &mut pos)? as usize;
                lens.push((key, comp, raw));
            }
            let mut data_off = self.offset + pos as u64;
            if let Some((start, _)) = self.split {
                if group_start < start {
                    // Not our group: hop over its data without reading it.
                    self.offset =
                        data_off + lens.iter().map(|(k, c, _)| (*k + *c) as u64).sum::<u64>();
                    continue;
                }
            }
            let codec = self.compression.codec();
            let mut cols = Vec::with_capacity(self.projection.len());
            // Read projected columns; *seek over* the rest (lazy column skip).
            // Columns must be fetched in file order to keep seek accounting
            // honest; output order is restored below.
            let mut by_file_order: Vec<(usize, Vec<i64>, Vec<u8>)> = Vec::new();
            for c in 0..self.ncols {
                let (key_len, comp_len, _raw) = lens[c];
                if self.projection.contains(&c) {
                    let key = self.reader.read_at(data_off, key_len)?;
                    let cell_lens = hive_codec::int_rle::decode(&key)?;
                    let blob = self.reader.read_at(data_off + key_len as u64, comp_len)?;
                    let buf = match &codec {
                        Some(codec) => codec.decompress(&blob)?,
                        None => blob.into_vec(),
                    };
                    by_file_order.push((c, cell_lens, buf));
                }
                data_off += (key_len + comp_len) as u64;
            }
            self.offset = data_off;
            for &p in &self.projection {
                let (cell_lens, buf) = by_file_order
                    .iter()
                    .find(|(c, _, _)| *c == p)
                    .map(|(_, l, b)| (l.clone(), b.clone()))
                    .ok_or_else(|| HiveError::Format("projected column missing".into()))?;
                cols.push((cell_lens, buf, 0usize, 0usize));
            }
            self.group = Some(GroupCursor {
                rows_left: nrows,
                cols,
            });
            return Ok(true);
        }
    }
}

impl TableReader for RcFileReader {
    fn next_row(&mut self) -> Result<Option<Row>> {
        loop {
            match &mut self.group {
                Some(g) if g.rows_left > 0 => {
                    let mut vals = Vec::with_capacity(g.cols.len());
                    for ((lens, buf, row_idx, pos), dt) in
                        g.cols.iter_mut().zip(&self.projection_types)
                    {
                        let len = *lens.get(*row_idx).ok_or_else(|| {
                            HiveError::Format("RCFile length stream truncated".into())
                        })? as usize;
                        if *pos + len > buf.len() {
                            return Err(HiveError::Format("RCFile cell truncated".into()));
                        }
                        let raw = &buf[*pos..*pos + len];
                        *pos += len;
                        *row_idx += 1;
                        vals.push(serde::text_deserialize_value(raw, dt)?);
                    }
                    g.rows_left -= 1;
                    return Ok(Some(Row::new(vals)));
                }
                _ => {
                    if !self.load_group()? {
                        return Ok(None);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_common::Value;

    fn dfs() -> Dfs {
        Dfs::new(hive_dfs::DfsConfig {
            block_size: 8 << 20,
            replication: 1,
            nodes: 2,
        })
    }

    fn schema() -> Schema {
        Schema::parse(&[("id", "bigint"), ("name", "string"), ("tags", "array<int>")]).unwrap()
    }

    fn make_row(i: i64) -> Row {
        Row::new(vec![
            Value::Int(i),
            Value::String(format!("name-{}", i % 50)),
            Value::Array(vec![Value::Int(i), Value::Int(i + 1)]),
        ])
    }

    fn write_file(fs: &Dfs, path: &str, n: i64, group: usize, comp: Compression) {
        let mut w: Box<dyn TableWriter> =
            Box::new(RcFileWriter::create(fs, path, &schema(), group, comp));
        for i in 0..n {
            w.write_row(&make_row(i)).unwrap();
        }
        w.close().unwrap();
    }

    #[test]
    fn round_trip_multiple_groups() {
        let fs = dfs();
        write_file(&fs, "/t/rc", 5000, 8 << 10, Compression::None);
        let mut r = RcFileReader::open(&fs, "/t/rc", &schema(), None, None).unwrap();
        let mut n = 0i64;
        while let Some(row) = r.next_row().unwrap() {
            assert_eq!(row, make_row(n));
            n += 1;
        }
        assert_eq!(n, 5000);
    }

    #[test]
    fn round_trip_with_compression() {
        let fs = dfs();
        for comp in [Compression::Snappy, Compression::Zlib] {
            let path = format!("/t/rc-{comp}");
            write_file(&fs, &path, 2000, 8 << 10, comp);
            let mut r = RcFileReader::open(&fs, &path, &schema(), None, None).unwrap();
            let mut n = 0i64;
            while let Some(row) = r.next_row().unwrap() {
                assert_eq!(row, make_row(n));
                n += 1;
            }
            assert_eq!(n, 2000);
        }
    }

    #[test]
    fn compression_shrinks_file() {
        let fs = dfs();
        write_file(&fs, "/t/rc-plain", 5000, 64 << 10, Compression::None);
        write_file(&fs, "/t/rc-snappy", 5000, 64 << 10, Compression::Snappy);
        assert!(fs.len("/t/rc-snappy").unwrap() < fs.len("/t/rc-plain").unwrap());
    }

    #[test]
    fn projection_skips_unneeded_column_bytes() {
        let fs = dfs();
        write_file(&fs, "/t/rc-proj", 5000, 16 << 10, Compression::None);

        fs.stats().reset();
        let mut r = RcFileReader::open(&fs, "/t/rc-proj", &schema(), None, None).unwrap();
        while r.next_row().unwrap().is_some() {}
        let full = fs.stats().snapshot().bytes_read();

        fs.stats().reset();
        let mut r = RcFileReader::open(&fs, "/t/rc-proj", &schema(), Some(vec![0]), None).unwrap();
        let mut n = 0i64;
        while let Some(row) = r.next_row().unwrap() {
            assert_eq!(row.values(), &[Value::Int(n)]);
            n += 1;
        }
        let projected = fs.stats().snapshot().bytes_read();
        assert!(
            projected < full / 2,
            "lazy column skip should cut bytes: {projected} vs {full}"
        );
    }

    #[test]
    fn complex_column_is_one_blob() {
        // Reading just the array column costs its whole serialized form —
        // RCFile cannot decompose it (ORC can).
        let fs = dfs();
        write_file(&fs, "/t/rc-cplx", 100, 16 << 10, Compression::None);
        let mut r = RcFileReader::open(&fs, "/t/rc-cplx", &schema(), Some(vec![2]), None).unwrap();
        let row = r.next_row().unwrap().unwrap();
        assert_eq!(row[0], Value::Array(vec![Value::Int(0), Value::Int(1)]));
    }

    #[test]
    fn schema_mismatch_rejected() {
        let fs = dfs();
        write_file(&fs, "/t/rc-s", 10, 8 << 10, Compression::None);
        let narrow = Schema::parse(&[("only", "bigint")]).unwrap();
        assert!(RcFileReader::open(&fs, "/t/rc-s", &narrow, None, None).is_err());
    }
}
