//! SearchArgument: the predicate representation pushed down to the ORC
//! reader (paper Section 4.2 — "the query processing engine of Hive can
//! push certain predicates to the reader of an ORC file").
//!
//! A search argument is a conjunction of leaves over top-level columns;
//! each leaf is evaluated against column statistics to a three-valued
//! verdict. `No` lets the reader skip a whole stripe or index group.

use crate::orc::stats::ColumnStatistics;
use hive_common::Value;
use std::cmp::Ordering;

/// Three-valued evaluation result against statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruthValue {
    /// Every row in the span satisfies the predicate.
    Yes,
    /// No row in the span can satisfy the predicate — skip it.
    No,
    /// The statistics cannot decide; the span must be read.
    Maybe,
}

impl TruthValue {
    fn and(self, other: TruthValue) -> TruthValue {
        use TruthValue::*;
        match (self, other) {
            (No, _) | (_, No) => No,
            (Yes, Yes) => Yes,
            _ => Maybe,
        }
    }
}

/// Comparison operator of a predicate leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredicateOp {
    Equals,
    NotEquals,
    LessThan,
    LessThanEquals,
    GreaterThan,
    GreaterThanEquals,
    /// `BETWEEN lo AND hi` carries two literals.
    Between,
    /// `IN (v1, v2, ...)` carries `literal_list`.
    In,
    IsNull,
    IsNotNull,
}

/// One predicate: `column ⋈ literal(s)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PredicateLeaf {
    /// Top-level column index in the table schema.
    pub column: usize,
    pub op: PredicateOp,
    pub literal: Option<Value>,
    /// Second literal for BETWEEN.
    pub literal2: Option<Value>,
    /// Literals for IN.
    pub literal_list: Vec<Value>,
}

impl PredicateLeaf {
    pub fn new(column: usize, op: PredicateOp, literal: Option<Value>) -> PredicateLeaf {
        PredicateLeaf {
            column,
            op,
            literal,
            literal2: None,
            literal_list: Vec::new(),
        }
    }

    pub fn between(column: usize, lo: Value, hi: Value) -> PredicateLeaf {
        PredicateLeaf {
            column,
            op: PredicateOp::Between,
            literal: Some(lo),
            literal2: Some(hi),
            literal_list: Vec::new(),
        }
    }

    pub fn in_list(column: usize, values: Vec<Value>) -> PredicateLeaf {
        PredicateLeaf {
            column,
            op: PredicateOp::In,
            literal: None,
            literal2: None,
            literal_list: values,
        }
    }

    /// Evaluate against the span's statistics for this leaf's column.
    pub fn evaluate(&self, stats: &ColumnStatistics) -> TruthValue {
        use PredicateOp::*;
        use TruthValue::*;
        if stats.count() == 0 {
            // Span holds only nulls (or nothing).
            return match self.op {
                IsNull => {
                    if stats.has_null() {
                        Yes
                    } else {
                        Maybe
                    }
                }
                _ => No,
            };
        }
        match self.op {
            IsNull => {
                return if stats.has_null() { Maybe } else { No };
            }
            IsNotNull => {
                return if stats.has_null() { Maybe } else { Yes };
            }
            _ => {}
        }
        let (Some(min), Some(max)) = (stats.min_value(), stats.max_value()) else {
            return Maybe;
        };
        if self.op == In {
            // Skippable when every listed value falls outside [min, max].
            if self.literal_list.is_empty() {
                return No;
            }
            let any_possible = self
                .literal_list
                .iter()
                .any(|v| v.sql_cmp(&min) != Ordering::Less && v.sql_cmp(&max) != Ordering::Greater);
            return if !any_possible { No } else { Maybe };
        }
        let Some(lit) = &self.literal else {
            return Maybe;
        };
        // NULLs make even an all-in-range span only Maybe-true for non-null
        // comparisons, because NULL rows fail the predicate.
        let weaken = |t: TruthValue| {
            if stats.has_null() && t == Yes {
                Maybe
            } else {
                t
            }
        };
        let cmp_min = lit.sql_cmp(&min); // lit vs min
        let cmp_max = lit.sql_cmp(&max); // lit vs max
        match self.op {
            Equals => {
                if cmp_min == Ordering::Less || cmp_max == Ordering::Greater {
                    No
                } else if cmp_min == Ordering::Equal && cmp_max == Ordering::Equal {
                    weaken(Yes)
                } else {
                    Maybe
                }
            }
            NotEquals => {
                if cmp_min == Ordering::Equal && cmp_max == Ordering::Equal {
                    No
                } else if cmp_min == Ordering::Less || cmp_max == Ordering::Greater {
                    weaken(Yes)
                } else {
                    Maybe
                }
            }
            LessThan => {
                // col < lit
                if cmp_min != Ordering::Greater {
                    // lit <= min → nothing qualifies
                    No
                } else if cmp_max == Ordering::Greater {
                    // max < lit → everything qualifies
                    weaken(Yes)
                } else {
                    Maybe
                }
            }
            LessThanEquals => {
                if cmp_min == Ordering::Less {
                    No
                } else if cmp_max != Ordering::Less {
                    weaken(Yes)
                } else {
                    Maybe
                }
            }
            GreaterThan => {
                if cmp_max != Ordering::Less {
                    No
                } else if cmp_min == Ordering::Less {
                    weaken(Yes)
                } else {
                    Maybe
                }
            }
            GreaterThanEquals => {
                if cmp_max == Ordering::Greater {
                    No
                } else if cmp_min != Ordering::Greater {
                    weaken(Yes)
                } else {
                    Maybe
                }
            }
            Between => {
                let Some(hi) = &self.literal2 else {
                    return Maybe;
                };
                let lo = lit;
                // No overlap: hi < min or lo > max.
                if hi.sql_cmp(&min) == Ordering::Less || lo.sql_cmp(&max) == Ordering::Greater {
                    No
                } else if lo.sql_cmp(&min) != Ordering::Greater
                    && hi.sql_cmp(&max) != Ordering::Less
                {
                    weaken(Yes)
                } else {
                    Maybe
                }
            }
            In | IsNull | IsNotNull => unreachable!("handled above"),
        }
    }
}

/// A conjunction of predicate leaves.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SearchArgument {
    pub leaves: Vec<PredicateLeaf>,
}

impl SearchArgument {
    pub fn new(leaves: Vec<PredicateLeaf>) -> SearchArgument {
        SearchArgument { leaves }
    }

    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Evaluate the conjunction against per-column statistics.
    /// `stats_for(col)` returns the span's statistics for a top-level
    /// column, or `None` when unavailable (treated as `Maybe`).
    pub fn evaluate<'a>(
        &self,
        stats_for: impl Fn(usize) -> Option<&'a ColumnStatistics>,
    ) -> TruthValue {
        let mut acc = TruthValue::Yes;
        for leaf in &self.leaves {
            let t = match stats_for(leaf.column) {
                Some(s) => leaf.evaluate(s),
                None => TruthValue::Maybe,
            };
            acc = acc.and(t);
            if acc == TruthValue::No {
                return TruthValue::No;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_stats(min: i64, max: i64, has_null: bool) -> ColumnStatistics {
        ColumnStatistics::Int {
            count: 100,
            has_null,
            min: Some(min),
            max: Some(max),
            sum: None,
        }
    }

    #[test]
    fn between_skips_disjoint_spans() {
        // The SS-DB q1 shape: x BETWEEN 0 AND 3750.
        let leaf = PredicateLeaf::between(0, Value::Int(0), Value::Int(3750));
        assert_eq!(leaf.evaluate(&int_stats(4000, 8000, false)), TruthValue::No);
        assert_eq!(leaf.evaluate(&int_stats(0, 3000, false)), TruthValue::Yes);
        assert_eq!(
            leaf.evaluate(&int_stats(3000, 5000, false)),
            TruthValue::Maybe
        );
    }

    #[test]
    fn comparison_boundaries() {
        let lt = PredicateLeaf::new(0, PredicateOp::LessThan, Some(Value::Int(10)));
        assert_eq!(lt.evaluate(&int_stats(10, 20, false)), TruthValue::No);
        assert_eq!(lt.evaluate(&int_stats(0, 9, false)), TruthValue::Yes);
        assert_eq!(lt.evaluate(&int_stats(0, 10, false)), TruthValue::Maybe);

        let ge = PredicateLeaf::new(0, PredicateOp::GreaterThanEquals, Some(Value::Int(10)));
        assert_eq!(ge.evaluate(&int_stats(0, 9, false)), TruthValue::No);
        assert_eq!(ge.evaluate(&int_stats(10, 20, false)), TruthValue::Yes);
        assert_eq!(ge.evaluate(&int_stats(5, 15, false)), TruthValue::Maybe);
    }

    #[test]
    fn equals_and_not_equals() {
        let eq = PredicateLeaf::new(0, PredicateOp::Equals, Some(Value::Int(7)));
        assert_eq!(eq.evaluate(&int_stats(8, 9, false)), TruthValue::No);
        assert_eq!(eq.evaluate(&int_stats(7, 7, false)), TruthValue::Yes);
        assert_eq!(eq.evaluate(&int_stats(5, 9, false)), TruthValue::Maybe);

        let ne = PredicateLeaf::new(0, PredicateOp::NotEquals, Some(Value::Int(7)));
        assert_eq!(ne.evaluate(&int_stats(7, 7, false)), TruthValue::No);
        assert_eq!(ne.evaluate(&int_stats(8, 9, false)), TruthValue::Yes);
        assert_eq!(ne.evaluate(&int_stats(5, 9, false)), TruthValue::Maybe);
    }

    #[test]
    fn nulls_weaken_yes_to_maybe() {
        let lt = PredicateLeaf::new(0, PredicateOp::LessThan, Some(Value::Int(100)));
        assert_eq!(lt.evaluate(&int_stats(0, 9, true)), TruthValue::Maybe);
    }

    #[test]
    fn null_predicates() {
        let isnull = PredicateLeaf::new(0, PredicateOp::IsNull, None);
        assert_eq!(isnull.evaluate(&int_stats(0, 9, false)), TruthValue::No);
        assert_eq!(isnull.evaluate(&int_stats(0, 9, true)), TruthValue::Maybe);
        let notnull = PredicateLeaf::new(0, PredicateOp::IsNotNull, None);
        assert_eq!(notnull.evaluate(&int_stats(0, 9, false)), TruthValue::Yes);
    }

    #[test]
    fn string_predicates() {
        let stats = ColumnStatistics::String {
            count: 10,
            has_null: false,
            min: Some(b"f".to_vec()),
            max: Some(b"m".to_vec()),
            total_length: 10,
        };
        let le = PredicateLeaf::new(
            0,
            PredicateOp::LessThanEquals,
            Some(Value::String("e".into())),
        );
        assert_eq!(le.evaluate(&stats), TruthValue::No);
        let ge = PredicateLeaf::new(
            0,
            PredicateOp::GreaterThanEquals,
            Some(Value::String("a".into())),
        );
        assert_eq!(ge.evaluate(&stats), TruthValue::Yes);
    }

    #[test]
    fn conjunction_short_circuits() {
        let sarg = SearchArgument::new(vec![
            PredicateLeaf::between(0, Value::Int(0), Value::Int(10)),
            PredicateLeaf::between(1, Value::Int(0), Value::Int(10)),
        ]);
        let s0 = int_stats(0, 5, false);
        let s1 = int_stats(50, 60, false);
        let v = sarg.evaluate(|c| Some(if c == 0 { &s0 } else { &s1 }));
        assert_eq!(v, TruthValue::No);
        let v2 = sarg.evaluate(|_| Some(&s0));
        assert_eq!(v2, TruthValue::Yes);
        let v3 = sarg.evaluate(|_| None);
        assert_eq!(v3, TruthValue::Maybe);
    }

    #[test]
    fn in_list_skips_disjoint_spans() {
        let leaf = PredicateLeaf::in_list(0, vec![Value::Int(5), Value::Int(105)]);
        assert_eq!(leaf.evaluate(&int_stats(10, 90, false)), TruthValue::No);
        assert_eq!(leaf.evaluate(&int_stats(0, 7, false)), TruthValue::Maybe);
        assert_eq!(
            leaf.evaluate(&int_stats(100, 200, false)),
            TruthValue::Maybe
        );
        let strings = ColumnStatistics::String {
            count: 5,
            has_null: false,
            min: Some(b"CA".to_vec()),
            max: Some(b"GA".to_vec()),
            total_length: 10,
        };
        let states = PredicateLeaf::in_list(
            0,
            vec![Value::String("TN".into()), Value::String("SD".into())],
        );
        assert_eq!(states.evaluate(&strings), TruthValue::No);
    }

    #[test]
    fn all_null_span() {
        let stats = ColumnStatistics::Int {
            count: 0,
            has_null: true,
            min: None,
            max: None,
            sum: None,
        };
        let lt = PredicateLeaf::new(0, PredicateOp::LessThan, Some(Value::Int(10)));
        assert_eq!(lt.evaluate(&stats), TruthValue::No);
        let isnull = PredicateLeaf::new(0, PredicateOp::IsNull, None);
        assert_eq!(isnull.evaluate(&stats), TruthValue::Yes);
    }
}
