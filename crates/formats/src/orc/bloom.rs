//! Per-index-group bloom filters for ORC stripes.
//!
//! Min/max statistics prune range predicates well but are useless for
//! equality probes into unsorted columns: every group's `[min, max]`
//! straddles almost any literal. A bloom filter per `(column, index
//! group)` answers "is this exact value possibly present?" and lets the
//! reader drop groups that stats alone cannot ("From MapReduce to
//! Enterprise-grade Big Data Warehousing" pairs bloom filters with the
//! per-replica sort orders of HAIL for exactly this case).
//!
//! On disk the bloom section sits between a stripe's index data and its
//! row data (`StripeInfo::bloom_len`) and carries its *own* CRC32
//! trailer, separate from the DFS block checksums. A tampered or torn
//! section therefore fails verification even when the enclosing blocks
//! were republished with fresh CRCs; the reader degrades to stats-only
//! pruning — never a wrong answer, never a panic.

use hive_codec::varint;
use hive_common::{HiveError, Result, Value};
use hive_dfs::crc;

/// One bloom filter: a bit array probed with `k` double-hashed positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    nbits: u64,
    k: u32,
    words: Vec<u64>,
}

impl BloomFilter {
    /// Size a filter for `expected` distinct values at false-positive
    /// probability `fpp` (standard `m = -n·ln p / (ln 2)²`,
    /// `k = (m/n)·ln 2` sizing, clamped to sane bounds).
    pub fn with_expected(expected: usize, fpp: f64) -> BloomFilter {
        let n = expected.max(1) as f64;
        let p = fpp.clamp(0.001, 0.5);
        let ln2 = std::f64::consts::LN_2;
        let m = (-n * p.ln() / (ln2 * ln2)).ceil().max(64.0);
        let nbits = (m as u64).next_multiple_of(64);
        let k = ((nbits as f64 / n) * ln2).round().clamp(1.0, 16.0) as u32;
        BloomFilter {
            nbits,
            k,
            words: vec![0u64; (nbits / 64) as usize],
        }
    }

    /// Insert a pre-hashed value (see [`hash_value`]).
    pub fn add_hash(&mut self, hash: u64) {
        let (h1, h2) = split_hash(hash);
        for i in 0..self.k {
            let bit = probe_bit(h1, h2, i, self.nbits);
            self.words[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
    }

    /// Membership probe: `false` means *definitely absent*.
    pub fn might_contain_hash(&self, hash: u64) -> bool {
        let (h1, h2) = split_hash(hash);
        (0..self.k).all(|i| {
            let bit = probe_bit(h1, h2, i, self.nbits);
            self.words[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
        })
    }

    fn encode(&self, out: &mut Vec<u8>) {
        varint::write_unsigned(out, self.nbits);
        varint::write_unsigned(out, self.k as u64);
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Result<BloomFilter> {
        let nbits = varint::read_unsigned(buf, pos)?;
        let k = varint::read_unsigned(buf, pos)? as u32;
        if nbits == 0 || nbits % 64 != 0 || nbits > (1 << 30) || k == 0 || k > 64 {
            return Err(HiveError::Format(format!(
                "implausible bloom filter shape: nbits={nbits} k={k}"
            )));
        }
        let nwords = (nbits / 64) as usize;
        let mut words = Vec::with_capacity(nwords);
        for _ in 0..nwords {
            let end = *pos + 8;
            let bytes = buf
                .get(*pos..end)
                .ok_or_else(|| HiveError::Format("bloom filter truncated".into()))?;
            words.push(u64::from_le_bytes(bytes.try_into().unwrap()));
            *pos = end;
        }
        Ok(BloomFilter { nbits, k, words })
    }
}

/// Double hashing à la ORC: the 64-bit hash splits into two 32-bit
/// halves, probe `i` lands on `h1 + i·h2` (odd `h2` so probes cycle the
/// whole bit space).
fn split_hash(hash: u64) -> (u64, u64) {
    ((hash >> 32) as u32 as u64, (hash as u32 as u64) | 1)
}

fn probe_bit(h1: u64, h2: u64, i: u32, nbits: u64) -> u64 {
    h1.wrapping_add(h2.wrapping_mul(i as u64)) % nbits
}

/// FNV-1a over a byte image, finished with an avalanche mix so the two
/// 32-bit halves used by double hashing are independent.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    // splitmix64 finalizer
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58476d1ce4e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d049bb133111eb);
    h ^ (h >> 31)
}

pub fn hash_i64(v: i64) -> u64 {
    hash_bytes(&v.to_le_bytes())
}

pub fn hash_f64(v: f64) -> u64 {
    // Normalize -0.0 to 0.0 so writer and probe agree on equal values.
    let v = if v == 0.0 { 0.0 } else { v };
    hash_bytes(&v.to_bits().to_le_bytes())
}

pub fn hash_str(s: &str) -> u64 {
    hash_bytes(s.as_bytes())
}

/// Hash a predicate literal the way the writer hashed column values of
/// that type. `None` = this type carries no bloom filter (the probe must
/// answer "maybe").
pub fn hash_value(v: &Value) -> Option<u64> {
    match v {
        Value::Int(i) | Value::Timestamp(i) => Some(hash_i64(*i)),
        Value::Double(d) => Some(hash_f64(*d)),
        Value::String(s) => Some(hash_str(s)),
        Value::Boolean(b) => Some(hash_i64(*b as i64)),
        _ => None,
    }
}

/// Every hash a literal could have been written under, covering the
/// writer's numeric coercions (an `Int` literal may probe a `Double`
/// column and vice versa — missing a coercion would prune a group that
/// holds the value). `None` = unhashable literal; the caller must keep
/// the group.
pub fn probe_hashes(v: &Value) -> Option<Vec<u64>> {
    match v {
        Value::Int(i) | Value::Timestamp(i) => Some(vec![hash_i64(*i), hash_f64(*i as f64)]),
        Value::Double(d) => {
            let mut hashes = vec![hash_f64(*d)];
            if d.fract() == 0.0 && *d >= i64::MIN as f64 && *d <= i64::MAX as f64 {
                hashes.push(hash_i64(*d as i64));
            }
            Some(hashes)
        }
        Value::String(s) => Some(vec![hash_str(s)]),
        Value::Boolean(b) => Some(vec![hash_i64(*b as i64)]),
        _ => None,
    }
}

/// All bloom filters of one column in one stripe: `groups[g]` covers the
/// rows of index group `g`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnBloom {
    /// Top-level column index in the table schema.
    pub column: usize,
    pub groups: Vec<BloomFilter>,
}

/// Serialize a stripe's bloom section: varint-framed filters followed by
/// a CRC32 trailer over everything before it.
pub fn encode_section(cols: &[ColumnBloom]) -> Vec<u8> {
    let mut out = Vec::new();
    varint::write_unsigned(&mut out, cols.len() as u64);
    for col in cols {
        varint::write_unsigned(&mut out, col.column as u64);
        varint::write_unsigned(&mut out, col.groups.len() as u64);
        for g in &col.groups {
            g.encode(&mut out);
        }
    }
    let crc = crc::crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decode and CRC-verify a stripe's bloom section. Any mismatch or
/// malformed framing is an error — the caller treats it as "no bloom
/// filters for this stripe" and falls back to statistics.
pub fn decode_section(buf: &[u8]) -> Result<Vec<ColumnBloom>> {
    if buf.len() < 4 {
        return Err(HiveError::Corrupt("bloom section truncated".into()));
    }
    let (body, trailer) = buf.split_at(buf.len() - 4);
    let stated = u32::from_le_bytes(trailer.try_into().unwrap());
    let actual = crc::crc32(body);
    if stated != actual {
        return Err(HiveError::Corrupt(format!(
            "bloom section checksum mismatch (expected {stated:#010x}, got {actual:#010x})"
        )));
    }
    let mut pos = 0usize;
    let ncols = varint::read_unsigned(body, &mut pos)? as usize;
    if ncols > 10_000 {
        return Err(HiveError::Format(format!(
            "implausible bloom column count {ncols}"
        )));
    }
    let mut cols = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let column = varint::read_unsigned(body, &mut pos)? as usize;
        let ngroups = varint::read_unsigned(body, &mut pos)? as usize;
        if ngroups > 1_000_000 {
            return Err(HiveError::Format(format!(
                "implausible bloom group count {ngroups}"
            )));
        }
        let mut groups = Vec::with_capacity(ngroups);
        for _ in 0..ngroups {
            groups.push(BloomFilter::decode(body, &mut pos)?);
        }
        cols.push(ColumnBloom { column, groups });
    }
    if pos != body.len() {
        return Err(HiveError::Format("bloom section trailing bytes".into()));
    }
    Ok(cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_expected(1000, 0.05);
        for i in 0..1000i64 {
            f.add_hash(hash_i64(i * 7));
        }
        for i in 0..1000i64 {
            assert!(f.might_contain_hash(hash_i64(i * 7)));
        }
    }

    #[test]
    fn fpp_roughly_holds() {
        let mut f = BloomFilter::with_expected(1000, 0.05);
        for i in 0..1000i64 {
            f.add_hash(hash_i64(i));
        }
        let fp = (1000..11_000i64)
            .filter(|&i| f.might_contain_hash(hash_i64(i)))
            .count();
        // 5% target with generous slack for hash variance.
        assert!(fp < 1500, "false positives: {fp}/10000");
    }

    #[test]
    fn section_round_trip() {
        let mut g0 = BloomFilter::with_expected(10, 0.05);
        g0.add_hash(hash_str("alice"));
        let mut g1 = BloomFilter::with_expected(10, 0.05);
        g1.add_hash(hash_f64(2.5));
        let cols = vec![
            ColumnBloom {
                column: 0,
                groups: vec![g0.clone(), g1],
            },
            ColumnBloom {
                column: 3,
                groups: vec![g0],
            },
        ];
        let bytes = encode_section(&cols);
        assert_eq!(decode_section(&bytes).unwrap(), cols);
    }

    #[test]
    fn tampered_section_rejected() {
        let mut g = BloomFilter::with_expected(10, 0.05);
        g.add_hash(hash_i64(42));
        let cols = vec![ColumnBloom {
            column: 1,
            groups: vec![g],
        }];
        let mut bytes = encode_section(&cols);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(decode_section(&bytes).is_err());
        let clean = encode_section(&cols);
        assert!(decode_section(&clean[..clean.len() - 3]).is_err());
    }

    #[test]
    fn zero_normalization_and_bool_hashing() {
        assert_eq!(hash_f64(0.0), hash_f64(-0.0));
        assert_eq!(hash_value(&Value::Boolean(true)), Some(hash_i64(1)));
        assert_eq!(hash_value(&Value::Null), None);
        assert_eq!(hash_value(&Value::Timestamp(77)), Some(hash_i64(77)));
    }
}
