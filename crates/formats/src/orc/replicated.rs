//! Per-replica sort orders (HAIL — "Only Aggressive Elephants are Fast
//! Elephants").
//!
//! HDFS already stores every block three times; HAIL's observation is
//! that those copies need not be byte-identical. This writer publishes
//! the base file in insertion order (variant 0 — byte-identical to a
//! plain [`OrcWriter`], so every knob-off path is unchanged), then one
//! extra copy per configured sort column, each clustered on that column
//! and adopted into a DFS replica slot. A selective query later picks
//! the copy whose sort order matches its predicate
//! (`Dfs::select_variant`) and min/max pruning does the rest — an index
//! per replica at zero extra logical-storage cost.

use crate::orc::memory::MemoryManager;
use crate::orc::writer::{OrcWriter, OrcWriterOptions};
use crate::TableWriter;
use hive_common::{Result, Row, Schema};
use hive_dfs::Dfs;

/// ORC writer that additionally publishes one sorted copy of the file
/// per configured sort column, capped at the cluster's spare replica
/// slots (`replication - 1`).
pub struct ReplicatedOrcWriter {
    dfs: Dfs,
    path: String,
    schema: Schema,
    options: OrcWriterOptions,
    memory: Option<MemoryManager>,
    /// `(top-level column index, column name)` per extra copy, in slot
    /// order.
    sort_columns: Vec<(usize, String)>,
    rows: Vec<Row>,
}

impl ReplicatedOrcWriter {
    pub fn create(
        dfs: &Dfs,
        path: &str,
        schema: &Schema,
        options: OrcWriterOptions,
        sort_columns: Vec<(usize, String)>,
        memory: Option<&MemoryManager>,
    ) -> ReplicatedOrcWriter {
        let slots = dfs.config().replication.saturating_sub(1);
        let mut sort_columns = sort_columns;
        sort_columns.truncate(slots);
        ReplicatedOrcWriter {
            dfs: dfs.clone(),
            path: path.to_string(),
            schema: schema.clone(),
            options,
            memory: memory.cloned(),
            sort_columns,
            rows: Vec::new(),
        }
    }
}

impl TableWriter for ReplicatedOrcWriter {
    fn write_row(&mut self, row: &Row) -> Result<()> {
        self.rows.push(row.clone());
        Ok(())
    }

    fn close(self: Box<Self>) -> Result<u64> {
        // Variant 0: insertion order, at the real path. Byte-identical to
        // what a plain OrcWriter would have produced.
        let mut base = Box::new(OrcWriter::create(
            &self.dfs,
            &self.path,
            &self.schema,
            self.options.clone(),
            self.memory.as_ref(),
        ));
        for row in &self.rows {
            base.write_row(row)?;
        }
        let len = base.close()?;

        // One sorted copy per configured column, staged under scratch and
        // adopted into its replica slot.
        for (slot0, (col, name)) in self.sort_columns.iter().enumerate() {
            let slot = slot0 + 1;
            let mut sorted: Vec<&Row> = self.rows.iter().collect();
            sorted.sort_by(|a, b| a[*col].sql_cmp(&b[*col]));
            let tmp = format!("/tmp/orc-variant{}.v{slot}", self.path);
            let mut opts = self.options.clone();
            opts.sort_column = name.clone();
            let mut w = Box::new(OrcWriter::create(
                &self.dfs,
                &tmp,
                &self.schema,
                opts,
                self.memory.as_ref(),
            ));
            for row in &sorted {
                w.write_row(row)?;
            }
            w.close()?;
            self.dfs.adopt_variant(&self.path, &tmp, slot, name)?;
        }
        Ok(len)
    }

    fn memory_estimate(&self) -> usize {
        // Buffered rows dominate; a coarse per-value estimate keeps the
        // memory manager honest without walking nested values.
        self.rows.len() * self.schema.len() * 24
    }
}
