//! The ORC writer memory manager (paper Section 4.4).
//!
//! Each writer in a task registers its stripe size; when the total
//! registered size exceeds the task's memory threshold, every writer's
//! *actual* stripe size is scaled down by `threshold / total_registered`.
//! When writers close and the total drops back under the threshold, actual
//! sizes return to the originals. This bounds the memory footprint of tasks
//! with many concurrent writers (e.g. dynamic partitioning).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Shared memory manager for all ORC writers of one task.
#[derive(Clone)]
pub struct MemoryManager {
    inner: Arc<Mutex<Inner>>,
}

struct Inner {
    threshold: u64,
    next_id: u64,
    registered: HashMap<u64, u64>,
    total_registered: u64,
}

/// A writer's registration handle; deregisters on drop.
pub struct Registration {
    manager: MemoryManager,
    id: u64,
    stripe_size: u64,
}

impl MemoryManager {
    /// `threshold` is the maximum total bytes writers may buffer — the
    /// paper's default is half the memory allocated to the task.
    pub fn new(threshold: u64) -> MemoryManager {
        MemoryManager {
            inner: Arc::new(Mutex::new(Inner {
                threshold: threshold.max(1),
                next_id: 0,
                registered: HashMap::new(),
                total_registered: 0,
            })),
        }
    }

    /// From a task memory budget using the paper's default ratio (0.5).
    pub fn for_task_memory(task_memory: u64, pool_fraction: f64) -> MemoryManager {
        MemoryManager::new((task_memory as f64 * pool_fraction) as u64)
    }

    /// Register a new writer with its configured stripe size.
    pub fn register(&self, stripe_size: u64) -> Registration {
        let mut inner = self.inner.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.registered.insert(id, stripe_size);
        inner.total_registered += stripe_size;
        Registration {
            manager: self.clone(),
            id,
            stripe_size,
        }
    }

    /// The current scale-down ratio (1.0 when under the threshold).
    pub fn scale(&self) -> f64 {
        let inner = self.inner.lock();
        if inner.total_registered <= inner.threshold {
            1.0
        } else {
            inner.threshold as f64 / inner.total_registered as f64
        }
    }

    pub fn total_registered(&self) -> u64 {
        self.inner.lock().total_registered
    }

    fn deregister(&self, id: u64) {
        let mut inner = self.inner.lock();
        if let Some(sz) = inner.registered.remove(&id) {
            inner.total_registered -= sz;
        }
    }
}

impl Registration {
    /// The stripe size this writer should actually use right now.
    pub fn effective_stripe_size(&self) -> u64 {
        ((self.stripe_size as f64) * self.manager.scale()).max(1.0) as u64
    }

    pub fn registered_stripe_size(&self) -> u64 {
        self.stripe_size
    }
}

impl Drop for Registration {
    fn drop(&mut self) {
        self.manager.deregister(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_writer_unscaled() {
        let mm = MemoryManager::new(1000);
        let r = mm.register(600);
        assert_eq!(r.effective_stripe_size(), 600);
    }

    #[test]
    fn writers_scale_down_over_threshold() {
        let mm = MemoryManager::new(1000);
        let r1 = mm.register(800);
        let r2 = mm.register(800);
        // total 1600 > 1000 → ratio 0.625 → each effective 500.
        assert_eq!(r1.effective_stripe_size(), 500);
        assert_eq!(r2.effective_stripe_size(), 500);
        assert_eq!(mm.total_registered(), 1600);
    }

    #[test]
    fn closing_a_writer_restores_sizes() {
        let mm = MemoryManager::new(1000);
        let r1 = mm.register(800);
        {
            let _r2 = mm.register(800);
            assert_eq!(r1.effective_stripe_size(), 500);
        }
        // r2 dropped → back under threshold → original size again.
        assert_eq!(r1.effective_stripe_size(), 800);
    }

    #[test]
    fn total_memory_is_bounded() {
        let mm = MemoryManager::new(10_000);
        let regs: Vec<_> = (0..50).map(|_| mm.register(4_000)).collect();
        let total_effective: u64 = regs.iter().map(|r| r.effective_stripe_size()).sum();
        assert!(
            total_effective <= 10_050,
            "effective total {total_effective} must stay near the threshold"
        );
    }

    #[test]
    fn paper_default_ratio() {
        let mm = MemoryManager::for_task_memory(1 << 30, 0.5);
        let r = mm.register(1 << 29); // exactly the pool
        assert_eq!(r.effective_stripe_size(), 1 << 29);
        let _r2 = mm.register(1 << 29); // now 2× pool → halve
        assert_eq!(r.effective_stripe_size(), 1 << 28);
    }
}
