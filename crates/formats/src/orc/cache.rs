//! Process-wide ORC metadata cache (the metadata tier of the two-tier
//! cache layer; LLAP-style).
//!
//! ORC deliberately concentrates its hot bytes — postscript, file footer,
//! stripe footers, and the row-index statistics — so repeated scans can
//! amortize metadata decode. This module caches the *decoded* forms behind
//! `Arc`s, keyed by `(dfs instance, path, file generation)`: the generation
//! is bumped by the DFS on every publish or tamper, so an overwritten file
//! can never serve stale metadata — the stale key is simply unreachable.
//!
//! All maps are **single-flight**: concurrent readers missing on the same
//! key block while exactly one performs the read + decode, then share the
//! result. A failed fill removes the pending marker (the error goes to the
//! filler; waiters retry), so a fault-injected read can never leave a
//! partial entry behind.

use crate::orc::stats::ColumnStatistics;
use crate::orc::{FileFooter, PostScript, StripeFooter};
use hive_common::Result;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Files the global cache keeps decoded metadata for (LRU beyond this).
const MAX_CACHED_FILES: usize = 256;

enum Slot<V> {
    Pending,
    Ready(Arc<V>),
}

/// A single-flight memo map: `get_or_fill` returns the cached value or
/// runs `fill` exactly once per key across threads.
pub struct SfMap<K, V> {
    inner: Mutex<HashMap<K, Slot<V>>>,
    cv: Condvar,
}

impl<K: Eq + Hash + Clone, V> Default for SfMap<K, V> {
    fn default() -> Self {
        SfMap {
            inner: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
        }
    }
}

impl<K: Eq + Hash + Clone, V> SfMap<K, V> {
    /// Look up `key`, filling it with `fill` on a miss. Returns the value
    /// and whether it was served from cache (`true` = hit). Blocks while
    /// another thread fills the same key; if that fill fails, a waiter
    /// becomes the next filler.
    pub fn get_or_fill(&self, key: K, fill: impl FnOnce() -> Result<V>) -> Result<(Arc<V>, bool)> {
        {
            let mut m = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                match m.get(&key) {
                    Some(Slot::Ready(v)) => return Ok((Arc::clone(v), true)),
                    Some(Slot::Pending) => {
                        m = self.cv.wait(m).unwrap_or_else(|e| e.into_inner());
                    }
                    None => {
                        m.insert(key.clone(), Slot::Pending);
                        break;
                    }
                }
            }
        }
        match fill() {
            Ok(v) => {
                let v = Arc::new(v);
                let mut m = self.inner.lock().unwrap_or_else(|e| e.into_inner());
                m.insert(key, Slot::Ready(Arc::clone(&v)));
                self.cv.notify_all();
                Ok((v, false))
            }
            Err(e) => {
                let mut m = self.inner.lock().unwrap_or_else(|e| e.into_inner());
                m.remove(&key);
                self.cv.notify_all();
                Err(e)
            }
        }
    }

    /// Number of Ready entries (test hook).
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Decoded metadata of one ORC file (one generation of one path): the
/// eagerly decoded postscript + file footer, plus lazily filled per-stripe
/// footers and row-index statistics keyed by stripe offset.
pub struct FileMeta {
    pub ps: PostScript,
    pub footer: FileFooter,
    pub stripe_footers: SfMap<u64, StripeFooter>,
    pub indexes: SfMap<u64, Vec<Vec<ColumnStatistics>>>,
}

impl FileMeta {
    pub fn new(ps: PostScript, footer: FileFooter) -> FileMeta {
        FileMeta {
            ps,
            footer,
            stripe_footers: SfMap::default(),
            indexes: SfMap::default(),
        }
    }
}

type FileKey = (u64, String, u64); // (dfs instance, path, generation)

enum FileSlot {
    Pending,
    /// Meta plus its LRU stamp.
    Ready(Arc<FileMeta>, u64),
}

struct FileCache {
    inner: Mutex<HashMap<FileKey, FileSlot>>,
    cv: Condvar,
    clock: AtomicU64,
}

fn global() -> &'static FileCache {
    static CACHE: OnceLock<FileCache> = OnceLock::new();
    CACHE.get_or_init(|| FileCache {
        inner: Mutex::new(HashMap::new()),
        cv: Condvar::new(),
        clock: AtomicU64::new(0),
    })
}

/// Fetch (or build, single-flight) the decoded metadata for one generation
/// of one file. Returns the meta and whether it was a cache hit. Inserting
/// a new generation prunes older generations of the same path, and the
/// cache holds at most [`MAX_CACHED_FILES`] decoded files (LRU).
pub fn file_meta(
    dfs_id: u64,
    path: &str,
    generation: u64,
    open: impl FnOnce() -> Result<FileMeta>,
) -> Result<(Arc<FileMeta>, bool)> {
    let cache = global();
    let key: FileKey = (dfs_id, path.to_string(), generation);
    {
        let mut m = cache.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match m.get_mut(&key) {
                Some(FileSlot::Ready(meta, stamp)) => {
                    *stamp = cache.clock.fetch_add(1, Ordering::Relaxed);
                    return Ok((Arc::clone(meta), true));
                }
                Some(FileSlot::Pending) => {
                    m = cache.cv.wait(m).unwrap_or_else(|e| e.into_inner());
                }
                None => {
                    m.insert(key.clone(), FileSlot::Pending);
                    break;
                }
            }
        }
    }
    match open() {
        Ok(meta) => {
            let meta = Arc::new(meta);
            let mut m = cache.inner.lock().unwrap_or_else(|e| e.into_inner());
            // Older generations of this path are unreachable now; drop them.
            m.retain(|(d, p, g), _| !(*d == dfs_id && p == path && *g < generation));
            let stamp = cache.clock.fetch_add(1, Ordering::Relaxed);
            m.insert(key, FileSlot::Ready(Arc::clone(&meta), stamp));
            while m.len() > MAX_CACHED_FILES {
                let victim = m
                    .iter()
                    .filter_map(|(k, s)| match s {
                        FileSlot::Ready(_, stamp) => Some((*stamp, k.clone())),
                        FileSlot::Pending => None,
                    })
                    .min();
                let Some((_, k)) = victim else { break };
                m.remove(&k);
            }
            cache.cv.notify_all();
            Ok((meta, false))
        }
        Err(e) => {
            let mut m = cache.inner.lock().unwrap_or_else(|e| e.into_inner());
            m.remove(&key);
            cache.cv.notify_all();
            Err(e)
        }
    }
}

/// Ready file entries currently cached (test hook).
pub fn cached_files() -> usize {
    global()
        .inner
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .values()
        .filter(|s| matches!(s, FileSlot::Ready(..)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_codec::block::Compression;
    use hive_common::HiveError;

    fn meta() -> FileMeta {
        FileMeta::new(
            PostScript {
                footer_len: 0,
                compression: Compression::None,
                compress_unit: 0,
            },
            FileFooter {
                nrows: 0,
                type_string: "struct<a:bigint>".into(),
                row_index_stride: 10_000,
                stripes: Vec::new(),
                stripe_stats: Vec::new(),
                file_stats: Vec::new(),
            },
        )
    }

    #[test]
    fn sfmap_fills_once_then_hits() {
        let m: SfMap<u64, String> = SfMap::default();
        let (v, hit) = m.get_or_fill(7, || Ok("x".to_string())).unwrap();
        assert_eq!((v.as_str(), hit), ("x", false));
        let (v, hit) = m.get_or_fill(7, || panic!("must not refill")).unwrap();
        assert_eq!((v.as_str(), hit), ("x", true));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn sfmap_failed_fill_is_retryable() {
        let m: SfMap<u64, String> = SfMap::default();
        let err = m
            .get_or_fill(1, || Err::<String, _>(HiveError::Transient("boom".into())))
            .unwrap_err();
        assert!(matches!(err, HiveError::Transient(_)));
        assert!(m.is_empty());
        let (_, hit) = m.get_or_fill(1, || Ok("ok".to_string())).unwrap();
        assert!(!hit);
    }

    #[test]
    fn file_meta_generation_replaces_older() {
        // A private dfs_id keeps this test independent of others sharing
        // the global cache.
        let id = u64::MAX - 3;
        let (_, hit) = file_meta(id, "/w/t/p", 1, || Ok(meta())).unwrap();
        assert!(!hit);
        let (_, hit) = file_meta(id, "/w/t/p", 1, || panic!("cached")).unwrap();
        assert!(hit);
        // New generation: a miss, and the old generation gets pruned.
        let (_, hit) = file_meta(id, "/w/t/p", 2, || Ok(meta())).unwrap();
        assert!(!hit);
        let m = global().inner.lock().unwrap();
        assert!(!m.contains_key(&(id, "/w/t/p".to_string(), 1)));
        assert!(m.contains_key(&(id, "/w/t/p".to_string(), 2)));
    }
}
