//! Process-wide ORC metadata cache (the metadata tier of the two-tier
//! cache layer; LLAP-style).
//!
//! ORC deliberately concentrates its hot bytes — postscript, file footer,
//! stripe footers, and the row-index statistics — so repeated scans can
//! amortize metadata decode. This module caches the *decoded* forms behind
//! `Arc`s, keyed by `(dfs instance, path, file generation)`: the generation
//! is bumped by the DFS on every publish or tamper, so an overwritten file
//! can never serve stale metadata — the stale key is simply unreachable.
//!
//! All maps are **single-flight**: concurrent readers missing on the same
//! key block while exactly one performs the read + decode, then share the
//! result. The claimed pending marker is held by an RAII guard that
//! removes it on drop unless the fill published — a failed *or panicking*
//! fill wakes the waiters (the error goes to the filler; a waiter becomes
//! the next filler), so a fault-injected read can never leave a partial
//! entry behind or strand waiters on the condvar.

use crate::orc::stats::ColumnStatistics;
use crate::orc::{FileFooter, PostScript, StripeFooter};
use hive_common::Result;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Files the global cache keeps decoded metadata for (LRU beyond this).
const MAX_CACHED_FILES: usize = 256;

enum Slot<V> {
    Pending,
    Ready(Arc<V>),
}

/// A single-flight memo map: `get_or_fill` returns the cached value or
/// runs `fill` exactly once per key across threads.
pub struct SfMap<K, V> {
    inner: Mutex<HashMap<K, Slot<V>>>,
    cv: Condvar,
}

impl<K: Eq + Hash + Clone, V> Default for SfMap<K, V> {
    fn default() -> Self {
        SfMap {
            inner: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
        }
    }
}

/// RAII ownership of a claimed [`SfMap`] pending marker: removes it and
/// wakes waiters on drop unless disarmed by a successful publish, so a
/// fill that errors *or panics* can never strand waiters.
struct PendingGuard<'a, K: Eq + Hash + Clone, V> {
    map: &'a SfMap<K, V>,
    key: K,
    armed: bool,
}

impl<K: Eq + Hash + Clone, V> Drop for PendingGuard<'_, K, V> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut m = self.map.inner.lock().unwrap_or_else(|e| e.into_inner());
        if matches!(m.get(&self.key), Some(Slot::Pending)) {
            m.remove(&self.key);
        }
        drop(m);
        self.map.cv.notify_all();
    }
}

impl<K: Eq + Hash + Clone, V> SfMap<K, V> {
    /// Look up `key`, filling it with `fill` on a miss. Returns the value
    /// and whether it was served from cache (`true` = hit). Blocks while
    /// another thread fills the same key; if that fill fails (or panics),
    /// a waiter becomes the next filler.
    pub fn get_or_fill(&self, key: K, fill: impl FnOnce() -> Result<V>) -> Result<(Arc<V>, bool)> {
        {
            let mut m = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                match m.get(&key) {
                    Some(Slot::Ready(v)) => return Ok((Arc::clone(v), true)),
                    Some(Slot::Pending) => {
                        m = self.cv.wait(m).unwrap_or_else(|e| e.into_inner());
                    }
                    None => {
                        m.insert(key.clone(), Slot::Pending);
                        break;
                    }
                }
            }
        }
        let mut guard = PendingGuard {
            map: self,
            key: key.clone(),
            armed: true,
        };
        let v = Arc::new(fill()?); // on error/panic the guard cleans up
        let mut m = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        m.insert(key, Slot::Ready(Arc::clone(&v)));
        guard.armed = false;
        drop(m);
        self.cv.notify_all();
        Ok((v, false))
    }

    /// Number of Ready entries (test hook).
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Decoded metadata of one ORC file (one generation of one path): the
/// eagerly decoded postscript + file footer, plus lazily filled per-stripe
/// footers and row-index statistics keyed by stripe offset.
pub struct FileMeta {
    pub ps: PostScript,
    pub footer: FileFooter,
    pub stripe_footers: SfMap<u64, StripeFooter>,
    pub indexes: SfMap<u64, Vec<Vec<ColumnStatistics>>>,
}

impl FileMeta {
    pub fn new(ps: PostScript, footer: FileFooter) -> FileMeta {
        FileMeta {
            ps,
            footer,
            stripe_footers: SfMap::default(),
            indexes: SfMap::default(),
        }
    }
}

type FileKey = (u64, String, u64); // (dfs instance, path, generation)

enum FileSlot {
    Pending,
    /// Meta plus its LRU stamp.
    Ready(Arc<FileMeta>, u64),
}

struct FileCache {
    inner: Mutex<HashMap<FileKey, FileSlot>>,
    cv: Condvar,
    clock: AtomicU64,
}

fn global() -> &'static FileCache {
    static CACHE: OnceLock<FileCache> = OnceLock::new();
    CACHE.get_or_init(|| FileCache {
        inner: Mutex::new(HashMap::new()),
        cv: Condvar::new(),
        clock: AtomicU64::new(0),
    })
}

/// Fetch (or build, single-flight) the decoded metadata for one generation
/// of one file. Returns the meta and whether it was a cache hit. Inserting
/// a new generation prunes older generations of the same path, and the
/// cache holds at most [`MAX_CACHED_FILES`] decoded files (LRU).
pub fn file_meta(
    dfs_id: u64,
    path: &str,
    generation: u64,
    open: impl FnOnce() -> Result<FileMeta>,
) -> Result<(Arc<FileMeta>, bool)> {
    let cache = global();
    let key: FileKey = (dfs_id, path.to_string(), generation);
    {
        let mut m = cache.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match m.get_mut(&key) {
                Some(FileSlot::Ready(meta, stamp)) => {
                    *stamp = cache.clock.fetch_add(1, Ordering::Relaxed);
                    return Ok((Arc::clone(meta), true));
                }
                Some(FileSlot::Pending) => {
                    m = cache.cv.wait(m).unwrap_or_else(|e| e.into_inner());
                }
                None => {
                    m.insert(key.clone(), FileSlot::Pending);
                    break;
                }
            }
        }
    }
    let mut guard = FilePendingGuard {
        cache,
        key: key.clone(),
        armed: true,
    };
    let meta = Arc::new(open()?); // on error/panic the guard cleans up
    let mut m = cache.inner.lock().unwrap_or_else(|e| e.into_inner());
    // Older generations of this path are unreachable now; drop their
    // *Ready* entries only. A Pending marker of an older generation
    // belongs to a fill still in flight — removing it would let that fill
    // resurrect a stale entry unchecked and make its waiters (who wake to
    // find no marker) redo the decode.
    m.retain(|(d, p, g), slot| {
        !(*d == dfs_id && p == path && *g < generation && matches!(slot, FileSlot::Ready(..)))
    });
    // Publish only while our own claim marker is still in place; if it
    // was pruned by a newer generation's insert, this generation is
    // already unreachable and the decoded meta is returned uncached.
    if matches!(m.get(&key), Some(FileSlot::Pending)) {
        let stamp = cache.clock.fetch_add(1, Ordering::Relaxed);
        m.insert(key, FileSlot::Ready(Arc::clone(&meta), stamp));
        while m.len() > MAX_CACHED_FILES {
            let victim = m
                .iter()
                .filter_map(|(k, s)| match s {
                    FileSlot::Ready(_, stamp) => Some((*stamp, k.clone())),
                    FileSlot::Pending => None,
                })
                .min();
            let Some((_, k)) = victim else { break };
            m.remove(&k);
        }
    }
    guard.armed = false;
    drop(m);
    cache.cv.notify_all();
    Ok((meta, false))
}

/// RAII twin of [`PendingGuard`] for the global file cache: drops the
/// claimed marker and wakes waiters unless the fill published.
struct FilePendingGuard {
    cache: &'static FileCache,
    key: FileKey,
    armed: bool,
}

impl Drop for FilePendingGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut m = self.cache.inner.lock().unwrap_or_else(|e| e.into_inner());
        if matches!(m.get(&self.key), Some(FileSlot::Pending)) {
            m.remove(&self.key);
        }
        drop(m);
        self.cache.cv.notify_all();
    }
}

/// Ready file entries currently cached (test hook).
pub fn cached_files() -> usize {
    global()
        .inner
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .values()
        .filter(|s| matches!(s, FileSlot::Ready(..)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_codec::block::Compression;
    use hive_common::HiveError;

    fn meta() -> FileMeta {
        FileMeta::new(
            PostScript {
                footer_len: 0,
                compression: Compression::None,
                compress_unit: 0,
            },
            FileFooter {
                nrows: 0,
                type_string: "struct<a:bigint>".into(),
                row_index_stride: 10_000,
                stripes: Vec::new(),
                stripe_stats: Vec::new(),
                file_stats: Vec::new(),
                sort_column: String::new(),
            },
        )
    }

    #[test]
    fn sfmap_fills_once_then_hits() {
        let m: SfMap<u64, String> = SfMap::default();
        let (v, hit) = m.get_or_fill(7, || Ok("x".to_string())).unwrap();
        assert_eq!((v.as_str(), hit), ("x", false));
        let (v, hit) = m.get_or_fill(7, || panic!("must not refill")).unwrap();
        assert_eq!((v.as_str(), hit), ("x", true));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn sfmap_failed_fill_is_retryable() {
        let m: SfMap<u64, String> = SfMap::default();
        let err = m
            .get_or_fill(1, || Err::<String, _>(HiveError::Transient("boom".into())))
            .unwrap_err();
        assert!(matches!(err, HiveError::Transient(_)));
        assert!(m.is_empty());
        let (_, hit) = m.get_or_fill(1, || Ok("ok".to_string())).unwrap();
        assert!(!hit);
    }

    #[test]
    fn sfmap_panicking_fill_unblocks_and_retries() {
        let m: Arc<SfMap<u64, String>> = Arc::new(SfMap::default());
        let m2 = Arc::clone(&m);
        let t = std::thread::spawn(move || {
            let _ = m2.get_or_fill(5, || -> Result<String> { panic!("decode panic") });
        });
        assert!(t.join().is_err());
        // The pending marker died with the panicking filler; the next
        // reader fills instead of blocking forever.
        let (v, hit) = m.get_or_fill(5, || Ok("ok".to_string())).unwrap();
        assert!(!hit);
        assert_eq!(v.as_str(), "ok");
    }

    #[test]
    fn in_flight_old_generation_fill_survives_new_generation_insert() {
        let id = u64::MAX - 4;
        let path = "/w/t/race";
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();
        let fills = Arc::new(AtomicU64::new(0));
        let fills2 = Arc::clone(&fills);
        let filler = std::thread::spawn(move || {
            file_meta(id, path, 1, || {
                started_tx.send(()).unwrap();
                release_rx.recv().unwrap();
                fills2.fetch_add(1, Ordering::Relaxed);
                Ok(meta())
            })
            .unwrap()
        });
        started_rx.recv().unwrap();
        // While generation 1's fill is in flight, generation 2 lands and
        // prunes older entries — Ready ones only, never the live marker.
        let (_, hit) = file_meta(id, path, 2, || Ok(meta())).unwrap();
        assert!(!hit);
        // A waiter on generation 1 must share the in-flight fill rather
        // than finding its marker gone and redoing the decode.
        let waiter = std::thread::spawn(move || {
            file_meta(id, path, 1, || {
                panic!("waiter must not refill; the in-flight fill owns the marker")
            })
            .unwrap()
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        release_tx.send(()).unwrap();
        let (_, filler_hit) = filler.join().unwrap();
        assert!(!filler_hit);
        let (_, waiter_hit) = waiter.join().unwrap();
        assert!(waiter_hit);
        assert_eq!(fills.load(Ordering::Relaxed), 1, "exactly one decode");
        // Generation 1 stays cached for readers still holding its file
        // snapshot; generation 2 serves new opens.
        let m = global().inner.lock().unwrap();
        assert!(m.contains_key(&(id, path.to_string(), 1)));
        assert!(m.contains_key(&(id, path.to_string(), 2)));
    }

    #[test]
    fn file_meta_generation_replaces_older() {
        // A private dfs_id keeps this test independent of others sharing
        // the global cache.
        let id = u64::MAX - 3;
        let (_, hit) = file_meta(id, "/w/t/p", 1, || Ok(meta())).unwrap();
        assert!(!hit);
        let (_, hit) = file_meta(id, "/w/t/p", 1, || panic!("cached")).unwrap();
        assert!(hit);
        // New generation: a miss, and the old generation gets pruned.
        let (_, hit) = file_meta(id, "/w/t/p", 2, || Ok(meta())).unwrap();
        assert!(!hit);
        let m = global().inner.lock().unwrap();
        assert!(!m.contains_key(&(id, "/w/t/p".to_string(), 1)));
        assert!(m.contains_key(&(id, "/w/t/p".to_string(), 2)));
    }
}
