//! The ORC writer (paper Sections 4.1–4.4).
//!
//! The writer is *data-type aware*: it decomposes complex columns into the
//! column tree (Table 1), buffers an entire stripe in memory, and at stripe
//! flush encodes every column with type-specific stream encodings, records
//! per-index-group statistics and position pointers, optionally compresses
//! streams in fixed-size units, optionally pads so stripes never straddle
//! DFS blocks, and cooperates with the [`MemoryManager`] to bound the
//! footprint of many concurrent writers.

use crate::orc::bloom::{self, BloomFilter, ColumnBloom};
use crate::orc::memory::{MemoryManager, Registration};
use crate::orc::stats::ColumnStatistics;
use crate::orc::{
    encode_file_footer, encode_postscript, encode_stripe_footer, frame_chunk, ChunkInfo,
    ColumnEncoding, ColumnStreams, FileFooter, PostScript, StreamInfo, StreamKind, StripeFooter,
    StripeInfo, DEFAULT_COMPRESS_UNIT, DEFAULT_ROW_INDEX_STRIDE,
};
use crate::TableWriter;
use hive_codec::block::Compression;
use hive_codec::dictionary::{DictionaryBuilder, StringEncoding};
use hive_codec::{bitfield, byte_rle, int_rle, varint};
use hive_common::{ColumnTree, DataType, HiveError, Result, Row, Schema, Value};
use hive_dfs::{Dfs, DfsWriter};

/// Writer configuration; defaults follow the paper.
#[derive(Debug, Clone)]
pub struct OrcWriterOptions {
    /// Target (buffered, uncompressed) stripe size; paper default 256 MB.
    pub stripe_size: usize,
    /// Rows per index group; paper default 10,000.
    pub row_index_stride: usize,
    /// Dictionary distinct/total threshold; paper default 0.8.
    pub dictionary_threshold: f64,
    pub compression: Compression,
    pub compress_unit: usize,
    /// Pad so a stripe never straddles a DFS block (Section 4.1).
    pub block_padding: bool,
    /// Top-level column indices to build per-index-group bloom filters
    /// for (`hive.orc.bloom.filter.columns` resolved against the schema).
    pub bloom_columns: Vec<usize>,
    /// Target false-positive probability of those filters.
    pub bloom_fpp: f64,
    /// Column this file's rows are clustered on, recorded in the footer
    /// (per-replica sort orders); empty = insertion order.
    pub sort_column: String,
}

impl Default for OrcWriterOptions {
    fn default() -> Self {
        OrcWriterOptions {
            stripe_size: 256 << 20,
            row_index_stride: DEFAULT_ROW_INDEX_STRIDE,
            dictionary_threshold: 0.8,
            compression: Compression::None,
            compress_unit: DEFAULT_COMPRESS_UNIT,
            block_padding: true,
            bloom_columns: Vec::new(),
            bloom_fpp: 0.05,
            sort_column: String::new(),
        }
    }
}

/// Per-column in-memory stripe buffer.
#[derive(Default)]
struct ColumnBuffer {
    /// One presence bit per instance of this column.
    present: Vec<bool>,
    any_null: bool,
    /// Int/timestamp values; array/map lengths.
    longs: Vec<i64>,
    /// Boolean values.
    bools: Vec<bool>,
    doubles: Vec<f64>,
    /// String values (dictionary decision deferred to stripe flush).
    dict: DictionaryBuilder,
    /// Union tags.
    tags: Vec<u8>,
    /// Buffer lengths at each completed index-group boundary.
    marks: Vec<Mark>,
}

#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct Mark {
    present: usize,
    longs: usize,
    bools: usize,
    doubles: usize,
    strings: usize,
    tags: usize,
}

impl ColumnBuffer {
    fn mark(&self) -> Mark {
        Mark {
            present: self.present.len(),
            longs: self.longs.len(),
            bools: self.bools.len(),
            doubles: self.doubles.len(),
            strings: self.dict.num_values(),
            tags: self.tags.len(),
        }
    }

    fn memory_size(&self) -> usize {
        self.present.len() / 8
            + self.longs.len() * 8
            + self.bools.len()
            + self.doubles.len() * 8
            + self.dict.memory_size()
            + self.tags.len()
    }

    fn clear(&mut self) {
        self.present.clear();
        self.any_null = false;
        self.longs.clear();
        self.bools.clear();
        self.doubles.clear();
        self.dict.clear();
        self.tags.clear();
        self.marks.clear();
    }
}

/// The ORC file writer.
pub struct OrcWriter {
    writer: DfsWriter,
    schema: Schema,
    tree: ColumnTree,
    options: OrcWriterOptions,
    buffers: Vec<ColumnBuffer>,
    rows_in_stripe: u64,
    rows_in_group: usize,
    total_rows: u64,
    stripes: Vec<StripeInfo>,
    stripe_stats: Vec<Vec<ColumnStatistics>>,
    registration: Option<Registration>,
    /// Total padding bytes written (exposed for tests/diagnostics).
    pub padding_bytes: u64,
}

impl OrcWriter {
    pub fn create(
        dfs: &Dfs,
        path: &str,
        schema: &Schema,
        options: OrcWriterOptions,
        memory: Option<&MemoryManager>,
    ) -> OrcWriter {
        let tree = schema.column_tree();
        let buffers = (0..tree.len()).map(|_| ColumnBuffer::default()).collect();
        let registration = memory.map(|m| m.register(options.stripe_size as u64));
        OrcWriter {
            writer: dfs.create(path),
            schema: schema.clone(),
            tree,
            options,
            buffers,
            rows_in_stripe: 0,
            rows_in_group: 0,
            total_rows: 0,
            stripes: Vec::new(),
            stripe_stats: Vec::new(),
            registration,
            padding_bytes: 0,
        }
    }

    /// The stripe budget currently in force (memory manager may shrink it).
    fn effective_stripe_size(&self) -> usize {
        match &self.registration {
            Some(r) => r.effective_stripe_size() as usize,
            None => self.options.stripe_size,
        }
    }

    fn buffered_memory(&self) -> usize {
        self.buffers.iter().map(ColumnBuffer::memory_size).sum()
    }

    /// Recursively append one value into the column subtree rooted at `col`.
    fn write_value(&mut self, col: usize, value: &Value) -> Result<()> {
        let dt = self.tree.node(col).data_type.clone();
        let is_null = value.is_null();
        {
            let buf = &mut self.buffers[col];
            buf.present.push(!is_null);
            buf.any_null |= is_null;
        }
        if is_null {
            return Ok(());
        }
        match (&dt, value) {
            (DataType::Int, Value::Int(v)) | (DataType::Timestamp, Value::Timestamp(v)) => {
                self.buffers[col].longs.push(*v);
            }
            (DataType::Int, Value::Timestamp(v)) | (DataType::Timestamp, Value::Int(v)) => {
                self.buffers[col].longs.push(*v);
            }
            (DataType::Int, Value::Boolean(b)) => self.buffers[col].longs.push(*b as i64),
            (DataType::Boolean, Value::Boolean(b)) => self.buffers[col].bools.push(*b),
            (DataType::Double, Value::Double(v)) => self.buffers[col].doubles.push(*v),
            (DataType::Double, Value::Int(v)) => self.buffers[col].doubles.push(*v as f64),
            (DataType::String, Value::String(s)) => self.buffers[col].dict.add(s.as_bytes()),
            (DataType::Array(_), Value::Array(items)) => {
                self.buffers[col].longs.push(items.len() as i64);
                let child = self.tree.node(col).children[0];
                for it in items {
                    self.write_value(child, it)?;
                }
            }
            (DataType::Map(_, _), Value::Map(entries)) => {
                self.buffers[col].longs.push(entries.len() as i64);
                let kcol = self.tree.node(col).children[0];
                let vcol = self.tree.node(col).children[1];
                for (k, v) in entries {
                    self.write_value(kcol, k)?;
                    self.write_value(vcol, v)?;
                }
            }
            (DataType::Struct(fields), Value::Struct(vals)) => {
                if fields.len() != vals.len() {
                    return Err(HiveError::SerDe(format!(
                        "struct has {} values, type has {} fields",
                        vals.len(),
                        fields.len()
                    )));
                }
                let children = self.tree.node(col).children.clone();
                for (child, v) in children.iter().zip(vals.iter()) {
                    self.write_value(*child, v)?;
                }
            }
            (DataType::Union(alts), Value::Union(tag, v)) => {
                if *tag as usize >= alts.len() {
                    return Err(HiveError::SerDe(format!("union tag {tag} out of range")));
                }
                self.buffers[col].tags.push(*tag);
                let child = self.tree.node(col).children[*tag as usize];
                self.write_value(child, v)?;
            }
            (dt, v) => {
                return Err(HiveError::SerDe(format!(
                    "value {v} does not match column type {dt}"
                )))
            }
        }
        Ok(())
    }

    fn end_group(&mut self) {
        for buf in &mut self.buffers {
            let m = buf.mark();
            buf.marks.push(m);
        }
        self.rows_in_group = 0;
    }

    fn flush_stripe(&mut self) -> Result<()> {
        if self.rows_in_stripe == 0 {
            return Ok(());
        }
        if self.rows_in_group > 0 {
            self.end_group();
        }
        let compression = self.options.compression;
        let unit = self.options.compress_unit;
        let threshold = self.options.dictionary_threshold;

        let mut columns: Vec<ColumnStreams> = Vec::with_capacity(self.tree.len());
        let mut group_stats: Vec<Vec<ColumnStatistics>> = Vec::with_capacity(self.tree.len());
        let mut data: Vec<u8> = Vec::new();

        for col in 0..self.tree.len() {
            let dt = self.tree.node(col).data_type.clone();
            let is_root = col == 0;
            let (streams, stats) = encode_column(
                &self.buffers[col],
                &dt,
                is_root,
                threshold,
                compression,
                unit,
                &mut data,
            )?;
            columns.push(streams);
            group_stats.push(stats);
        }

        // Index section: per column, group count + per-group statistics.
        let mut index = Vec::new();
        for stats in &group_stats {
            varint::write_unsigned(&mut index, stats.len() as u64);
            for s in stats {
                s.encode(&mut index);
            }
        }

        // Bloom-filter section: one filter per (configured column, index
        // group), CRC-trailed so tampering degrades independently of the
        // DFS block checksums. Empty when no bloom columns are configured,
        // costing zero bytes.
        let bloom_section = self.build_bloom_section();

        // Stripe footer.
        let footer = StripeFooter {
            nrows: self.rows_in_stripe,
            columns,
        };
        let mut footer_buf = Vec::new();
        encode_stripe_footer(&footer, &mut footer_buf);

        // Block padding (Section 4.1): if the stripe would straddle a block
        // and fits in one, pad to the block boundary first.
        let stripe_len = (index.len() + bloom_section.len() + data.len() + footer_buf.len()) as u64;
        if self.options.block_padding {
            let remaining = self.writer.block_remaining();
            if stripe_len > remaining && stripe_len <= self.writer.block_size() {
                self.padding_bytes += remaining;
                self.writer.pad(remaining);
            }
        }

        let offset = self.writer.position();
        self.writer.write(&index);
        self.writer.write(&bloom_section);
        self.writer.write(&data);
        self.writer.write(&footer_buf);
        self.stripes.push(StripeInfo {
            offset,
            index_len: index.len() as u64,
            bloom_len: bloom_section.len() as u64,
            data_len: data.len() as u64,
            footer_len: footer_buf.len() as u64,
            nrows: self.rows_in_stripe,
        });

        // Roll group stats up into stripe stats.
        let mut per_stripe = Vec::with_capacity(self.tree.len());
        for stats in &group_stats {
            let mut it = stats.iter();
            let mut acc = it.next().cloned().unwrap_or(ColumnStatistics::Generic {
                count: 0,
                has_null: false,
            });
            for s in it {
                acc.merge(s)?;
            }
            per_stripe.push(acc);
        }
        self.stripe_stats.push(per_stripe);

        for buf in &mut self.buffers {
            buf.clear();
        }
        self.rows_in_stripe = 0;
        self.rows_in_group = 0;
        Ok(())
    }

    /// Build the serialized bloom section for the stripe being flushed:
    /// for each configured top-level column of a hashable type, one
    /// filter per completed index group, sized for the group's value
    /// count at the configured false-positive probability.
    fn build_bloom_section(&self) -> Vec<u8> {
        if self.options.bloom_columns.is_empty() {
            return Vec::new();
        }
        let fpp = self.options.bloom_fpp;
        let mut cols: Vec<ColumnBloom> = Vec::new();
        for &i in &self.options.bloom_columns {
            if i >= self.schema.len() {
                continue;
            }
            let node = self.tree.top_level(i);
            let dt = &self.tree.node(node).data_type;
            let buf = &self.buffers[node];
            let ngroups = buf.marks.len();
            let mark_at = |g: usize| -> Mark {
                if g == 0 {
                    Mark::default()
                } else {
                    buf.marks[g - 1]
                }
            };
            let mut groups: Vec<BloomFilter> = Vec::with_capacity(ngroups);
            for g in 0..ngroups {
                let (m0, m1) = (mark_at(g), buf.marks[g]);
                let filter = match dt {
                    DataType::Int | DataType::Timestamp => {
                        let vals = &buf.longs[m0.longs..m1.longs];
                        let mut f = BloomFilter::with_expected(vals.len(), fpp);
                        for v in vals {
                            f.add_hash(bloom::hash_i64(*v));
                        }
                        f
                    }
                    DataType::Double => {
                        let vals = &buf.doubles[m0.doubles..m1.doubles];
                        let mut f = BloomFilter::with_expected(vals.len(), fpp);
                        for v in vals {
                            f.add_hash(bloom::hash_f64(*v));
                        }
                        f
                    }
                    DataType::Boolean => {
                        let vals = &buf.bools[m0.bools..m1.bools];
                        let mut f = BloomFilter::with_expected(vals.len(), fpp);
                        for v in vals {
                            f.add_hash(bloom::hash_i64(*v as i64));
                        }
                        f
                    }
                    DataType::String => {
                        let entries = buf.dict.entries();
                        let ids = &buf.dict.row_ids()[m0.strings..m1.strings];
                        let mut f = BloomFilter::with_expected(ids.len(), fpp);
                        for &id in ids {
                            // Dictionary entries are the strings' UTF-8
                            // bytes, so this matches `hash_str` on the
                            // predicate literal exactly.
                            f.add_hash(bloom::hash_bytes(&entries[id as usize]));
                        }
                        f
                    }
                    // Complex types carry no bloom filters.
                    _ => break,
                };
                groups.push(filter);
            }
            if groups.len() == ngroups {
                cols.push(ColumnBloom { column: i, groups });
            }
        }
        if cols.is_empty() {
            return Vec::new();
        }
        bloom::encode_section(&cols)
    }
}

impl TableWriter for OrcWriter {
    fn write_row(&mut self, row: &Row) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(HiveError::SerDe(format!(
                "row has {} columns, table has {}",
                row.len(),
                self.schema.len()
            )));
        }
        // The root column is the row struct itself.
        self.buffers[0].present.push(true);
        for (i, v) in row.values().iter().enumerate() {
            let col = self.tree.top_level(i);
            self.write_value(col, v)?;
        }
        self.rows_in_stripe += 1;
        self.rows_in_group += 1;
        self.total_rows += 1;
        if self.rows_in_group >= self.options.row_index_stride {
            self.end_group();
        }
        if self.buffered_memory() >= self.effective_stripe_size() {
            self.flush_stripe()?;
        }
        Ok(())
    }

    fn close(mut self: Box<Self>) -> Result<u64> {
        self.flush_stripe()?;
        // File-level statistics: merge stripe stats.
        let ncols = self.tree.len();
        let mut file_stats: Vec<ColumnStatistics> = Vec::with_capacity(ncols);
        for col in 0..ncols {
            let mut acc: Option<ColumnStatistics> = None;
            for per in &self.stripe_stats {
                match &mut acc {
                    Some(a) => a.merge(&per[col])?,
                    None => acc = Some(per[col].clone()),
                }
            }
            file_stats.push(acc.unwrap_or(ColumnStatistics::Generic {
                count: 0,
                has_null: false,
            }));
        }
        let footer = FileFooter {
            nrows: self.total_rows,
            type_string: self.schema.as_struct_type().to_string(),
            row_index_stride: self.options.row_index_stride as u64,
            stripes: std::mem::take(&mut self.stripes),
            stripe_stats: std::mem::take(&mut self.stripe_stats),
            file_stats,
            sort_column: self.options.sort_column.clone(),
        };
        let mut footer_buf = Vec::new();
        encode_file_footer(&footer, &mut footer_buf);
        self.writer.write(&footer_buf);
        let mut ps_buf = Vec::new();
        encode_postscript(
            &PostScript {
                footer_len: footer_buf.len() as u64,
                compression: self.options.compression,
                compress_unit: self.options.compress_unit as u64,
            },
            &mut ps_buf,
        );
        self.writer.write(&ps_buf);
        self.writer.try_close()
    }

    fn memory_estimate(&self) -> usize {
        self.buffered_memory()
    }
}

/// Encode one column's stripe buffer into streams appended to `data`.
/// Returns the stream directory and per-group statistics.
#[allow(clippy::too_many_arguments)]
fn encode_column(
    buf: &ColumnBuffer,
    dt: &DataType,
    is_root: bool,
    dict_threshold: f64,
    compression: Compression,
    unit: usize,
    data: &mut Vec<u8>,
) -> Result<(ColumnStreams, Vec<ColumnStatistics>)> {
    let ngroups = buf.marks.len();
    let mut streams: Vec<StreamInfo> = Vec::new();
    let mut encoding = None;

    // Group boundary helper: start/end marks of group g.
    let mark_at = |g: usize| -> Mark {
        if g == 0 {
            Mark::default()
        } else {
            buf.marks[g - 1]
        }
    };

    // PRESENT stream, only when the stripe saw a null (root never does).
    if buf.any_null && !is_root {
        let mut stream_bytes = Vec::new();
        let mut chunks = Vec::with_capacity(ngroups);
        for g in 0..ngroups {
            let (s, e) = (mark_at(g).present, buf.marks[g].present);
            let raw = bitfield::encode(&buf.present[s..e]);
            let framed = frame_chunk(&raw, compression, unit);
            chunks.push(ChunkInfo {
                offset: stream_bytes.len() as u64,
                len: framed.len() as u64,
                values: (e - s) as u64,
            });
            stream_bytes.extend_from_slice(&framed);
        }
        streams.push(StreamInfo {
            kind: StreamKind::Present,
            len: stream_bytes.len() as u64,
            chunks,
        });
        data.extend_from_slice(&stream_bytes);
    }

    // Helper to emit a per-group stream from a closure producing raw bytes
    // plus a value count per group.
    let emit_stream = |kind: StreamKind,
                       data: &mut Vec<u8>,
                       per_group: &mut dyn FnMut(usize) -> (Vec<u8>, u64)| {
        let mut stream_bytes = Vec::new();
        let mut chunks = Vec::with_capacity(ngroups);
        for g in 0..ngroups {
            let (raw, values) = per_group(g);
            let framed = frame_chunk(&raw, compression, unit);
            chunks.push(ChunkInfo {
                offset: stream_bytes.len() as u64,
                len: framed.len() as u64,
                values,
            });
            stream_bytes.extend_from_slice(&framed);
        }
        let info = StreamInfo {
            kind,
            len: stream_bytes.len() as u64,
            chunks,
        };
        data.extend_from_slice(&stream_bytes);
        info
    };

    let mut stats: Vec<ColumnStatistics> = Vec::with_capacity(ngroups);

    match dt {
        DataType::Int | DataType::Timestamp => {
            encoding = Some(ColumnEncoding::Direct);
            let info = emit_stream(StreamKind::Data, data, &mut |g| {
                let (s, e) = (mark_at(g).longs, buf.marks[g].longs);
                (int_rle::encode(&buf.longs[s..e]), (e - s) as u64)
            });
            streams.push(info);
            for g in 0..ngroups {
                let m0 = mark_at(g);
                let m1 = buf.marks[g];
                let vals = &buf.longs[m0.longs..m1.longs];
                let has_null = buf.present[m0.present..m1.present].iter().any(|p| !p);
                stats.push(int_stats(vals, has_null));
            }
        }
        DataType::Boolean => {
            encoding = Some(ColumnEncoding::Direct);
            let info = emit_stream(StreamKind::Data, data, &mut |g| {
                let (s, e) = (mark_at(g).bools, buf.marks[g].bools);
                (bitfield::encode(&buf.bools[s..e]), (e - s) as u64)
            });
            streams.push(info);
            for g in 0..ngroups {
                let m0 = mark_at(g);
                let m1 = buf.marks[g];
                let vals = &buf.bools[m0.bools..m1.bools];
                let has_null = buf.present[m0.present..m1.present].iter().any(|p| !p);
                stats.push(ColumnStatistics::Boolean {
                    count: vals.len() as u64,
                    has_null,
                    true_count: vals.iter().filter(|b| **b).count() as u64,
                });
            }
        }
        DataType::Double => {
            encoding = Some(ColumnEncoding::Direct);
            let info = emit_stream(StreamKind::Data, data, &mut |g| {
                let (s, e) = (mark_at(g).doubles, buf.marks[g].doubles);
                let mut raw = Vec::with_capacity((e - s) * 8);
                for v in &buf.doubles[s..e] {
                    raw.extend_from_slice(&v.to_le_bytes());
                }
                (raw, (e - s) as u64)
            });
            streams.push(info);
            for g in 0..ngroups {
                let m0 = mark_at(g);
                let m1 = buf.marks[g];
                let vals = &buf.doubles[m0.doubles..m1.doubles];
                let has_null = buf.present[m0.present..m1.present].iter().any(|p| !p);
                stats.push(double_stats(vals, has_null));
            }
        }
        DataType::String => {
            // The paper's dictionary decision: dictionary-encode when
            // distinct/total ≤ threshold, else store directly.
            let choice = buf.dict.choose(dict_threshold);
            match choice {
                StringEncoding::Dictionary => {
                    encoding = Some(ColumnEncoding::Dictionary {
                        size: buf.dict.num_distinct() as u64,
                    });
                    // Stripe-global dictionary streams (single chunk each).
                    let mut dict_bytes = Vec::new();
                    let mut dict_lens = int_rle::IntRleEncoder::new();
                    for e in buf.dict.entries() {
                        dict_bytes.extend_from_slice(e);
                        dict_lens.write(e.len() as i64);
                    }
                    for (kind, raw, values) in [
                        (
                            StreamKind::DictionaryData,
                            dict_bytes,
                            buf.dict.num_distinct() as u64,
                        ),
                        (
                            StreamKind::DictionaryLength,
                            dict_lens.finish(),
                            buf.dict.num_distinct() as u64,
                        ),
                    ] {
                        let framed = frame_chunk(&raw, compression, unit);
                        streams.push(StreamInfo {
                            kind,
                            len: framed.len() as u64,
                            chunks: vec![ChunkInfo {
                                offset: 0,
                                len: framed.len() as u64,
                                values,
                            }],
                        });
                        data.extend_from_slice(&framed);
                    }
                    // Row ids per group.
                    let row_ids = buf.dict.row_ids();
                    let info = emit_stream(StreamKind::Data, data, &mut |g| {
                        let (s, e) = (mark_at(g).strings, buf.marks[g].strings);
                        let ids: Vec<i64> = row_ids[s..e].iter().map(|&x| x as i64).collect();
                        (int_rle::encode(&ids), (e - s) as u64)
                    });
                    streams.push(info);
                }
                StringEncoding::Direct => {
                    encoding = Some(ColumnEncoding::Direct);
                    let entries = buf.dict.entries();
                    let row_ids = buf.dict.row_ids();
                    let info = emit_stream(StreamKind::Data, data, &mut |g| {
                        let (s, e) = (mark_at(g).strings, buf.marks[g].strings);
                        let mut raw = Vec::new();
                        for &id in &row_ids[s..e] {
                            raw.extend_from_slice(&entries[id as usize]);
                        }
                        (raw, (e - s) as u64)
                    });
                    streams.push(info);
                    let info = emit_stream(StreamKind::Length, data, &mut |g| {
                        let (s, e) = (mark_at(g).strings, buf.marks[g].strings);
                        let mut enc = int_rle::IntRleEncoder::new();
                        for &id in &row_ids[s..e] {
                            enc.write(entries[id as usize].len() as i64);
                        }
                        (enc.finish(), (e - s) as u64)
                    });
                    streams.push(info);
                }
            }
            for g in 0..ngroups {
                let m0 = mark_at(g);
                let m1 = buf.marks[g];
                let has_null = buf.present[m0.present..m1.present].iter().any(|p| !p);
                stats.push(string_stats(buf, m0.strings, m1.strings, has_null));
            }
        }
        DataType::Array(_) | DataType::Map(_, _) => {
            encoding = Some(ColumnEncoding::Direct);
            let info = emit_stream(StreamKind::Length, data, &mut |g| {
                let (s, e) = (mark_at(g).longs, buf.marks[g].longs);
                (int_rle::encode(&buf.longs[s..e]), (e - s) as u64)
            });
            streams.push(info);
            generic_group_stats(buf, &mark_at, ngroups, &mut stats);
        }
        DataType::Union(_) => {
            encoding = Some(ColumnEncoding::Direct);
            let info = emit_stream(StreamKind::Tags, data, &mut |g| {
                let (s, e) = (mark_at(g).tags, buf.marks[g].tags);
                (byte_rle::encode(&buf.tags[s..e]), (e - s) as u64)
            });
            streams.push(info);
            generic_group_stats(buf, &mark_at, ngroups, &mut stats);
        }
        DataType::Struct(_) => {
            generic_group_stats(buf, &mark_at, ngroups, &mut stats);
        }
    }

    Ok((ColumnStreams { encoding, streams }, stats))
}

fn generic_group_stats(
    buf: &ColumnBuffer,
    mark_at: &dyn Fn(usize) -> Mark,
    ngroups: usize,
    stats: &mut Vec<ColumnStatistics>,
) {
    for g in 0..ngroups {
        let (s, e) = (mark_at(g).present, buf.marks[g].present);
        let slice = &buf.present[s..e];
        stats.push(ColumnStatistics::Generic {
            count: slice.iter().filter(|p| **p).count() as u64,
            has_null: slice.iter().any(|p| !p),
        });
    }
}

fn int_stats(vals: &[i64], has_null: bool) -> ColumnStatistics {
    let mut min = None;
    let mut max = None;
    let mut sum: Option<i64> = Some(0);
    for &v in vals {
        min = Some(min.map_or(v, |m: i64| m.min(v)));
        max = Some(max.map_or(v, |m: i64| m.max(v)));
        sum = sum.and_then(|s| s.checked_add(v));
    }
    ColumnStatistics::Int {
        count: vals.len() as u64,
        has_null,
        min,
        max,
        sum: if vals.is_empty() { None } else { sum },
    }
}

fn double_stats(vals: &[f64], has_null: bool) -> ColumnStatistics {
    let mut min = None;
    let mut max = None;
    let mut sum = 0.0;
    for &v in vals {
        min = Some(min.map_or(v, |m: f64| m.min(v)));
        max = Some(max.map_or(v, |m: f64| m.max(v)));
        sum += v;
    }
    ColumnStatistics::Double {
        count: vals.len() as u64,
        has_null,
        min,
        max,
        sum: if vals.is_empty() { None } else { Some(sum) },
    }
}

fn string_stats(buf: &ColumnBuffer, s: usize, e: usize, has_null: bool) -> ColumnStatistics {
    let entries = buf.dict.entries();
    let ids = &buf.dict.row_ids()[s..e];
    let mut min: Option<&[u8]> = None;
    let mut max: Option<&[u8]> = None;
    let mut total = 0u64;
    for &id in ids {
        let v: &[u8] = &entries[id as usize];
        if min.is_none_or(|m| v < m) {
            min = Some(v);
        }
        if max.is_none_or(|m| v > m) {
            max = Some(v);
        }
        total += v.len() as u64;
    }
    ColumnStatistics::String {
        count: ids.len() as u64,
        has_null,
        min: min.map(|b| b.to_vec()),
        max: max.map(|b| b.to_vec()),
        total_length: total,
    }
}
