//! Column statistics — the "data statistics" sparse index of ORC (paper
//! Section 4.2): number of values, min, max, sum, and length, kept at three
//! levels (index group, stripe, file).

use hive_codec::varint;
use hive_common::{HiveError, Result, Value};

/// Statistics for one column over some span (group, stripe or file).
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnStatistics {
    /// Structural columns (struct/array/map/union) track counts only.
    Generic { count: u64, has_null: bool },
    Int {
        count: u64,
        has_null: bool,
        min: Option<i64>,
        max: Option<i64>,
        sum: Option<i64>,
    },
    Double {
        count: u64,
        has_null: bool,
        min: Option<f64>,
        max: Option<f64>,
        sum: Option<f64>,
    },
    String {
        count: u64,
        has_null: bool,
        min: Option<Vec<u8>>,
        max: Option<Vec<u8>>,
        /// Total bytes across values ("the length" for text types).
        total_length: u64,
    },
    Boolean {
        count: u64,
        has_null: bool,
        true_count: u64,
    },
}

impl ColumnStatistics {
    pub fn count(&self) -> u64 {
        match self {
            ColumnStatistics::Generic { count, .. }
            | ColumnStatistics::Int { count, .. }
            | ColumnStatistics::Double { count, .. }
            | ColumnStatistics::String { count, .. }
            | ColumnStatistics::Boolean { count, .. } => *count,
        }
    }

    pub fn has_null(&self) -> bool {
        match self {
            ColumnStatistics::Generic { has_null, .. }
            | ColumnStatistics::Int { has_null, .. }
            | ColumnStatistics::Double { has_null, .. }
            | ColumnStatistics::String { has_null, .. }
            | ColumnStatistics::Boolean { has_null, .. } => *has_null,
        }
    }

    /// Min/max as SQL values for predicate evaluation and the "answer simple
    /// aggregation queries from file stats" use the paper mentions.
    pub fn min_value(&self) -> Option<Value> {
        match self {
            ColumnStatistics::Int { min, .. } => min.map(Value::Int),
            ColumnStatistics::Double { min, .. } => min.map(Value::Double),
            ColumnStatistics::String { min, .. } => min
                .as_ref()
                .map(|b| Value::String(String::from_utf8_lossy(b).into_owned())),
            ColumnStatistics::Boolean {
                count, true_count, ..
            } => Some(Value::Boolean(*count > 0 && *true_count == *count)),
            ColumnStatistics::Generic { .. } => None,
        }
    }

    pub fn max_value(&self) -> Option<Value> {
        match self {
            ColumnStatistics::Int { max, .. } => max.map(Value::Int),
            ColumnStatistics::Double { max, .. } => max.map(Value::Double),
            ColumnStatistics::String { max, .. } => max
                .as_ref()
                .map(|b| Value::String(String::from_utf8_lossy(b).into_owned())),
            ColumnStatistics::Boolean { true_count, .. } => Some(Value::Boolean(*true_count > 0)),
            ColumnStatistics::Generic { .. } => None,
        }
    }

    pub fn sum_value(&self) -> Option<Value> {
        match self {
            ColumnStatistics::Int { sum, .. } => sum.map(Value::Int),
            ColumnStatistics::Double { sum, .. } => sum.map(Value::Double),
            _ => None,
        }
    }

    /// Merge `other` into `self` (group → stripe → file rollup).
    pub fn merge(&mut self, other: &ColumnStatistics) -> Result<()> {
        use ColumnStatistics::*;
        match (self, other) {
            (
                Generic { count, has_null },
                Generic {
                    count: c2,
                    has_null: h2,
                },
            ) => {
                *count += c2;
                *has_null |= h2;
            }
            (
                Int {
                    count,
                    has_null,
                    min,
                    max,
                    sum,
                },
                Int {
                    count: c2,
                    has_null: h2,
                    min: m2,
                    max: x2,
                    sum: s2,
                },
            ) => {
                *count += c2;
                *has_null |= h2;
                *min = merge_opt(*min, *m2, i64::min);
                *max = merge_opt(*max, *x2, i64::max);
                *sum = match (*sum, *s2) {
                    (Some(a), Some(b)) => a.checked_add(b),
                    (a, None) => a,
                    (None, b) => b,
                };
            }
            (
                Double {
                    count,
                    has_null,
                    min,
                    max,
                    sum,
                },
                Double {
                    count: c2,
                    has_null: h2,
                    min: m2,
                    max: x2,
                    sum: s2,
                },
            ) => {
                *count += c2;
                *has_null |= h2;
                *min = merge_opt(*min, *m2, f64::min);
                *max = merge_opt(*max, *x2, f64::max);
                *sum = match (*sum, *s2) {
                    (Some(a), Some(b)) => Some(a + b),
                    (a, None) => a,
                    (None, b) => b,
                };
            }
            (
                String {
                    count,
                    has_null,
                    min,
                    max,
                    total_length,
                },
                String {
                    count: c2,
                    has_null: h2,
                    min: m2,
                    max: x2,
                    total_length: t2,
                },
            ) => {
                *count += c2;
                *has_null |= h2;
                if let Some(m2) = m2 {
                    if min.as_ref().is_none_or(|m| m2 < m) {
                        *min = Some(m2.clone());
                    }
                }
                if let Some(x2) = x2 {
                    if max.as_ref().is_none_or(|x| x2 > x) {
                        *max = Some(x2.clone());
                    }
                }
                *total_length += t2;
            }
            (
                Boolean {
                    count,
                    has_null,
                    true_count,
                },
                Boolean {
                    count: c2,
                    has_null: h2,
                    true_count: t2,
                },
            ) => {
                *count += c2;
                *has_null |= h2;
                *true_count += t2;
            }
            _ => {
                return Err(HiveError::Format(
                    "cannot merge statistics of different kinds".into(),
                ))
            }
        }
        Ok(())
    }

    // Binary encoding used in the index section / footer.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ColumnStatistics::Generic { count, has_null } => {
                out.push(0);
                varint::write_unsigned(out, *count);
                out.push(*has_null as u8);
            }
            ColumnStatistics::Int {
                count,
                has_null,
                min,
                max,
                sum,
            } => {
                out.push(1);
                varint::write_unsigned(out, *count);
                out.push(*has_null as u8);
                encode_opt_i64(out, *min);
                encode_opt_i64(out, *max);
                encode_opt_i64(out, *sum);
            }
            ColumnStatistics::Double {
                count,
                has_null,
                min,
                max,
                sum,
            } => {
                out.push(2);
                varint::write_unsigned(out, *count);
                out.push(*has_null as u8);
                encode_opt_f64(out, *min);
                encode_opt_f64(out, *max);
                encode_opt_f64(out, *sum);
            }
            ColumnStatistics::String {
                count,
                has_null,
                min,
                max,
                total_length,
            } => {
                out.push(3);
                varint::write_unsigned(out, *count);
                out.push(*has_null as u8);
                encode_opt_bytes(out, min.as_deref());
                encode_opt_bytes(out, max.as_deref());
                varint::write_unsigned(out, *total_length);
            }
            ColumnStatistics::Boolean {
                count,
                has_null,
                true_count,
            } => {
                out.push(4);
                varint::write_unsigned(out, *count);
                out.push(*has_null as u8);
                varint::write_unsigned(out, *true_count);
            }
        }
    }

    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<ColumnStatistics> {
        let kind = *buf
            .get(*pos)
            .ok_or_else(|| HiveError::Format("statistics truncated".into()))?;
        *pos += 1;
        let count = varint::read_unsigned(buf, pos)?;
        let has_null = read_byte(buf, pos)? != 0;
        Ok(match kind {
            0 => ColumnStatistics::Generic { count, has_null },
            1 => ColumnStatistics::Int {
                count,
                has_null,
                min: decode_opt_i64(buf, pos)?,
                max: decode_opt_i64(buf, pos)?,
                sum: decode_opt_i64(buf, pos)?,
            },
            2 => ColumnStatistics::Double {
                count,
                has_null,
                min: decode_opt_f64(buf, pos)?,
                max: decode_opt_f64(buf, pos)?,
                sum: decode_opt_f64(buf, pos)?,
            },
            3 => ColumnStatistics::String {
                count,
                has_null,
                min: decode_opt_bytes(buf, pos)?,
                max: decode_opt_bytes(buf, pos)?,
                total_length: varint::read_unsigned(buf, pos)?,
            },
            4 => ColumnStatistics::Boolean {
                count,
                has_null,
                true_count: varint::read_unsigned(buf, pos)?,
            },
            other => {
                return Err(HiveError::Format(format!(
                    "unknown statistics kind {other}"
                )))
            }
        })
    }
}

fn merge_opt<T: Copy>(a: Option<T>, b: Option<T>, f: impl Fn(T, T) -> T) -> Option<T> {
    match (a, b) {
        (Some(a), Some(b)) => Some(f(a, b)),
        (a, None) => a,
        (None, b) => b,
    }
}

fn read_byte(buf: &[u8], pos: &mut usize) -> Result<u8> {
    let b = *buf
        .get(*pos)
        .ok_or_else(|| HiveError::Format("statistics truncated".into()))?;
    *pos += 1;
    Ok(b)
}

fn encode_opt_i64(out: &mut Vec<u8>, v: Option<i64>) {
    match v {
        Some(x) => {
            out.push(1);
            varint::write_signed(out, x);
        }
        None => out.push(0),
    }
}

fn decode_opt_i64(buf: &[u8], pos: &mut usize) -> Result<Option<i64>> {
    if read_byte(buf, pos)? == 0 {
        Ok(None)
    } else {
        Ok(Some(varint::read_signed(buf, pos)?))
    }
}

fn encode_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        Some(x) => {
            out.push(1);
            out.extend_from_slice(&x.to_le_bytes());
        }
        None => out.push(0),
    }
}

fn decode_opt_f64(buf: &[u8], pos: &mut usize) -> Result<Option<f64>> {
    if read_byte(buf, pos)? == 0 {
        return Ok(None);
    }
    if *pos + 8 > buf.len() {
        return Err(HiveError::Format("f64 statistic truncated".into()));
    }
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[*pos..*pos + 8]);
    *pos += 8;
    Ok(Some(f64::from_le_bytes(b)))
}

fn encode_opt_bytes(out: &mut Vec<u8>, v: Option<&[u8]>) {
    match v {
        Some(x) => {
            out.push(1);
            varint::write_unsigned(out, x.len() as u64);
            out.extend_from_slice(x);
        }
        None => out.push(0),
    }
}

fn decode_opt_bytes(buf: &[u8], pos: &mut usize) -> Result<Option<Vec<u8>>> {
    if read_byte(buf, pos)? == 0 {
        return Ok(None);
    }
    let n = varint::read_unsigned(buf, pos)? as usize;
    if *pos + n > buf.len() {
        return Err(HiveError::Format("bytes statistic truncated".into()));
    }
    let v = buf[*pos..*pos + n].to_vec();
    *pos += n;
    Ok(Some(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(s: &ColumnStatistics) {
        let mut buf = Vec::new();
        s.encode(&mut buf);
        let mut pos = 0;
        assert_eq!(&ColumnStatistics::decode(&buf, &mut pos).unwrap(), s);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn encode_decode_all_kinds() {
        round_trip(&ColumnStatistics::Generic {
            count: 10,
            has_null: true,
        });
        round_trip(&ColumnStatistics::Int {
            count: 5,
            has_null: false,
            min: Some(-3),
            max: Some(99),
            sum: Some(120),
        });
        round_trip(&ColumnStatistics::Double {
            count: 2,
            has_null: true,
            min: Some(-0.5),
            max: Some(1.5),
            sum: Some(1.0),
        });
        round_trip(&ColumnStatistics::String {
            count: 3,
            has_null: false,
            min: Some(b"aa".to_vec()),
            max: Some(b"zz".to_vec()),
            total_length: 17,
        });
        round_trip(&ColumnStatistics::Boolean {
            count: 8,
            has_null: false,
            true_count: 5,
        });
        round_trip(&ColumnStatistics::Int {
            count: 0,
            has_null: false,
            min: None,
            max: None,
            sum: None,
        });
    }

    #[test]
    fn merge_int_stats() {
        let mut a = ColumnStatistics::Int {
            count: 3,
            has_null: false,
            min: Some(1),
            max: Some(5),
            sum: Some(9),
        };
        let b = ColumnStatistics::Int {
            count: 2,
            has_null: true,
            min: Some(-2),
            max: Some(4),
            sum: Some(2),
        };
        a.merge(&b).unwrap();
        assert_eq!(
            a,
            ColumnStatistics::Int {
                count: 5,
                has_null: true,
                min: Some(-2),
                max: Some(5),
                sum: Some(11),
            }
        );
    }

    #[test]
    fn merge_string_stats() {
        let mut a = ColumnStatistics::String {
            count: 1,
            has_null: false,
            min: Some(b"m".to_vec()),
            max: Some(b"m".to_vec()),
            total_length: 1,
        };
        let b = ColumnStatistics::String {
            count: 1,
            has_null: false,
            min: Some(b"a".to_vec()),
            max: Some(b"z".to_vec()),
            total_length: 2,
        };
        a.merge(&b).unwrap();
        assert_eq!(a.min_value(), Some(Value::String("a".into())));
        assert_eq!(a.max_value(), Some(Value::String("z".into())));
    }

    #[test]
    fn merge_kind_mismatch_errors() {
        let mut a = ColumnStatistics::Generic {
            count: 1,
            has_null: false,
        };
        let b = ColumnStatistics::Boolean {
            count: 1,
            has_null: false,
            true_count: 1,
        };
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn sum_overflow_degrades_to_none() {
        let mut a = ColumnStatistics::Int {
            count: 1,
            has_null: false,
            min: Some(0),
            max: Some(0),
            sum: Some(i64::MAX),
        };
        let b = a.clone();
        a.merge(&b).unwrap();
        assert_eq!(a.sum_value(), None);
    }
}
