//! ORC File (Optimized Record Columnar File) — paper Section 4.
//!
//! An ORC file is a sequence of stripes followed by a file footer and a
//! postscript (Figure 2). Each stripe holds:
//!
//! * **index data** — per-column statistics for every index group (default
//!   10,000 rows), the fine-grained level of the three-level statistics;
//! * **row data** — one or more streams per column in the decomposed column
//!   tree, each encoded with a stream-type-specific scheme and optionally
//!   compressed by a general-purpose codec in fixed-size units;
//! * **stripe footer** — stream directory and position pointers (byte
//!   ranges of every index group's chunk within every stream).
//!
//! The file footer records stripe locations (position pointers to stripe
//! starts), stripe-level statistics and file-level statistics; the
//! postscript records how to read the footer.

pub mod bloom;
pub mod cache;
pub mod memory;
pub mod reader;
pub mod replicated;
pub mod sarg;
pub mod stats;
pub mod writer;

pub use memory::MemoryManager;
pub use reader::OrcReader;
pub use replicated::ReplicatedOrcWriter;
pub use stats::ColumnStatistics;
pub use writer::{OrcWriter, OrcWriterOptions};

use hive_codec::block::Compression;
use hive_codec::varint;
use hive_common::{DataType, HiveError, Result};

/// Magic bytes at the very end of the postscript.
pub const MAGIC: &[u8; 4] = b"ORC1";

/// Default rows per index group (paper: 10,000).
pub const DEFAULT_ROW_INDEX_STRIDE: usize = 10_000;

/// Default compression unit (paper: 256 KB).
pub const DEFAULT_COMPRESS_UNIT: usize = 256 << 10;

/// The kinds of physical streams a column can own (paper Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKind {
    /// Bit field stream: 1 = value present, 0 = null. Omitted when the
    /// column has no nulls in the stripe.
    Present,
    /// The main data stream (integer stream, byte stream, or bit field
    /// stream depending on the column type).
    Data,
    /// Integer stream of lengths: string value lengths (direct encoding) or
    /// array/map sizes.
    Length,
    /// Byte stream holding concatenated dictionary entries (stripe-global).
    DictionaryData,
    /// Integer stream of dictionary entry lengths (stripe-global).
    DictionaryLength,
    /// Run-length byte stream of union tags.
    Tags,
}

impl StreamKind {
    fn to_u8(self) -> u8 {
        match self {
            StreamKind::Present => 0,
            StreamKind::Data => 1,
            StreamKind::Length => 2,
            StreamKind::DictionaryData => 3,
            StreamKind::DictionaryLength => 4,
            StreamKind::Tags => 5,
        }
    }

    fn from_u8(b: u8) -> Result<StreamKind> {
        Ok(match b {
            0 => StreamKind::Present,
            1 => StreamKind::Data,
            2 => StreamKind::Length,
            3 => StreamKind::DictionaryData,
            4 => StreamKind::DictionaryLength,
            5 => StreamKind::Tags,
            other => return Err(HiveError::Format(format!("bad stream kind {other}"))),
        })
    }
}

/// Byte range of one index group's chunk within a stream, plus how many
/// values it encodes — the position pointers of paper Section 4.2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkInfo {
    /// Offset within the (compressed) stream.
    pub offset: u64,
    pub len: u64,
    /// Number of encoded values in this chunk.
    pub values: u64,
}

/// Directory entry for one stream of one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamInfo {
    pub kind: StreamKind,
    /// Total stream length in the file (sum of chunk lens).
    pub len: u64,
    /// Per-index-group chunks; a single chunk for stripe-global streams
    /// (dictionaries).
    pub chunks: Vec<ChunkInfo>,
}

/// How a column's values are encoded in a stripe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnEncoding {
    Direct,
    /// Dictionary encoding with the given entry count.
    Dictionary {
        size: u64,
    },
}

/// All streams of one column in a stripe.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ColumnStreams {
    pub encoding: Option<ColumnEncoding>,
    pub streams: Vec<StreamInfo>,
}

impl ColumnStreams {
    pub fn stream(&self, kind: StreamKind) -> Option<&StreamInfo> {
        self.streams.iter().find(|s| s.kind == kind)
    }
}

/// The stripe footer: stream directory + encodings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripeFooter {
    pub nrows: u64,
    pub columns: Vec<ColumnStreams>,
}

/// Stripe location in the file footer (position pointers to stripes).
///
/// Stripe layout on disk: `[index][bloom][data][stripe footer]` — the
/// bloom-filter section (possibly empty) sits between the index and the
/// row data so the reader can consult both index levels with one
/// contiguous metadata read before touching any data stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripeInfo {
    pub offset: u64,
    pub index_len: u64,
    /// Length of the per-column bloom-filter section (0 = none written).
    pub bloom_len: u64,
    pub data_len: u64,
    pub footer_len: u64,
    pub nrows: u64,
}

impl StripeInfo {
    pub fn total_len(&self) -> u64 {
        self.index_len + self.bloom_len + self.data_len + self.footer_len
    }
}

/// The file footer (paper Figure 2's "File Footer").
#[derive(Debug, Clone, PartialEq)]
pub struct FileFooter {
    pub nrows: u64,
    /// Root struct type of the table, spelled as a HiveQL type string.
    pub type_string: String,
    pub row_index_stride: u64,
    pub stripes: Vec<StripeInfo>,
    /// Stripe-level statistics: `stripe_stats[stripe][column]`.
    pub stripe_stats: Vec<Vec<stats::ColumnStatistics>>,
    /// File-level statistics per column of the column tree.
    pub file_stats: Vec<stats::ColumnStatistics>,
    /// Top-level column this file's rows are clustered on (HAIL-style
    /// per-replica sort orders record it per copy); empty = insertion
    /// order.
    pub sort_column: String,
}

impl FileFooter {
    pub fn root_type(&self) -> Result<DataType> {
        DataType::parse(&self.type_string)
    }
}

/// The postscript: how to read the rest (paper Figure 2's "Postscript").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostScript {
    pub footer_len: u64,
    pub compression: Compression,
    pub compress_unit: u64,
}

// ---------------------------------------------------------------------------
// Metadata encoding
// ---------------------------------------------------------------------------

pub(crate) fn encode_stripe_footer(f: &StripeFooter, out: &mut Vec<u8>) {
    varint::write_unsigned(out, f.nrows);
    varint::write_unsigned(out, f.columns.len() as u64);
    for col in &f.columns {
        match &col.encoding {
            None => out.push(0),
            Some(ColumnEncoding::Direct) => out.push(1),
            Some(ColumnEncoding::Dictionary { size }) => {
                out.push(2);
                varint::write_unsigned(out, *size);
            }
        }
        varint::write_unsigned(out, col.streams.len() as u64);
        for s in &col.streams {
            out.push(s.kind.to_u8());
            varint::write_unsigned(out, s.len);
            varint::write_unsigned(out, s.chunks.len() as u64);
            for c in &s.chunks {
                varint::write_unsigned(out, c.offset);
                varint::write_unsigned(out, c.len);
                varint::write_unsigned(out, c.values);
            }
        }
    }
}

pub(crate) fn decode_stripe_footer(buf: &[u8]) -> Result<StripeFooter> {
    let mut pos = 0usize;
    let nrows = varint::read_unsigned(buf, &mut pos)?;
    let ncols = varint::read_unsigned(buf, &mut pos)? as usize;
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let enc_tag = read_byte(buf, &mut pos)?;
        let encoding = match enc_tag {
            0 => None,
            1 => Some(ColumnEncoding::Direct),
            2 => Some(ColumnEncoding::Dictionary {
                size: varint::read_unsigned(buf, &mut pos)?,
            }),
            other => return Err(HiveError::Format(format!("bad encoding tag {other}"))),
        };
        let nstreams = varint::read_unsigned(buf, &mut pos)? as usize;
        let mut streams = Vec::with_capacity(nstreams);
        for _ in 0..nstreams {
            let kind = StreamKind::from_u8(read_byte(buf, &mut pos)?)?;
            let len = varint::read_unsigned(buf, &mut pos)?;
            let nchunks = varint::read_unsigned(buf, &mut pos)? as usize;
            let mut chunks = Vec::with_capacity(nchunks);
            for _ in 0..nchunks {
                chunks.push(ChunkInfo {
                    offset: varint::read_unsigned(buf, &mut pos)?,
                    len: varint::read_unsigned(buf, &mut pos)?,
                    values: varint::read_unsigned(buf, &mut pos)?,
                });
            }
            streams.push(StreamInfo { kind, len, chunks });
        }
        columns.push(ColumnStreams { encoding, streams });
    }
    Ok(StripeFooter { nrows, columns })
}

pub(crate) fn encode_file_footer(f: &FileFooter, out: &mut Vec<u8>) {
    varint::write_unsigned(out, f.nrows);
    varint::write_unsigned(out, f.type_string.len() as u64);
    out.extend_from_slice(f.type_string.as_bytes());
    varint::write_unsigned(out, f.row_index_stride);
    varint::write_unsigned(out, f.stripes.len() as u64);
    for s in &f.stripes {
        varint::write_unsigned(out, s.offset);
        varint::write_unsigned(out, s.index_len);
        varint::write_unsigned(out, s.bloom_len);
        varint::write_unsigned(out, s.data_len);
        varint::write_unsigned(out, s.footer_len);
        varint::write_unsigned(out, s.nrows);
    }
    varint::write_unsigned(out, f.stripe_stats.len() as u64);
    for per_stripe in &f.stripe_stats {
        varint::write_unsigned(out, per_stripe.len() as u64);
        for st in per_stripe {
            st.encode(out);
        }
    }
    varint::write_unsigned(out, f.file_stats.len() as u64);
    for st in &f.file_stats {
        st.encode(out);
    }
    varint::write_unsigned(out, f.sort_column.len() as u64);
    out.extend_from_slice(f.sort_column.as_bytes());
}

pub(crate) fn decode_file_footer(buf: &[u8]) -> Result<FileFooter> {
    let mut pos = 0usize;
    let nrows = varint::read_unsigned(buf, &mut pos)?;
    let tlen = varint::read_unsigned(buf, &mut pos)? as usize;
    if pos + tlen > buf.len() {
        return Err(HiveError::Format("footer type string truncated".into()));
    }
    let type_string = String::from_utf8_lossy(&buf[pos..pos + tlen]).into_owned();
    pos += tlen;
    let row_index_stride = varint::read_unsigned(buf, &mut pos)?;
    let nstripes = varint::read_unsigned(buf, &mut pos)? as usize;
    let mut stripes = Vec::with_capacity(nstripes);
    for _ in 0..nstripes {
        stripes.push(StripeInfo {
            offset: varint::read_unsigned(buf, &mut pos)?,
            index_len: varint::read_unsigned(buf, &mut pos)?,
            bloom_len: varint::read_unsigned(buf, &mut pos)?,
            data_len: varint::read_unsigned(buf, &mut pos)?,
            footer_len: varint::read_unsigned(buf, &mut pos)?,
            nrows: varint::read_unsigned(buf, &mut pos)?,
        });
    }
    let nss = varint::read_unsigned(buf, &mut pos)? as usize;
    let mut stripe_stats = Vec::with_capacity(nss);
    for _ in 0..nss {
        let ncols = varint::read_unsigned(buf, &mut pos)? as usize;
        let mut per = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            per.push(stats::ColumnStatistics::decode(buf, &mut pos)?);
        }
        stripe_stats.push(per);
    }
    let nfs = varint::read_unsigned(buf, &mut pos)? as usize;
    let mut file_stats = Vec::with_capacity(nfs);
    for _ in 0..nfs {
        file_stats.push(stats::ColumnStatistics::decode(buf, &mut pos)?);
    }
    let sclen = varint::read_unsigned(buf, &mut pos)? as usize;
    if pos + sclen > buf.len() {
        return Err(HiveError::Format("footer sort column truncated".into()));
    }
    let sort_column = String::from_utf8_lossy(&buf[pos..pos + sclen]).into_owned();
    Ok(FileFooter {
        nrows,
        type_string,
        row_index_stride,
        stripes,
        stripe_stats,
        file_stats,
        sort_column,
    })
}

pub(crate) fn encode_postscript(ps: &PostScript, out: &mut Vec<u8>) {
    let start = out.len();
    varint::write_unsigned(out, ps.footer_len);
    out.push(match ps.compression {
        Compression::None => 0,
        Compression::Snappy => 1,
        Compression::Zlib => 2,
    });
    varint::write_unsigned(out, ps.compress_unit);
    out.push(1); // version
    out.extend_from_slice(MAGIC);
    let ps_len = out.len() - start;
    debug_assert!(ps_len <= 255);
    out.push(ps_len as u8);
}

pub(crate) fn decode_postscript(file_tail: &[u8]) -> Result<(PostScript, usize)> {
    let n = file_tail.len();
    if n < 2 {
        return Err(HiveError::Format(
            "file too small for ORC postscript".into(),
        ));
    }
    let ps_len = file_tail[n - 1] as usize;
    if n < 1 + ps_len {
        return Err(HiveError::Format("postscript truncated".into()));
    }
    let ps = &file_tail[n - 1 - ps_len..n - 1];
    if ps.len() < 4 || &ps[ps.len() - 4..] != MAGIC {
        return Err(HiveError::Format("bad ORC magic".into()));
    }
    let mut pos = 0usize;
    let footer_len = varint::read_unsigned(ps, &mut pos)?;
    let compression = match read_byte(ps, &mut pos)? {
        0 => Compression::None,
        1 => Compression::Snappy,
        2 => Compression::Zlib,
        other => return Err(HiveError::Format(format!("bad compression tag {other}"))),
    };
    let compress_unit = varint::read_unsigned(ps, &mut pos)?;
    let _version = read_byte(ps, &mut pos)?;
    Ok((
        PostScript {
            footer_len,
            compression,
            compress_unit,
        },
        ps_len + 1,
    ))
}

fn read_byte(buf: &[u8], pos: &mut usize) -> Result<u8> {
    let b = *buf
        .get(*pos)
        .ok_or_else(|| HiveError::Format("ORC metadata truncated".into()))?;
    *pos += 1;
    Ok(b)
}

// ---------------------------------------------------------------------------
// Compression unit framing
// ---------------------------------------------------------------------------

/// Frame and (optionally) compress a chunk of raw stream bytes into
/// compression units of at most `unit` bytes each:
/// `[varint raw_len][varint body_len][flag][body]...`, flag 0 = stored.
pub(crate) fn frame_chunk(raw: &[u8], compression: Compression, unit: usize) -> Vec<u8> {
    let codec = compression.codec();
    let unit = unit.max(1024);
    let mut out = Vec::with_capacity(raw.len() / 2 + 16);
    let mut start = 0usize;
    loop {
        let end = (start + unit).min(raw.len());
        let piece = &raw[start..end];
        match &codec {
            Some(c) => {
                let comp = c.compress(piece);
                if comp.len() < piece.len() {
                    varint::write_unsigned(&mut out, piece.len() as u64);
                    varint::write_unsigned(&mut out, comp.len() as u64);
                    out.push(1);
                    out.extend_from_slice(&comp);
                } else {
                    // Incompressible unit: store raw, as ORC does.
                    varint::write_unsigned(&mut out, piece.len() as u64);
                    varint::write_unsigned(&mut out, piece.len() as u64);
                    out.push(0);
                    out.extend_from_slice(piece);
                }
            }
            None => {
                varint::write_unsigned(&mut out, piece.len() as u64);
                varint::write_unsigned(&mut out, piece.len() as u64);
                out.push(0);
                out.extend_from_slice(piece);
            }
        }
        start = end;
        if start >= raw.len() {
            break;
        }
    }
    out
}

/// Inverse of [`frame_chunk`].
pub(crate) fn deframe_chunk(framed: &[u8], compression: Compression) -> Result<Vec<u8>> {
    let codec = compression.codec();
    let mut out = Vec::with_capacity(framed.len() * 2);
    let mut pos = 0usize;
    while pos < framed.len() {
        let raw_len = varint::read_unsigned(framed, &mut pos)? as usize;
        let body_len = varint::read_unsigned(framed, &mut pos)? as usize;
        let flag = read_byte(framed, &mut pos)?;
        if pos + body_len > framed.len() {
            return Err(HiveError::Format("compression unit truncated".into()));
        }
        let body = &framed[pos..pos + body_len];
        pos += body_len;
        match flag {
            0 => out.extend_from_slice(body),
            1 => {
                let c = codec
                    .as_ref()
                    .ok_or_else(|| HiveError::Format("compressed unit but codec is none".into()))?;
                let raw = c.decompress(body)?;
                if raw.len() != raw_len {
                    return Err(HiveError::Format("compression unit length mismatch".into()));
                }
                out.extend_from_slice(&raw);
            }
            other => return Err(HiveError::Format(format!("bad unit flag {other}"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_footer_round_trip() {
        let f = StripeFooter {
            nrows: 123,
            columns: vec![
                ColumnStreams {
                    encoding: None,
                    streams: vec![],
                },
                ColumnStreams {
                    encoding: Some(ColumnEncoding::Dictionary { size: 7 }),
                    streams: vec![StreamInfo {
                        kind: StreamKind::Data,
                        len: 100,
                        chunks: vec![
                            ChunkInfo {
                                offset: 0,
                                len: 60,
                                values: 50,
                            },
                            ChunkInfo {
                                offset: 60,
                                len: 40,
                                values: 30,
                            },
                        ],
                    }],
                },
            ],
        };
        let mut buf = Vec::new();
        encode_stripe_footer(&f, &mut buf);
        assert_eq!(decode_stripe_footer(&buf).unwrap(), f);
    }

    #[test]
    fn file_footer_round_trip() {
        let f = FileFooter {
            nrows: 42,
            type_string: "struct<a:bigint,b:string>".into(),
            row_index_stride: 10_000,
            stripes: vec![StripeInfo {
                offset: 0,
                index_len: 10,
                bloom_len: 6,
                data_len: 100,
                footer_len: 20,
                nrows: 42,
            }],
            stripe_stats: vec![vec![stats::ColumnStatistics::Generic {
                count: 42,
                has_null: false,
            }]],
            file_stats: vec![stats::ColumnStatistics::Int {
                count: 42,
                has_null: false,
                min: Some(0),
                max: Some(41),
                sum: Some(861),
            }],
            sort_column: "a".into(),
        };
        let mut buf = Vec::new();
        encode_file_footer(&f, &mut buf);
        assert_eq!(decode_file_footer(&buf).unwrap(), f);
        assert!(f.root_type().is_ok());
    }

    #[test]
    fn postscript_round_trip() {
        let ps = PostScript {
            footer_len: 999,
            compression: Compression::Snappy,
            compress_unit: 256 << 10,
        };
        let mut buf = b"leading stripe bytes".to_vec();
        encode_postscript(&ps, &mut buf);
        let (back, tail_len) = decode_postscript(&buf).unwrap();
        assert_eq!(back, ps);
        assert!(tail_len < buf.len());
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"not orc at all\x05".to_vec();
        assert!(decode_postscript(&buf).is_err());
    }

    #[test]
    fn frame_deframe_all_codecs() {
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        for comp in [Compression::None, Compression::Snappy, Compression::Zlib] {
            let framed = frame_chunk(&data, comp, 16 << 10);
            assert_eq!(deframe_chunk(&framed, comp).unwrap(), data, "{comp}");
        }
    }

    #[test]
    fn incompressible_units_stored_raw() {
        let mut x = 0x853c49e6748fea9bu64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let framed = frame_chunk(&data, Compression::Snappy, 4 << 10);
        // Stored-raw framing must not blow up size by more than the headers.
        assert!(framed.len() < data.len() + 64);
        assert_eq!(deframe_chunk(&framed, Compression::Snappy).unwrap(), data);
    }
}
