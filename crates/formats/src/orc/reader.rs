#![allow(clippy::type_complexity, clippy::needless_range_loop)]
//! The ORC reader (paper Sections 4.2 and 6.5).
//!
//! Reading proceeds stripe by stripe:
//!
//! 1. stripe-level statistics (in the file footer) are tested against the
//!    pushed-down [`SearchArgument`]; stripes that cannot match are never
//!    read from the DFS;
//! 2. within a surviving stripe, the index section's per-group statistics
//!    select index groups; unselected groups' byte ranges are skipped using
//!    the position pointers;
//! 3. only the streams of projected columns are read — including *child*
//!    columns of complex types, which RCFile cannot do.
//!
//! The reader doubles as the **vectorized reader** (Section 6.5): decoded
//! column buffers are copied straight into `VectorizedRowBatch` column
//! vectors, with the `no_nulls` flag set when a column had no PRESENT
//! stream.

use crate::orc::sarg::{SearchArgument, TruthValue};
use crate::orc::stats::ColumnStatistics;
use crate::orc::{
    decode_file_footer, decode_postscript, decode_stripe_footer, deframe_chunk, ColumnEncoding,
    StreamKind, StripeFooter, StripeInfo,
};
use crate::TableReader;
use hive_codec::{bitfield, byte_rle, int_rle};
use hive_common::{ColumnTree, DataType, HiveError, Result, Row, Schema, Value};
use hive_dfs::{Dfs, DfsReader, NodeId};
use hive_vector::{ColumnVector, VectorizedRowBatch};
use std::sync::Arc;

/// Options controlling an ORC read.
#[derive(Debug, Clone, Default)]
pub struct OrcReadOptions {
    /// Top-level columns to materialize (all when `None`).
    pub projection: Option<Vec<usize>>,
    /// Predicates pushed down to the reader.
    pub sarg: Option<SearchArgument>,
    /// Whether to use index-group statistics (`hive.optimize.index.filter`).
    /// When false, only stripe-level stats gate reads and the index section
    /// is not fetched (Fig. 10's "No PPD" configuration).
    pub use_index: bool,
    /// Reading node for locality accounting.
    pub node: Option<NodeId>,
    /// Input-split byte range: only stripes whose start offset falls in
    /// `[start, end)` are read (how Hive assigns stripes to map tasks).
    pub split: Option<(u64, u64)>,
    /// `hive.exec.orc.skip.corrupt.data`: instead of failing the read,
    /// skip stripes (or individual index groups) whose bytes fail checksum
    /// or decode, and count the rows lost in [`ReadCounters::rows_skipped`].
    pub skip_corrupt: bool,
    /// `hive.orc.cache.metadata`: share decoded footers, stripe footers,
    /// and row-index statistics through the process-wide metadata cache,
    /// keyed by `(dfs instance, path, file generation)`. When false the
    /// reader decodes privately, exactly as before the cache existed.
    pub cache_metadata: bool,
    /// Which sorted copy of the file to read (`0` = the base file in
    /// insertion order; `k > 0` = the replica-slot-`k` variant chosen by
    /// replica-aware split planning). Variants carry their own DFS
    /// generations, so every cache tier stays copy-safe automatically.
    pub variant: usize,
}

/// Skipping counters for experiments and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadCounters {
    pub stripes_total: u64,
    pub stripes_read: u64,
    pub groups_total: u64,
    pub groups_read: u64,
    /// Rows dropped by corrupt-data degradation (`skip_corrupt`).
    pub rows_skipped: u64,
    /// File footer (+ postscript) metadata cache hits/misses. Always zero
    /// when `cache_metadata` is off.
    pub footer_cache_hits: u64,
    pub footer_cache_misses: u64,
    /// Stripe footer and row-index metadata cache hits/misses. Always zero
    /// when `cache_metadata` is off.
    pub index_cache_hits: u64,
    pub index_cache_misses: u64,
    /// Index groups that survived min/max statistics but were pruned by a
    /// bloom-filter probe on an equality/IN literal.
    pub groups_bloom_pruned: u64,
    /// Bloom sections that failed their CRC or decode and degraded to
    /// stats-only selection ("read the group" — never a wrong answer).
    pub bloom_corrupt: u64,
}

/// Decoded data of one column for the selected groups of a stripe.
enum DecodedData {
    Longs(Vec<i64>),
    Bools(Vec<bool>),
    Doubles(Vec<f64>),
    StringsDict {
        dict: Arc<Vec<Vec<u8>>>,
        ids: Vec<u32>,
    },
    StringsDirect {
        data: Vec<u8>,
        /// (start, len) per value.
        offsets: Vec<(usize, usize)>,
    },
    Lengths(Vec<i64>),
    Tags(Vec<u8>),
    /// Structural only (struct) or column not data-bearing.
    None,
}

struct DecodedColumn {
    /// Presence bits (None = no nulls in the read span).
    present: Option<Vec<bool>>,
    data: DecodedData,
    present_idx: usize,
    data_idx: usize,
}

impl DecodedColumn {
    /// Next presence bit; corrupted counts read as "present" and the data
    /// accessors below report the structural error.
    fn next_present(&mut self) -> bool {
        match &self.present {
            Some(p) => {
                let v = p.get(self.present_idx).copied().unwrap_or(true);
                self.present_idx += 1;
                v
            }
            None => {
                self.present_idx += 1;
                true
            }
        }
    }
}

struct StripeCursor {
    cols: Vec<Option<DecodedColumn>>,
    rows_remaining: u64,
    /// Contiguous `(start ordinal, rows)` runs covering the cursor's rows
    /// in read order. Ordinals are absolute within the file and skip-aware:
    /// a cursor over index groups 0 and 2 of a stripe carries two runs with
    /// a gap where group 1's rows would be. Run lengths always sum to
    /// `rows_remaining`.
    segments: Vec<(u64, u64)>,
}

/// The ORC file reader.
pub struct OrcReader {
    reader: DfsReader,
    schema: Schema,
    tree: ColumnTree,
    /// Decoded file metadata — shared through the process-wide cache when
    /// `cache_metadata` is on, private to this reader otherwise.
    meta: Arc<crate::orc::cache::FileMeta>,
    projection: Vec<usize>,
    needed: Vec<bool>,
    opts: OrcReadOptions,
    stripe_idx: usize,
    current: Option<StripeCursor>,
    /// Cursors decoded ahead of `current`: group-level salvage under
    /// `skip_corrupt` splits one stripe into several per-group cursors.
    pending: std::collections::VecDeque<StripeCursor>,
    /// Absolute ordinal of the first row of the next stripe `advance_stripe`
    /// will consider. Every stripe advances it by its row count — read,
    /// split-foreign, pruned, or corrupt alike — which is what keeps
    /// reported ordinals aligned with the file's physical row order.
    next_stripe_ord: u64,
    /// Ordinal of the row most recently returned by `next_row`.
    last_ord: Option<u64>,
    /// Ordinal runs of the rows filled by the most recent `next_batch`.
    batch_runs: Vec<(u64, u64)>,
    pub counters: ReadCounters,
}

impl OrcReader {
    /// Stripe layout metadata of the open file (section offsets and
    /// lengths) — lets chaos tests aim tampering at one section.
    pub fn stripe_infos(&self) -> &[StripeInfo] {
        &self.meta.footer.stripes
    }

    pub fn open(dfs: &Dfs, path: &str, opts: OrcReadOptions) -> Result<OrcReader> {
        let mut reader = dfs.open_variant(path, opts.variant, opts.node)?;
        // Decode postscript + file footer (one generous tail read). Runs at
        // most once per (file, generation) process-wide when the metadata
        // cache is on; always, privately, when it is off.
        let read_meta = |reader: &mut DfsReader| -> Result<crate::orc::cache::FileMeta> {
            let len = reader.len();
            let tail_guess = (len as usize).min(16 << 10);
            let tail = reader.read_at(len - tail_guess as u64, tail_guess)?;
            let (ps, ps_total) = decode_postscript(&tail)?;
            let footer_end = len - ps_total as u64;
            let footer_start = footer_end
                .checked_sub(ps.footer_len)
                .ok_or_else(|| HiveError::Format("footer length exceeds file".into()))?;
            let footer = if (ps.footer_len as usize + ps_total) <= tail.len() {
                let buf =
                    &tail[tail.len() - ps_total - ps.footer_len as usize..tail.len() - ps_total];
                decode_file_footer(buf)?
            } else {
                decode_file_footer(&reader.read_at(footer_start, ps.footer_len as usize)?)?
            };
            Ok(crate::orc::cache::FileMeta::new(ps, footer))
        };
        let (meta, meta_hit) = if opts.cache_metadata {
            crate::orc::cache::file_meta(dfs.instance_id(), path, reader.generation(), || {
                read_meta(&mut reader)
            })?
        } else {
            (Arc::new(read_meta(&mut reader)?), false)
        };
        let root = meta.footer.root_type()?;
        let DataType::Struct(fields) = root else {
            return Err(HiveError::Format("ORC root type must be a struct".into()));
        };
        let schema = Schema::new(
            fields
                .into_iter()
                .map(|(n, t)| hive_common::Field::new(n, t))
                .collect(),
        );
        let tree = schema.column_tree();
        let projection = opts
            .projection
            .clone()
            .unwrap_or_else(|| (0..schema.len()).collect());
        let mut needed = vec![false; tree.len()];
        for &p in &projection {
            if p >= schema.len() {
                return Err(HiveError::Format(format!(
                    "projected column {p} out of range"
                )));
            }
            for id in tree.subtree(tree.top_level(p)) {
                needed[id] = true;
            }
        }
        let mut counters = ReadCounters {
            stripes_total: meta.footer.stripes.len() as u64,
            ..Default::default()
        };
        if opts.cache_metadata {
            if meta_hit {
                counters.footer_cache_hits += 1;
            } else {
                counters.footer_cache_misses += 1;
            }
        }
        Ok(OrcReader {
            reader,
            schema,
            tree,
            meta,
            projection,
            needed,
            opts,
            stripe_idx: 0,
            current: None,
            pending: std::collections::VecDeque::new(),
            next_stripe_ord: 0,
            last_ord: None,
            batch_runs: Vec::new(),
            counters,
        })
    }

    /// The table schema recovered from the file footer.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// File-level statistics for top-level column `i` — usable to answer
    /// simple aggregations (COUNT/MIN/MAX/SUM) without reading row data.
    pub fn file_stats(&self, i: usize) -> Option<&ColumnStatistics> {
        self.meta.footer.file_stats.get(self.tree.top_level(i))
    }

    pub fn num_rows(&self) -> u64 {
        self.meta.footer.nrows
    }

    /// Evaluate the sarg against a span's per-column stats.
    fn sarg_allows(&self, stats: &[ColumnStatistics]) -> bool {
        let Some(sarg) = &self.opts.sarg else {
            return true;
        };
        sarg.evaluate(|col| {
            if col < self.schema.len() {
                stats.get(self.tree.top_level(col))
            } else {
                None
            }
        }) != TruthValue::No
    }

    /// Load the next cursor (a whole stripe, or one salvaged group of one);
    /// returns false at EOF.
    fn advance_stripe(&mut self) -> Result<bool> {
        loop {
            if let Some(cur) = self.pending.pop_front() {
                self.current = Some(cur);
                return Ok(true);
            }
            if self.stripe_idx >= self.meta.footer.stripes.len() {
                return Ok(false);
            }
            let si = self.meta.footer.stripes[self.stripe_idx].clone();
            let stripe_no = self.stripe_idx;
            self.stripe_idx += 1;
            // First-row ordinal of this stripe. Skipped stripes advance the
            // accumulator too: their rows still occupy ordinal space.
            let stripe_ord = self.next_stripe_ord;
            self.next_stripe_ord += si.nrows;

            // Split ownership: a stripe belongs to the split containing its
            // first byte.
            if let Some((start, end)) = self.opts.split {
                if si.offset < start || si.offset >= end {
                    continue;
                }
            }

            // Level 2: stripe statistics.
            if let Some(per_stripe) = self.meta.footer.stripe_stats.get(stripe_no) {
                if !self.sarg_allows(per_stripe) {
                    continue;
                }
            }
            self.counters.stripes_read += 1;

            match self.load_stripe(&si, stripe_ord) {
                Ok(()) => {}
                Err(e) if self.opts.skip_corrupt && e.is_data_corruption() => {
                    // The stripe's stream directory or index is itself
                    // unreadable: every row of the stripe is lost.
                    self.counters.rows_skipped += si.nrows;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Read one stripe's stream directory, select index groups, decode the
    /// needed columns, and queue the resulting cursor(s) onto `pending`.
    ///
    /// Under `skip_corrupt`, a decode failure over the full group selection
    /// triggers *group-level salvage*: each selected group is re-decoded on
    /// its own (every needed column together, so rows stay aligned across
    /// columns); groups that still fail are dropped and their rows counted
    /// as skipped, groups that decode cleanly become per-group cursors.
    ///
    /// `stripe_ord` is the absolute file ordinal of the stripe's first row;
    /// cursors carry per-group ordinal segments derived from it so delete
    /// masks stay aligned however many groups are skipped or salvaged.
    fn load_stripe(&mut self, si: &crate::orc::StripeInfo, stripe_ord: u64) -> Result<()> {
        // A stripe whose directory entry points past the end of the file is
        // structurally corrupt; catch it before issuing unsatisfiable reads.
        let stripe_end = si
            .offset
            .checked_add(si.index_len)
            .and_then(|x| x.checked_add(si.bloom_len))
            .and_then(|x| x.checked_add(si.data_len))
            .and_then(|x| x.checked_add(si.footer_len));
        if stripe_end.is_none_or(|end| end > self.reader.len()) {
            return Err(HiveError::Format(
                "stripe extends past end of file (corrupt footer)".into(),
            ));
        }
        // Stripe footer (stream directory) — decoded at most once per
        // stripe per generation when the metadata cache is shared; the
        // same single-flight map doubles as a per-reader memo otherwise.
        let meta = Arc::clone(&self.meta);
        let (sfooter, sf_hit) = meta.stripe_footers.get_or_fill(si.offset, || {
            let footer_buf = self.reader.read_at(
                si.offset + si.index_len + si.bloom_len + si.data_len,
                si.footer_len as usize,
            )?;
            decode_stripe_footer(&footer_buf)
        })?;
        if self.opts.cache_metadata {
            if sf_hit {
                self.counters.index_cache_hits += 1;
            } else {
                self.counters.index_cache_misses += 1;
            }
        }
        let sfooter: &StripeFooter = &sfooter;

        // Level 3: index-group statistics (only if PPD is on).
        let ngroups = sfooter
            .columns
            .iter()
            .flat_map(|c| c.streams.iter())
            .map(|s| s.chunks.len())
            .filter(|&n| n > 0)
            .max()
            .unwrap_or(1);
        self.counters.groups_total += ngroups as u64;
        let selected: Vec<usize> =
            if self.opts.use_index && self.opts.sarg.is_some() && si.index_len > 0 {
                let (group_stats, ix_hit) = meta.indexes.get_or_fill(si.offset, || {
                    let index_buf = self.reader.read_at(si.offset, si.index_len as usize)?;
                    decode_index(&index_buf, self.tree.len())
                })?;
                if self.opts.cache_metadata {
                    if ix_hit {
                        self.counters.index_cache_hits += 1;
                    } else {
                        self.counters.index_cache_misses += 1;
                    }
                }
                (0..ngroups)
                    .filter(|&g| {
                        let per_group: Vec<ColumnStatistics> = group_stats
                            .iter()
                            .map(|col| {
                                col.get(g).cloned().unwrap_or(ColumnStatistics::Generic {
                                    count: 0,
                                    has_null: false,
                                })
                            })
                            .collect();
                        self.sarg_allows(&per_group)
                    })
                    .collect()
            } else {
                (0..ngroups).collect()
            };
        // Bloom filters answer equality probes the stats could not: consult
        // them only for groups that already survived the min/max filter, so
        // pruning is strictly monotone (the ordinal clock is untouched —
        // fewer selected groups just means more gap between segments).
        let selected = if self.opts.use_index && si.bloom_len > 0 {
            self.bloom_prune(si, selected)
        } else {
            selected
        };
        if selected.is_empty() {
            return Ok(());
        }
        self.counters.groups_read += selected.len() as u64;
        let all_groups = selected.len() == ngroups;

        // Stream start offsets, cumulative over the stripe's data section.
        let data_base = si.offset + si.index_len + si.bloom_len;
        let mut stream_offsets: Vec<Vec<u64>> = Vec::with_capacity(sfooter.columns.len());
        {
            let mut cum = 0u64;
            for col in &sfooter.columns {
                let mut per = Vec::with_capacity(col.streams.len());
                for s in &col.streams {
                    per.push(data_base + cum);
                    cum = cum.checked_add(s.len).ok_or_else(|| {
                        HiveError::Format("stream lengths overflow (corrupt stripe footer)".into())
                    })?;
                }
                stream_offsets.push(per);
            }
            if cum > si.data_len {
                return Err(HiveError::Format(
                    "stream directory exceeds stripe data section (corrupt)".into(),
                ));
            }
        }

        match self.decode_cursor(
            si,
            stripe_ord,
            sfooter,
            &stream_offsets,
            &selected,
            all_groups,
        ) {
            Ok(cursor) => {
                self.pending.push_back(cursor);
                Ok(())
            }
            Err(e) if self.opts.skip_corrupt && e.is_data_corruption() => {
                for &g in &selected {
                    match self.decode_cursor(si, stripe_ord, sfooter, &stream_offsets, &[g], false)
                    {
                        Ok(cursor) => self.pending.push_back(cursor),
                        Err(e) if e.is_data_corruption() => {
                            self.counters.rows_skipped += self.group_rows(si, g);
                        }
                        Err(e) => return Err(e),
                    }
                }
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Top-level rows of index group `g` in stripe `si`.
    fn group_rows(&self, si: &crate::orc::StripeInfo, g: usize) -> u64 {
        let stride = self.meta.footer.row_index_stride.max(1);
        (si.nrows.saturating_sub(g as u64 * stride)).min(stride)
    }

    /// Drop stats-surviving groups whose bloom filters prove an equality
    /// or IN literal definitely absent. Any failure — unreadable section,
    /// CRC mismatch, torn framing — degrades to the stats-only selection
    /// and counts once in `bloom_corrupt`: a broken filter can cost a
    /// group read, never an answer.
    fn bloom_prune(&mut self, si: &crate::orc::StripeInfo, selected: Vec<usize>) -> Vec<usize> {
        use crate::orc::sarg::PredicateOp;
        let Some(sarg) = &self.opts.sarg else {
            return selected;
        };
        // One probe per equality-shaped leaf: the hashes any of which must
        // be present for a group to survive. Leaves with unhashable
        // literals contribute nothing (always "maybe").
        let probes: Vec<(usize, Vec<u64>)> = sarg
            .leaves
            .iter()
            .filter_map(|leaf| match leaf.op {
                PredicateOp::Equals => leaf
                    .literal
                    .as_ref()
                    .and_then(crate::orc::bloom::probe_hashes)
                    .map(|h| (leaf.column, h)),
                PredicateOp::In => {
                    let mut hashes = Vec::new();
                    for v in &leaf.literal_list {
                        hashes.extend(crate::orc::bloom::probe_hashes(v)?);
                    }
                    (!hashes.is_empty()).then_some((leaf.column, hashes))
                }
                _ => None,
            })
            .collect();
        if probes.is_empty() || selected.is_empty() {
            return selected;
        }
        let section = match self
            .reader
            .read_at(si.offset + si.index_len, si.bloom_len as usize)
        {
            Ok(bytes) => bytes,
            Err(_) => {
                self.counters.bloom_corrupt += 1;
                return selected;
            }
        };
        let cols = match crate::orc::bloom::decode_section(&section) {
            Ok(cols) => cols,
            Err(_) => {
                self.counters.bloom_corrupt += 1;
                return selected;
            }
        };
        let before = selected.len();
        let kept: Vec<usize> = selected
            .into_iter()
            .filter(|&g| {
                probes.iter().all(|(column, hashes)| {
                    match cols
                        .iter()
                        .find(|cb| cb.column == *column)
                        .and_then(|cb| cb.groups.get(g))
                    {
                        Some(f) => hashes.iter().any(|&h| f.might_contain_hash(h)),
                        // No filter for this column/group: maybe present.
                        None => true,
                    }
                })
            })
            .collect();
        self.counters.groups_bloom_pruned += (before - kept.len()) as u64;
        kept
    }

    /// Decode the needed columns for `selected` groups into one cursor.
    fn decode_cursor(
        &mut self,
        si: &crate::orc::StripeInfo,
        stripe_ord: u64,
        sfooter: &StripeFooter,
        stream_offsets: &[Vec<u64>],
        selected: &[usize],
        all_groups: bool,
    ) -> Result<StripeCursor> {
        let mut cols: Vec<Option<DecodedColumn>> = Vec::with_capacity(self.tree.len());
        for col_id in 0..self.tree.len() {
            if !self.needed[col_id] {
                cols.push(None);
                continue;
            }
            let dc = self.decode_column(col_id, sfooter, stream_offsets, selected, all_groups)?;
            cols.push(Some(dc));
        }
        let rows_selected = selected.iter().map(|&g| self.group_rows(si, g)).sum();
        // Ordinal segments: group g starts `g * stride` rows into the
        // stripe; runs of adjacent selected groups coalesce.
        let stride = self.meta.footer.row_index_stride.max(1);
        let mut segments: Vec<(u64, u64)> = Vec::with_capacity(selected.len());
        for &g in selected {
            let start = stripe_ord + g as u64 * stride;
            let rows = self.group_rows(si, g);
            match segments.last_mut() {
                Some(last) if last.0 + last.1 == start => last.1 += rows,
                _ => segments.push((start, rows)),
            }
        }
        Ok(StripeCursor {
            cols,
            rows_remaining: rows_selected,
            segments,
        })
    }

    /// Read + decode the streams of one column for the selected groups.
    fn decode_column(
        &mut self,
        col_id: usize,
        sfooter: &StripeFooter,
        stream_offsets: &[Vec<u64>],
        selected: &[usize],
        all_groups: bool,
    ) -> Result<DecodedColumn> {
        let cs = &sfooter.columns[col_id];
        let dt = &self.tree.node(col_id).data_type;
        let compression = self.meta.ps.compression;

        // Gather the raw (deframed) bytes of one stream for selected groups,
        // returning per-chunk (raw bytes, value count).
        let mut read_stream = |kind: StreamKind| -> Result<Option<Vec<(Vec<u8>, u64)>>> {
            let Some(idx) = cs.streams.iter().position(|s| s.kind == kind) else {
                return Ok(None);
            };
            let info = &cs.streams[idx];
            let base = stream_offsets[col_id][idx];
            let mut out = Vec::new();
            let stripe_global = info.chunks.len() == 1
                && matches!(
                    kind,
                    StreamKind::DictionaryData | StreamKind::DictionaryLength
                );
            if all_groups || stripe_global {
                // One contiguous read for the whole stream.
                let bytes = self.reader.read_at(base, info.len as usize)?;
                for c in &info.chunks {
                    let framed = bytes
                        .get(c.offset as usize..(c.offset.saturating_add(c.len)) as usize)
                        .ok_or_else(|| HiveError::Format("chunk range exceeds stream".into()))?;
                    out.push((deframe_chunk(framed, compression)?, c.values));
                }
            } else {
                // Coalesce runs of adjacent selected groups into single
                // reads (chunks are laid out back to back), as ORC's reader
                // merges adjacent disk ranges.
                let mut i = 0usize;
                while i < selected.len() {
                    let mut j = i;
                    while j + 1 < selected.len() && selected[j + 1] == selected[j] + 1 {
                        j += 1;
                    }
                    let first = info.chunks.get(selected[i]).ok_or_else(|| {
                        HiveError::Format(format!("group {} missing in stream", selected[i]))
                    })?;
                    let last = info.chunks.get(selected[j]).ok_or_else(|| {
                        HiveError::Format(format!("group {} missing in stream", selected[j]))
                    })?;
                    let run_end = last.offset.saturating_add(last.len);
                    if run_end < first.offset {
                        return Err(HiveError::Format("chunk offsets out of order".into()));
                    }
                    if run_end > info.len {
                        return Err(HiveError::Format(
                            "chunk range exceeds stream length (corrupt)".into(),
                        ));
                    }
                    let run_len = (run_end - first.offset) as usize;
                    let bytes = self.reader.read_at(base + first.offset, run_len)?;
                    for &g in &selected[i..=j] {
                        let c = &info.chunks[g];
                        let rel = c.offset.wrapping_sub(first.offset) as usize;
                        let framed = bytes
                            .get(rel..rel.saturating_add(c.len as usize))
                            .ok_or_else(|| HiveError::Format("chunk range exceeds run".into()))?;
                        out.push((deframe_chunk(framed, compression)?, c.values));
                    }
                    i = j + 1;
                }
            }
            Ok(Some(out))
        };

        // PRESENT stream.
        let present = match read_stream(StreamKind::Present)? {
            Some(chunks) => {
                let mut bits = Vec::new();
                for (raw, n) in &chunks {
                    bits.extend(bitfield::decode(raw, *n as usize)?);
                }
                Some(bits)
            }
            None => None,
        };

        let data = match dt {
            DataType::Int | DataType::Timestamp => {
                let mut vals = Vec::new();
                if let Some(chunks) = read_stream(StreamKind::Data)? {
                    for (raw, n) in &chunks {
                        decode_ints_into(raw, *n as usize, &mut vals)?;
                    }
                }
                DecodedData::Longs(vals)
            }
            DataType::Boolean => {
                let mut vals = Vec::new();
                if let Some(chunks) = read_stream(StreamKind::Data)? {
                    for (raw, n) in &chunks {
                        vals.extend(bitfield::decode(raw, *n as usize)?);
                    }
                }
                DecodedData::Bools(vals)
            }
            DataType::Double => {
                let mut vals = Vec::new();
                if let Some(chunks) = read_stream(StreamKind::Data)? {
                    for (raw, n) in &chunks {
                        if raw.len() < *n as usize * 8 {
                            return Err(HiveError::Format("double stream truncated".into()));
                        }
                        for i in 0..*n as usize {
                            let mut b = [0u8; 8];
                            b.copy_from_slice(&raw[i * 8..i * 8 + 8]);
                            vals.push(f64::from_le_bytes(b));
                        }
                    }
                }
                DecodedData::Doubles(vals)
            }
            DataType::String => match &cs.encoding {
                Some(ColumnEncoding::Dictionary { size }) => {
                    let dict_bytes = read_stream(StreamKind::DictionaryData)?
                        .and_then(|mut v| v.pop())
                        .map(|(b, _)| b)
                        .unwrap_or_default();
                    let dict_lens = read_stream(StreamKind::DictionaryLength)?
                        .and_then(|mut v| v.pop())
                        .map(|(b, _)| b)
                        .unwrap_or_default();
                    let mut lens = Vec::new();
                    decode_ints_into(&dict_lens, *size as usize, &mut lens)?;
                    let mut entries = Vec::with_capacity(lens.len());
                    let mut off = 0usize;
                    for &l in &lens {
                        let l = l as usize;
                        if off + l > dict_bytes.len() {
                            return Err(HiveError::Format("dictionary truncated".into()));
                        }
                        entries.push(dict_bytes[off..off + l].to_vec());
                        off += l;
                    }
                    let mut ids = Vec::new();
                    if let Some(chunks) = read_stream(StreamKind::Data)? {
                        for (raw, n) in &chunks {
                            let mut tmp = Vec::new();
                            decode_ints_into(raw, *n as usize, &mut tmp)?;
                            ids.extend(tmp.into_iter().map(|x| x as u32));
                        }
                    }
                    DecodedData::StringsDict {
                        dict: Arc::new(entries),
                        ids,
                    }
                }
                _ => {
                    let mut data_bytes = Vec::new();
                    let mut lens: Vec<i64> = Vec::new();
                    if let Some(chunks) = read_stream(StreamKind::Data)? {
                        for (raw, _) in &chunks {
                            data_bytes.extend_from_slice(raw);
                        }
                    }
                    if let Some(chunks) = read_stream(StreamKind::Length)? {
                        for (raw, n) in &chunks {
                            decode_ints_into(raw, *n as usize, &mut lens)?;
                        }
                    }
                    let mut offsets = Vec::with_capacity(lens.len());
                    let mut off = 0usize;
                    for &l in &lens {
                        offsets.push((off, l as usize));
                        off += l as usize;
                    }
                    if off > data_bytes.len() {
                        return Err(HiveError::Format("string data truncated".into()));
                    }
                    DecodedData::StringsDirect {
                        data: data_bytes,
                        offsets,
                    }
                }
            },
            DataType::Array(_) | DataType::Map(_, _) => {
                let mut vals = Vec::new();
                if let Some(chunks) = read_stream(StreamKind::Length)? {
                    for (raw, n) in &chunks {
                        decode_ints_into(raw, *n as usize, &mut vals)?;
                    }
                }
                DecodedData::Lengths(vals)
            }
            DataType::Union(_) => {
                let mut vals = Vec::new();
                if let Some(chunks) = read_stream(StreamKind::Tags)? {
                    for (raw, n) in &chunks {
                        let mut d = byte_rle::ByteRleDecoder::new(raw);
                        for _ in 0..*n {
                            vals.push(d.next()?);
                        }
                    }
                }
                DecodedData::Tags(vals)
            }
            DataType::Struct(_) => DecodedData::None,
        };

        Ok(DecodedColumn {
            present,
            data,
            present_idx: 0,
            data_idx: 0,
        })
    }

    /// Recursively materialize the next value of column `col`.
    fn read_value(&mut self, col: usize) -> Result<Value> {
        let non_null = self.current.as_mut().unwrap().cols[col]
            .as_mut()
            .ok_or_else(|| HiveError::Format("column not decoded".into()))?
            .next_present();
        if !non_null {
            return Ok(Value::Null);
        }
        let dt = self.tree.node(col).data_type.clone();
        match dt {
            DataType::Int => Ok(Value::Int(self.take_long(col)?)),
            DataType::Timestamp => Ok(Value::Timestamp(self.take_long(col)?)),
            DataType::Boolean => {
                let dc = self.cursor(col)?;
                let DecodedData::Bools(v) = &dc.data else {
                    return Err(HiveError::Format("expected bool data".into()));
                };
                let x = *v.get(dc.data_idx).ok_or_else(|| {
                    HiveError::Format("bool stream exhausted (corrupt counts)".into())
                })?;
                dc.data_idx += 1;
                Ok(Value::Boolean(x))
            }
            DataType::Double => {
                let dc = self.cursor(col)?;
                let DecodedData::Doubles(v) = &dc.data else {
                    return Err(HiveError::Format("expected double data".into()));
                };
                let x = *v.get(dc.data_idx).ok_or_else(|| {
                    HiveError::Format("double stream exhausted (corrupt counts)".into())
                })?;
                dc.data_idx += 1;
                Ok(Value::Double(x))
            }
            DataType::String => {
                let dc = self.cursor(col)?;
                let corrupt =
                    || HiveError::Format("string stream exhausted (corrupt counts)".into());
                let s = match &dc.data {
                    DecodedData::StringsDict { dict, ids } => {
                        let id = *ids.get(dc.data_idx).ok_or_else(corrupt)? as usize;
                        let entry = dict.get(id).ok_or_else(corrupt)?;
                        String::from_utf8_lossy(entry).into_owned()
                    }
                    DecodedData::StringsDirect { data, offsets } => {
                        let (off, len) = *offsets.get(dc.data_idx).ok_or_else(corrupt)?;
                        let bytes = data.get(off..off.saturating_add(len)).ok_or_else(corrupt)?;
                        String::from_utf8_lossy(bytes).into_owned()
                    }
                    _ => return Err(HiveError::Format("expected string data".into())),
                };
                dc.data_idx += 1;
                Ok(Value::String(s))
            }
            DataType::Array(_) => {
                let n = self.take_length(col)?;
                let child = self.tree.node(col).children[0];
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(self.read_value(child)?);
                }
                Ok(Value::Array(items))
            }
            DataType::Map(_, _) => {
                let n = self.take_length(col)?;
                let kcol = self.tree.node(col).children[0];
                let vcol = self.tree.node(col).children[1];
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = self.read_value(kcol)?;
                    let v = self.read_value(vcol)?;
                    entries.push((k, v));
                }
                Ok(Value::Map(entries))
            }
            DataType::Struct(_) => {
                let children = self.tree.node(col).children.clone();
                let mut vals = Vec::with_capacity(children.len());
                for c in children {
                    vals.push(self.read_value(c)?);
                }
                Ok(Value::Struct(vals))
            }
            DataType::Union(_) => {
                let tag = {
                    let dc = self.cursor(col)?;
                    let DecodedData::Tags(v) = &dc.data else {
                        return Err(HiveError::Format("expected union tags".into()));
                    };
                    let t = *v.get(dc.data_idx).ok_or_else(|| {
                        HiveError::Format("tag stream exhausted (corrupt counts)".into())
                    })?;
                    dc.data_idx += 1;
                    t
                };
                let child = *self
                    .tree
                    .node(col)
                    .children
                    .get(tag as usize)
                    .ok_or_else(|| HiveError::Format("union tag out of range".into()))?;
                Ok(Value::Union(tag, Box::new(self.read_value(child)?)))
            }
        }
    }

    fn cursor(&mut self, col: usize) -> Result<&mut DecodedColumn> {
        self.current.as_mut().unwrap().cols[col]
            .as_mut()
            .ok_or_else(|| HiveError::Format("column not decoded".into()))
    }

    fn take_long(&mut self, col: usize) -> Result<i64> {
        let dc = self.cursor(col)?;
        let DecodedData::Longs(v) = &dc.data else {
            return Err(HiveError::Format("expected long data".into()));
        };
        let x = *v
            .get(dc.data_idx)
            .ok_or_else(|| HiveError::Format("long stream exhausted (corrupt counts)".into()))?;
        dc.data_idx += 1;
        Ok(x)
    }

    fn take_length(&mut self, col: usize) -> Result<usize> {
        let dc = self.cursor(col)?;
        let DecodedData::Lengths(v) = &dc.data else {
            return Err(HiveError::Format("expected length data".into()));
        };
        let x = *v
            .get(dc.data_idx)
            .ok_or_else(|| HiveError::Format("length stream exhausted (corrupt counts)".into()))?;
        dc.data_idx += 1;
        // A corrupted length could be negative or absurdly large; either
        // would make the collection loops allocate unboundedly.
        if !(0..=(1 << 24)).contains(&x) {
            return Err(HiveError::Format(format!(
                "implausible collection length {x} (corrupt stream)"
            )));
        }
        Ok(x as usize)
    }
}

impl OrcReader {
    /// Corrupt-data degradation for errors found mid-decode: drop the rest
    /// of the current cursor (row alignment across columns is gone once a
    /// value stream lies about its counts) and count its rows as skipped.
    /// Returns whether the error was absorbed.
    fn absorb_corruption(&mut self, e: &HiveError) -> bool {
        if !(self.opts.skip_corrupt && e.is_data_corruption()) {
            return false;
        }
        if let Some(cur) = self.current.take() {
            self.counters.rows_skipped += cur.rows_remaining;
        }
        true
    }
}

impl TableReader for OrcReader {
    fn next_row(&mut self) -> Result<Option<Row>> {
        loop {
            let need_advance = match &self.current {
                Some(c) => c.rows_remaining == 0,
                None => true,
            };
            if need_advance {
                if !self.advance_stripe()? {
                    return Ok(None);
                }
                continue;
            }
            let projection = self.projection.clone();
            let mut vals = Vec::with_capacity(projection.len());
            let mut failed = None;
            for &p in &projection {
                let col = self.tree.top_level(p);
                match self.read_value(col) {
                    Ok(v) => vals.push(v),
                    Err(e) => {
                        failed = Some(e);
                        break;
                    }
                }
            }
            if let Some(e) = failed {
                if self.absorb_corruption(&e) {
                    continue;
                }
                return Err(e);
            }
            let cur = self.current.as_mut().unwrap();
            cur.rows_remaining -= 1;
            // Consume one ordinal from the front segment.
            let ord = cur.segments.first().map(|&(s, _)| s);
            if let Some(seg) = cur.segments.first_mut() {
                seg.0 += 1;
                seg.1 -= 1;
                if seg.1 == 0 {
                    cur.segments.remove(0);
                }
            }
            self.last_ord = ord;
            return Ok(Some(Row::new(vals)));
        }
    }

    /// The native vectorized reader: fills column vectors directly from the
    /// decoded stripe buffers — only valid for primitive projected columns.
    fn next_batch(&mut self, batch: &mut VectorizedRowBatch) -> Result<bool> {
        'refill: loop {
            batch.reset();
            loop {
                let need_advance = match &self.current {
                    Some(c) => c.rows_remaining == 0,
                    None => true,
                };
                if need_advance {
                    if !self.advance_stripe()? {
                        return Ok(false);
                    }
                    continue;
                }
                break;
            }
            let cur = self.current.as_mut().unwrap();
            let n = (cur.rows_remaining as usize).min(batch.max_size);
            for (out_idx, &p) in self.projection.iter().enumerate() {
                let col_id = self.tree.top_level(p);
                let dc = cur.cols[col_id]
                    .as_mut()
                    .ok_or_else(|| HiveError::Format("column not decoded".into()))?;
                if let Err(e) = fill_vector(dc, &mut batch.columns[out_idx], n) {
                    if self.absorb_corruption(&e) {
                        continue 'refill;
                    }
                    return Err(e);
                }
            }
            cur.rows_remaining -= n as u64;
            // Record which ordinal runs these n physical rows cover.
            let mut runs: Vec<(u64, u64)> = Vec::with_capacity(2);
            let mut left = n as u64;
            while left > 0 {
                let seg = &mut cur.segments[0];
                let take = seg.1.min(left);
                runs.push((seg.0, take));
                seg.0 += take;
                seg.1 -= take;
                left -= take;
                if seg.1 == 0 {
                    cur.segments.remove(0);
                }
            }
            batch.size = n;
            self.batch_runs = runs;
            return Ok(n > 0);
        }
    }

    fn last_row_ordinal(&self) -> Option<u64> {
        self.last_ord
    }

    fn batch_ordinal_runs(&self) -> Option<&[(u64, u64)]> {
        Some(&self.batch_runs)
    }

    fn rows_skipped(&self) -> u64 {
        self.counters.rows_skipped
    }

    fn read_stats(&self) -> crate::ReadStats {
        crate::ReadStats {
            stripes_total: self.counters.stripes_total,
            stripes_read: self.counters.stripes_read,
            groups_total: self.counters.groups_total,
            groups_read: self.counters.groups_read,
            rows_skipped: self.counters.rows_skipped,
            footer_cache_hits: self.counters.footer_cache_hits,
            footer_cache_misses: self.counters.footer_cache_misses,
            index_cache_hits: self.counters.index_cache_hits,
            index_cache_misses: self.counters.index_cache_misses,
            groups_bloom_pruned: self.counters.groups_bloom_pruned,
            bloom_corrupt: self.counters.bloom_corrupt,
        }
    }
}

/// Copy `n` values of a decoded column into a column vector, handling nulls
/// and setting `no_nulls` when the column had no PRESENT stream.
fn fill_vector(dc: &mut DecodedColumn, out: &mut ColumnVector, n: usize) -> Result<()> {
    // Corrupt counts must surface as errors, not slice panics.
    let available = match &dc.data {
        DecodedData::Longs(v) => v.len(),
        DecodedData::Bools(v) => v.len(),
        DecodedData::Doubles(v) => v.len(),
        DecodedData::StringsDict { ids, .. } => ids.len(),
        DecodedData::StringsDirect { offsets, .. } => offsets.len(),
        DecodedData::Lengths(v) => v.len(),
        DecodedData::Tags(v) => v.len(),
        DecodedData::None => 0,
    };
    // Collect presence for these n rows first.
    let mut nulls: Option<Vec<bool>> = None;
    let mut non_null = n;
    if dc.present.is_some() {
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(!dc.next_present());
        }
        non_null = v.iter().filter(|x| !**x).count();
        nulls = Some(v);
    } else {
        dc.present_idx += n;
    }
    if dc.data_idx + non_null > available {
        return Err(HiveError::Format(
            "value stream shorter than row count (corrupt counts)".into(),
        ));
    }
    match (&dc.data, out) {
        (DecodedData::Longs(src), ColumnVector::Long(v)) => {
            v.is_repeating = false;
            match &nulls {
                None => {
                    v.no_nulls = true;
                    v.vector[..n].copy_from_slice(&src[dc.data_idx..dc.data_idx + n]);
                    dc.data_idx += n;
                }
                Some(nulls) => {
                    v.no_nulls = false;
                    for i in 0..n {
                        v.null[i] = nulls[i];
                        v.vector[i] = if nulls[i] {
                            0
                        } else {
                            let x = src[dc.data_idx];
                            dc.data_idx += 1;
                            x
                        };
                    }
                }
            }
        }
        (DecodedData::Bools(src), ColumnVector::Long(v)) => {
            v.is_repeating = false;
            match &nulls {
                None => {
                    v.no_nulls = true;
                    for i in 0..n {
                        v.vector[i] = src[dc.data_idx + i] as i64;
                    }
                    dc.data_idx += n;
                }
                Some(nulls) => {
                    v.no_nulls = false;
                    for i in 0..n {
                        v.null[i] = nulls[i];
                        v.vector[i] = if nulls[i] {
                            0
                        } else {
                            let x = src[dc.data_idx] as i64;
                            dc.data_idx += 1;
                            x
                        };
                    }
                }
            }
        }
        (DecodedData::Doubles(src), ColumnVector::Double(v)) => {
            v.is_repeating = false;
            match &nulls {
                None => {
                    v.no_nulls = true;
                    v.vector[..n].copy_from_slice(&src[dc.data_idx..dc.data_idx + n]);
                    dc.data_idx += n;
                }
                Some(nulls) => {
                    v.no_nulls = false;
                    for i in 0..n {
                        v.null[i] = nulls[i];
                        v.vector[i] = if nulls[i] {
                            0.0
                        } else {
                            let x = src[dc.data_idx];
                            dc.data_idx += 1;
                            x
                        };
                    }
                }
            }
        }
        (DecodedData::StringsDict { dict, ids }, ColumnVector::Bytes(v)) => {
            v.is_repeating = false;
            v.no_nulls = nulls.is_none();
            for i in 0..n {
                let is_null = nulls.as_ref().is_some_and(|x| x[i]);
                if is_null {
                    v.null[i] = true;
                    v.start[i] = 0;
                    v.length[i] = 0;
                } else {
                    let id = ids[dc.data_idx] as usize;
                    let entry = dict.get(id).ok_or_else(|| {
                        HiveError::Format("dictionary id out of range (corrupt)".into())
                    })?;
                    v.set(i, entry);
                    dc.data_idx += 1;
                }
            }
        }
        (DecodedData::StringsDirect { data, offsets }, ColumnVector::Bytes(v)) => {
            v.is_repeating = false;
            v.no_nulls = nulls.is_none();
            for i in 0..n {
                let is_null = nulls.as_ref().is_some_and(|x| x[i]);
                if is_null {
                    v.null[i] = true;
                    v.start[i] = 0;
                    v.length[i] = 0;
                } else {
                    let (off, len) = offsets[dc.data_idx];
                    let bytes = data.get(off..off.saturating_add(len)).ok_or_else(|| {
                        HiveError::Format("string bytes out of range (corrupt)".into())
                    })?;
                    v.set(i, bytes);
                    dc.data_idx += 1;
                }
            }
        }
        _ => {
            return Err(HiveError::Execution(
                "column type is not vectorizable".into(),
            ))
        }
    }
    Ok(())
}

/// Decode exactly `n` integers from an int-RLE chunk.
fn decode_ints_into(raw: &[u8], n: usize, out: &mut Vec<i64>) -> Result<()> {
    let mut d = int_rle::IntRleDecoder::new(raw);
    for _ in 0..n {
        out.push(d.next()?);
    }
    Ok(())
}

/// Decode the index section: per column, per group statistics.
fn decode_index(buf: &[u8], ncols: usize) -> Result<Vec<Vec<ColumnStatistics>>> {
    let mut pos = 0usize;
    let mut out = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let ngroups = hive_codec::varint::read_unsigned(buf, &mut pos)? as usize;
        let mut per = Vec::with_capacity(ngroups);
        for _ in 0..ngroups {
            per.push(ColumnStatistics::decode(buf, &mut pos)?);
        }
        out.push(per);
    }
    Ok(out)
}
