//! Uniform construction of readers and writers across the four formats,
//! driven by session configuration — the role Hive's `FileFormat` +
//! `SerDe` registry plays.

use crate::orc::memory::MemoryManager;
use crate::orc::reader::{OrcReadOptions, OrcReader};
use crate::orc::writer::{OrcWriter, OrcWriterOptions};
use crate::rcfile::{RcFileReader, RcFileWriter};
use crate::sequence::{SequenceReader, SequenceWriter};
use crate::text::{TextReader, TextWriter};
use crate::{SearchArgument, TableReader, TableWriter};
use hive_codec::block::Compression;
use hive_common::config::keys;
use hive_common::{HiveConf, HiveError, Result, Schema};
use hive_dfs::{Dfs, NodeId};

/// The storage format of a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FormatKind {
    Text,
    Sequence,
    RcFile,
    #[default]
    Orc,
}

impl FormatKind {
    pub fn parse(s: &str) -> Result<FormatKind> {
        match s.to_ascii_lowercase().as_str() {
            "text" | "textfile" => Ok(FormatKind::Text),
            "seq" | "sequencefile" => Ok(FormatKind::Sequence),
            "rcfile" | "rc" => Ok(FormatKind::RcFile),
            "orc" | "orcfile" => Ok(FormatKind::Orc),
            other => Err(HiveError::Config(format!("unknown file format `{other}`"))),
        }
    }
}

impl std::fmt::Display for FormatKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatKind::Text => write!(f, "textfile"),
            FormatKind::Sequence => write!(f, "sequencefile"),
            FormatKind::RcFile => write!(f, "rcfile"),
            FormatKind::Orc => write!(f, "orc"),
        }
    }
}

/// Options for creating a writer.
#[derive(Clone, Default)]
pub struct WriteOptions {
    pub format: FormatKind,
    /// Override the configured general-purpose codec.
    pub compression: Option<Compression>,
    /// Memory manager shared by the task's ORC writers.
    pub memory: Option<MemoryManager>,
}

/// Options for opening a reader.
#[derive(Clone, Default)]
pub struct ReadOptions {
    pub format: FormatKind,
    /// Top-level projected columns, in output order.
    pub projection: Option<Vec<usize>>,
    /// Predicates to push into the reader (ORC only).
    pub sarg: Option<SearchArgument>,
    pub node: Option<NodeId>,
    /// Input-split byte range (Text/RCFile/ORC honour it; SequenceFile is
    /// read whole by one task).
    pub split: Option<(u64, u64)>,
    /// Sorted copy of the file to read (ORC only; `0` = base file).
    pub variant: usize,
}

/// Create a writer for one file of a table.
pub fn create_writer(
    dfs: &Dfs,
    path: &str,
    schema: &Schema,
    conf: &HiveConf,
    opts: &WriteOptions,
) -> Result<Box<dyn TableWriter>> {
    let compression = match opts.compression {
        Some(c) => c,
        None => Compression::parse(conf.get_raw(keys::ORC_COMPRESS).unwrap_or("none"))?,
    };
    Ok(match opts.format {
        FormatKind::Text => Box::new(TextWriter::create(dfs, path)),
        FormatKind::Sequence => Box::new(SequenceWriter::create(dfs, path)),
        FormatKind::RcFile => Box::new(RcFileWriter::create(
            dfs,
            path,
            schema,
            conf.get_usize(keys::RCFILE_ROWGROUP_SIZE)?,
            compression,
        )),
        FormatKind::Orc => {
            let wopts = OrcWriterOptions {
                stripe_size: conf.get_usize(keys::ORC_STRIPE_SIZE)?,
                row_index_stride: conf.get_usize(keys::ORC_ROW_INDEX_STRIDE)?,
                dictionary_threshold: conf.get_f64(keys::ORC_DICT_THRESHOLD)?,
                compression,
                compress_unit: conf.get_usize(keys::ORC_COMPRESS_UNIT)?,
                block_padding: conf.get_bool(keys::ORC_BLOCK_PADDING)?,
                bloom_columns: resolve_columns(
                    conf.get_raw(keys::ORC_BLOOM_FILTER_COLUMNS).unwrap_or(""),
                    schema,
                )
                .into_iter()
                .map(|(i, _)| i)
                .collect(),
                bloom_fpp: conf.get_f64(keys::ORC_BLOOM_FILTER_FPP)?,
                sort_column: String::new(),
            };
            // Per-replica sort orders apply to table data only: scratch
            // files (shuffle intermediates, ACID txn staging under /tmp/)
            // are read once, whole, and never via replica selection.
            let sort_columns = if path.starts_with("/tmp/") {
                Vec::new()
            } else {
                resolve_columns(
                    conf.get_raw(keys::ORC_REPLICA_SORT_COLUMNS).unwrap_or(""),
                    schema,
                )
            };
            if sort_columns.is_empty() {
                Box::new(OrcWriter::create(
                    dfs,
                    path,
                    schema,
                    wopts,
                    opts.memory.as_ref(),
                ))
            } else {
                Box::new(crate::orc::ReplicatedOrcWriter::create(
                    dfs,
                    path,
                    schema,
                    wopts,
                    sort_columns,
                    opts.memory.as_ref(),
                ))
            }
        }
    })
}

/// Resolve a comma-separated column-name list against a schema, keeping
/// list order. Names the schema does not have are skipped: the knobs are
/// session-global and tables legitimately differ.
fn resolve_columns(raw: &str, schema: &Schema) -> Vec<(usize, String)> {
    raw.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .filter_map(|name| {
            schema
                .fields()
                .iter()
                .position(|f| f.name == name)
                .map(|i| (i, name.to_string()))
        })
        .collect()
}

/// Open a reader for one file of a table.
pub fn open_reader(
    dfs: &Dfs,
    path: &str,
    schema: &Schema,
    conf: &HiveConf,
    opts: &ReadOptions,
) -> Result<Box<dyn TableReader>> {
    Ok(match opts.format {
        FormatKind::Text => {
            let (start, end) = opts.split.unwrap_or((0, dfs.len(path)?));
            Box::new(TextReader::open_split(
                dfs,
                path,
                schema.clone(),
                opts.projection.clone(),
                start,
                end,
                opts.node,
            )?)
        }
        FormatKind::Sequence => Box::new(SequenceReader::open(
            dfs,
            path,
            schema.clone(),
            opts.projection.clone(),
            opts.node,
        )?),
        FormatKind::RcFile => {
            let r = RcFileReader::open(dfs, path, schema, opts.projection.clone(), opts.node)?;
            Box::new(match opts.split {
                Some((s, e)) => r.with_split(s, e),
                None => r,
            })
        }
        FormatKind::Orc => Box::new(OrcReader::open(
            dfs,
            path,
            OrcReadOptions {
                projection: opts.projection.clone(),
                sarg: opts.sarg.clone(),
                use_index: conf.get_bool(keys::OPT_PPD_STORAGE)?,
                node: opts.node,
                split: opts.split,
                skip_corrupt: conf.get_bool(keys::ORC_SKIP_CORRUPT)?,
                // `hive.io.cache.bytes=0` is the master switch for both
                // cache tiers; metadata caching piggybacks on it.
                cache_metadata: conf.get_bool(keys::ORC_CACHE_METADATA)?
                    && conf.get_i64(keys::IO_CACHE_BYTES)? > 0,
                variant: opts.variant,
            },
        )?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_common::{Row, Value};

    #[test]
    fn every_format_round_trips_through_factory() {
        let dfs = Dfs::new(hive_dfs::DfsConfig {
            block_size: 4 << 20,
            replication: 1,
            nodes: 2,
        });
        let conf = HiveConf::new();
        let schema = Schema::parse(&[("a", "bigint"), ("b", "string")]).unwrap();
        for fmt in [
            FormatKind::Text,
            FormatKind::Sequence,
            FormatKind::RcFile,
            FormatKind::Orc,
        ] {
            let path = format!("/fact/{fmt}");
            let mut w = create_writer(
                &dfs,
                &path,
                &schema,
                &conf,
                &WriteOptions {
                    format: fmt,
                    ..Default::default()
                },
            )
            .unwrap();
            for i in 0..100 {
                w.write_row(&Row::new(vec![
                    Value::Int(i),
                    Value::String(format!("v{}", i % 7)),
                ]))
                .unwrap();
            }
            w.close().unwrap();
            let mut r = open_reader(
                &dfs,
                &path,
                &schema,
                &conf,
                &ReadOptions {
                    format: fmt,
                    ..Default::default()
                },
            )
            .unwrap();
            let mut n = 0i64;
            while let Some(row) = r.next_row().unwrap() {
                assert_eq!(row[0], Value::Int(n), "format {fmt}");
                n += 1;
            }
            assert_eq!(n, 100, "format {fmt}");
        }
    }

    #[test]
    fn format_parse() {
        assert_eq!(FormatKind::parse("ORC").unwrap(), FormatKind::Orc);
        assert_eq!(FormatKind::parse("textfile").unwrap(), FormatKind::Text);
        assert!(FormatKind::parse("parquet2").is_err());
    }
}
