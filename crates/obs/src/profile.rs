//! Per-operator and per-scan runtime profiles.
//!
//! Operators in `crates/exec` count rows and CPU as they run; the engine
//! merges per-task profiles index-wise (every task of a job runs the same
//! operator graph, so index i is the same operator everywhere), and
//! `EXPLAIN ANALYZE` renders the result.

use crate::counters;

/// Runtime profile of one operator instance in an operator graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpProfile {
    /// Operator description, e.g. `Filter(price > 10)`.
    pub name: String,
    /// Rows pushed into the operator.
    pub rows_in: u64,
    /// Rows the operator emitted downstream.
    pub rows_out: u64,
    /// CPU nanoseconds attributed to the operator (simulated under the
    /// deterministic clock, measured otherwise).
    pub cpu_ns: u64,
    /// Operator-specific counters rendered as trailing `key=value` pairs
    /// (e.g. a vectorized map-join's probe batches and build rows).
    pub detail: Vec<(String, u64)>,
}

impl OpProfile {
    pub fn merge(&mut self, other: &OpProfile) {
        if self.name.is_empty() {
            self.name = other.name.clone();
        }
        self.rows_in += other.rows_in;
        self.rows_out += other.rows_out;
        self.cpu_ns += other.cpu_ns;
        for (key, value) in &other.detail {
            match self.detail.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v += value,
                None => self.detail.push((key.clone(), *value)),
            }
        }
    }
}

/// Merge `from` into `into` index-wise, extending `into` as needed.
/// Profiles from different tasks of one job align by operator index.
pub fn merge_profiles(into: &mut Vec<OpProfile>, from: &[OpProfile]) {
    while into.len() < from.len() {
        into.push(OpProfile::default());
    }
    for (dst, src) in into.iter_mut().zip(from.iter()) {
        dst.merge(src);
    }
}

counters! {
    /// Input-side scan profile: what the table readers did, including the
    /// ORC index-group skip/salvage path and vectorized batch flow.
    pub struct ScanProfile {
        /// Rows handed to the map pipeline by readers.
        rows_read: u64,
        /// Vectorized batches produced.
        batches: u64,
        /// Rows entering the vectorized pipeline.
        vector_rows_in: u64,
        /// Rows surviving the vectorized pipeline (selected lanes).
        vector_rows_out: u64,
        /// ORC stripes visited by planning.
        stripes_total: u64,
        /// ORC stripes actually read after stripe-level pruning.
        stripes_read: u64,
        /// ORC row index groups visited by planning.
        groups_total: u64,
        /// ORC row index groups read after predicate-pushdown skipping.
        groups_read: u64,
        /// ORC index groups pruned by bloom-filter probes after surviving
        /// min/max statistics.
        groups_bloom_pruned: u64,
        /// Bloom sections that failed CRC/decode and degraded to
        /// stats-only group selection.
        bloom_corrupt: u64,
        /// Rows skipped by corrupt-record salvage.
        rows_salvaged: u64,
        /// Decoded ORC file footers served from the metadata cache.
        footer_cache_hits: u64,
        /// Decoded ORC file footers filled into the metadata cache.
        footer_cache_misses: u64,
        /// Decoded stripe footers / row indexes served from the cache.
        index_cache_hits: u64,
        /// Decoded stripe footers / row indexes filled into the cache.
        index_cache_misses: u64,
        /// DFS block-cache hits observed by this scan's reads.
        data_cache_hits: u64,
        /// DFS block-cache misses (single-flight fills) paid by this scan.
        data_cache_misses: u64,
        /// Bytes served from the DFS block cache instead of the wire.
        data_cache_hit_bytes: u64,
        /// Block-cache LRU evictions forced by this scan's fills.
        data_cache_evictions: u64,
        /// Rows read from ACID delta files during merge-on-read.
        delta_rows_read: u64,
        /// Rows suppressed by ACID delete files during merge-on-read.
        rows_masked: u64,
    }
}

impl ScanProfile {
    /// Fraction of vectorized input rows that survived filtering
    /// (`selected-lane density`); 1.0 when nothing was vectorized.
    pub fn selected_density(&self) -> f64 {
        if self.vector_rows_in == 0 {
            1.0
        } else {
            self.vector_rows_out as f64 / self.vector_rows_in as f64
        }
    }

    /// Fraction of row index groups skipped by predicate pushdown.
    pub fn group_skip_ratio(&self) -> f64 {
        if self.groups_total == 0 {
            0.0
        } else {
            1.0 - self.groups_read as f64 / self.groups_total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_profile_merges_and_keeps_name() {
        let mut a = OpProfile::default();
        a.merge(&OpProfile {
            name: "Filter".into(),
            rows_in: 10,
            rows_out: 4,
            cpu_ns: 100,
            detail: vec![("batches".into(), 2)],
        });
        a.merge(&OpProfile {
            name: "Filter".into(),
            rows_in: 5,
            rows_out: 1,
            cpu_ns: 50,
            detail: vec![("batches".into(), 1), ("repeats".into(), 7)],
        });
        assert_eq!(a.name, "Filter");
        assert_eq!(a.rows_in, 15);
        assert_eq!(a.rows_out, 5);
        assert_eq!(a.cpu_ns, 150);
        assert_eq!(a.detail, vec![("batches".into(), 3), ("repeats".into(), 7)]);
    }

    #[test]
    fn merge_profiles_aligns_by_index() {
        let mut into = vec![];
        merge_profiles(
            &mut into,
            &[
                OpProfile {
                    name: "Scan".into(),
                    rows_in: 3,
                    ..Default::default()
                },
                OpProfile {
                    name: "Sink".into(),
                    rows_out: 3,
                    ..Default::default()
                },
            ],
        );
        merge_profiles(
            &mut into,
            &[OpProfile {
                name: "Scan".into(),
                rows_in: 2,
                ..Default::default()
            }],
        );
        assert_eq!(into.len(), 2);
        assert_eq!(into[0].rows_in, 5);
        assert_eq!(into[1].rows_out, 3);
    }

    #[test]
    fn scan_profile_ratios() {
        let p = ScanProfile {
            vector_rows_in: 100,
            vector_rows_out: 25,
            groups_total: 10,
            groups_read: 2,
            ..Default::default()
        };
        assert_eq!(p.selected_density(), 0.25);
        assert_eq!(p.group_skip_ratio(), 0.8);
        assert_eq!(ScanProfile::default().selected_density(), 1.0);
        assert_eq!(ScanProfile::default().group_skip_ratio(), 0.0);
    }

    #[test]
    fn scan_profile_is_a_counter_block() {
        let mut a = ScanProfile {
            rows_read: 10,
            batches: 2,
            ..Default::default()
        };
        a.merge(&ScanProfile {
            rows_read: 5,
            groups_read: 1,
            ..Default::default()
        });
        assert_eq!(a.rows_read, 15);
        assert_eq!(a.entries().len(), 21);
    }
}
