//! Minimal JSON: deterministic rendering, a small parser, and a structural
//! schema validator.
//!
//! The workspace builds offline (no serde); this module is just enough
//! JSON to emit stable-schema metrics snapshots, read them back in tests,
//! and validate them against the checked-in schema under `results/`.

use hive_common::{HiveError, Result};

/// A JSON value. Objects preserve insertion order, so a caller inserting
/// keys in a deterministic order gets byte-identical rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Unsigned integers render without a decimal point (counters).
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Json>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, Json)>),
}

impl Json {
    pub fn obj() -> Json {
        Json::Object(Vec::new())
    }

    /// Append a field to an object (panics on non-objects: builder misuse).
    pub fn push(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Object(fields) => fields.push((key.to_string(), value)),
            _ => panic!("Json::push on a non-object"),
        }
        self
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64 when it is an unsigned (or non-negative) integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            Json::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(n) => Some(*n as f64),
            Json::I64(n) => Some(*n as f64),
            Json::F64(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The JSON type name used by the schema validator.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::U64(_) | Json::I64(_) => "integer",
            Json::F64(_) => "number",
            Json::Str(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    /// Compact, deterministic rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation (deterministic).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::I64(n) => out.push_str(&n.to_string()),
            Json::F64(n) => out.push_str(&render_f64(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

/// Deterministic float rendering: Rust's shortest-roundtrip `Display`,
/// forced to carry a decimal point so the value re-parses as a float.
fn render_f64(n: f64) -> String {
    if !n.is_finite() {
        // JSON has no Inf/NaN; nulls would break the schema, so clamp.
        return "0.0".to_string();
    }
    let s = format!("{n}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document (strict enough for snapshots and schemas).
pub fn parse(src: &str) -> Result<Json> {
    let bytes: Vec<char> = src.chars().collect();
    let mut p = Parser { src: bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(p.error("trailing input"));
    }
    Ok(v)
}

struct Parser {
    src: Vec<char>,
    pos: usize,
}

impl Parser {
    fn error(&self, msg: &str) -> HiveError {
        HiveError::SerDe(format!("json: {msg} at offset {}", self.pos))
    }

    fn peek(&self) -> Option<char> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<()> {
        if self.bump() == Some(c) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.error(&format!("expected `{c}`")))
        }
    }

    fn lit(&mut self, word: &str, value: Json) -> Result<Json> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Json> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('t') => self.lit("true", Json::Bool(true)),
            Some('f') => self.lit("false", Json::Bool(false)),
            Some('n') => self.lit("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect('{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Json::Object(fields)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.error("expected `,` or `}`"));
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Json::Array(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.error("expected `,` or `]`"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.error("bad escape")),
                },
                Some(c) => out.push(c),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.bump();
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == Some('.') {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            is_float = true;
            self.bump();
            if matches!(self.peek(), Some('+' | '-')) {
                self.bump();
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        let text: String = self.src[start..self.pos].iter().collect();
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.error("bad number"))
    }
}

/// Validate `value` against a structural schema (a subset of JSON Schema:
/// `type`, `required`, `properties`, `items`, `additionalProperties`).
/// Returns the first violation with its path.
pub fn validate(value: &Json, schema: &Json) -> std::result::Result<(), String> {
    validate_at(value, schema, "$")
}

fn validate_at(value: &Json, schema: &Json, path: &str) -> std::result::Result<(), String> {
    if let Some(ty) = schema.get("type") {
        let allowed: Vec<&str> = match ty {
            Json::Str(s) => vec![s.as_str()],
            Json::Array(items) => items.iter().filter_map(|t| t.as_str()).collect(),
            _ => return Err(format!("{path}: schema `type` must be a string or array")),
        };
        let actual = value.type_name();
        // JSON Schema semantics: every integer is also a number.
        let matches = allowed
            .iter()
            .any(|t| *t == actual || (*t == "number" && actual == "integer"));
        if !matches {
            return Err(format!("{path}: expected type {allowed:?}, got {actual}"));
        }
    }
    if let (Some(req), Json::Object(_)) = (schema.get("required"), value) {
        for name in req.as_array().unwrap_or(&[]) {
            if let Some(name) = name.as_str() {
                if value.get(name).is_none() {
                    return Err(format!("{path}: missing required field `{name}`"));
                }
            }
        }
    }
    if let Json::Object(fields) = value {
        let props = schema.get("properties");
        let extra = schema.get("additionalProperties");
        for (k, v) in fields {
            let sub = props.and_then(|p| p.get(k)).or(extra);
            if let Some(sub) = sub {
                validate_at(v, sub, &format!("{path}.{k}"))?;
            }
        }
    }
    if let (Json::Array(items), Some(item_schema)) = (value, schema.get("items")) {
        for (i, item) in items.iter().enumerate() {
            validate_at(item, item_schema, &format!("{path}[{i}]"))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_render_parse() {
        let mut obj = Json::obj();
        obj.push("n", Json::U64(42));
        obj.push("neg", Json::I64(-7));
        obj.push("f", Json::F64(1.5));
        obj.push("s", Json::Str("a\"b\\c\n".into()));
        obj.push("arr", Json::Array(vec![Json::Bool(true), Json::Null]));
        let text = obj.render();
        assert_eq!(parse(&text).unwrap(), obj);
        let pretty = obj.render_pretty();
        assert_eq!(parse(&pretty).unwrap(), obj);
    }

    #[test]
    fn floats_render_with_decimal_point() {
        assert_eq!(Json::F64(3.0).render(), "3.0");
        assert_eq!(Json::F64(0.25).render(), "0.25");
        // Rendering is stable: same value, same bytes.
        assert_eq!(Json::F64(1.0 / 3.0).render(), Json::F64(1.0 / 3.0).render());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("{}extra").is_err());
    }

    #[test]
    fn schema_validates_structure() {
        let schema = parse(
            r#"{"type":"object","required":["a"],"properties":{
                "a":{"type":"integer"},
                "b":{"type":"array","items":{"type":"string"}}}}"#,
        )
        .unwrap();
        let good = parse(r#"{"a":1,"b":["x","y"]}"#).unwrap();
        assert!(validate(&good, &schema).is_ok());
        let missing = parse(r#"{"b":[]}"#).unwrap();
        assert!(validate(&missing, &schema).unwrap_err().contains("a"));
        let wrong = parse(r#"{"a":1,"b":[3]}"#).unwrap();
        assert!(validate(&wrong, &schema).unwrap_err().contains("b[0]"));
    }

    #[test]
    fn integer_counts_as_number() {
        let schema = parse(r#"{"type":"number"}"#).unwrap();
        assert!(validate(&Json::U64(3), &schema).is_ok());
        assert!(validate(&Json::F64(3.5), &schema).is_ok());
    }
}
