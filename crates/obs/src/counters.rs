//! The `counters!` macro and the [`ExecCounters`] block it generates.
//!
//! PRs 1–2 grew `JobReport`/`DagReport` one hand-maintained field at a
//! time, with `accumulate_job` updated in lockstep by hand. The macro
//! derives the merge and the name/value enumeration from a single field
//! list, so a counter added in one place is aggregated and exported
//! everywhere automatically.

/// Generate a counter-block struct: plain public fields, a field-wise
/// [`merge`](ExecCounters::merge), and [`entries`](ExecCounters::entries)
/// listing `(name, value)` pairs for export into a metrics registry.
///
/// ```
/// use hive_obs::counters;
/// counters! {
///     /// Demo block.
///     pub struct Demo {
///         /// Rows seen.
///         rows: u64,
///         /// Seconds charged.
///         secs: f64,
///     }
/// }
/// let mut a = Demo { rows: 1, secs: 0.5 };
/// a.merge(&Demo { rows: 2, secs: 0.25 });
/// assert_eq!(a.rows, 3);
/// assert_eq!(a.entries()[0].0, "rows");
/// ```
#[macro_export]
macro_rules! counters {
    (
        $(#[$meta:meta])*
        pub struct $name:ident {
            $(
                $(#[$fmeta:meta])*
                $field:ident : $ty:ty
            ),* $(,)?
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, Default, PartialEq)]
        pub struct $name {
            $(
                $(#[$fmeta])*
                pub $field: $ty,
            )*
        }

        impl $name {
            /// Field-wise accumulate `other` into `self`.
            pub fn merge(&mut self, other: &$name) {
                $( self.$field += other.$field; )*
            }

            /// `(field name, value)` pairs in declaration order.
            pub fn entries(&self) -> Vec<(&'static str, $crate::metrics::MetricValue)> {
                vec![
                    $( (stringify!($field), $crate::metrics::MetricValue::from(self.$field)), )*
                ]
            }
        }
    };
}

counters! {
    /// The execution counters shared by `JobReport` and `DagReport`.
    /// One declaration drives the struct, the merge used by
    /// `DagReport::accumulate_job`, and the registry export.
    pub struct ExecCounters {
        /// Simulated CPU seconds charged by the cost model.
        cpu_seconds: f64,
        /// Bytes read from the DFS (local + remote).
        bytes_read: u64,
        /// Bytes moved through the shuffle.
        bytes_shuffled: u64,
        /// Bytes written back to the DFS.
        bytes_written: u64,
        /// Records emitted into the shuffle.
        shuffle_records: u64,
        /// Rows produced by the final stage.
        rows_out: u64,
        /// Task attempts launched (including retries + speculation).
        task_attempts: u64,
        /// Attempts that were retries after a failure.
        task_retries: u64,
        /// Speculative (backup) attempts launched.
        speculative_tasks: u64,
        /// Rows dropped by corrupt-record skipping.
        rows_skipped: u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricValue;

    #[test]
    fn merge_is_field_wise() {
        let mut a = ExecCounters {
            cpu_seconds: 1.0,
            bytes_read: 10,
            task_attempts: 2,
            ..Default::default()
        };
        let b = ExecCounters {
            cpu_seconds: 0.5,
            bytes_read: 5,
            task_retries: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.cpu_seconds, 1.5);
        assert_eq!(a.bytes_read, 15);
        assert_eq!(a.task_attempts, 2);
        assert_eq!(a.task_retries, 1);
    }

    #[test]
    fn entries_cover_every_field_in_order() {
        let c = ExecCounters {
            cpu_seconds: 2.0,
            rows_out: 7,
            ..Default::default()
        };
        let entries = c.entries();
        assert_eq!(entries.len(), 10);
        assert_eq!(entries[0], ("cpu_seconds", MetricValue::F64(2.0)));
        assert!(entries.contains(&("rows_out", MetricValue::U64(7))));
        assert_eq!(entries.last().unwrap().0, "rows_skipped");
    }
}
