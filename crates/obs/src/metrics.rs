//! The metrics registry: typed counters, gauges and histograms with
//! labeled scopes, and deterministic snapshots.
//!
//! Determinism contract: a snapshot is a sorted map keyed by
//! `(name, labels)`, so its rendering depends only on the *values*
//! recorded. Under `hive.exec.sim.deterministic.cpu` every value the
//! runtime records is itself deterministic (simulated times, row counts,
//! byte counts), which makes the JSON snapshot byte-identical across runs
//! and across worker-thread counts.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// A counter-like value: unsigned for event counts, float for accumulated
/// seconds. What [`crate::counters!`]-generated structs export.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    U64(u64),
    F64(f64),
}

impl From<u64> for MetricValue {
    fn from(n: u64) -> MetricValue {
        MetricValue::U64(n)
    }
}

impl From<f64> for MetricValue {
    fn from(n: f64) -> MetricValue {
        MetricValue::F64(n)
    }
}

/// A metric identity: name plus sorted labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct MetricKey {
    pub name: String,
    pub labels: BTreeMap<String, String>,
}

impl MetricKey {
    pub fn new(name: &str) -> MetricKey {
        MetricKey {
            name: name.to_string(),
            labels: BTreeMap::new(),
        }
    }

    pub fn with_labels(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        MetricKey {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    /// `name{k=v,k2=v2}` (no braces when unlabeled).
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        format!("{}{{{}}}", self.name, labels.join(","))
    }
}

/// Aggregated observations of one histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistogramStat {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl HistogramStat {
    fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, HistogramStat>,
}

/// A shared, thread-safe registry of typed metrics. Cloning shares state,
/// so a session, its engine, and an external sink can all hold handles.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Inner>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Two registries are the same sink iff they share state.
    pub fn same_sink(&self, other: &MetricsRegistry) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// A scope that stamps `labels` onto every metric created through it.
    pub fn scope(&self, labels: &[(&str, &str)]) -> MetricsScope {
        MetricsScope {
            registry: self.clone(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    pub fn counter(&self, name: &str) -> Counter {
        Counter {
            inner: Arc::clone(&self.inner),
            key: MetricKey::new(name),
        }
    }

    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        Counter {
            inner: Arc::clone(&self.inner),
            key: MetricKey::with_labels(name, labels),
        }
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge {
            inner: Arc::clone(&self.inner),
            key: MetricKey::new(name),
        }
    }

    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        Gauge {
            inner: Arc::clone(&self.inner),
            key: MetricKey::with_labels(name, labels),
        }
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram {
            inner: Arc::clone(&self.inner),
            key: MetricKey::new(name),
        }
    }

    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        Histogram {
            inner: Arc::clone(&self.inner),
            key: MetricKey::with_labels(name, labels),
        }
    }

    /// Record a [`MetricValue`]: `U64` increments a counter, `F64`
    /// accumulates into a gauge. How counter-struct entries land here.
    pub fn record(&self, key: MetricKey, value: MetricValue) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match value {
            MetricValue::U64(n) => *inner.counters.entry(key).or_insert(0) += n,
            MetricValue::F64(n) => *inner.gauges.entry(key).or_insert(0.0) += n,
        }
    }

    /// A consistent point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.clone(),
        }
    }

    /// Drop every recorded value (between benchmark phases).
    pub fn reset(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.counters.clear();
        inner.gauges.clear();
        inner.histograms.clear();
    }
}

/// A label-stamping view over a registry.
#[derive(Debug, Clone)]
pub struct MetricsScope {
    registry: MetricsRegistry,
    labels: BTreeMap<String, String>,
}

impl MetricsScope {
    fn key(&self, name: &str) -> MetricKey {
        MetricKey {
            name: name.to_string(),
            labels: self.labels.clone(),
        }
    }

    /// A child scope with extra labels (rightmost wins on collision).
    pub fn scope(&self, labels: &[(&str, &str)]) -> MetricsScope {
        let mut merged = self.labels.clone();
        for (k, v) in labels {
            merged.insert(k.to_string(), v.to_string());
        }
        MetricsScope {
            registry: self.registry.clone(),
            labels: merged,
        }
    }

    pub fn counter(&self, name: &str) -> Counter {
        Counter {
            inner: Arc::clone(&self.registry.inner),
            key: self.key(name),
        }
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge {
            inner: Arc::clone(&self.registry.inner),
            key: self.key(name),
        }
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram {
            inner: Arc::clone(&self.registry.inner),
            key: self.key(name),
        }
    }

    pub fn record(&self, name: &str, value: MetricValue) {
        self.registry.record(self.key(name), value);
    }
}

/// A monotonically increasing event count.
#[derive(Debug, Clone)]
pub struct Counter {
    inner: Arc<Mutex<Inner>>,
    key: MetricKey,
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        *inner.counters.entry(self.key.clone()).or_insert(0) += n;
    }

    pub fn get(&self) -> u64 {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.counters.get(&self.key).copied().unwrap_or(0)
    }
}

/// A float-valued metric: `set` for levels, `add` for accumulated seconds.
#[derive(Debug, Clone)]
pub struct Gauge {
    inner: Arc<Mutex<Inner>>,
    key: MetricKey,
}

impl Gauge {
    pub fn set(&self, v: f64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.gauges.insert(self.key.clone(), v);
    }

    pub fn add(&self, v: f64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        *inner.gauges.entry(self.key.clone()).or_insert(0.0) += v;
    }

    pub fn get(&self) -> f64 {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.gauges.get(&self.key).copied().unwrap_or(0.0)
    }
}

/// A distribution summary (count/sum/min/max — deterministic, no buckets).
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<Mutex<Inner>>,
    key: MetricKey,
}

impl Histogram {
    pub fn observe(&self, v: f64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .histograms
            .entry(self.key.clone())
            .or_default()
            .observe(v);
    }

    pub fn get(&self) -> HistogramStat {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.histograms.get(&self.key).copied().unwrap_or_default()
    }
}

/// Plain-value snapshot of a registry. Sorted by construction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<MetricKey, u64>,
    pub gauges: BTreeMap<MetricKey, f64>,
    pub histograms: BTreeMap<MetricKey, HistogramStat>,
}

impl MetricsSnapshot {
    /// Counter lookup by name + labels (tests, assertions).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counters
            .get(&MetricKey::with_labels(name, labels))
            .copied()
    }

    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges
            .get(&MetricKey::with_labels(name, labels))
            .copied()
    }

    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<HistogramStat> {
        self.histograms
            .get(&MetricKey::with_labels(name, labels))
            .copied()
    }

    /// The stable JSON shape (`format_version` 1): three sorted entry
    /// arrays, each entry `{name, labels, ...value fields}`.
    pub fn to_json(&self) -> Json {
        fn entry(key: &MetricKey) -> Json {
            let mut e = Json::obj();
            e.push("name", Json::Str(key.name.clone()));
            let mut labels = Json::obj();
            for (k, v) in &key.labels {
                labels.push(k, Json::Str(v.clone()));
            }
            e.push("labels", labels);
            e
        }
        let mut counters = Vec::new();
        for (key, v) in &self.counters {
            let mut e = entry(key);
            e.push("value", Json::U64(*v));
            counters.push(e);
        }
        let mut gauges = Vec::new();
        for (key, v) in &self.gauges {
            let mut e = entry(key);
            e.push("value", Json::F64(*v));
            gauges.push(e);
        }
        let mut histograms = Vec::new();
        for (key, h) in &self.histograms {
            let mut e = entry(key);
            e.push("count", Json::U64(h.count));
            e.push("sum", Json::F64(h.sum));
            e.push("min", Json::F64(h.min));
            e.push("max", Json::F64(h.max));
            histograms.push(e);
        }
        let mut out = Json::obj();
        out.push("format_version", Json::U64(1));
        out.push("counters", Json::Array(counters));
        out.push("gauges", Json::Array(gauges));
        out.push("histograms", Json::Array(histograms));
        out
    }

    /// Human-readable one-metric-per-line rendering (CLI `!metrics`).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (key, v) in &self.counters {
            out.push_str(&format!("{} {v}\n", key.render()));
        }
        for (key, v) in &self.gauges {
            out.push_str(&format!("{} {v}\n", key.render()));
        }
        for (key, h) in &self.histograms {
            out.push_str(&format!(
                "{} count={} sum={} min={} max={}\n",
                key.render(),
                h.count,
                h.sum,
                h.min,
                h.max
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let r = MetricsRegistry::new();
        r.counter("q.count").inc();
        r.counter("q.count").add(2);
        r.counter_with("job.attempts", &[("job", "j0")]).add(4);
        let snap = r.snapshot();
        assert_eq!(snap.counter("q.count", &[]), Some(3));
        assert_eq!(snap.counter("job.attempts", &[("job", "j0")]), Some(4));
        assert_eq!(snap.counter("job.attempts", &[("job", "j1")]), None);
    }

    #[test]
    fn scopes_stamp_labels() {
        let r = MetricsRegistry::new();
        let job = r.scope(&[("job", "j0")]);
        let op = job.scope(&[("op", "GroupBy")]);
        op.counter("operator.rows_in").add(10);
        let snap = r.snapshot();
        assert_eq!(
            snap.counter("operator.rows_in", &[("job", "j0"), ("op", "GroupBy")]),
            Some(10)
        );
    }

    #[test]
    fn gauges_and_histograms() {
        let r = MetricsRegistry::new();
        r.gauge("cpu_s").add(1.5);
        r.gauge("cpu_s").add(0.5);
        r.histogram("sim_s").observe(2.0);
        r.histogram("sim_s").observe(6.0);
        let snap = r.snapshot();
        assert_eq!(snap.gauge("cpu_s", &[]), Some(2.0));
        let h = snap.histogram("sim_s", &[]).unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 8.0);
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 6.0);
        assert_eq!(h.mean(), 4.0);
    }

    #[test]
    fn snapshot_json_is_sorted_and_stable() {
        let r = MetricsRegistry::new();
        r.counter("b").inc();
        r.counter("a").inc();
        r.counter_with("a", &[("x", "1")]).inc();
        let j1 = r.snapshot().to_json().render();
        let j2 = r.snapshot().to_json().render();
        assert_eq!(j1, j2);
        let a = j1.find("\"name\":\"a\"").unwrap();
        let b = j1.find("\"name\":\"b\"").unwrap();
        assert!(a < b, "entries sorted by key");
        assert!(crate::json::parse(&j1).is_ok());
    }

    #[test]
    fn same_sink_detects_shared_state() {
        let r = MetricsRegistry::new();
        let clone = r.clone();
        assert!(r.same_sink(&clone));
        assert!(!r.same_sink(&MetricsRegistry::new()));
        clone.counter("x").inc();
        assert_eq!(r.snapshot().counter("x", &[]), Some(1));
    }

    #[test]
    fn record_routes_by_value_kind() {
        let r = MetricsRegistry::new();
        r.record(MetricKey::new("n"), MetricValue::U64(5));
        r.record(MetricKey::new("s"), MetricValue::F64(1.25));
        let snap = r.snapshot();
        assert_eq!(snap.counter("n", &[]), Some(5));
        assert_eq!(snap.gauge("s", &[]), Some(1.25));
    }
}
