//! The observability layer: a typed metrics registry, structured trace
//! spans, and per-operator runtime profiles.
//!
//! The paper's evaluation (Sections 4.4, 5.3, 6.2) rests on being able to
//! *measure* each advancement — bytes read under predicate pushdown, jobs
//! eliminated by the Correlation Optimizer, per-operator CPU under
//! vectorization. This crate is the substrate those measurements flow
//! through: every execution layer records into [`metrics::MetricsRegistry`]
//! and structures its work as [`trace`] spans, and `EXPLAIN ANALYZE`
//! renders the [`profile`] data collected by the operators themselves.
//!
//! Everything here is deterministic by construction when the runtime runs
//! under `hive.exec.sim.deterministic.cpu`: snapshots are sorted, floats
//! are only ever produced by deterministic accumulation orders, and no
//! wall-clock value is recorded unless the deterministic clock replaces it.

pub mod counters;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use counters::ExecCounters;
pub use json::Json;
pub use metrics::{MetricKey, MetricValue, MetricsRegistry, MetricsScope, MetricsSnapshot};
pub use profile::{OpProfile, ScanProfile};
pub use trace::{AttrValue, SpanKind, SpanRecord, TaskPhase, TaskTrace, Trace};
