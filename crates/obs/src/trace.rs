//! Structured trace spans: query → plan phase → DAG stage → job → task
//! attempt → operator.
//!
//! A [`Trace`] is an append-only list of [`SpanRecord`]s forming a tree by
//! parent id. The runtime builds it after execution from deterministic
//! inputs (reports, profiles, simulated times), so the same query under
//! the deterministic clock yields an identical trace regardless of how
//! many worker threads ran the tasks.

use crate::json::Json;
use std::fmt;

/// What level of the execution hierarchy a span describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// The whole statement, root of the trace.
    Query,
    /// A planning phase (parse, optimize, compile).
    PlanPhase,
    /// A DAG stage (a set of jobs that run as one wave).
    Stage,
    /// One MapReduce job.
    Job,
    /// One task (map or reduce), aggregated over its attempts.
    Task,
    /// One operator inside a task's operator graph.
    Operator,
    /// Cache activity (metadata/block caches) observed during a job.
    Cache,
    /// Admission control: time a statement spent queued in its resource
    /// pool before getting a slot. Only emitted when the wait was nonzero,
    /// so unqueued statements trace exactly as before.
    Admission,
}

impl SpanKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanKind::Query => "query",
            SpanKind::PlanPhase => "plan_phase",
            SpanKind::Stage => "stage",
            SpanKind::Job => "job",
            SpanKind::Task => "task",
            SpanKind::Operator => "operator",
            SpanKind::Cache => "cache",
            SpanKind::Admission => "admission",
        }
    }
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    U64(u64),
    F64(f64),
    Str(String),
}

impl From<u64> for AttrValue {
    fn from(n: u64) -> AttrValue {
        AttrValue::U64(n)
    }
}

impl From<f64> for AttrValue {
    fn from(n: f64) -> AttrValue {
        AttrValue::F64(n)
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> AttrValue {
        AttrValue::Str(s.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(s: String) -> AttrValue {
        AttrValue::Str(s)
    }
}

impl AttrValue {
    fn to_json(&self) -> Json {
        match self {
            AttrValue::U64(n) => Json::U64(*n),
            AttrValue::F64(n) => Json::F64(*n),
            AttrValue::Str(s) => Json::Str(s.clone()),
        }
    }

    fn render(&self) -> String {
        match self {
            AttrValue::U64(n) => n.to_string(),
            AttrValue::F64(n) => format!("{n:.6}"),
            AttrValue::Str(s) => s.clone(),
        }
    }
}

/// One node of the trace tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Index into [`Trace::spans`]; stable within one trace.
    pub id: u32,
    /// Parent span id; `None` for the root.
    pub parent: Option<u32>,
    pub kind: SpanKind,
    pub name: String,
    /// Simulated duration in seconds (0.0 when not applicable).
    pub sim_s: f64,
    /// Attributes in insertion order (deterministic: built single-threaded).
    pub attrs: Vec<(String, AttrValue)>,
}

impl SpanRecord {
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// An execution trace: a tree of spans stored flat, built after the run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    pub spans: Vec<SpanRecord>,
}

impl Trace {
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Append a span; returns its id for use as a parent.
    pub fn span(&mut self, parent: Option<u32>, kind: SpanKind, name: &str, sim_s: f64) -> u32 {
        let id = self.spans.len() as u32;
        self.spans.push(SpanRecord {
            id,
            parent,
            kind,
            name: name.to_string(),
            sim_s,
            attrs: Vec::new(),
        });
        id
    }

    /// Attach an attribute to an existing span.
    pub fn attr(&mut self, span: u32, key: &str, value: impl Into<AttrValue>) {
        self.spans[span as usize]
            .attrs
            .push((key.to_string(), value.into()));
    }

    pub fn find(&self, kind: SpanKind, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.kind == kind && s.name == name)
    }

    pub fn children(&self, parent: u32) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(move |s| s.parent == Some(parent))
    }

    pub fn root(&self) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.parent.is_none())
    }

    /// Indented tree rendering for humans.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some(root) = self.root() {
            self.render_span(root, 0, &mut out);
        }
        out
    }

    fn render_span(&self, span: &SpanRecord, depth: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        out.push_str(&format!("{indent}{} {}", span.kind, span.name));
        if span.sim_s > 0.0 {
            out.push_str(&format!(" sim={:.6}s", span.sim_s));
        }
        if !span.attrs.is_empty() {
            let attrs: Vec<String> = span
                .attrs
                .iter()
                .map(|(k, v)| format!("{k}={}", v.render()))
                .collect();
            out.push_str(&format!(" [{}]", attrs.join(" ")));
        }
        out.push('\n');
        for child in self.children(span.id) {
            self.render_span(child, depth + 1, out);
        }
    }

    /// Flat JSON array of spans (parent ids encode the tree).
    pub fn to_json(&self) -> Json {
        let mut spans = Vec::new();
        for s in &self.spans {
            let mut e = Json::obj();
            e.push("id", Json::U64(s.id as u64));
            match s.parent {
                Some(p) => e.push("parent", Json::U64(p as u64)),
                None => e.push("parent", Json::Null),
            };
            e.push("kind", Json::Str(s.kind.as_str().to_string()));
            e.push("name", Json::Str(s.name.clone()));
            e.push("sim_s", Json::F64(s.sim_s));
            let mut attrs = Json::obj();
            for (k, v) in &s.attrs {
                attrs.push(k, v.to_json());
            }
            e.push("attrs", attrs);
            spans.push(e);
        }
        Json::Array(spans)
    }
}

/// Which phase of a MapReduce job a task belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskPhase {
    Map,
    Reduce,
}

impl TaskPhase {
    pub fn as_str(&self) -> &'static str {
        match self {
            TaskPhase::Map => "map",
            TaskPhase::Reduce => "reduce",
        }
    }
}

/// Per-task attempt record the engine hands to the driver so task spans
/// carry PR 2's retry/speculation/fault story.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskTrace {
    pub phase: TaskPhase,
    /// Task index within its phase.
    pub index: usize,
    /// Simulated node the winning attempt ran on, if placement applies.
    pub node: Option<usize>,
    /// Attempts launched for this task (1 = clean first try).
    pub attempts: u32,
    /// Simulated duration of the winning attempt.
    pub sim_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_form_a_tree() {
        let mut t = Trace::new();
        let q = t.span(None, SpanKind::Query, "select 1", 1.0);
        let j = t.span(Some(q), SpanKind::Job, "job-0[map+reduce]", 0.5);
        t.span(Some(j), SpanKind::Task, "map-0", 0.25);
        t.attr(j, "map_tasks", 4u64);
        assert_eq!(t.root().unwrap().name, "select 1");
        assert_eq!(t.children(q).count(), 1);
        assert_eq!(t.children(j).count(), 1);
        let job = t.find(SpanKind::Job, "job-0[map+reduce]").unwrap();
        assert_eq!(job.attr("map_tasks"), Some(&AttrValue::U64(4)));
    }

    #[test]
    fn render_indents_by_depth() {
        let mut t = Trace::new();
        let q = t.span(None, SpanKind::Query, "q", 0.0);
        let j = t.span(Some(q), SpanKind::Job, "j", 0.5);
        t.span(Some(j), SpanKind::Operator, "Filter", 0.0);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("query q"));
        assert!(lines[1].starts_with("  job j sim=0.5"));
        assert!(lines[2].starts_with("    operator Filter"));
    }

    #[test]
    fn json_shape_is_stable() {
        let mut t = Trace::new();
        let q = t.span(None, SpanKind::Query, "q", 0.0);
        t.attr(q, "rows", 3u64);
        let json = t.to_json().render();
        assert!(json.contains("\"parent\":null"));
        assert!(json.contains("\"kind\":\"query\""));
        assert!(json.contains("\"attrs\":{\"rows\":3}"));
        assert!(crate::json::parse(&json).is_ok());
    }
}
