//! Ablations of the design choices DESIGN.md §5 calls out:
//! stripe size (ORC vs RCFile-class row groups), index-group stride
//! (stats size vs skipping precision), and the dictionary threshold.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hive_codec::block::Compression;
use hive_common::{Row, Schema, Value};
use hive_dfs::{Dfs, DfsConfig};
use hive_formats::orc::reader::{OrcReadOptions, OrcReader};
use hive_formats::orc::writer::{OrcWriter, OrcWriterOptions};
use hive_formats::{PredicateLeaf, SearchArgument, TableReader, TableWriter};
use std::hint::black_box;

const N: i64 = 60_000;

fn dfs() -> Dfs {
    Dfs::new(DfsConfig {
        block_size: 16 << 20,
        replication: 1,
        nodes: 2,
    })
}

fn schema() -> Schema {
    Schema::parse(&[("x", "bigint"), ("v", "double")]).unwrap()
}

fn sorted_rows() -> Vec<Row> {
    (0..N)
        .map(|i| Row::new(vec![Value::Int(i), Value::Double(i as f64)]))
        .collect()
}

fn write(fs: &Dfs, path: &str, stripe: usize, stride: usize, rows: &[Row]) {
    let mut w: Box<dyn TableWriter> = Box::new(OrcWriter::create(
        fs,
        path,
        &schema(),
        OrcWriterOptions {
            stripe_size: stripe,
            row_index_stride: stride,
            compression: Compression::None,
            ..Default::default()
        },
        None,
    ));
    for r in rows {
        w.write_row(r).unwrap();
    }
    w.close().unwrap();
}

/// Full scans against stripe size: larger stripes → fewer seeks.
fn bench_stripe_size(c: &mut Criterion) {
    let rows = sorted_rows();
    let mut g = c.benchmark_group("ablation_stripe_size");
    g.sample_size(10);
    for stripe_kb in [64usize, 512, 4096] {
        let fs = dfs();
        write(&fs, "/a/s", stripe_kb << 10, 10_000, &rows);
        g.bench_with_input(BenchmarkId::new("full_scan", stripe_kb), &fs, |b, fs| {
            b.iter(|| {
                let mut r = OrcReader::open(fs, "/a/s", OrcReadOptions::default()).unwrap();
                let mut n = 0u64;
                while r.next_row().unwrap().is_some() {
                    n += 1;
                }
                black_box(n)
            })
        });
    }
    g.finish();
}

/// Selective reads against index stride: finer groups skip more rows but
/// store more statistics.
fn bench_index_stride(c: &mut Criterion) {
    let rows = sorted_rows();
    let mut g = c.benchmark_group("ablation_index_stride");
    g.sample_size(10);
    for stride in [1_000usize, 10_000, 60_000] {
        let fs = dfs();
        write(&fs, "/a/g", 8 << 20, stride, &rows);
        g.bench_with_input(BenchmarkId::new("selective_read", stride), &fs, |b, fs| {
            b.iter(|| {
                let sarg = SearchArgument::new(vec![PredicateLeaf::between(
                    0,
                    Value::Int(100),
                    Value::Int(200),
                )]);
                let mut r = OrcReader::open(
                    fs,
                    "/a/g",
                    OrcReadOptions {
                        sarg: Some(sarg),
                        use_index: true,
                        ..Default::default()
                    },
                )
                .unwrap();
                let mut n = 0u64;
                while r.next_row().unwrap().is_some() {
                    n += 1;
                }
                black_box(n)
            })
        });
    }
    g.finish();
}

/// Dictionary threshold against a column whose cardinality sits between
/// the extremes (ratio ≈ 0.5): threshold below it forces direct encoding.
fn bench_dictionary_threshold(c: &mut Criterion) {
    let sschema = Schema::parse(&[("s", "string")]).unwrap();
    let svals: Vec<Row> = (0..N)
        .map(|i| Row::new(vec![Value::String(format!("tag-{}", i % (N / 2)))]))
        .collect();
    let mut g = c.benchmark_group("ablation_dict_threshold");
    g.sample_size(10);
    for threshold in ["0.1", "0.8"] {
        g.bench_with_input(BenchmarkId::new("write", threshold), &svals, |b, data| {
            let fs = dfs();
            let th: f64 = threshold.parse().unwrap();
            b.iter(|| {
                let mut w: Box<dyn TableWriter> = Box::new(OrcWriter::create(
                    &fs,
                    "/a/d",
                    &sschema,
                    OrcWriterOptions {
                        stripe_size: 4 << 20,
                        dictionary_threshold: th,
                        ..Default::default()
                    },
                    None,
                ));
                for r in data {
                    w.write_row(r).unwrap();
                }
                w.close().unwrap();
                black_box(fs.len("/a/d").unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_stripe_size,
    bench_index_stride,
    bench_dictionary_threshold
);
criterion_main!(benches);
