//! ORC write/read-path micro-benchmarks: writer throughput (± dictionary
//! work, ± compression), row-mode read, vectorized read, and predicate
//! pushdown.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hive_codec::block::Compression;
use hive_common::{DataType, Row, Schema, Value};
use hive_dfs::{Dfs, DfsConfig};
use hive_formats::orc::reader::{OrcReadOptions, OrcReader};
use hive_formats::orc::writer::{OrcWriter, OrcWriterOptions};
use hive_formats::{PredicateLeaf, SearchArgument, TableReader, TableWriter};
use hive_vector::VectorizedRowBatch;
use std::hint::black_box;

const N: i64 = 50_000;

fn dfs() -> Dfs {
    Dfs::new(DfsConfig {
        block_size: 8 << 20,
        replication: 1,
        nodes: 2,
    })
}

fn schema() -> Schema {
    Schema::parse(&[("k", "bigint"), ("v", "double"), ("s", "string")]).unwrap()
}

fn rows(high_card: bool) -> Vec<Row> {
    (0..N)
        .map(|i| {
            Row::new(vec![
                Value::Int(i),
                Value::Double(i as f64 * 0.5),
                Value::String(if high_card {
                    format!("unique-{i}-padding-padding")
                } else {
                    format!("cat-{}", i % 20)
                }),
            ])
        })
        .collect()
}

fn opts(comp: Compression) -> OrcWriterOptions {
    OrcWriterOptions {
        stripe_size: 1 << 20,
        row_index_stride: 5_000,
        compression: comp,
        ..Default::default()
    }
}

fn write_file(fs: &Dfs, path: &str, data: &[Row], comp: Compression) {
    let mut w: Box<dyn TableWriter> =
        Box::new(OrcWriter::create(fs, path, &schema(), opts(comp), None));
    for r in data {
        w.write_row(r).unwrap();
    }
    w.close().unwrap();
}

fn bench_writer(c: &mut Criterion) {
    let mut g = c.benchmark_group("orc_writer");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    for (name, high_card, comp) in [
        ("dict_effective", false, Compression::None),
        ("dict_wasted_work", true, Compression::None),
        ("snappy", false, Compression::Snappy),
    ] {
        let data = rows(high_card);
        g.bench_function(name, |b| {
            let fs = dfs();
            b.iter(|| {
                write_file(&fs, "/bench/w", &data, comp);
                black_box(fs.len("/bench/w").unwrap())
            })
        });
    }
    g.finish();
}

fn bench_reader(c: &mut Criterion) {
    let fs = dfs();
    write_file(&fs, "/bench/r", &rows(false), Compression::None);
    let mut g = c.benchmark_group("orc_reader");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);

    g.bench_function("row_mode", |b| {
        b.iter(|| {
            let mut r = OrcReader::open(&fs, "/bench/r", OrcReadOptions::default()).unwrap();
            let mut n = 0u64;
            while let Some(row) = r.next_row().unwrap() {
                n += row.len() as u64;
            }
            black_box(n)
        })
    });

    g.bench_function("vectorized", |b| {
        b.iter(|| {
            let mut r = OrcReader::open(&fs, "/bench/r", OrcReadOptions::default()).unwrap();
            let mut batch =
                VectorizedRowBatch::new(&[DataType::Int, DataType::Double, DataType::String], 1024)
                    .unwrap();
            let mut n = 0u64;
            while r.next_batch(&mut batch).unwrap() {
                n += batch.size as u64;
            }
            black_box(n)
        })
    });

    g.bench_function("ppd_selective", |b| {
        b.iter(|| {
            let sarg = SearchArgument::new(vec![PredicateLeaf::between(
                0,
                Value::Int(1000),
                Value::Int(2000),
            )]);
            let mut r = OrcReader::open(
                &fs,
                "/bench/r",
                OrcReadOptions {
                    sarg: Some(sarg),
                    use_index: true,
                    ..Default::default()
                },
            )
            .unwrap();
            let mut n = 0u64;
            while let Some(_row) = r.next_row().unwrap() {
                n += 1;
            }
            black_box(n)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_writer, bench_reader);
criterion_main!(benches);
