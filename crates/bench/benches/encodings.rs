//! Micro-benchmarks of the stream-type-specific encodings (paper §4.3):
//! throughput of the integer RLE/delta, byte RLE and bit-field codecs on
//! the value patterns ORC actually sees.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn int_data(pattern: &str, n: usize) -> Vec<i64> {
    match pattern {
        "constant" => vec![42; n],
        "ascending" => (0..n as i64).collect(),
        "random" => {
            let mut x = 0x9e3779b97f4a7c15u64;
            (0..n)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x % 100_000) as i64
                })
                .collect()
        }
        _ => unreachable!(),
    }
}

fn bench_int_rle(c: &mut Criterion) {
    let n = 100_000;
    let mut g = c.benchmark_group("int_rle");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(20);
    for pattern in ["constant", "ascending", "random"] {
        let data = int_data(pattern, n);
        g.bench_with_input(BenchmarkId::new("encode", pattern), &data, |b, d| {
            b.iter(|| black_box(hive_codec::int_rle::encode(d)))
        });
        let enc = hive_codec::int_rle::encode(&data);
        g.bench_with_input(BenchmarkId::new("decode", pattern), &enc, |b, e| {
            b.iter(|| black_box(hive_codec::int_rle::decode(e).unwrap()))
        });
    }
    g.finish();
}

fn bench_byte_rle_and_bitfield(c: &mut Criterion) {
    let n = 100_000usize;
    let mut g = c.benchmark_group("byte_streams");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(20);

    let runs: Vec<u8> = (0..n).map(|i| (i / 1000) as u8).collect();
    g.bench_function("byte_rle/encode_runs", |b| {
        b.iter(|| black_box(hive_codec::byte_rle::encode(&runs)))
    });
    let enc = hive_codec::byte_rle::encode(&runs);
    g.bench_function("byte_rle/decode_runs", |b| {
        b.iter(|| black_box(hive_codec::byte_rle::decode(&enc).unwrap()))
    });

    // Mostly-set presence bits (the PRESENT stream's common shape).
    let bits: Vec<bool> = (0..n).map(|i| i % 1000 != 0).collect();
    g.bench_function("bitfield/encode_presence", |b| {
        b.iter(|| black_box(hive_codec::bitfield::encode(&bits)))
    });
    let benc = hive_codec::bitfield::encode(&bits);
    g.bench_function("bitfield/decode_presence", |b| {
        b.iter(|| black_box(hive_codec::bitfield::decode(&benc, n).unwrap()))
    });
    g.finish();
}

fn bench_dictionary(c: &mut Criterion) {
    let mut g = c.benchmark_group("dictionary");
    g.sample_size(20);
    let low: Vec<String> = (0..50_000).map(|i| format!("state-{}", i % 50)).collect();
    let high: Vec<String> = (0..50_000).map(|i| format!("unique-{i}")).collect();
    for (name, data) in [("low_cardinality", &low), ("high_cardinality", &high)] {
        g.bench_function(format!("build/{name}"), |b| {
            b.iter(|| {
                let mut d = hive_codec::dictionary::DictionaryBuilder::new();
                for v in data {
                    d.add(v.as_bytes());
                }
                black_box(d.choose(0.8))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_int_rle,
    bench_byte_rle_and_bitfield,
    bench_dictionary
);
criterion_main!(benches);
