//! The heart of Fig. 12 in microcosm: one-row-at-a-time interpreted
//! expression evaluation vs the vectorized expressions of paper §6.2,
//! on identical data and identical work (filter + arithmetic + sum).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hive_common::{DataType, Row, Value};
use hive_exec::expr::{BinaryOp, ExprNode};
use hive_vector::expressions::{
    DoubleColMultiplyDoubleColumn, FilterDoubleColumnBetween, VectorExpression,
};
use hive_vector::{ColumnVector, VectorizedRowBatch};
use std::hint::black_box;

const N: usize = 1 << 16;

fn price_disc() -> (Vec<f64>, Vec<f64>) {
    let mut x = 0x2545f4914f6cdd1du64;
    let mut prices = Vec::with_capacity(N);
    let mut discounts = Vec::with_capacity(N);
    for _ in 0..N {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        prices.push((x % 100_000) as f64 / 100.0);
        discounts.push((x % 11) as f64 / 100.0);
    }
    (prices, discounts)
}

/// Row engine: WHERE disc BETWEEN 0.05 AND 0.07 → SUM(price * disc).
fn bench_row_mode(c: &mut Criterion) {
    let (prices, discounts) = price_disc();
    let rows: Vec<Row> = prices
        .iter()
        .zip(&discounts)
        .map(|(&p, &d)| Row::new(vec![Value::Double(p), Value::Double(d)]))
        .collect();
    let filter = ExprNode::Between {
        expr: Box::new(ExprNode::col(1)),
        lo: Box::new(ExprNode::lit(Value::Double(0.05))),
        hi: Box::new(ExprNode::lit(Value::Double(0.07))),
        negated: false,
    };
    let product = ExprNode::binary(BinaryOp::Multiply, ExprNode::col(0), ExprNode::col(1));

    let mut g = c.benchmark_group("q6_kernel");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(20);
    g.bench_function("row_at_a_time", |b| {
        b.iter(|| {
            let mut sum = 0.0;
            for r in &rows {
                if filter.eval_predicate(r).unwrap() {
                    if let Value::Double(v) = product.eval(r).unwrap() {
                        sum += v;
                    }
                }
            }
            black_box(sum)
        })
    });
    g.finish();
}

/// Vectorized engine: the same kernel over 1024-row batches.
fn bench_vectorized(c: &mut Criterion) {
    let (prices, discounts) = price_disc();
    let mut g = c.benchmark_group("q6_kernel");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(20);
    for batch_size in [128usize, 1024, 16384] {
        g.bench_function(format!("vectorized_batch_{batch_size}"), |b| {
            let mut batch = VectorizedRowBatch::new(
                &[DataType::Double, DataType::Double, DataType::Double],
                batch_size,
            )
            .unwrap();
            let filter = FilterDoubleColumnBetween {
                column: 1,
                lo: 0.05,
                hi: 0.07,
            };
            let mul = DoubleColMultiplyDoubleColumn {
                left_column: 0,
                right_column: 1,
                output_column: 2,
            };
            b.iter(|| {
                let mut sum = 0.0;
                let mut off = 0;
                while off < N {
                    let n = batch_size.min(N - off);
                    batch.reset();
                    if let ColumnVector::Double(v) = &mut batch.columns[0] {
                        v.vector[..n].copy_from_slice(&prices[off..off + n]);
                    }
                    if let ColumnVector::Double(v) = &mut batch.columns[1] {
                        v.vector[..n].copy_from_slice(&discounts[off..off + n]);
                    }
                    batch.size = n;
                    filter.evaluate(&mut batch).unwrap();
                    mul.evaluate(&mut batch).unwrap();
                    if let ColumnVector::Double(out) = &batch.columns[2] {
                        for i in batch.iter_selected() {
                            sum += out.vector[i];
                        }
                    }
                    off += n;
                }
                black_box(sum)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_row_mode, bench_vectorized);
criterion_main!(benches);
