//! Micro-benchmarks of the general-purpose block codecs (paper §4.3's
//! second compression level): the Snappy-class codec must be markedly
//! faster than the Deflate-class codec, which must compress harder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hive_codec::block::{BlockCodec, DeflateLikeCodec, SnappyLikeCodec};
use std::hint::black_box;

fn corpus(kind: &str, n: usize) -> Vec<u8> {
    match kind {
        "text" => b"the quick brown fox jumps over the lazy dog while hive stores orc stripes "
            .iter()
            .copied()
            .cycle()
            .take(n)
            .collect(),
        "numbers" => (0..n).map(|i| (i % 251) as u8).collect(),
        "random" => {
            let mut x = 0x853c49e6748fea9bu64;
            (0..n)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x as u8
                })
                .collect()
        }
        _ => unreachable!(),
    }
}

fn bench_codecs(c: &mut Criterion) {
    let n = 256 << 10; // one ORC compression unit
    let mut g = c.benchmark_group("block_codecs");
    g.throughput(Throughput::Bytes(n as u64));
    g.sample_size(15);
    let codecs: Vec<(&str, Box<dyn BlockCodec>)> = vec![
        ("snappy_like", Box::new(SnappyLikeCodec)),
        ("deflate_like", Box::new(DeflateLikeCodec)),
    ];
    for kind in ["text", "numbers", "random"] {
        let data = corpus(kind, n);
        for (name, codec) in &codecs {
            g.bench_with_input(
                BenchmarkId::new(format!("compress/{name}"), kind),
                &data,
                |b, d| b.iter(|| black_box(codec.compress(d))),
            );
            let comp = codec.compress(&data);
            g.bench_with_input(
                BenchmarkId::new(format!("decompress/{name}"), kind),
                &comp,
                |b, d| b.iter(|| black_box(codec.decompress(d).unwrap())),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
