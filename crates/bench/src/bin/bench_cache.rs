//! Server cache benchmark: the same sarg-filtered scan against one
//! long-lived server with the caches disabled (`hive.io.cache.bytes=0`),
//! cold (first run after enabling — every footer, index and block is a
//! single-flight fill), and warm (every tier hits; no DFS bytes move and
//! no checksums are re-verified).
//!
//! Writes `results/BENCH_cache.json` (validated against
//! `results/bench_cache.schema.json`) and, with `--check`, exits non-zero
//! unless the warm scan's measured CPU beats the cold scan's — the ci.sh
//! regression gate.

use hive_bench::{bench_session_with_block, fmt_s, print_table, scale_factor};
use hive_common::config::keys;
use hive_common::{Row, Value};
use hive_core::HiveSession;
use hive_obs::json::{self, Json};

const QUERY: &str = "SELECT cust, COUNT(*) AS n, SUM(total) AS rev FROM orders \
     WHERE total > 100.0 GROUP BY cust ORDER BY cust";

/// Measurement runs for the off/warm configurations; the best (minimum)
/// CPU is reported so scheduler noise cannot fail the gate. The cold
/// configuration is by definition a single run: the first statement after
/// the caches come on.
const RUNS: usize = 3;

fn cache_session() -> HiveSession {
    let mut s = bench_session_with_block(1 << 20);
    s.set(keys::ORC_STRIPE_SIZE, format!("{}", 1 << 20));
    s.set(keys::VECTORIZED_ENABLED, "true");
    let sf = scale_factor();
    let orders = ((1_500_000.0 * sf) as i64).max(20_000);
    s.execute("CREATE TABLE orders (okey BIGINT, cust BIGINT, total DOUBLE) STORED AS orc")
        .expect("create orders");
    s.load_rows(
        "orders",
        (0..orders).map(move |i| {
            Row::new(vec![
                Value::Int(i),
                Value::Int(i % 100),
                Value::Double((i % 500) as f64 / 2.0),
            ])
        }),
    )
    .expect("load orders");
    s
}

struct ConfigResult {
    name: &'static str,
    cache_bytes: u64,
    cpu_s: f64,
    sim_s: f64,
    rows: usize,
    /// Combined metadata-tier hit rate (footer + stripe footer + row index).
    meta_hit_rate: f64,
    /// Block-tier hit rate.
    data_hit_rate: f64,
}

fn measure(name: &'static str, s: &mut HiveSession, runs: usize, cache_bytes: u64) -> ConfigResult {
    let mut best: Option<ConfigResult> = None;
    for _ in 0..runs {
        let r = s.execute(QUERY).expect("scan query");
        assert!(!r.rows.is_empty(), "scan must produce output");
        let (mut meta_h, mut meta_m, mut data_h, mut data_m) = (0u64, 0u64, 0u64, 0u64);
        for jr in &r.report.jobs {
            meta_h += jr.scan.footer_cache_hits + jr.scan.index_cache_hits;
            meta_m += jr.scan.footer_cache_misses + jr.scan.index_cache_misses;
            data_h += jr.scan.data_cache_hits;
            data_m += jr.scan.data_cache_misses;
        }
        let rate = |h: u64, m: u64| {
            if h + m == 0 {
                0.0
            } else {
                h as f64 / (h + m) as f64
            }
        };
        let this = ConfigResult {
            name,
            cache_bytes,
            cpu_s: r.report.cpu_seconds,
            sim_s: r.report.sim_total_s,
            rows: r.rows.len(),
            meta_hit_rate: rate(meta_h, meta_m),
            data_hit_rate: rate(data_h, data_m),
        };
        best = Some(match best {
            Some(b) if b.cpu_s <= this.cpu_s => b,
            _ => this,
        });
    }
    best.expect("at least one run")
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let sf = scale_factor();
    println!("Server cache benchmark — scale factor {sf}");

    let cache_bytes: u64 = 32 << 20;
    let mut s = cache_session();

    // Caches disabled: the pre-cache read path, best of RUNS.
    s.try_set(keys::IO_CACHE_BYTES, "0").expect("set knob");
    let off = measure("cache_off", &mut s, RUNS, 0);
    assert_eq!(
        (off.meta_hit_rate, off.data_hit_rate),
        (0.0, 0.0),
        "disabled caches must report no activity"
    );

    // Cold: the first statement after the caches come on pays every fill.
    s.try_set(keys::IO_CACHE_BYTES, cache_bytes.to_string())
        .expect("set knob");
    let cold = measure("cold", &mut s, 1, cache_bytes);
    assert_eq!(
        (cold.meta_hit_rate, cold.data_hit_rate),
        (0.0, 0.0),
        "cold run must be all fills"
    );

    // Warm: every tier hits, best of RUNS.
    let warm = measure("warm", &mut s, RUNS, cache_bytes);
    assert_eq!(
        (warm.meta_hit_rate, warm.data_hit_rate),
        (1.0, 1.0),
        "warm run must be all hits"
    );

    let results = [off, cold, warm];
    print_table(
        "Scan: caches off vs cold vs warm (measured CPU)",
        &[
            "config",
            "cpu",
            "sim elapsed",
            "rows",
            "meta hit",
            "data hit",
        ],
        &results
            .iter()
            .map(|r| {
                (
                    r.name.to_string(),
                    vec![
                        fmt_s(r.cpu_s),
                        fmt_s(r.sim_s),
                        r.rows.to_string(),
                        format!("{:.0}%", r.meta_hit_rate * 100.0),
                        format!("{:.0}%", r.data_hit_rate * 100.0),
                    ],
                )
            })
            .collect::<Vec<_>>(),
    );
    let speedup = results[1].cpu_s / results[2].cpu_s;
    println!("\nwarm-cache scan CPU speedup over cold: {speedup:.2}x");

    let mut doc = Json::obj();
    doc.push("format_version", Json::U64(1));
    doc.push("benchmark", Json::Str("cache".into()));
    doc.push("scale_factor", Json::F64(sf));
    doc.push("query", Json::Str(QUERY.into()));
    let mut configs = Vec::new();
    for r in &results {
        let mut c = Json::obj();
        c.push("name", Json::Str(r.name.into()));
        c.push("cache_bytes", Json::U64(r.cache_bytes));
        c.push("cpu_seconds", Json::F64(r.cpu_s));
        c.push("sim_elapsed_s", Json::F64(r.sim_s));
        c.push("result_rows", Json::U64(r.rows as u64));
        c.push("metadata_hit_rate", Json::F64(r.meta_hit_rate));
        c.push("data_hit_rate", Json::F64(r.data_hit_rate));
        configs.push(c);
    }
    doc.push("configs", Json::Array(configs));
    doc.push("warm_cpu_speedup", Json::F64(speedup));

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let schema_src = std::fs::read_to_string(format!("{root}/results/bench_cache.schema.json"))
        .expect("read results/bench_cache.schema.json");
    let schema = json::parse(&schema_src).expect("parse schema");
    json::validate(&doc, &schema).expect("BENCH_cache.json matches its schema");

    let out = format!("{root}/results/BENCH_cache.json");
    std::fs::write(&out, doc.render_pretty()).expect("write BENCH_cache.json");
    println!("wrote results/BENCH_cache.json");

    if check && results[2].cpu_s >= results[1].cpu_s {
        eprintln!(
            "FAIL: warm scan CPU ({}) is not below cold ({})",
            fmt_s(results[2].cpu_s),
            fmt_s(results[1].cpu_s)
        );
        std::process::exit(1);
    }
}
