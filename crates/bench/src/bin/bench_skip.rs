//! Data-skipping benchmark (ROADMAP item 2, HAIL-style): a selective
//! point-plus-range lookup over ORC run under three skipping regimes on
//! identical data — no skipping (storage predicate pushdown off),
//! stats-only skipping (min/max row-group pruning, the Fig. 10 baseline),
//! and aggressive skipping (per-column bloom filters on the point column
//! plus a replica sorted on the range column, steered to by
//! replica-aware split planning).
//!
//! Writes `results/BENCH_skip.json` (validated against
//! `results/bench_skip.schema.json`) and, with `--check`, exits non-zero
//! unless the aggressive configuration reads at least 1.5x fewer bytes
//! than stats-only skipping while returning identical rows — the ci.sh
//! regression gate.

use hive_bench::{fmt_bytes, fmt_s, measure_runs, print_table, scale_factor};
use hive_common::config::keys;
use hive_common::{Row, Value};
use hive_core::HiveSession;
use hive_obs::json::{self, Json};

/// The lookup: a range on the replica sort column plus a point predicate
/// on the bloom column. On the okey-sorted replica the range clusters
/// into a handful of row groups, so min/max stats prune the rest; the
/// bloom filter on scattered vkey then prunes the survivors that contain
/// no matching key — the range spans several index strides on purpose so
/// both mechanisms contribute.
const QUERY: &str = "SELECT okey, vkey, total FROM fact \
     WHERE okey BETWEEN 0 AND 4000 AND vkey = 13";

/// Measurement runs per configuration; the best (minimum) CPU is reported
/// so scheduler noise cannot fail the gate.
const RUNS: usize = 3;

/// The gate: aggressive skipping must read at least this factor fewer
/// bytes than stats-only min/max pruning.
const MIN_BYTES_REDUCTION: f64 = 1.5;

fn row_count() -> i64 {
    ((2_000_000.0 * scale_factor()) as i64).max(40_000)
}

/// A fresh session with the given write-side skipping knobs, loaded with
/// the scattered fact table. Both predicate columns are scattered in the
/// base file (okey by multiplication, vkey by a different stride), so
/// min/max statistics on the base copy prune almost nothing — skipping
/// gains must come from the sorted replica and the bloom filter.
fn skip_session(bloom: bool, replica: bool, ppd: bool) -> HiveSession {
    let mut s = HiveSession::in_memory();
    // Small stripes and strides keep pruning granular at laptop scale,
    // and a disabled block cache keeps bytes_read identical across the
    // repeat runs (a warm cache would understate the later phases).
    s.set(keys::ORC_STRIPE_SIZE, format!("{}", 256 << 10));
    s.set(keys::ORC_ROW_INDEX_STRIDE, "1000");
    s.set(keys::IO_CACHE_BYTES, "0");
    s.set(keys::OPT_PPD_STORAGE, if ppd { "true" } else { "false" });
    if bloom {
        s.set(keys::ORC_BLOOM_FILTER_COLUMNS, "vkey");
    }
    if replica {
        s.set(keys::ORC_REPLICA_SORT_COLUMNS, "okey");
    }
    let rows = row_count();
    s.execute("CREATE TABLE fact (okey BIGINT, vkey BIGINT, total DOUBLE) STORED AS orc")
        .expect("create fact");
    s.load_rows(
        "fact",
        (0..rows).map(move |i| {
            Row::new(vec![
                Value::Int(i * 7919 % rows),
                Value::Int((i * 104_729 + 13) % (rows / 4)),
                Value::Double((i % 400) as f64 / 4.0),
            ])
        }),
    )
    .expect("load fact");
    s
}

struct ConfigResult {
    name: &'static str,
    bloom: bool,
    replica: bool,
    ppd: bool,
    cpu_s: f64,
    sim_s: f64,
    bytes_read: u64,
    groups_read: u64,
    groups_total: u64,
    groups_bloom_pruned: u64,
    rows: Vec<Row>,
}

fn run_config(name: &'static str, bloom: bool, replica: bool, ppd: bool) -> ConfigResult {
    let mut s = skip_session(bloom, replica, ppd);
    let analyze = s
        .execute(&format!("EXPLAIN ANALYZE {QUERY}"))
        .expect("explain analyze")
        .explain
        .expect("explain text");
    assert_eq!(
        analyze.contains("replica: "),
        replica,
        "config `{name}` made the wrong replica decision:\n{analyze}"
    );
    assert_eq!(
        analyze.contains("skip: "),
        bloom,
        "config `{name}` made the wrong bloom decision:\n{analyze}"
    );
    let m = measure_runs(RUNS, || s.execute(QUERY).expect("lookup query"));
    assert!(!m.last.rows.is_empty(), "lookup must produce output");
    let report = &m.last.report;
    let (groups_read, groups_total, groups_bloom_pruned) =
        report.jobs.iter().fold((0, 0, 0), |(r, t, b), jr| {
            (
                r + jr.scan.groups_read,
                t + jr.scan.groups_total,
                b + jr.scan.groups_bloom_pruned,
            )
        });
    ConfigResult {
        name,
        bloom,
        replica,
        ppd,
        cpu_s: m.best_cpu_s,
        sim_s: m.best_sim_s,
        bytes_read: report.counters.bytes_read,
        groups_read,
        groups_total,
        groups_bloom_pruned,
        rows: m.last.rows,
    }
}

fn sorted_rows(rows: &[Row]) -> Vec<String> {
    let mut out: Vec<String> = rows
        .iter()
        .map(|r| {
            r.values()
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\t")
        })
        .collect();
    out.sort();
    out
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let sf = scale_factor();
    println!(
        "Data-skipping benchmark — scale factor {sf} ({} rows)",
        row_count()
    );

    let results = [
        run_config("no-skipping", false, false, false),
        run_config("stats-only", false, false, true),
        run_config("bloom+replica", true, true, true),
    ];

    print_table(
        "Selective lookup under three skipping regimes (best of 3)",
        &[
            "config",
            "cpu",
            "sim elapsed",
            "bytes read",
            "groups",
            "bloom pruned",
        ],
        &results
            .iter()
            .map(|r| {
                (
                    r.name.to_string(),
                    vec![
                        fmt_s(r.cpu_s),
                        fmt_s(r.sim_s),
                        fmt_bytes(r.bytes_read),
                        format!("{}/{}", r.groups_read, r.groups_total),
                        r.groups_bloom_pruned.to_string(),
                    ],
                )
            })
            .collect::<Vec<_>>(),
    );
    let reduction = results[1].bytes_read as f64 / results[2].bytes_read.max(1) as f64;
    println!(
        "\naggressive vs stats-only bytes-read reduction: {reduction:.2}x \
         (gate: >={MIN_BYTES_REDUCTION}x)"
    );

    let baseline = sorted_rows(&results[0].rows);
    let mut identical = true;
    for r in &results[1..] {
        if sorted_rows(&r.rows) != baseline {
            eprintln!("FAIL: config `{}` changed the query answer", r.name);
            identical = false;
        }
    }

    let mut doc = Json::obj();
    doc.push("format_version", Json::U64(1));
    doc.push("benchmark", Json::Str("skip".into()));
    doc.push("scale_factor", Json::F64(sf));
    doc.push("query", Json::Str(QUERY.into()));
    let mut configs = Vec::new();
    for r in &results {
        let mut c = Json::obj();
        c.push("name", Json::Str(r.name.into()));
        c.push("bloom", Json::Bool(r.bloom));
        c.push("replica", Json::Bool(r.replica));
        c.push("ppd", Json::Bool(r.ppd));
        c.push("cpu_seconds", Json::F64(r.cpu_s));
        c.push("sim_elapsed_s", Json::F64(r.sim_s));
        c.push("bytes_read", Json::U64(r.bytes_read));
        c.push("groups_read", Json::U64(r.groups_read));
        c.push("groups_total", Json::U64(r.groups_total));
        c.push("groups_bloom_pruned", Json::U64(r.groups_bloom_pruned));
        c.push("result_rows", Json::U64(r.rows.len() as u64));
        configs.push(c);
    }
    doc.push("configs", Json::Array(configs));
    doc.push("bytes_reduction", Json::F64(reduction));
    doc.push("results_identical", Json::Bool(identical));

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let schema_src = std::fs::read_to_string(format!("{root}/results/bench_skip.schema.json"))
        .expect("read results/bench_skip.schema.json");
    let schema = json::parse(&schema_src).expect("parse schema");
    json::validate(&doc, &schema).expect("BENCH_skip.json matches its schema");

    let out = format!("{root}/results/BENCH_skip.json");
    std::fs::write(&out, doc.render_pretty()).expect("write BENCH_skip.json");
    println!("wrote results/BENCH_skip.json");

    if check {
        let mut failed = !identical;
        if reduction < MIN_BYTES_REDUCTION {
            eprintln!(
                "FAIL: aggressive skipping read {} vs stats-only {} — \
                 reduction {reduction:.2}x is below {MIN_BYTES_REDUCTION}x",
                fmt_bytes(results[2].bytes_read),
                fmt_bytes(results[1].bytes_read)
            );
            failed = true;
        }
        if results[2].groups_bloom_pruned == 0 {
            eprintln!("FAIL: aggressive configuration never pruned a group by bloom");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
    }
}
