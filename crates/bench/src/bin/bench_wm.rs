//! Workload-management benchmark: does a high-priority pool keep its
//! latency when a low-priority tenant floods the server?
//!
//! One server, two pools: `interactive` (small share, high priority) and
//! `etl` (the flood). Phase 1 measures interactive latency on an idle
//! server; phase 2 floods every slot with etl statements — which borrow
//! the idle interactive slots — and measures interactive latency again.
//! The workload manager has to queue each interactive arrival, preempt
//! the youngest borrowing etl statement, and hand the reclaimed slot
//! over; preempted etl statements re-queue and re-run to completion, so
//! every flood query still returns correct results.
//!
//! Latency is `queue_wait + sim_elapsed`: the scheduling delay the
//! manager controls plus the deterministic simulated execution time
//! (`hive.exec.sim.deterministic.cpu`), so the gate measures scheduling,
//! not host noise.
//!
//! Writes `results/BENCH_wm.json` (validated against
//! `results/bench_wm.schema.json`) and, with `--check`, exits non-zero
//! unless flooded interactive p99 ≤ 1.5× unloaded p99 and at least one
//! preemption (with its re-run) was observed — the ci.sh gate.

use hive_bench::{fmt_s, print_table, scale_factor};
use hive_common::{Row, Value};
use hive_core::{HiveServer, HiveSession};
use hive_obs::json::{self, Json};
use hive_obs::SpanKind;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const PLAN: &str = "interactive:share=2,priority=10;etl:share=2";
const MAPPING: &str = "ann=interactive;*=etl";

const INTERACTIVE_QUERY: &str =
    "SELECT cust, COUNT(*) AS n FROM orders WHERE total > 200.0 GROUP BY cust ORDER BY cust";
const ETL_QUERY: &str = "SELECT cust, COUNT(*) AS n, SUM(total) AS rev, AVG(total) AS avg_rev \
     FROM orders GROUP BY cust ORDER BY cust";

/// Interactive statements measured per phase.
const RUNS: usize = 20;
/// etl flood threads — enough to keep all four slots saturated.
const FLOOD_THREADS: usize = 6;

fn wm_server() -> HiveServer {
    let server = HiveSession::builder()
        .set("hive.server.wm.plan", PLAN)
        .expect("plan knob")
        .set("hive.server.wm.mapping", MAPPING)
        .expect("mapping knob")
        .set("hive.exec.sim.deterministic.cpu", "true")
        .expect("deterministic cpu knob")
        .build_server()
        .expect("bring up wm server");
    let mut s = server.new_session();
    let sf = scale_factor();
    let orders = ((1_500_000.0 * sf) as i64).max(20_000);
    s.execute("CREATE TABLE orders (okey BIGINT, cust BIGINT, total DOUBLE) STORED AS orc")
        .expect("create orders");
    s.load_rows(
        "orders",
        (0..orders).map(move |i| {
            Row::new(vec![
                Value::Int(i),
                Value::Int(i % 100),
                Value::Double((i % 500) as f64 / 2.0),
            ])
        }),
    )
    .expect("load orders");
    server
}

/// Run one interactive statement as user `ann`; returns
/// `(queue_wait_s, sim_s)`. The queue wait comes from the admission span,
/// which only exists when the statement actually waited.
fn interactive_once(server: &HiveServer) -> (f64, f64) {
    let r = server
        .execute_with(INTERACTIVE_QUERY, &[("hive.session.user", "ann")])
        .expect("interactive query");
    assert!(!r.rows.is_empty(), "interactive query must produce rows");
    let wait = r
        .metrics
        .trace
        .spans
        .iter()
        .find(|s| s.kind == SpanKind::Admission)
        .map(|s| s.sim_s)
        .unwrap_or(0.0);
    (wait, r.report.sim_total_s)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

struct PhaseResult {
    name: &'static str,
    latencies: Vec<f64>,
    queue_waits: Vec<f64>,
}

impl PhaseResult {
    fn p99(&self) -> f64 {
        let mut l = self.latencies.clone();
        l.sort_by(|a, b| a.partial_cmp(b).unwrap());
        percentile(&l, 0.99)
    }

    fn p50(&self) -> f64 {
        let mut l = self.latencies.clone();
        l.sort_by(|a, b| a.partial_cmp(b).unwrap());
        percentile(&l, 0.50)
    }

    fn mean_queue_wait(&self) -> f64 {
        self.queue_waits.iter().sum::<f64>() / self.queue_waits.len() as f64
    }
}

fn run_phase(name: &'static str, server: &HiveServer, runs: usize) -> PhaseResult {
    let mut latencies = Vec::with_capacity(runs);
    let mut queue_waits = Vec::with_capacity(runs);
    for _ in 0..runs {
        let (wait, sim) = interactive_once(server);
        latencies.push(wait + sim);
        queue_waits.push(wait);
    }
    PhaseResult {
        name,
        latencies,
        queue_waits,
    }
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let sf = scale_factor();
    println!("Workload-management benchmark — scale factor {sf}");
    println!("plan: {PLAN}");

    let server = wm_server();
    let wm = server.workload_manager();

    // Phase 1: unloaded — interactive statements on an idle server.
    let unloaded = run_phase("unloaded", &server, RUNS);

    // Phase 2: flood etl until every slot (including interactive's idle
    // share, via borrowing) is busy, then measure interactive latency
    // while the flood keeps refilling.
    let stop = Arc::new(AtomicBool::new(false));
    let mut flood = Vec::new();
    for _ in 0..FLOOD_THREADS {
        let srv = server.clone();
        let stop2 = Arc::clone(&stop);
        flood.push(std::thread::spawn(move || {
            let mut completed = 0u64;
            while !stop2.load(Ordering::Relaxed) {
                // Preempted runs re-queue and re-run inside execute_with;
                // the result must be complete either way.
                let r = srv
                    .execute_with(ETL_QUERY, &[("hive.session.user", "bob")])
                    .expect("etl query");
                assert_eq!(r.rows.len(), 100, "etl results complete despite preemption");
                completed += 1;
            }
            completed
        }));
    }
    // Wait until the flood has saturated all four slots (etl borrows both
    // interactive slots), so every measured arrival contends.
    let etl_pool = 1;
    while wm.active_count(etl_pool) < wm.total_slots() {
        std::thread::sleep(Duration::from_millis(1));
    }
    let loaded = run_phase("loaded", &server, RUNS);
    // The gate needs at least one observed preemption + re-run; at this
    // saturation every interactive arrival should force one, but give the
    // scenario bounded room to produce it.
    let mut extra = 0;
    while (wm.preemptions_fired() == 0 || wm.requeues() == 0) && extra < 50 {
        while wm.active_count(etl_pool) < wm.total_slots() {
            std::thread::sleep(Duration::from_millis(1));
        }
        interactive_once(&server);
        extra += 1;
    }
    stop.store(true, Ordering::Relaxed);
    let etl_completed: u64 = flood.into_iter().map(|h| h.join().expect("flood")).sum();

    let preemptions = wm.preemptions_fired();
    let requeues = wm.requeues();
    // Every admission the manager granted was released exactly once; the
    // re-run accounting must balance: grants = statements + requeues.
    let statements = 1 /* create */ + 2 * RUNS as u64 + extra + etl_completed;
    assert_eq!(
        server.admitted_total(),
        statements + requeues,
        "every preempted statement re-ran exactly once per requeue"
    );

    let phases = [unloaded, loaded];
    print_table(
        "Interactive latency (queue wait + deterministic sim time)",
        &["phase", "p50", "p99", "mean queue wait"],
        &phases
            .iter()
            .map(|p| {
                (
                    p.name.to_string(),
                    vec![
                        fmt_s(p.p50()),
                        fmt_s(p.p99()),
                        format!("{:.1} ms", p.mean_queue_wait() * 1e3),
                    ],
                )
            })
            .collect::<Vec<_>>(),
    );
    let p99_ratio = phases[1].p99() / phases[0].p99();
    println!(
        "\nflooded p99 / unloaded p99 = {p99_ratio:.3} \
         (preemptions={preemptions} requeues={requeues} etl_completed={etl_completed})"
    );

    let mut doc = Json::obj();
    doc.push("format_version", Json::U64(1));
    doc.push("benchmark", Json::Str("wm".into()));
    doc.push("scale_factor", Json::F64(sf));
    doc.push("plan", Json::Str(PLAN.into()));
    doc.push("interactive_query", Json::Str(INTERACTIVE_QUERY.into()));
    doc.push("etl_query", Json::Str(ETL_QUERY.into()));
    let mut phase_docs = Vec::new();
    for p in &phases {
        let mut d = Json::obj();
        d.push("name", Json::Str(p.name.into()));
        d.push("runs", Json::U64(p.latencies.len() as u64));
        d.push("p50_latency_s", Json::F64(p.p50()));
        d.push("p99_latency_s", Json::F64(p.p99()));
        d.push("mean_queue_wait_s", Json::F64(p.mean_queue_wait()));
        phase_docs.push(d);
    }
    doc.push("phases", Json::Array(phase_docs));
    doc.push("p99_ratio", Json::F64(p99_ratio));
    doc.push("preemptions", Json::U64(preemptions));
    doc.push("requeues", Json::U64(requeues));
    doc.push("etl_statements_completed", Json::U64(etl_completed));

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let schema_src = std::fs::read_to_string(format!("{root}/results/bench_wm.schema.json"))
        .expect("read results/bench_wm.schema.json");
    let schema = json::parse(&schema_src).expect("parse schema");
    json::validate(&doc, &schema).expect("BENCH_wm.json matches its schema");

    let out = format!("{root}/results/BENCH_wm.json");
    std::fs::write(&out, doc.render_pretty()).expect("write BENCH_wm.json");
    println!("wrote results/BENCH_wm.json");

    if check {
        let mut failed = false;
        if p99_ratio > 1.5 {
            eprintln!("FAIL: flooded interactive p99 is {p99_ratio:.3}x unloaded (gate: 1.5x)");
            failed = true;
        }
        if preemptions == 0 || requeues == 0 {
            eprintln!(
                "FAIL: expected at least one preemption with a re-run \
                 (preemptions={preemptions} requeues={requeues})"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
    }
}
