//! Regenerates **Figure 9**: time to load each dataset into RCFile,
//! RCFile+Snappy, ORC and ORC+Snappy.
//!
//! Paper claims to check:
//! * SS-DB and TPC-DS load into ORC in about the time RCFile takes;
//! * TPC-H loads into ORC roughly 2× slower than RCFile — the writer
//!   builds dictionaries for the random-text comment columns only to
//!   discard them (wasted work, paper Section 7.2).

use hive_bench::{bench_session, fmt_s, print_table, scale_factor, ssdb_images, ssdb_step};
use hive_common::config::keys;
use hive_common::Row;
use std::time::Instant;

fn main() {
    let sf = scale_factor();
    println!("Figure 9 reproduction — scale factor {sf} (paper used 300)");

    let variants: &[(&str, &str, &str)] = &[
        ("RCFile", "rcfile", "none"),
        ("RCFile Snappy", "rcfile", "snappy"),
        ("ORC File", "orc", "none"),
        ("ORC File Snappy", "orc", "snappy"),
    ];

    let mut rows: Vec<(String, Vec<String>)> = variants
        .iter()
        .map(|(label, _, _)| (label.to_string(), Vec::new()))
        .collect();

    for dataset in ["SS-DB", "TPC-H", "TPC-DS"] {
        for (vi, (_, fmt, comp)) in variants.iter().enumerate() {
            let mut s = bench_session();
            s.set(keys::ORC_COMPRESS, *comp);
            let format = hive_formats::FormatKind::parse(fmt).expect("format");
            // Materialize rows first so generation cost is excluded.
            let tables: Vec<(&str, hive_common::Schema, Vec<Row>)> = match dataset {
                "SS-DB" => vec![(
                    "cycle",
                    hive_datagen::ssdb::cycle_schema(),
                    hive_datagen::ssdb::cycle_rows(ssdb_images(), ssdb_step(), 42).collect(),
                )],
                "TPC-H" => hive_datagen::tpch::all_tables(sf, 42)
                    .into_iter()
                    .map(|(n, sc, it)| (n, sc, it.collect()))
                    .collect(),
                _ => hive_datagen::tpcds::all_tables(sf, 42)
                    .into_iter()
                    .map(|(n, sc, it)| (n, sc, it.collect()))
                    .collect(),
            };
            let t0 = Instant::now();
            for (name, schema, rows) in tables {
                s.create_table(name, schema, format).expect("create");
                s.load_rows(name, rows).expect("load");
            }
            rows[vi].1.push(fmt_s(t0.elapsed().as_secs_f64()));
        }
    }

    print_table(
        "Figure 9: data loading times (wall clock, this machine)",
        &["format", "SS-DB", "TPC-H", "TPC-DS"],
        &rows,
    );
}
