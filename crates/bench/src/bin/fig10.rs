//! Regenerates **Figure 10**: SS-DB query 1 (easy/medium/hard) elapsed
//! times (a) and bytes read from the DFS (b), comparing RCFile,
//! ORC without predicate pushdown, and ORC with pushdown.
//!
//! Paper claims to check:
//! * ORC's large stripes already beat RCFile's 4 MB row groups without
//!   any index use;
//! * with PPD, the selective variants read a small fraction of the data
//!   (1.07 GB vs 16.91 GB for easy, at the paper's scale);
//! * on the non-selective hard variant, the index costs only a little
//!   extra read (the index data itself) and a couple of seconds.

use hive_bench::{bench_session, fmt_bytes, fmt_s, print_table, ssdb_images, ssdb_step};
use hive_common::config::keys;

fn main() {
    println!(
        "Figure 10 reproduction — {} images, grid step {} ({} rows)",
        ssdb_images(),
        ssdb_step(),
        hive_datagen::ssdb::rows_per_cycle(ssdb_images(), ssdb_step())
    );

    // Three storage configurations of the same cycle table.
    let configs: &[(&str, &str, bool)] = &[
        ("RCFile", "rcfile", false),
        ("ORC File (No PPD)", "orc", false),
        ("ORC File (PPD)", "orc", true),
    ];

    let mut time_rows = Vec::new();
    let mut byte_rows = Vec::new();

    for (label, fmt, ppd) in configs {
        let mut s = bench_session();
        // Index groups must subdivide an image for min/max statistics on x
        // to be tight, exactly as the paper's 10,000-row stride subdivides
        // its 225M-pixel images. Scale the stride with the grid: one group
        // spans two grid rows.
        let per_axis = (hive_datagen::ssdb::COORD_MAX + ssdb_step() - 1) / ssdb_step();
        s.set(
            keys::ORC_ROW_INDEX_STRIDE,
            format!("{}", (per_axis * 2).max(64)),
        );
        let format = hive_formats::FormatKind::parse(fmt).expect("format");
        s.create_table("cycle", hive_datagen::ssdb::cycle_schema(), format)
            .expect("create");
        s.load_rows(
            "cycle",
            hive_datagen::ssdb::cycle_rows(ssdb_images(), ssdb_step(), 42),
        )
        .expect("load");
        // OPT_PPD_STORAGE gates the whole pushdown: with it off the planner
        // attaches no SearchArgument, so neither stripes nor index groups
        // are skipped (the paper's "No PPD" configuration).
        s.set(keys::OPT_PPD_STORAGE, if *ppd { "true" } else { "false" });

        let mut times = Vec::new();
        let mut bytes = Vec::new();
        for (name, var) in hive_datagen::ssdb::QUERY1_VARIANTS {
            let sql = hive_datagen::ssdb::query1(*var);
            let before = s.io_snapshot();
            let r = s.execute(&sql).expect(name);
            let after = s.io_snapshot();
            assert_eq!(r.rows.len(), 1, "{name}");
            times.push(fmt_s(r.report.sim_total_s));
            bytes.push(fmt_bytes(after.since(&before).bytes_read()));
        }
        time_rows.push((label.to_string(), times));
        byte_rows.push((label.to_string(), bytes));
    }

    print_table(
        "Figure 10(a): elapsed times (simulated cluster seconds)",
        &["config", "1.easy", "1.medium", "1.hard"],
        &time_rows,
    );
    print_table(
        "Figure 10(b): data read from DFS",
        &["config", "1.easy", "1.medium", "1.hard"],
        &byte_rows,
    );
}
