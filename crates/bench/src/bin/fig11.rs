//! Regenerates **Figure 11**: the query-planning advancements.
//!
//! * (a) TPC-DS q27 with and without unnecessary Map phases — merging the
//!   Map Join jobs turns 4 map-only jobs + 1 MR job into a single MR job
//!   (paper: ≈2.34× speedup);
//! * (b) TPC-DS q95 with the Correlation Optimizer off/on, then also with
//!   Map-phase merging (paper: 2.57× and 2.92× combined).
//!
//! Run `fig11 q27`, `fig11 q95`, or no argument for both.

use hive_bench::{bench_session, fmt_s, print_table, queries, scale_factor};
use hive_common::config::keys;
use hive_core::HiveSession;

fn dataset() -> HiveSession {
    let mut s = bench_session();
    hive_datagen::tpcds::load(&mut s, scale_factor(), 42).expect("load tpcds");
    // The paper's small-table threshold separates dimensions from facts.
    // At fractional scale the absolute 25 MB default would make *facts*
    // map-joinable too, so derive the threshold from the loaded sizes:
    // every dimension fits, no fact does.
    let dim_max = [
        "date_dim",
        "store",
        "customer_demographics",
        "item",
        "customer_address",
        "web_site",
    ]
    .iter()
    .map(|t| s.metastore().table_size(t))
    .max()
    .unwrap_or(0);
    let fact_min = ["store_sales", "web_sales", "web_returns"]
        .iter()
        .map(|t| s.metastore().table_size(t))
        .min()
        .unwrap_or(u64::MAX);
    assert!(
        dim_max < fact_min,
        "scale factor too small: a fact table ({fact_min} B) is not larger \
         than the biggest dimension ({dim_max} B); raise HIVE_BENCH_SF"
    );
    let threshold = (dim_max + fact_min) / 2;
    s.set(keys::MAPJOIN_SMALLTABLE_SIZE, format!("{threshold}"));
    s
}

fn run(s: &mut HiveSession, sql: &str) -> (f64, usize, usize, usize) {
    let r = s.execute(sql).expect("query");
    let map_only = r.report.jobs.iter().filter(|j| j.reduce_tasks == 0).count();
    let mr = r.report.jobs.len() - map_only;
    (r.report.sim_total_s, r.report.jobs.len(), map_only, mr)
}

fn q27() {
    let mut rows = Vec::new();
    let mut base = 0.0;
    for (label, merge) in [("w/ UM", "false"), ("w/o UM", "true")] {
        let mut s = dataset();
        s.set(keys::MERGE_MAPONLY_JOBS, merge)
            .set(keys::AUTO_CONVERT_JOIN, "true");
        let (t, jobs, map_only, mr) = run(&mut s, queries::TPCDS_Q27);
        if base == 0.0 {
            base = t;
        }
        rows.push((
            label.to_string(),
            vec![
                fmt_s(t),
                format!("{jobs} ({map_only} map-only + {mr} MR)"),
                format!("{:.2}x", base / t),
            ],
        ));
    }
    print_table(
        "Figure 11(a): TPC-DS q27 — eliminating unnecessary Map phases",
        &["config", "elapsed", "jobs", "speedup"],
        &rows,
    );
}

fn q95() {
    let mut rows = Vec::new();
    let mut base = 0.0;
    for (label, corr, merge) in [
        ("w/ UM, CO=off", "false", "false"),
        ("w/ UM, CO=on", "true", "false"),
        ("w/o UM, CO=on", "true", "true"),
    ] {
        let mut s = dataset();
        s.set(keys::OPT_CORRELATION, corr)
            .set(keys::MERGE_MAPONLY_JOBS, merge)
            .set(keys::AUTO_CONVERT_JOIN, "true");
        let (t, jobs, map_only, mr) = run(&mut s, queries::TPCDS_Q95);
        if base == 0.0 {
            base = t;
        }
        rows.push((
            label.to_string(),
            vec![
                fmt_s(t),
                format!("{jobs} ({map_only} map-only + {mr} MR)"),
                format!("{:.2}x", base / t),
            ],
        ));
    }
    print_table(
        "Figure 11(b): TPC-DS q95 — Correlation Optimizer + Map-phase merge",
        &["config", "elapsed", "jobs", "speedup"],
        &rows,
    );
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_default();
    println!(
        "Figure 11 reproduction — TPC-DS scale factor {} (paper used 300)",
        scale_factor()
    );
    match arg.as_str() {
        "q27" => q27(),
        "q95" => q95(),
        _ => {
            q27();
            q95();
        }
    }
}
