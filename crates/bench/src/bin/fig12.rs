//! Regenerates **Figure 12**: TPC-H q1 and q6 elapsed times (a) and
//! cumulative CPU times (b) for three configurations:
//! RCFile + row engine, ORC + row engine, ORC + vectorized engine.
//!
//! Paper claims to check:
//! * vectorization cuts cumulative CPU ≈5× on q1 and ≈3× on q6;
//! * elapsed times drop correspondingly (I/O is shared; CPU is the
//!   differentiator once ORC reads fewer bytes than RCFile).

use hive_bench::{bench_session_with_block, fmt_s, print_table, queries, scale_factor};
use hive_common::config::keys;
use hive_core::HiveSession;

fn lineitem_session(fmt: &str) -> HiveSession {
    // 1 MB blocks keep dozens of splits per format at laptop scale
    // (paper: 512 MB blocks over 300 GB → hundreds of splits).
    let mut s = bench_session_with_block(1 << 20);
    s.set(
        hive_common::config::keys::ORC_STRIPE_SIZE,
        format!("{}", 1 << 20),
    );
    let format = hive_formats::FormatKind::parse(fmt).expect("format");
    s.create_table("lineitem", hive_datagen::tpch::lineitem_schema(), format)
        .expect("create");
    s.load_rows(
        "lineitem",
        hive_datagen::tpch::lineitem_rows(scale_factor(), 42),
    )
    .expect("load");
    s
}

fn main() {
    let sf = scale_factor();
    println!("Figure 12 reproduction — TPC-H scale factor {sf} (paper used 300)");

    let configs: &[(&str, &str, &str)] = &[
        ("RCFile (No Vector)", "rcfile", "false"),
        ("ORC File (No Vector)", "orc", "false"),
        ("ORC File (Vector)", "orc", "true"),
    ];

    let mut elapsed_rows = Vec::new();
    let mut cpu_rows = Vec::new();
    for (label, fmt, vec) in configs {
        let mut s = lineitem_session(fmt);
        s.set(keys::VECTORIZED_ENABLED, *vec);
        let mut elapsed = Vec::new();
        let mut cpu = Vec::new();
        for (name, sql) in [("q1", queries::TPCH_Q1), ("q6", queries::TPCH_Q6)] {
            let r = s.execute(sql).expect(name);
            assert!(!r.rows.is_empty(), "{name} must produce output");
            elapsed.push(fmt_s(r.report.sim_total_s));
            cpu.push(fmt_s(r.report.cpu_seconds));
        }
        elapsed_rows.push((label.to_string(), elapsed));
        cpu_rows.push((label.to_string(), cpu));
    }

    print_table(
        "Figure 12(a): elapsed times (simulated cluster seconds)",
        &["config", "q1", "q6"],
        &elapsed_rows,
    );
    print_table(
        "Figure 12(b): cumulative CPU times (measured seconds, this machine)",
        &["config", "q1", "q6"],
        &cpu_rows,
    );
}
