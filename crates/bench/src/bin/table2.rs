//! Regenerates **Table 2** of the paper: sizes of the SS-DB, TPC-H and
//! TPC-DS datasets stored as Text, RCFile, RCFile+Snappy, ORC and
//! ORC+Snappy.
//!
//! Paper claims to check (at any scale):
//! * ORC (uncompressed) beats RCFile everywhere, and even beats
//!   RCFile+Snappy on SS-DB and TPC-DS — type-specific encodings work;
//! * TPC-H is the exception: its random-text `comment` columns defeat
//!   dictionary encoding, so a general-purpose codec (Snappy) is what
//!   shrinks it.

use hive_bench::{bench_session, fmt_bytes, print_table, scale_factor, ssdb_images, ssdb_step};
use hive_common::config::keys;
use hive_common::Row;

fn main() {
    let sf = scale_factor();
    println!("Table 2 reproduction — scale factor {sf} (paper used 300)");

    let variants: &[(&str, &str, &str)] = &[
        ("Text", "textfile", "none"),
        ("RCFile", "rcfile", "none"),
        ("RCFile Snappy", "rcfile", "snappy"),
        ("ORC File", "orc", "none"),
        ("ORC File Snappy", "orc", "snappy"),
    ];

    let mut rows: Vec<(String, Vec<String>)> = variants
        .iter()
        .map(|(label, _, _)| (label.to_string(), Vec::new()))
        .collect();

    for dataset in ["SS-DB", "TPC-H", "TPC-DS"] {
        for (vi, (_, fmt, comp)) in variants.iter().enumerate() {
            let mut s = bench_session();
            s.set(keys::ORC_COMPRESS, *comp);
            let total = match dataset {
                "SS-DB" => {
                    load_as(
                        &mut s,
                        fmt,
                        vec![(
                            "cycle",
                            hive_datagen::ssdb::cycle_schema(),
                            Box::new(hive_datagen::ssdb::cycle_rows(
                                ssdb_images(),
                                ssdb_step(),
                                42,
                            )) as Box<dyn Iterator<Item = Row>>,
                        )],
                    );
                    s.metastore().table_size("cycle")
                }
                "TPC-H" => {
                    load_as(&mut s, fmt, hive_datagen::tpch::all_tables(sf, 42));
                    total_size(&s)
                }
                _ => {
                    load_as(&mut s, fmt, hive_datagen::tpcds::all_tables(sf, 42));
                    total_size(&s)
                }
            };
            rows[vi].1.push(fmt_bytes(total));
        }
    }

    print_table(
        "Table 2: dataset sizes by format",
        &["format", "SS-DB", "TPC-H", "TPC-DS"],
        &rows,
    );
}

#[allow(clippy::type_complexity)]
fn load_as(
    s: &mut hive_core::HiveSession,
    fmt: &str,
    tables: Vec<(
        &'static str,
        hive_common::Schema,
        Box<dyn Iterator<Item = Row>>,
    )>,
) {
    let format = hive_formats::FormatKind::parse(fmt).expect("format");
    for (name, schema, rows) in tables {
        s.create_table(name, schema, format).expect("create");
        s.load_rows(name, rows).expect("load");
    }
}

fn total_size(s: &hive_core::HiveSession) -> u64 {
    s.metastore()
        .list_tables()
        .iter()
        .map(|t| s.metastore().table_size(t))
        .sum()
}
