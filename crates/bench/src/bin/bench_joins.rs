//! Map-join benchmark: the vectorized map-join (batch-at-a-time probing of
//! a once-built hash table) against the row-mode map-join (per-row
//! formatted string keys) on the same ORC data with the scan vectorized in
//! both configurations — the join operator is the only difference.
//!
//! Writes `results/BENCH_joins.json` (validated against
//! `results/bench_joins.schema.json`) and, with `--check`, exits non-zero
//! unless the vectorized join's measured CPU beats row mode's — the ci.sh
//! regression gate.

use hive_bench::{bench_session_with_block, fmt_s, measure_runs, print_table, scale_factor};
use hive_common::config::keys;
use hive_common::{Row, Value};
use hive_core::HiveSession;
use hive_obs::json::{self, Json};

const QUERY: &str = "SELECT customer.name, COUNT(*) AS n, SUM(orders.total) AS revenue \
     FROM orders JOIN customer ON (orders.cust = customer.cust) \
     GROUP BY customer.name ORDER BY customer.name";

/// Measurement runs per configuration; the best (minimum) CPU is reported
/// so scheduler noise cannot fail the gate.
const RUNS: usize = 3;

fn join_session(vectorize_mapjoin: bool) -> HiveSession {
    let mut s = bench_session_with_block(1 << 20);
    s.set(keys::ORC_STRIPE_SIZE, format!("{}", 1 << 20));
    s.set(keys::VECTORIZED_ENABLED, "true");
    s.set(
        keys::VECTORIZED_MAPJOIN_ENABLED,
        if vectorize_mapjoin { "true" } else { "false" },
    );
    // Paper-shaped fact/dimension pair: sf 1.0 → 1.5M orders, 100k
    // customers (TPC-H-ish row counts), floored so tiny ci smoke scales
    // still probe several batches per task.
    let sf = scale_factor();
    let orders = ((1_500_000.0 * sf) as i64).max(20_000);
    let customers = ((100_000.0 * sf) as i64).clamp(100, orders);
    s.execute("CREATE TABLE orders (okey BIGINT, cust BIGINT, total DOUBLE) STORED AS orc")
        .expect("create orders");
    s.load_rows(
        "orders",
        (0..orders).map(move |i| {
            Row::new(vec![
                Value::Int(i),
                Value::Int(i % customers),
                Value::Double((i % 500) as f64 / 4.0),
            ])
        }),
    )
    .expect("load orders");
    s.execute("CREATE TABLE customer (cust BIGINT, name STRING) STORED AS orc")
        .expect("create customer");
    s.load_rows(
        "customer",
        (0..customers).map(|i| Row::new(vec![Value::Int(i), Value::String(format!("c{i:06}"))])),
    )
    .expect("load customer");
    s
}

struct ConfigResult {
    name: &'static str,
    vectorized: bool,
    cpu_s: f64,
    sim_s: f64,
    rows: usize,
}

fn run_config(name: &'static str, vectorized: bool) -> ConfigResult {
    let mut s = join_session(vectorized);
    let analyze = s
        .execute(&format!("EXPLAIN ANALYZE {QUERY}"))
        .expect("explain analyze")
        .explain
        .expect("explain text");
    assert_eq!(
        analyze.contains("VectorMapJoin"),
        vectorized,
        "config `{name}` planned the wrong join operator:\n{analyze}"
    );
    let m = measure_runs(RUNS, || s.execute(QUERY).expect("join query"));
    let rows = m.last.rows.len();
    assert!(rows > 0, "join must produce output");
    ConfigResult {
        name,
        vectorized,
        cpu_s: m.best_cpu_s,
        sim_s: m.best_sim_s,
        rows,
    }
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let sf = scale_factor();
    println!("Map-join benchmark — TPC-H-ish scale factor {sf}");

    let results = [run_config("row", false), run_config("vectorized", true)];

    print_table(
        "Map join: row vs vectorized (measured CPU, best of 3)",
        &["config", "cpu", "sim elapsed", "rows"],
        &results
            .iter()
            .map(|r| {
                (
                    r.name.to_string(),
                    vec![fmt_s(r.cpu_s), fmt_s(r.sim_s), r.rows.to_string()],
                )
            })
            .collect::<Vec<_>>(),
    );
    let speedup = results[0].cpu_s / results[1].cpu_s;
    println!("\nvectorized map-join CPU speedup: {speedup:.2}x");

    let mut doc = Json::obj();
    doc.push("format_version", Json::U64(1));
    doc.push("benchmark", Json::Str("mapjoin".into()));
    doc.push("scale_factor", Json::F64(sf));
    doc.push("query", Json::Str(QUERY.into()));
    let mut configs = Vec::new();
    for r in &results {
        let mut c = Json::obj();
        c.push("name", Json::Str(r.name.into()));
        c.push("vectorized_mapjoin", Json::Bool(r.vectorized));
        c.push("cpu_seconds", Json::F64(r.cpu_s));
        c.push("sim_elapsed_s", Json::F64(r.sim_s));
        c.push("result_rows", Json::U64(r.rows as u64));
        configs.push(c);
    }
    doc.push("configs", Json::Array(configs));
    doc.push("cpu_speedup", Json::F64(speedup));

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let schema_src = std::fs::read_to_string(format!("{root}/results/bench_joins.schema.json"))
        .expect("read results/bench_joins.schema.json");
    let schema = json::parse(&schema_src).expect("parse schema");
    json::validate(&doc, &schema).expect("BENCH_joins.json matches its schema");

    let out = format!("{root}/results/BENCH_joins.json");
    std::fs::write(&out, doc.render_pretty()).expect("write BENCH_joins.json");
    println!("wrote results/BENCH_joins.json");

    if check && results[1].cpu_s >= results[0].cpu_s {
        eprintln!(
            "FAIL: vectorized map-join CPU ({}) is not below row mode ({})",
            fmt_s(results[1].cpu_s),
            fmt_s(results[0].cpu_s)
        );
        std::process::exit(1);
    }
}
