//! Vectorized-execution benchmark (paper Section 6): a scan-heavy
//! filter + group-by aggregation over ORC, run batch-native (the scan
//! feeds `VectorizedRowBatch`es straight through VectorFilter and the
//! fused VectorGroupBySink) against the row-at-a-time operator pipeline
//! (`hive.vectorized.enabled=false`) on identical data.
//!
//! Writes `results/BENCH_vector.json` (validated against
//! `results/bench_vector.schema.json`) and, with `--check`, exits
//! non-zero unless the batch-native pipeline's measured CPU beats row
//! mode by at least 1.3x (the paper reports well over 2x) — the ci.sh
//! regression gate.

use hive_bench::{bench_session_with_block, fmt_s, measure_runs, print_table, scale_factor};
use hive_common::config::keys;
use hive_common::{Row, Value};
use hive_core::HiveSession;
use hive_obs::json::{self, Json};

const QUERY: &str = "SELECT k, COUNT(*) AS n, SUM(v) AS sv, MIN(v) AS mn, \
     MAX(v) AS mx, AVG(d) AS ad FROM fact WHERE v > 100 GROUP BY k ORDER BY k";

/// Measurement runs per configuration; the best (minimum) CPU is reported
/// so scheduler noise cannot fail the gate.
const RUNS: usize = 3;

/// The gate: batch-native CPU must beat row mode by at least this factor.
const MIN_SPEEDUP: f64 = 1.3;

fn vector_session(vectorize: bool) -> HiveSession {
    let mut s = bench_session_with_block(1 << 20);
    s.set(keys::ORC_STRIPE_SIZE, format!("{}", 1 << 20));
    s.set(
        keys::VECTORIZED_ENABLED,
        if vectorize { "true" } else { "false" },
    );
    // One wide fact table; sf 1.0 → 3M rows, floored so tiny ci smoke
    // scales still push many full 1024-row batches per task.
    let sf = scale_factor();
    let rows = ((3_000_000.0 * sf) as i64).max(40_000);
    s.execute("CREATE TABLE fact (k BIGINT, v BIGINT, d DOUBLE) STORED AS orc")
        .expect("create fact");
    s.load_rows(
        "fact",
        (0..rows).map(|i| {
            Row::new(vec![
                Value::Int(i % 101),
                Value::Int(i * 7 % 1000),
                Value::Double((i % 997) as f64 / 8.0),
            ])
        }),
    )
    .expect("load fact");
    s
}

struct ConfigResult {
    name: &'static str,
    vectorized: bool,
    cpu_s: f64,
    sim_s: f64,
    rows: usize,
}

fn run_config(name: &'static str, vectorized: bool) -> ConfigResult {
    let mut s = vector_session(vectorized);
    let analyze = s
        .execute(&format!("EXPLAIN ANALYZE {QUERY}"))
        .expect("explain analyze")
        .explain
        .expect("explain text");
    assert_eq!(
        analyze.contains("VectorGroupBySink"),
        vectorized,
        "config `{name}` planned the wrong map pipeline:\n{analyze}"
    );
    let m = measure_runs(RUNS, || s.execute(QUERY).expect("aggregation query"));
    let rows = m.last.rows.len();
    assert!(rows > 0, "aggregation must produce output");
    ConfigResult {
        name,
        vectorized,
        cpu_s: m.best_cpu_s,
        sim_s: m.best_sim_s,
        rows,
    }
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let sf = scale_factor();
    println!("Vectorized execution benchmark — scale factor {sf}");

    let results = [run_config("row", false), run_config("vectorized", true)];

    print_table(
        "Scan-heavy aggregation: row vs batch-native (measured CPU, best of 3)",
        &["config", "cpu", "sim elapsed", "rows"],
        &results
            .iter()
            .map(|r| {
                (
                    r.name.to_string(),
                    vec![fmt_s(r.cpu_s), fmt_s(r.sim_s), r.rows.to_string()],
                )
            })
            .collect::<Vec<_>>(),
    );
    let speedup = results[0].cpu_s / results[1].cpu_s;
    println!("\nbatch-native CPU speedup: {speedup:.2}x (gate: >={MIN_SPEEDUP}x, target 2x)");

    let mut doc = Json::obj();
    doc.push("format_version", Json::U64(1));
    doc.push("benchmark", Json::Str("vector".into()));
    doc.push("scale_factor", Json::F64(sf));
    doc.push("query", Json::Str(QUERY.into()));
    let mut configs = Vec::new();
    for r in &results {
        let mut c = Json::obj();
        c.push("name", Json::Str(r.name.into()));
        c.push("vectorized", Json::Bool(r.vectorized));
        c.push("cpu_seconds", Json::F64(r.cpu_s));
        c.push("sim_elapsed_s", Json::F64(r.sim_s));
        c.push("result_rows", Json::U64(r.rows as u64));
        configs.push(c);
    }
    doc.push("configs", Json::Array(configs));
    doc.push("cpu_speedup", Json::F64(speedup));

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let schema_src = std::fs::read_to_string(format!("{root}/results/bench_vector.schema.json"))
        .expect("read results/bench_vector.schema.json");
    let schema = json::parse(&schema_src).expect("parse schema");
    json::validate(&doc, &schema).expect("BENCH_vector.json matches its schema");

    let out = format!("{root}/results/BENCH_vector.json");
    std::fs::write(&out, doc.render_pretty()).expect("write BENCH_vector.json");
    println!("wrote results/BENCH_vector.json");

    if check && speedup < MIN_SPEEDUP {
        eprintln!(
            "FAIL: batch-native CPU ({}) is not {MIN_SPEEDUP}x below row mode ({}); \
             speedup {speedup:.2}x",
            fmt_s(results[1].cpu_s),
            fmt_s(results[0].cpu_s)
        );
        std::process::exit(1);
    }
}
