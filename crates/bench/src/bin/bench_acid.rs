//! ACID benchmark: what does merge-on-read cost, does vectorizing it pay,
//! and does compaction earn the rest back?
//!
//! One ORC fact table, four phases of the same SARG-filtered aggregation
//! scan (the `okey` predicate prunes leading index groups, so pushdown is
//! measured through every phase — including under the ACID overlay):
//!
//! 1. `base` — the freshly loaded table, no manifest: the full vectorized
//!    + SARG scan path.
//! 2. `merge_on_read_row` — after a burst of transactional churn (INSERT
//!    deltas, an UPDATE, a DELETE), with `hive.vectorized.execution.acid.
//!    enabled=false`: base + deltas walked row at a time, deletes masked
//!    per row — the pre-vectorization merge path.
//! 3. `merge_on_read_vectorized` — the same churned snapshot, batch-native:
//!    deltas merged batch-wise, delete masks applied to the `selected[]`
//!    lane by skip-aware file ordinal.
//! 4. `post_compaction` — after `ALTER TABLE .. COMPACT 'major'` folds the
//!    chain into one base file: a base-only, delete-free snapshot drops
//!    the overlay entirely.
//!
//! Latency ratios (merge-on-read overhead, post-compaction recovery) are
//! deterministic simulated time (`hive.exec.sim.deterministic.cpu`), so
//! those gates measure the scan path, not host noise. The vectorized-merge
//! gate is different: the deterministic model charges a flat cost per
//! logical row, which is mode-independent by construction, so each phase
//! also takes best-of-runs *measured* CPU with the deterministic knob
//! overridden off — the same measurement `bench_vector` gates on.
//!
//! Writes `results/BENCH_acid.json` (validated against
//! `results/bench_acid.schema.json`) and, with `--check`, exits non-zero
//! unless the merge-on-read phases really exercised deltas and masks with
//! identical accounting, SARG index skipping stayed active under the
//! overlay, the vectorized merge beat the row-mode merge by ≥1.3x, every
//! merged answer equals the compacted answer, and post-compaction scan
//! time is back within 10% of the pre-churn baseline — the ci.sh gate.

use hive_bench::{fmt_s, measure_runs, print_table, scale_factor};
use hive_common::config::keys;
use hive_common::{Row, Value};
use hive_core::{HiveServer, HiveSession};
use hive_formats::delta::load_snapshot;
use hive_obs::json::{self, Json};

const QUERY: &str = "SELECT cust, COUNT(*) AS n, SUM(total) AS rev FROM orders \
     WHERE okey >= 15000 GROUP BY cust ORDER BY cust";

/// Scans measured per phase (deterministic sim time: repeats only guard
/// against accounting bugs, not noise).
const RUNS: usize = 3;
/// Committed INSERT transactions in the churn burst.
const DELTA_COMMITS: usize = 8;
/// Rows per INSERT transaction.
const INSERT_BATCH: usize = 50;

fn acid_server() -> (HiveServer, i64) {
    let server = HiveSession::builder()
        .set("hive.exec.sim.deterministic.cpu", "true")
        .expect("deterministic cpu knob")
        .build_server()
        .expect("bring up server");
    let mut s = server.new_session();
    let rows = ((1_500_000.0 * scale_factor()) as i64).max(20_000);
    s.execute("CREATE TABLE orders (okey BIGINT, cust BIGINT, total DOUBLE) STORED AS orc")
        .expect("create orders");
    s.load_rows(
        "orders",
        (0..rows).map(move |i| {
            Row::new(vec![
                Value::Int(i),
                Value::Int(i % 100),
                Value::Double((i % 500) as f64 / 2.0),
            ])
        }),
    )
    .expect("load orders");
    (server, rows)
}

struct Phase {
    name: &'static str,
    mean_sim_s: f64,
    /// Best-of-runs measured CPU (deterministic knob off for these runs) —
    /// the number the vectorization gate compares, since both simulated
    /// elapsed time and the deterministic per-row cost model are
    /// mode-independent by construction.
    best_cpu_s: f64,
    rows: Vec<Row>,
    delta_rows_read: u64,
    rows_masked: u64,
    /// Stripes plus index groups the SARG pruned (index-based skipping).
    index_skipped: u64,
}

fn run_phase(name: &'static str, server: &HiveServer, knobs: &[(&str, &str)]) -> Phase {
    let sim = measure_runs(RUNS, || {
        server.execute_with(QUERY, knobs).expect("phase query")
    });
    // Measured-CPU passes: the server's deterministic clock charges per
    // logical row, which cannot distinguish batch-native from row-at-a-time
    // merge — override it off and take the best of RUNS so scheduler noise
    // cannot fail the gate (the bench_vector convention).
    let mut measured_knobs = knobs.to_vec();
    measured_knobs.push((keys::EXEC_SIM_DETERMINISTIC_CPU, "false"));
    let best_cpu_s = measure_runs(RUNS, || {
        server
            .execute_with(QUERY, &measured_knobs)
            .expect("phase query (measured cpu)")
    })
    .best_cpu_s;
    let last = sim.last;
    let (delta_rows_read, rows_masked, index_skipped) = last
        .report
        .jobs
        .iter()
        .map(|j| {
            (
                j.scan.delta_rows_read,
                j.scan.rows_masked,
                (j.scan.stripes_total - j.scan.stripes_read)
                    + (j.scan.groups_total - j.scan.groups_read),
            )
        })
        .fold((0, 0, 0), |(a, b, c), (d, e, f)| (a + d, b + e, c + f));
    Phase {
        name,
        mean_sim_s: sim.mean_sim_s,
        best_cpu_s,
        rows: last.rows,
        delta_rows_read,
        rows_masked,
        index_skipped,
    }
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let sf = scale_factor();
    println!("ACID merge-on-read benchmark — scale factor {sf}");

    let (server, loaded) = acid_server();
    let base = run_phase("base", &server, &[]);

    // Transactional churn: DELTA_COMMITS insert transactions, one UPDATE,
    // one DELETE — each an independent commit on the manifest chain.
    for c in 0..DELTA_COMMITS {
        let values = (0..INSERT_BATCH)
            .map(|i| {
                let okey = loaded + (c * INSERT_BATCH + i) as i64;
                format!("({okey}, {}, {}.5)", okey % 100, okey % 500)
            })
            .collect::<Vec<_>>()
            .join(", ");
        server
            .execute(&format!("INSERT INTO orders VALUES {values}"))
            .expect("insert delta");
    }
    let updated = server
        .execute("UPDATE orders SET total = total + 1.0 WHERE cust = 7")
        .expect("update");
    let deleted = server
        .execute("DELETE FROM orders WHERE cust = 13")
        .expect("delete");
    let snap = load_snapshot(server.dfs(), "/warehouse/orders/")
        .expect("read manifest")
        .expect("churn left a manifest");
    let delta_files = snap.deltas.len() as u64;

    let merged_row = run_phase(
        "merge_on_read_row",
        &server,
        &[(keys::VECTORIZED_ACID_ENABLED, "false")],
    );
    let merged = run_phase("merge_on_read_vectorized", &server, &[]);
    assert_eq!(
        merged_row.rows, merged.rows,
        "row-mode and vectorized merge-on-read disagree"
    );

    let compacted_rows = server
        .execute("ALTER TABLE orders COMPACT 'major'")
        .expect("major compaction");
    let post = run_phase("post_compaction", &server, &[]);

    assert_eq!(
        merged.rows, post.rows,
        "compaction changed the query answer"
    );
    assert_ne!(base.rows, merged.rows, "churn must be visible to the scan");

    let merge_ratio = merged.mean_sim_s / base.mean_sim_s;
    let post_ratio = post.mean_sim_s / base.mean_sim_s;
    let vectorized_speedup = merged_row.best_cpu_s / merged.best_cpu_s;
    let phases = [&base, &merged_row, &merged, &post];
    print_table(
        "Scan latency (deterministic sim time)",
        &[
            "phase",
            "mean sim",
            "cpu (best)",
            "vs base",
            "delta rows",
            "masked",
            "idx skipped",
        ],
        &phases
            .iter()
            .map(|p| {
                (
                    p.name.to_string(),
                    vec![
                        fmt_s(p.mean_sim_s),
                        format!("{:.4} s", p.best_cpu_s),
                        format!("{:.3}x", p.mean_sim_s / base.mean_sim_s),
                        p.delta_rows_read.to_string(),
                        p.rows_masked.to_string(),
                        p.index_skipped.to_string(),
                    ],
                )
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\nmerge-on-read overhead = {merge_ratio:.3}x, vectorized merge speedup = \
         {vectorized_speedup:.3}x, post-compaction = {post_ratio:.3}x \
         (delta_files={delta_files} updated={} deleted={})",
        updated.rows[0][0], deleted.rows[0][0]
    );

    let mut doc = Json::obj();
    doc.push("format_version", Json::U64(1));
    doc.push("benchmark", Json::Str("acid".into()));
    doc.push("scale_factor", Json::F64(sf));
    doc.push("query", Json::Str(QUERY.into()));
    doc.push("rows_loaded", Json::U64(loaded as u64));
    doc.push("delta_commits", Json::U64(DELTA_COMMITS as u64));
    doc.push("delta_files", Json::U64(delta_files));
    let mut phase_docs = Vec::new();
    for p in phases {
        let mut d = Json::obj();
        d.push("name", Json::Str(p.name.into()));
        d.push("runs", Json::U64(RUNS as u64));
        d.push("mean_sim_s", Json::F64(p.mean_sim_s));
        d.push("best_cpu_s", Json::F64(p.best_cpu_s));
        d.push("delta_rows_read", Json::U64(p.delta_rows_read));
        d.push("rows_masked", Json::U64(p.rows_masked));
        d.push("index_skipped", Json::U64(p.index_skipped));
        phase_docs.push(d);
    }
    doc.push("phases", Json::Array(phase_docs));
    doc.push("merge_on_read_ratio", Json::F64(merge_ratio));
    doc.push("vectorized_merge_speedup", Json::F64(vectorized_speedup));
    doc.push("post_compaction_ratio", Json::F64(post_ratio));
    let Value::Int(compacted) = compacted_rows.rows[0][0] else {
        panic!("rows_compacted must be an integer");
    };
    doc.push("rows_compacted", Json::U64(compacted as u64));

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let schema_src = std::fs::read_to_string(format!("{root}/results/bench_acid.schema.json"))
        .expect("read results/bench_acid.schema.json");
    let schema = json::parse(&schema_src).expect("parse schema");
    json::validate(&doc, &schema).expect("BENCH_acid.json matches its schema");

    let out = format!("{root}/results/BENCH_acid.json");
    std::fs::write(&out, doc.render_pretty()).expect("write BENCH_acid.json");
    println!("wrote results/BENCH_acid.json");

    if check {
        let mut failed = false;
        if merged.delta_rows_read == 0 || merged.rows_masked == 0 {
            eprintln!(
                "FAIL: merge-on-read phase read no deltas or masked no rows \
                 (delta_rows={} masked={})",
                merged.delta_rows_read, merged.rows_masked
            );
            failed = true;
        }
        if (merged.delta_rows_read, merged.rows_masked)
            != (merged_row.delta_rows_read, merged_row.rows_masked)
        {
            eprintln!(
                "FAIL: merge accounting differs across modes \
                 (vectorized delta/masked {}/{}, row-mode {}/{})",
                merged.delta_rows_read,
                merged.rows_masked,
                merged_row.delta_rows_read,
                merged_row.rows_masked
            );
            failed = true;
        }
        if merged.index_skipped == 0 {
            eprintln!("FAIL: SARG skipped nothing under the ACID overlay");
            failed = true;
        }
        if vectorized_speedup < 1.3 {
            eprintln!(
                "FAIL: vectorized merge-on-read CPU is only {vectorized_speedup:.3}x \
                 below row mode (gate: 1.3x)"
            );
            failed = true;
        }
        if post.delta_rows_read != 0 || post.rows_masked != 0 {
            eprintln!("FAIL: post-compaction scan still pays merge-on-read");
            failed = true;
        }
        if post_ratio > 1.10 {
            eprintln!("FAIL: post-compaction scan is {post_ratio:.3}x baseline (gate: 1.10x)");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
    }
}
