//! Shared support for the benchmark harnesses that regenerate the paper's
//! tables and figures (one binary per exhibit; see DESIGN.md §4):
//!
//! | exhibit  | binary   | paper claim reproduced                           |
//! |----------|----------|--------------------------------------------------|
//! | Table 2  | `table2` | dataset sizes: ORC < RCFile, ± Snappy            |
//! | Fig. 9   | `fig9`   | load times; TPC-H ORC ≈ 2× RCFile                |
//! | Fig. 10  | `fig10`  | SS-DB q1: stripes + PPD cut time and bytes       |
//! | Fig. 11  | `fig11`  | q27/q95: Map-merge and Correlation Optimizer     |
//! | Fig. 12  | `fig12`  | q1/q6: vectorized ≫ row engine (CPU and elapsed) |
//!
//! Scale is controlled by `HIVE_BENCH_SF` (TPC scale factor fraction,
//! default 0.01) and `HIVE_BENCH_SSDB_STEP` (SS-DB grid step, default 100).

use hive_core::{HiveSession, QueryResult};
use hive_dfs::DfsConfig;

/// What one best-of-runs measurement sweep produced.
pub struct RunStats {
    /// Minimum measured CPU over the runs.
    pub best_cpu_s: f64,
    /// Minimum simulated elapsed over the runs.
    pub best_sim_s: f64,
    /// Mean simulated elapsed over the runs.
    pub mean_sim_s: f64,
    /// The last run's full result (rows and report counters).
    pub last: QueryResult,
}

/// Best-of-runs measurement (the `bench_vector` convention, shared by all
/// the gated harnesses): execute a query `runs` times and keep the
/// minimum measured CPU and simulated elapsed — host noise only ever
/// makes a run slower, so the minimum is the clean signal a regression
/// gate can trust. The mean simulated elapsed and the last result ride
/// along for harnesses that need them.
pub fn measure_runs(runs: usize, mut exec: impl FnMut() -> QueryResult) -> RunStats {
    assert!(runs > 0, "measure_runs needs at least one run");
    let mut best_cpu_s = f64::INFINITY;
    let mut best_sim_s = f64::INFINITY;
    let mut sum_sim_s = 0.0;
    let mut last = None;
    for _ in 0..runs {
        let r = exec();
        best_cpu_s = best_cpu_s.min(r.report.cpu_seconds);
        best_sim_s = best_sim_s.min(r.report.sim_total_s);
        sum_sim_s += r.report.sim_total_s;
        last = Some(r);
    }
    RunStats {
        best_cpu_s,
        best_sim_s,
        mean_sim_s: sum_sim_s / runs as f64,
        last: last.expect("runs > 0"),
    }
}

/// TPC scale factor for harness runs (paper: 300; default here: 0.01).
pub fn scale_factor() -> f64 {
    std::env::var("HIVE_BENCH_SF")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01)
}

/// SS-DB grid step (smaller = more pixels; default 100 → 22.5k px/image).
pub fn ssdb_step() -> i64 {
    std::env::var("HIVE_BENCH_SSDB_STEP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100)
}

/// SS-DB images per cycle (paper: 20).
pub fn ssdb_images() -> i64 {
    std::env::var("HIVE_BENCH_SSDB_IMAGES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20)
}

/// A fresh session sized for laptop-scale data: small DFS blocks so files
/// still split into several map tasks.
pub fn bench_session() -> HiveSession {
    bench_session_with_block(8 << 20)
}

/// A session with an explicit DFS block size. The paper's 512 MB blocks
/// put hundreds of map tasks on every format; scaled-down runs need small
/// blocks to stay in that many-splits regime (otherwise the smaller ORC
/// files get *less* parallelism and the comparison inverts).
pub fn bench_session_with_block(block_size: u64) -> HiveSession {
    let mut s = HiveSession::with_dfs_config(DfsConfig {
        block_size,
        replication: 3,
        nodes: 10,
    });
    // Scale ORC's stripe to the data (256 MB stripes would put the whole
    // dataset in one stripe and hide all intra-file effects).
    s.set(
        hive_common::config::keys::ORC_STRIPE_SIZE,
        format!("{}", 4 << 20),
    );
    s.set(hive_common::config::keys::ORC_ROW_INDEX_STRIDE, "10000");
    s
}

/// Render a results table: header + rows of (label, values).
pub fn print_table(title: &str, header: &[&str], rows: &[(String, Vec<String>)]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for (label, vals) in rows {
        widths[0] = widths[0].max(label.len());
        for (i, v) in vals.iter().enumerate() {
            widths[i + 1] = widths[i + 1].max(v.len());
        }
    }
    let fmt_row = |cells: Vec<String>| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths[i] + 2))
            .collect::<String>()
    };
    println!(
        "{}",
        fmt_row(header.iter().map(|s| s.to_string()).collect())
    );
    for (label, vals) in rows {
        let mut cells = vec![label.clone()];
        cells.extend(vals.clone());
        println!("{}", fmt_row(cells));
    }
}

/// Human-readable byte count.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2} MB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2} KB", b as f64 / (1u64 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

/// Seconds with 2 decimals.
pub fn fmt_s(s: f64) -> String {
    format!("{s:.2} s")
}

/// The TPC-H queries of Fig. 12.
pub mod queries {
    /// TPC-H q1: one predicate, eight aggregations (paper Section 7.4).
    pub const TPCH_Q1: &str = "\
SELECT l_returnflag, l_linestatus, \
       SUM(l_quantity) AS sum_qty, \
       SUM(l_extendedprice) AS sum_base_price, \
       SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, \
       SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge, \
       AVG(l_quantity) AS avg_qty, \
       AVG(l_extendedprice) AS avg_price, \
       AVG(l_discount) AS avg_disc, \
       COUNT(*) AS count_order \
FROM lineitem \
WHERE l_shipdate <= '1998-09-02' \
GROUP BY l_returnflag, l_linestatus \
ORDER BY l_returnflag, l_linestatus";

    /// TPC-H q6: four predicates, one aggregation.
    pub const TPCH_Q6: &str = "\
SELECT SUM(l_extendedprice * l_discount) AS revenue \
FROM lineitem \
WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01' \
  AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24";

    /// TPC-DS q27 (the paper's shape: a five-table star join over
    /// store_sales, then aggregation and sorting).
    pub const TPCDS_Q27: &str = "\
SELECT i_item_id, s_state, \
       AVG(ss_quantity) AS agg1, AVG(ss_list_price) AS agg2, \
       AVG(ss_coupon_amt) AS agg3, AVG(ss_sales_price) AS agg4 \
FROM store_sales \
JOIN customer_demographics ON (ss_cdemo_sk = cd_demo_sk) \
JOIN date_dim ON (ss_sold_date_sk = d_date_sk) \
JOIN store ON (ss_store_sk = s_store_sk) \
JOIN item ON (ss_item_sk = i_item_sk) \
WHERE cd_gender = 'M' AND cd_marital_status = 'S' \
  AND cd_education_status = 'College' \
  AND d_year = 1998 AND s_state IN ('TN', 'SD', 'AL') \
GROUP BY i_item_id, s_state \
ORDER BY i_item_id, s_state \
LIMIT 100";

    /// TPC-DS q95, flattened (the paper flattened its WHERE-clause
    /// subqueries too): dimension joins on web_sales, a self-join on the
    /// order number (different warehouses), the returns join, and an
    /// aggregation grouped by the same order number — the correlated
    /// pattern the Correlation Optimizer collapses.
    pub const TPCDS_Q95: &str = "\
SELECT ws1.ws_order_number, \
       COUNT(*) AS line_pairs, \
       SUM(ws1.ws_ext_ship_cost) AS total_ship_cost, \
       SUM(ws1.ws_net_profit) AS total_net_profit \
FROM web_sales ws1 \
JOIN date_dim ON (ws1.ws_ship_date_sk = d_date_sk) \
JOIN customer_address ON (ws1.ws_ship_addr_sk = ca_address_sk) \
JOIN web_site ON (ws1.ws_web_site_sk = web_site_sk) \
JOIN web_sales ws2 ON (ws1.ws_order_number = ws2.ws_order_number) \
JOIN web_returns ON (ws1.ws_order_number = wr_order_number) \
WHERE d_date BETWEEN '1995-02-01' AND '1995-04-02' \
  AND ca_state = 'IL' AND web_company_name = 'pri' \
  AND ws1.ws_warehouse_sk <> ws2.ws_warehouse_sk \
GROUP BY ws1.ws_order_number \
ORDER BY ws1.ws_order_number \
LIMIT 100";
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_queries_parse() {
        for q in [
            super::queries::TPCH_Q1,
            super::queries::TPCH_Q6,
            super::queries::TPCDS_Q27,
            super::queries::TPCDS_Q95,
        ] {
            hive_ql::parse(q).unwrap_or_else(|e| panic!("{e}\n{q}"));
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(super::fmt_bytes(512), "512 B");
        assert_eq!(super::fmt_bytes(2 << 20), "2.00 MB");
        assert_eq!(super::fmt_s(1.234), "1.23 s");
    }
}
