//! A minimal in-tree stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships this shim: the `proptest!` macro runs each test body for
//! `ProptestConfig::cases` deterministic pseudo-random cases (seeded from
//! the test name, so failures reproduce run-to-run), and the strategy
//! combinators used by `tests/properties.rs` are implemented for real —
//! `any`, ranges, `Just`, `prop_map`, `prop_flat_map`, `prop_oneof!`,
//! `collection::vec`, tuple/`Vec` composition, and a charset-class string
//! strategy. There is **no shrinking**: a failing case panics with the seed
//! and case number instead of a minimized counterexample.

// ---------------------------------------------------------------- runner --

pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// A test-case failure raised by `prop_assert*`.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic generator state (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        pub fn from_name(name: &str) -> TestRng {
            let mut h = 0xcbf29ce484222325u64;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)` (rejection-free is fine at test scale).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

// -------------------------------------------------------------- strategy --

pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe adapter behind [`BoxedStrategy`].
    trait DynStrategy {
        type Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Weighted choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            let total = arms.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights sum covered above")
        }
    }

    // Tuples of strategies generate tuples of values.
    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// A `Vec` of strategies generates one value from each element.
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    /// Charset-class string strategy: `"[a-z0-9 ]{0,24}"` and friends.
    /// Supports exactly the `[chars]{lo,hi}` shape with `a-z`-style ranges;
    /// anything else generates short alphanumeric strings.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (chars, lo, hi) = parse_charset_pattern(self).unwrap_or_else(|| {
                (
                    "abcdefghijklmnopqrstuvwxyz0123456789".chars().collect(),
                    0,
                    16,
                )
            });
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| chars[rng.below(chars.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_charset_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = counts.split_once(',')?;
        let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
        let mut chars = Vec::new();
        let cs: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < cs.len() {
            if i + 2 < cs.len() && cs[i + 1] == '-' {
                for c in cs[i]..=cs[i + 2] {
                    chars.push(c);
                }
                i += 3;
            } else {
                chars.push(cs[i]);
                i += 1;
            }
        }
        if chars.is_empty() || lo > hi {
            return None;
        }
        Some((chars, lo, hi))
    }

    // Integer/float ranges are strategies.
    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub use strategy::{BoxedStrategy, Just, Strategy};

// ------------------------------------------------------------------- any --

/// Types with a default "any value" strategy, biased toward edge cases.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // One case in eight is an edge value: min/max/0/±1.
                if rng.below(8) == 0 {
                    const EDGES: [i128; 5] = [0, 1, -1, <$t>::MIN as i128, <$t>::MAX as i128];
                    return EDGES[rng.below(5) as usize] as $t;
                }
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only (mirrors common proptest usage here).
        let v = f64::from_bits(rng.next_u64());
        if v.is_finite() {
            v
        } else {
            rng.unit_f64() * 1e9 - 5e8
        }
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

// ------------------------------------------------------------ collection --

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds accepted by [`vec`].
    pub trait SizeBounds {
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeBounds for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeBounds for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl SizeBounds for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    /// A vector of values from `element`, with length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    pub fn vec<S: Strategy>(element: S, size: impl SizeBounds) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { element, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ------------------------------------------------------------------- num --

pub mod num {
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Normal (non-zero, non-subnormal, finite) doubles.
        pub struct NormalStrategy;

        pub const NORMAL: NormalStrategy = NormalStrategy;

        impl Strategy for NormalStrategy {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                loop {
                    let v = f64::from_bits(rng.next_u64());
                    if v.is_normal() {
                        return v;
                    }
                }
            }
        }
    }
}

// --------------------------------------------------------------- prelude --

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest};
}

// ---------------------------------------------------------------- macros --

/// Define property tests. Each `#[test] fn name(pat in strategy, ...)` runs
/// `cases` times with deterministically seeded inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( #[test] fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(
                            let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                        )+
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                if let Err(e) = result {
                    panic!("property `{}` failed at case {case}: {e}", stringify!($name));
                }
            }
        }
    )*};
}

/// Weighted/unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($arm))),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($arm))),+
        ])
    };
}

/// Assert inside a property body; failure aborts only the current case set.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `left == right`\n  left: {l:?}\n right: {r:?}"
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `left == right`\n  left: {l:?}\n right: {r:?}\n{}",
            format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(v in 3i64..10, w in 0usize..=4) {
            prop_assert!((3..10).contains(&v));
            prop_assert!(w <= 4);
        }

        #[test]
        fn tuples_and_vecs_compose(
            pairs in crate::collection::vec((any::<i16>(), any::<bool>()), 0..20)
        ) {
            prop_assert!(pairs.len() < 20);
        }

        #[test]
        fn strings_match_their_charset(s in "[a-z0-9 ]{0,24}") {
            prop_assert!(s.len() <= 24);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == ' '));
        }

        #[test]
        fn oneof_with_weights_picks_all_arms(v in prop_oneof![9 => Just(1i32), 1 => Just(2i32)]) {
            prop_assert!(v == 1 || v == 2);
        }
    }

    #[test]
    fn flat_map_and_boxed_compose() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(any::<u8>(), 1..4)
            .prop_flat_map(|v| (Just(v.len()), crate::collection::vec(0u8..10, v.len())))
            .boxed();
        let mut rng = crate::test_runner::TestRng::from_name("compose");
        for _ in 0..50 {
            let (n, v) = s.generate(&mut rng);
            assert_eq!(n, v.len());
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn normal_doubles_are_normal() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::from_name("normal");
        for _ in 0..100 {
            assert!(crate::num::f64::NORMAL.generate(&mut rng).is_normal());
        }
    }
}
