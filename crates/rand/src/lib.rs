//! A minimal in-tree stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships this shim: a seedable xoshiro256** generator behind the
//! subset of the `rand` 0.8 API the data generators and benchmarks use
//! (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_bool,
//! gen_range}`). Streams differ from upstream `rand`, but every consumer in
//! this workspace only relies on determinism for a fixed seed, which holds.

use std::ops::{Range, RangeInclusive};

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// The user-facing random-value surface.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_uniform(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        to_unit_f64(self.next_u64()) < p
    }

    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

/// Types producible directly from the generator (`rng.gen::<T>()`).
pub trait Standard {
    fn from_rng<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        to_unit_f64(rng.next_u64())
    }
}

/// Types with a uniform sampler over `[lo, hi)` / `[lo, hi]` — the anchor
/// that lets integer/float literal inference flow through `gen_range`
/// exactly as it does with the real `rand` crate.
pub trait SampleUniform: Sized {
    fn sample_range<R: Rng>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

/// Ranges `gen_range` can sample from.
pub trait SampleRange<T> {
    fn sample_uniform<R: Rng>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_uniform<R: Rng>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_uniform<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(lo, hi, true, rng)
    }
}

/// `u64` in `[0, n)` without modulo bias (rejection sampling).
fn uniform_u64_below<R: Rng>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX % n) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

fn to_unit_f64(v: u64) -> f64 {
    // 53 high bits → [0, 1) with full double precision.
    (v >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let (lo, hi) = (lo as i128, hi as i128);
                let hi = if inclusive { hi } else { hi - 1 };
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo + uniform_u64_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                if inclusive {
                    assert!(lo <= hi, "gen_range: empty range");
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                }
                lo + (to_unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** seeded through SplitMix64 — deterministic, fast, and
    /// statistically solid for data generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // SplitMix64 expansion, as xoshiro's authors recommend.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25..=0.75_f64);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values should appear");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "~25% expected, got {hits}");
    }

    #[test]
    fn gen_produces_all_byte_values_eventually() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[rng.gen::<u8>() as usize] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() > 250);
    }
}
