//! The Metastore: table metadata (paper Figure 1 — "the Driver needs to
//! contact the Metastore to retrieve needed metadata"). Backed by an
//! in-memory map rather than an RDBMS; the planner-facing view is the
//! [`Catalog`] trait.

use hive_common::{HiveError, Result, Schema};
use hive_dfs::Dfs;
use hive_formats::delta::{is_acid_path, load_delete_set, load_snapshot};
use hive_formats::{AcidOverlay, FormatKind};
use hive_planner::{Catalog, TableMeta};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Metadata of one table.
#[derive(Debug, Clone)]
pub struct TableInfo {
    pub name: String,
    pub schema: Schema,
    pub format: FormatKind,
    /// Directory prefix holding the table's files.
    pub location: String,
}

/// The metastore. Cheap to clone (shared state).
#[derive(Clone)]
pub struct Metastore {
    dfs: Dfs,
    tables: Arc<RwLock<BTreeMap<String, TableInfo>>>,
    /// Catalog generation: bumped by every successful DDL. The plan cache
    /// keys entries on it, so plans compiled against an older catalog
    /// become unreachable the moment a table appears or disappears.
    generation: Arc<AtomicU64>,
}

impl Metastore {
    pub fn new(dfs: Dfs) -> Metastore {
        Metastore {
            dfs,
            tables: Arc::new(RwLock::new(BTreeMap::new())),
            generation: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Current catalog generation (see the field docs).
    pub fn catalog_generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Register a table. Its location is `/warehouse/<name>/`.
    pub fn create_table(
        &self,
        name: &str,
        schema: Schema,
        format: FormatKind,
    ) -> Result<TableInfo> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(HiveError::Metastore(format!(
                "table `{name}` already exists"
            )));
        }
        let info = TableInfo {
            name: key.clone(),
            schema,
            format,
            location: format!("/warehouse/{key}/"),
        };
        tables.insert(key, info.clone());
        self.generation.fetch_add(1, Ordering::Relaxed);
        Ok(info)
    }

    pub fn drop_table(&self, name: &str) -> bool {
        let key = name.to_ascii_lowercase();
        if let Some(info) = self.tables.write().remove(&key) {
            for f in self.dfs.list(&info.location) {
                self.dfs.delete(&f);
            }
            self.generation.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    pub fn get(&self, name: &str) -> Option<TableInfo> {
        self.tables.read().get(&name.to_ascii_lowercase()).cloned()
    }

    pub fn list_tables(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    /// Current on-disk size of a table.
    pub fn table_size(&self, name: &str) -> u64 {
        self.get(name)
            .map(|t| self.dfs.size_of(&t.location))
            .unwrap_or(0)
    }

    /// Files of a table.
    pub fn table_files(&self, name: &str) -> Vec<String> {
        self.get(name)
            .map(|t| self.dfs.list(&t.location))
            .unwrap_or_default()
    }
}

impl Catalog for Metastore {
    fn table(&self, name: &str) -> Option<TableMeta> {
        let info = self.get(name)?;
        if let Ok(Some(snap)) = load_snapshot(&self.dfs, &info.location) {
            // ACID table: the manifest, not the directory listing, decides
            // which files a reader sees. Pin this snapshot here — every
            // job the plan produces scans exactly these files with exactly
            // this delete mask, whatever commits land meanwhile. The
            // second load attempt rides out a first-touch injected read
            // fault, same as a task retry would.
            let deletes = load_delete_set(&self.dfs, &snap)
                .or_else(|_| load_delete_set(&self.dfs, &snap))
                .ok()?;
            let paths = snap.scan_paths();
            let size_bytes = paths.iter().map(|p| self.dfs.len(p).unwrap_or(0)).sum();
            // A base-only, delete-free snapshot (fresh after a major
            // compaction) needs no merge-on-read: scans of it get the full
            // vectorized + SARG path back, same as a plain table.
            let acid = (!snap.deltas.is_empty() || !deletes.is_empty()).then(|| AcidOverlay {
                snapshot_gen: snap.version,
                delta_paths: snap.deltas.iter().map(|(_, p)| p.clone()).collect(),
                deletes: std::sync::Arc::new(deletes),
            });
            return Some(TableMeta {
                name: info.name.clone(),
                schema: info.schema.clone(),
                format: info.format,
                paths,
                size_bytes,
                acid,
            });
        }
        Some(TableMeta {
            name: info.name.clone(),
            schema: info.schema.clone(),
            format: info.format,
            // No manifest yet: plain table. ACID-prefixed names (orphans
            // of a crashed first transaction) stay invisible regardless.
            paths: self
                .dfs
                .list(&info.location)
                .into_iter()
                .filter(|p| !is_acid_path(p))
                .collect(),
            size_bytes: self.dfs.size_of(&info.location),
            acid: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_get_drop() {
        let dfs = Dfs::with_defaults();
        let ms = Metastore::new(dfs.clone());
        let schema = Schema::parse(&[("a", "bigint")]).unwrap();
        ms.create_table("T1", schema.clone(), FormatKind::Orc)
            .unwrap();
        assert!(ms.create_table("t1", schema, FormatKind::Orc).is_err());
        assert!(ms.get("T1").is_some());
        assert_eq!(ms.list_tables(), vec!["t1"]);

        let mut w = dfs.create("/warehouse/t1/part-0");
        w.write(&[0u8; 100]);
        w.close();
        assert_eq!(ms.table_size("t1"), 100);
        assert_eq!(ms.table_files("t1").len(), 1);

        assert!(ms.drop_table("t1"));
        assert!(ms.get("t1").is_none());
        assert!(!dfs.exists("/warehouse/t1/part-0"));
    }

    #[test]
    fn catalog_view() {
        let dfs = Dfs::with_defaults();
        let ms = Metastore::new(dfs);
        ms.create_table(
            "x",
            Schema::parse(&[("a", "bigint")]).unwrap(),
            FormatKind::Text,
        )
        .unwrap();
        let meta = Catalog::table(&ms, "X").unwrap();
        assert_eq!(meta.name, "x");
        assert_eq!(meta.format, FormatKind::Text);
    }
}
