//! Answering simple aggregation queries from ORC file statistics alone —
//! paper Section 4.2 on file-level statistics: "These statistics are used
//! in query optimizations, and they are also used to answer simple
//! aggregation queries." (Hive's `hive.compute.query.using.stats`.)
//!
//! Applies to `SELECT <aggs> FROM <orc table>` with no WHERE / GROUP BY /
//! HAVING / joins, where every projection is `COUNT(*)`, `COUNT(col)`,
//! `MIN(col)`, `MAX(col)` or `SUM(col)` over a bare column: the answer is
//! assembled from each file's footer, reading no row data at all.

use crate::metastore::Metastore;
use hive_common::{HiveConf, Result, Row, Value};
use hive_dfs::Dfs;
use hive_formats::orc::reader::{OrcReadOptions, OrcReader};
use hive_formats::FormatKind;
use hive_ql::{Expr, SelectStmt, TableRef};

/// One recognizable aggregate over a top-level column.
enum StatAgg {
    CountStar,
    Count(usize),
    Min(usize),
    Max(usize),
    Sum(usize),
}

/// Try to answer `stmt` from statistics; `None` when it does not qualify.
pub fn try_answer(
    stmt: &SelectStmt,
    dfs: &Dfs,
    conf: &HiveConf,
    metastore: &Metastore,
) -> Result<Option<(Vec<String>, Row)>> {
    if !conf.get_bool(hive_common::config::keys::COMPUTE_USING_STATS)? {
        return Ok(None);
    }
    if !stmt.joins.is_empty()
        || stmt.where_clause.is_some()
        || !stmt.group_by.is_empty()
        || stmt.having.is_some()
    {
        return Ok(None);
    }
    let TableRef::Table { name, .. } = &stmt.from else {
        return Ok(None);
    };
    let Some(info) = metastore.get(name) else {
        return Ok(None);
    };
    if info.format != FormatKind::Orc {
        return Ok(None);
    }
    // ACID tables must answer through merge-on-read: footer statistics are
    // per-file, blind to delete masks, and the raw listing they would be
    // merged over is not the manifest's view of the table.
    if hive_formats::delta::load_snapshot(dfs, &info.location)?.is_some() {
        return Ok(None);
    }

    // Recognize the projections.
    let mut aggs = Vec::with_capacity(stmt.projections.len());
    let mut names = Vec::with_capacity(stmt.projections.len());
    for (i, p) in stmt.projections.iter().enumerate() {
        let Expr::Function {
            name: fname,
            args,
            distinct: false,
        } = &p.expr
        else {
            return Ok(None);
        };
        let agg = match (fname.as_str(), args.as_slice()) {
            ("count", [Expr::Star]) => StatAgg::CountStar,
            ("count", [Expr::Column { name: c, .. }]) => StatAgg::Count(info.schema.index_of(c)?),
            ("min", [Expr::Column { name: c, .. }]) => StatAgg::Min(info.schema.index_of(c)?),
            ("max", [Expr::Column { name: c, .. }]) => StatAgg::Max(info.schema.index_of(c)?),
            ("sum", [Expr::Column { name: c, .. }]) => StatAgg::Sum(info.schema.index_of(c)?),
            _ => return Ok(None),
        };
        names.push(p.alias.clone().unwrap_or_else(|| format!("_c{i}")));
        aggs.push(agg);
    }

    // Merge footer statistics across the table's files.
    let files = metastore.table_files(name);
    let mut total_rows: i64 = 0;
    let mut per_col: Vec<Option<hive_formats::orc::ColumnStatistics>> =
        vec![None; info.schema.len()];
    let opts = OrcReadOptions {
        // Footer reads share the metadata cache with scans (both tiers key
        // off `hive.io.cache.bytes` as the master switch).
        cache_metadata: conf.get_bool(hive_common::config::keys::ORC_CACHE_METADATA)?
            && conf.get_i64(hive_common::config::keys::IO_CACHE_BYTES)? > 0,
        ..Default::default()
    };
    for path in &files {
        let reader = OrcReader::open(dfs, path, opts.clone())?;
        total_rows += reader.num_rows() as i64;
        for (c, acc) in per_col.iter_mut().enumerate() {
            let Some(s) = reader.file_stats(c) else {
                continue;
            };
            match acc {
                None => *acc = Some(s.clone()),
                Some(a) => a.merge(s)?,
            }
        }
    }

    let mut out = Vec::with_capacity(aggs.len());
    for agg in &aggs {
        let v = match agg {
            StatAgg::CountStar => Value::Int(total_rows),
            StatAgg::Count(c) => match &per_col[*c] {
                Some(s) => Value::Int(s.count() as i64),
                None => Value::Int(0),
            },
            StatAgg::Min(c) => per_col[*c]
                .as_ref()
                .and_then(|s| s.min_value())
                .unwrap_or(Value::Null),
            StatAgg::Max(c) => per_col[*c]
                .as_ref()
                .and_then(|s| s.max_value())
                .unwrap_or(Value::Null),
            StatAgg::Sum(c) => match per_col[*c].as_ref().and_then(|s| s.sum_value()) {
                Some(v) => v,
                // Sum unavailable (overflowed or non-numeric): bail out and
                // let the engine compute it.
                None => return Ok(None),
            },
        };
        out.push(v);
    }
    Ok(Some((names, Row::new(out))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HiveSession;
    use hive_common::config::keys;

    fn session() -> HiveSession {
        let mut hive = HiveSession::in_memory();
        hive.execute("CREATE TABLE t (k BIGINT, v DOUBLE, s STRING) STORED AS orc")
            .unwrap();
        for _ in 0..2 {
            // two part files → footer merging is exercised
            hive.load_rows(
                "t",
                (0..500).map(|i| {
                    Row::new(vec![
                        Value::Int(i),
                        Value::Double(i as f64 / 2.0),
                        Value::String(format!("s{i}")),
                    ])
                }),
            )
            .unwrap();
        }
        hive
    }

    #[test]
    fn stats_only_answers_match_the_engine() {
        let sql = "SELECT COUNT(*) AS n, MIN(k), MAX(k), SUM(k), COUNT(v) FROM t";
        let mut engine = session();
        let slow = engine.execute(sql).unwrap();

        let mut fast = session();
        fast.set(keys::COMPUTE_USING_STATS, "true");
        let before = fast.io_snapshot();
        let quick = fast.execute(sql).unwrap();
        let read = fast.io_snapshot().since(&before).bytes_read();

        assert_eq!(quick.rows, slow.rows);
        assert_eq!(quick.rows[0][0], Value::Int(1000));
        assert!(quick.report.jobs.is_empty(), "no job may run");
        // Footers only: a few KB, not the table.
        assert!(read < 40_000, "read {read} bytes — should be footers only");
    }

    #[test]
    fn disqualifying_shapes_fall_through_to_the_engine() {
        let mut hive = session();
        hive.set(keys::COMPUTE_USING_STATS, "true");
        for sql in [
            "SELECT COUNT(*) FROM t WHERE k > 10",  // filter
            "SELECT k, COUNT(*) FROM t GROUP BY k", // grouping
            "SELECT AVG(k) FROM t",                 // avg not derivable
            "SELECT SUM(k + 1) FROM t",             // expression arg
        ] {
            let r = hive.execute(sql).unwrap();
            assert!(!r.report.jobs.is_empty(), "{sql} must run a job");
        }
    }
}
